package trapquorum_test

// Reconfiguration chaos + acceptance suite: live grow/shrink/recode of
// a populated fleet under concurrent foreground load, with the
// coordinator killed, nodes crashed and links cut mid-migration. The
// invariant every test pins: zero acked-data loss and zero caller
// errors a static fleet would not also produce — reads and writes
// overlap the old and new quorums until each object cuts over, and an
// interrupted drain resumes (manually or through the self-heal pump)
// without ever splitting a quorum across epochs. All seeds are pinned
// in-source; the suite runs under -race in CI.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"trapquorum"
	"trapquorum/client"
	"trapquorum/placement"
	"trapquorum/transport/tcp"
)

// growRecode is the acceptance target: the (9,6) a=2 b=1 h=1 w=2
// seed geometry recoded to the paper's Figure-3 (15,8) a=2 b=3 h=1
// w=3, growing the fleet by six nodes.
var growRecode = trapquorum.Reconfig{
	N: 15, K: 8, TrapezoidA: 2, TrapezoidB: 3, TrapezoidH: 1, W: 3,
	AddNodes: 6,
}

// openNineSix opens a (9,6) store on a fresh 9-node cluster of the
// given backend with small blocks, so objects span several stripes.
func openNineSix(t *testing.T, backend trapquorum.Backend) *trapquorum.ObjectStore {
	t.Helper()
	store, err := trapquorum.Open(context.Background(),
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(9, 6),
		trapquorum.WithTrapezoid(2, 1, 1, 2),
		trapquorum.WithBlockSize(128))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// preloadObjects populates the store with count random objects and
// returns the oracle of their exact contents.
func preloadObjects(t *testing.T, store *trapquorum.ObjectStore, name string, count int, seed int64) map[string][]byte {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	oracle := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		key := fmt.Sprintf("%s-%d", name, i)
		data := make([]byte, 1+rng.Intn(900))
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatalf("preload %q: %v", key, err)
		}
		oracle[key] = data
	}
	return oracle
}

// verifyAll reads every oracle object whole and compares it
// byte-for-byte — the zero-acked-data-loss check.
func verifyAll(t *testing.T, store *trapquorum.ObjectStore, oracle map[string][]byte) {
	t.Helper()
	ctx := context.Background()
	for key, want := range oracle {
		got, err := store.Get(ctx, key)
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("object %q diverged from the oracle (%d vs %d bytes)", key, len(got), len(want))
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// Foreground workload modes: chaos tests with crashed nodes run
// read-only (a Put or quorum write legitimately needs the dead node);
// fault-free tests run the full mix.
const (
	fgReads   = 1 << iota // verified whole-object reads
	fgWrites              // in-place patches via WriteAt
	fgPuts                // new objects via Put
	fgDeletes             // Delete of owned objects
)

// fgLoad is one foreground workload goroutine hammering the store
// while a reconfiguration runs. It owns its oracle (seeded from a
// snapshot of preloaded contents) until finish hands it back, so every
// op it acks is checkable without cross-goroutine coordination.
type fgLoad struct {
	stop   chan struct{}
	done   chan struct{}
	err    error
	oracle map[string][]byte
	ops    int
}

// startForeground launches the workload over its own copy of preload.
func startForeground(store *trapquorum.ObjectStore, name string, seed int64, preload map[string][]byte, mode int) *fgLoad {
	f := &fgLoad{
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		oracle: make(map[string][]byte, len(preload)),
	}
	for k, v := range preload {
		f.oracle[k] = append([]byte(nil), v...)
	}
	go func() {
		defer close(f.done)
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, 0, len(f.oracle))
		for k := range f.oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		next := 0
		for {
			select {
			case <-f.stop:
				return
			default:
			}
			f.ops++
			op := rng.Intn(10)
			switch {
			case mode&fgPuts != 0 && (len(keys) == 0 || op == 0):
				key := fmt.Sprintf("%s-live-%d", name, next)
				next++
				data := make([]byte, 1+rng.Intn(700))
				rng.Read(data)
				if err := store.Put(ctx, key, data); err != nil {
					f.err = fmt.Errorf("put %q: %w", key, err)
					return
				}
				f.oracle[key] = data
				keys = append(keys, key)
			case mode&fgDeletes != 0 && op == 1 && len(keys) > 4:
				i := rng.Intn(len(keys))
				key := keys[i]
				if err := store.Delete(ctx, key); err != nil {
					f.err = fmt.Errorf("delete %q: %w", key, err)
					return
				}
				delete(f.oracle, key)
				keys = append(keys[:i], keys[i+1:]...)
			case mode&fgWrites != 0 && op < 5 && len(keys) > 0:
				key := keys[rng.Intn(len(keys))]
				data := f.oracle[key]
				off := rng.Intn(len(data))
				patch := make([]byte, 1+rng.Intn(len(data)-off))
				rng.Read(patch)
				if err := store.WriteAt(ctx, key, off, patch); err != nil {
					f.err = fmt.Errorf("writeat %q [%d,%d): %w", key, off, off+len(patch), err)
					return
				}
				copy(data[off:], patch)
			case mode&fgReads != 0 && len(keys) > 0:
				key := keys[rng.Intn(len(keys))]
				got, err := store.Get(ctx, key)
				if err != nil {
					f.err = fmt.Errorf("get %q: %w", key, err)
					return
				}
				if !bytes.Equal(got, f.oracle[key]) {
					f.err = fmt.Errorf("get %q: %d bytes not matching the oracle", key, len(got))
					return
				}
			}
		}
	}()
	return f
}

// finish stops the workload and returns the final oracle, failing the
// test on the first error any acked op hit.
func (f *fgLoad) finish(t *testing.T) map[string][]byte {
	t.Helper()
	close(f.stop)
	<-f.done
	if f.err != nil {
		t.Fatalf("foreground workload: %v", f.err)
	}
	return f.oracle
}

// requireConverged asserts the fleet fully converged on epoch `want`.
func requireConverged(t *testing.T, store *trapquorum.ObjectStore, want uint64) {
	t.Helper()
	m := store.Health().Migration
	if m.Active || m.Epoch != want || m.Retired != want-1 {
		t.Fatalf("fleet not converged on epoch %d: %+v", want, m)
	}
	if got := store.Epoch(); got != want {
		t.Fatalf("Epoch() = %d, want %d", got, want)
	}
}

// TestReconfigGrowRecodeLiveSim is the acceptance pin on the simulated
// backend: a populated (9,6) fleet grows by six nodes and recodes to
// the paper's (15,8) Figure-3 geometry while a full foreground
// workload (puts, patches, deletes, verified reads) keeps running —
// zero caller errors, zero acked-data loss, fully converged epoch 2.
func TestReconfigGrowRecodeLiveSim(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	oracle := preloadObjects(t, store, "grow", 24, 1)

	fg := startForeground(store, "grow", 2, oracle, fgReads|fgWrites|fgPuts|fgDeletes)
	if err := store.Reconfigure(ctx, growRecode); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	final := fg.finish(t)

	verifyAll(t, store, final)
	requireConverged(t, store, 2)
	if n, k := store.CodeParams(); n != 15 || k != 8 {
		t.Fatalf("CodeParams = (%d,%d), want (15,8)", n, k)
	}
	if got := store.NodeCount(); got != 15 {
		t.Fatalf("NodeCount = %d, want 15", got)
	}
	if got := len(store.ActiveNodes()); got != 15 {
		t.Fatalf("ActiveNodes holds %d nodes, want 15", got)
	}
	if m := store.Health().Migration; m.DoneObjects != 0 || m.PendingObjects != 0 {
		t.Fatalf("converged fleet still reports drain progress: %+v", m)
	}
}

// TestReconfigCoordinatorKillResume kills the coordinator (cancels the
// context driving Reconfigure) mid-drain: the fleet must stay fully
// readable in its mixed-epoch state, and a zero Reconfig must resume
// the drain to convergence with nothing lost.
func TestReconfigCoordinatorKillResume(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	oracle := preloadObjects(t, store, "kill", 40, 3)

	mctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(mctx, growRecode) }()
	waitFor(t, 30*time.Second, "migration progress", func() bool {
		m := store.Health().Migration
		return (m.Active && m.DoneObjects >= 3) || m.Retired == 1
	})
	cancel()
	if err := <-errc; err == nil {
		t.Log("drain won the race with the kill; resume below degrades to a no-op")
	}

	// The mixed-epoch fleet serves every object from whichever epoch
	// it is in.
	verifyAll(t, store, oracle)

	// Resume: the zero Reconfig names the active target.
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{}); err != nil {
		t.Fatalf("resume Reconfigure: %v", err)
	}
	requireConverged(t, store, 2)
	verifyAll(t, store, oracle)

	// The converged fleet accepts new writes in the new epoch.
	if err := store.Put(ctx, "kill-post", []byte("post-resume write")); err != nil {
		t.Fatalf("put after resume: %v", err)
	}
	got, err := store.Get(ctx, "kill-post")
	if err != nil || string(got) != "post-resume write" {
		t.Fatalf("get after resume: %q, %v", got, err)
	}
}

// TestReconfigSelfHealPumpResumes kills the coordinator mid-drain on a
// store opened with WithSelfHeal: the orchestrator's background
// migration pump must notice the interrupted drain and finish it with
// no caller driving anything.
func TestReconfigSelfHealPumpResumes(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(9, 6),
		trapquorum.WithTrapezoid(2, 1, 1, 2),
		trapquorum.WithBlockSize(128),
		trapquorum.WithSelfHeal(trapquorum.SelfHeal{ScrubInterval: -1}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	oracle := preloadObjects(t, store, "pump", 40, 5)

	mctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(mctx, growRecode) }()
	waitFor(t, 30*time.Second, "migration progress", func() bool {
		m := store.Health().Migration
		return (m.Active && m.DoneObjects >= 3) || m.Retired == 1
	})
	cancel()
	<-errc

	waitFor(t, 30*time.Second, "the self-heal pump to converge the fleet", func() bool {
		m := store.Health().Migration
		return !m.Active && m.Retired == 1
	})
	requireConverged(t, store, 2)
	verifyAll(t, store, oracle)
}

// TestReconfigNodeCrashMidMigration crashes one of the fresh nodes
// while the drain runs: migration steps against it fail and re-queue,
// foreground reads keep serving from both epochs throughout, and the
// drain completes once the node returns.
func TestReconfigNodeCrashMidMigration(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store := openNineSix(t, backend)
	oracle := preloadObjects(t, store, "crash", 30, 7)

	fg := startForeground(store, "crash", 8, oracle, fgReads)
	mctx, cancelDrive := context.WithTimeout(ctx, 60*time.Second)
	defer cancelDrive()
	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(mctx, growRecode) }()
	waitFor(t, 30*time.Second, "the grown fleet and an active drain", func() bool {
		return store.NodeCount() == 15 && store.Health().Migration.Active
	})

	backend.Crash(12)
	waitFor(t, 30*time.Second, "migration step failures against the dead node", func() bool {
		m := store.Health().Migration
		return !m.Active || m.Failures >= 2
	})
	if m := store.Health().Migration; m.Active {
		// The drain is stuck on the dead node, never split: nothing is
		// fenced while objects remain outside the target epoch.
		if m.Retired != 0 {
			t.Fatalf("epochs fenced while the drain is stuck: %+v", m)
		}
	}
	backend.Restart(12)

	if err := <-errc; err != nil {
		t.Fatalf("Reconfigure across the crash: %v", err)
	}
	final := fg.finish(t)
	requireConverged(t, store, 2)
	verifyAll(t, store, final)
}

// TestReconfigMinorityPartitionMidMigration cuts the links to two of
// the fresh nodes mid-drain: the migration stalls (it refuses to cut
// an object over without its full target quorum) while foreground
// reads keep passing, then completes after the partition heals.
func TestReconfigMinorityPartitionMidMigration(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store := openNineSix(t, backend)
	oracle := preloadObjects(t, store, "part", 30, 9)

	fg := startForeground(store, "part", 10, oracle, fgReads)
	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(ctx, growRecode) }()
	waitFor(t, 30*time.Second, "the grown fleet and an active drain", func() bool {
		return store.NodeCount() == 15 && store.Health().Migration.Active
	})

	backend.PartitionNodes(10, 11)
	waitFor(t, 30*time.Second, "migration step failures against the partition", func() bool {
		m := store.Health().Migration
		return !m.Active || m.Failures >= 2
	})
	if m := store.Health().Migration; m.Active && m.Retired != 0 {
		t.Fatalf("epochs fenced across a partition: %+v", m)
	}
	backend.HealLinks()

	if err := <-errc; err != nil {
		t.Fatalf("Reconfigure across the partition: %v", err)
	}
	final := fg.finish(t)
	requireConverged(t, store, 2)
	verifyAll(t, store, final)
}

// TestReconfigAbortLeavesMixedStateServing aborts a drain partway:
// the fleet stays in its mixed-epoch state with everything readable
// and writable, nothing fenced, and a zero Reconfig resumes later.
func TestReconfigAbortLeavesMixedStateServing(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	oracle := preloadObjects(t, store, "abort", 40, 11)

	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(ctx, growRecode) }()
	waitFor(t, 30*time.Second, "migration progress", func() bool {
		m := store.Health().Migration
		return (m.Active && m.DoneObjects >= 2) || m.Retired == 1
	})
	store.AbortReconfigure()
	if err := <-errc; err != nil {
		t.Fatalf("Reconfigure after abort: %v", err)
	}

	m := store.Health().Migration
	if m.Active {
		t.Fatalf("abort left the migration active: %+v", m)
	}
	if m.Retired == 1 {
		t.Log("drain won the race with the abort; mixed-state checks degrade to converged ones")
	} else if m.Epoch != 2 || m.Retired != 0 {
		t.Fatalf("aborted fleet in unexpected state: %+v", m)
	}

	// Mixed state serves reads and writes; new objects land in epoch 2.
	verifyAll(t, store, oracle)
	if err := store.Put(ctx, "abort-post", []byte("landed in the new epoch")); err != nil {
		t.Fatalf("put on the aborted fleet: %v", err)
	}
	oracle["abort-post"] = []byte("landed in the new epoch")

	// Resume and converge.
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{}); err != nil {
		t.Fatalf("resume after abort: %v", err)
	}
	requireConverged(t, store, 2)
	verifyAll(t, store, oracle)
}

// TestReconfigShrinkRetiresNodes removes three nodes from a 12-node
// roster: after the drain no stripe references them, proven by
// crashing all three and reading everything back clean.
func TestReconfigShrinkRetiresNodes(t *testing.T) {
	ctx := context.Background()
	rr, err := placement.NewRoundRobin(12)
	if err != nil {
		t.Fatal(err)
	}
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(9, 6),
		trapquorum.WithTrapezoid(2, 1, 1, 2),
		trapquorum.WithPlacement(rr),
		trapquorum.WithBlockSize(128))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	oracle := preloadObjects(t, store, "shrink", 20, 13)

	if err := store.Reconfigure(ctx, trapquorum.Reconfig{RemoveNodes: []int{9, 10, 11}}); err != nil {
		t.Fatalf("shrink Reconfigure: %v", err)
	}
	requireConverged(t, store, 2)
	if got, want := store.ActiveNodes(), []int{0, 1, 2, 3, 4, 5, 6, 7, 8}; len(got) != len(want) {
		t.Fatalf("ActiveNodes after shrink = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ActiveNodes after shrink = %v, want %v", got, want)
			}
		}
	}
	if got := store.NodeCount(); got != 12 {
		t.Fatalf("NodeCount after shrink = %d, want 12 (ids are never reused)", got)
	}

	backend.Crash(9)
	backend.Crash(10)
	backend.Crash(11)
	verifyAll(t, store, oracle)
}

// TestReconfigRefusesSecondTarget pins ErrMigrationActive: while a
// drain runs, a Reconfigure towards a different target is refused.
func TestReconfigRefusesSecondTarget(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	preloadObjects(t, store, "second", 40, 15)

	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(ctx, growRecode) }()
	waitFor(t, 30*time.Second, "an active drain", func() bool {
		return store.Health().Migration.Active
	})
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{AddNodes: 1}); !errors.Is(err, trapquorum.ErrMigrationActive) {
		t.Fatalf("second target during a drain: %v, want ErrMigrationActive", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("first Reconfigure: %v", err)
	}
	requireConverged(t, store, 2)
}

// TestReconfigValidation pins the argument and capability errors, and
// that every refused call leaves the fleet untouched.
func TestReconfigValidation(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	oracle := preloadObjects(t, store, "valid", 4, 17)

	bad := map[string]trapquorum.Reconfig{
		"negative AddNodes":          {AddNodes: -1},
		"AddNodes and AddNodeAddrs":  {AddNodes: 1, AddNodeAddrs: []string{"127.0.0.1:1"}},
		"RemoveNodes outside roster": {RemoveNodes: []int{42}},
		"roster smaller than n":      {RemoveNodes: []int{8}},
		"trapezoid not matching n-k": {N: 15, K: 8},
	}
	for name, rc := range bad {
		if err := store.Reconfigure(ctx, rc); err == nil {
			t.Errorf("%s: Reconfigure accepted it", name)
		}
	}
	// The sim backend mints nodes itself; it has no address-based grow.
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{AddNodeAddrs: []string{"127.0.0.1:1"}}); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("AddNodeAddrs on SimBackend: %v, want ErrNotSupported", err)
	}

	requireConverged(t, store, 1)
	verifyAll(t, store, oracle)
}

// TestReconfigGrowRecodeLiveTCP is the acceptance pin on the real
// plane: durable TCP nodes (diskstore + node engine + wire protocol),
// the fleet grown by dialing six fresh daemons, recoded (9,6)→(15,8)
// under live foreground load. It also pins the epoch watermarks'
// durability (they survive a node crash+restart) and the fence (a
// stale coordinator stamping a retired epoch is refused).
func TestReconfigGrowRecodeLiveTCP(t *testing.T) {
	ctx := context.Background()
	nodes := startFleet(t, 9)
	backend := trapquorum.NewNetBackend(fleetAddrs(nodes), tcp.WithDialTimeout(2*time.Second))
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(9, 6),
		trapquorum.WithTrapezoid(2, 1, 1, 2),
		trapquorum.WithBlockSize(128))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	oracle := preloadObjects(t, store, "tcp", 12, 19)

	// AddNodes needs a backend that can mint nodes; NetBackend cannot.
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{AddNodes: 1}); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("AddNodes on NetBackend: %v, want ErrNotSupported", err)
	}
	// A dead address must fail the grow before touching the fleet.
	if err := store.Reconfigure(ctx, trapquorum.Reconfig{AddNodeAddrs: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("GrowAddrs dialed a dead address without error")
	}
	requireConverged(t, store, 1)

	fresh := startFleet(t, 6)
	fg := startForeground(store, "tcp", 20, oracle, fgReads|fgWrites|fgPuts)
	rc := growRecode
	rc.AddNodes = 0
	rc.AddNodeAddrs = fleetAddrs(fresh)
	if err := store.Reconfigure(ctx, rc); err != nil {
		t.Fatalf("Reconfigure over TCP: %v", err)
	}
	final := fg.finish(t)
	verifyAll(t, store, final)
	requireConverged(t, store, 2)
	if got := store.NodeCount(); got != 15 {
		t.Fatalf("NodeCount = %d, want 15", got)
	}

	// The nodes persisted the fence. A probe client sees the
	// watermarks, and still sees them after a crash+restart.
	probe := tcp.NewClient(nodes[0].addr)
	installed, retired, _, err := probe.EpochState(ctx)
	probe.Close()
	if err != nil {
		t.Fatalf("EpochState: %v", err)
	}
	if installed != 2 || retired != 1 {
		t.Fatalf("node 0 epoch state = (installed %d, retired %d), want (2, 1)", installed, retired)
	}
	nodes[0].crash()
	nodes[0].start()
	probe = tcp.NewClient(nodes[0].addr)
	defer probe.Close()
	installed, retired, _, err = probe.EpochState(ctx)
	if err != nil {
		t.Fatalf("EpochState after restart: %v", err)
	}
	if installed != 2 || retired != 1 {
		t.Fatalf("epoch state after restart = (installed %d, retired %d), want (2, 1)", installed, retired)
	}

	// The fence holds: a stale coordinator stamping the retired epoch
	// is refused with the typed error.
	err = probe.PutChunk(client.WithEpoch(ctx, 1),
		client.ChunkID{Stripe: 1 << 40, Shard: 0}, []byte("stale epoch write"), []uint64{1})
	if !errors.Is(err, client.ErrEpochStale) {
		t.Fatalf("write stamped with the retired epoch: %v, want ErrEpochStale", err)
	}
}
