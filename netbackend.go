package trapquorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/transport/tcp"
)

// NetBackend runs the store on a fleet of real network storage nodes:
// one TCP node client per address, each talking to a node daemon
// (cmd/trapnode, or any server built on transport/tcp over a node
// engine). It is the production counterpart of SimBackend.
//
// NetBackend intentionally does not implement FaultInjector: a real
// fleet's nodes crash on their own, and an unreachable node already
// surfaces as client.ErrNodeDown through the protocol. Store-level
// CrashNode/RestartNode/AliveNodes/WipeNode therefore return
// ErrNotSupported wraps on this backend.
type NetBackend struct {
	addrs []string
	opts  []tcp.ClientOption

	mu      sync.Mutex
	clients []*tcp.NodeClient
	opened  bool
	closed  bool
}

// NewNetBackend builds a backend over the given node addresses, in
// cluster-node order: address i serves cluster node i, so the list's
// length must equal the cluster size the store derives from its
// placement. The options apply to every per-node client.
func NewNetBackend(addrs []string, opts ...tcp.ClientOption) *NetBackend {
	return &NetBackend{addrs: append([]string(nil), addrs...), opts: opts}
}

// Open implements Backend.
func (b *NetBackend) Open(ctx context.Context, n int) ([]client.NodeClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.opened || b.closed {
		return nil, errors.New("trapquorum: net backend already opened; use one backend per store")
	}
	if n != len(b.addrs) {
		return nil, fmt.Errorf("trapquorum: cluster needs %d nodes, NetBackend has %d addresses", n, len(b.addrs))
	}
	b.clients = make([]*tcp.NodeClient, n)
	nodes := make([]client.NodeClient, n)
	for i, addr := range b.addrs {
		cl := tcp.NewClient(addr, b.opts...)
		b.clients[i] = cl
		nodes[i] = cl
	}
	b.opened = true
	return nodes, nil
}

// GrowAddrs implements AddrGrowableBackend: it appends one node per
// address after the current roster — address i of the slice becomes
// cluster node NodeCount()+i — and returns their clients. The daemons
// are dialed lazily like Open-time nodes, but each is pinged first so
// a typo'd address fails the grow instead of surfacing as a dead
// cluster node mid-migration. Used by ObjectStore.Reconfigure to grow
// the fleet online.
func (b *NetBackend) GrowAddrs(ctx context.Context, addrs []string) ([]client.NodeClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, errors.New("trapquorum: GrowAddrs with no addresses")
	}
	b.mu.Lock()
	usable := b.opened && !b.closed
	b.mu.Unlock()
	if !usable {
		return nil, errors.New("trapquorum: net backend not open")
	}
	added := make([]*tcp.NodeClient, 0, len(addrs))
	nodes := make([]client.NodeClient, 0, len(addrs))
	for i, addr := range addrs {
		cl := tcp.NewClient(addr, b.opts...)
		if err := cl.Ping(ctx); err != nil {
			cl.Close()
			for _, prev := range added {
				prev.Close()
			}
			return nil, fmt.Errorf("trapquorum: GrowAddrs: new node %d (%s): %w", i, addr, err)
		}
		added = append(added, cl)
		nodes = append(nodes, cl)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.opened || b.closed {
		for _, cl := range added {
			cl.Close()
		}
		return nil, errors.New("trapquorum: net backend closed during GrowAddrs")
	}
	b.clients = append(b.clients, added...)
	b.addrs = append(b.addrs, addrs...)
	return nodes, nil
}

// Close implements Backend: it closes every node client's connection
// pool. The remote daemons keep running — their lifecycle belongs to
// whoever deployed them.
func (b *NetBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	var first error
	for _, cl := range b.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.clients = nil
	return first
}

// ProbeNode implements NodeProber for the self-healing monitor: one
// TCP ping against the node's address. An unreachable daemon reports
// an error wrapping client.ErrNodeDown.
func (b *NetBackend) ProbeNode(ctx context.Context, node int) error {
	b.mu.Lock()
	usable := b.opened && !b.closed
	var cl *tcp.NodeClient
	if usable && node >= 0 && node < len(b.clients) {
		cl = b.clients[node]
	}
	b.mu.Unlock()
	if !usable {
		return errors.New("trapquorum: net backend not open")
	}
	if cl == nil {
		return fmt.Errorf("trapquorum: probe of unknown node %d", node)
	}
	return cl.Ping(ctx)
}

// NodeUsable implements the node gate consulted by the protocol's
// fan-out engine: false while the node's circuit breaker is open (the
// engine then fails the node locally instead of queueing an RPC that
// the transport would fast-fail anyway). Nodes of an unopened backend
// and clients without a resilience policy are always usable.
func (b *NetBackend) NodeUsable(node int) bool {
	b.mu.Lock()
	var cl *tcp.NodeClient
	if b.opened && !b.closed && node >= 0 && node < len(b.clients) {
		cl = b.clients[node]
	}
	b.mu.Unlock()
	if cl == nil {
		return true
	}
	return cl.Usable()
}

// NodeLatency reports the smoothed round-trip latency of node's link,
// and false before the first successful exchange. The self-healing
// monitor uses it as the brownout signal.
func (b *NetBackend) NodeLatency(node int) (time.Duration, bool) {
	b.mu.Lock()
	var cl *tcp.NodeClient
	if b.opened && !b.closed && node >= 0 && node < len(b.clients) {
		cl = b.clients[node]
	}
	b.mu.Unlock()
	if cl == nil {
		return 0, false
	}
	return cl.Latency()
}

// LinkHealth snapshots every node link's breaker state and resilience
// counters, in cluster-node order. Empty before Open or after Close.
func (b *NetBackend) LinkHealth() []client.LinkHealth {
	b.mu.Lock()
	clients := b.clients
	usable := b.opened && !b.closed
	b.mu.Unlock()
	if !usable {
		return nil
	}
	links := make([]client.LinkHealth, len(clients))
	for i, cl := range clients {
		links[i] = cl.LinkHealth()
		links[i].Node = i
	}
	return links
}

// ResilienceStats aggregates the fleet's breaker and retry-budget
// counters. Budgets shared by several clients (the default: one
// Resilience value configures the whole backend) are counted once, by
// pointer identity.
func (b *NetBackend) ResilienceStats() client.ResilienceStats {
	b.mu.Lock()
	clients := b.clients
	usable := b.opened && !b.closed
	b.mu.Unlock()
	var s client.ResilienceStats
	if !usable {
		return s
	}
	budgets := make(map[*tcp.RetryBudget]struct{})
	for _, cl := range clients {
		lh := cl.LinkHealth()
		s.BreakerOpens += lh.BreakerOpens
		s.BreakerFastFails += lh.FastFails
		s.TransportRetries += lh.Retries
		if bd := cl.RetryBudget(); bd != nil {
			s.Enabled = true
			if _, seen := budgets[bd]; !seen {
				budgets[bd] = struct{}{}
				s.RetryBudgetSpent += bd.Spent()
				s.RetryBudgetDenied += bd.Denied()
			}
		}
	}
	return s
}

// Ping probes every node address once, returning the first failure
// (wrapped client.ErrNodeDown for unreachable nodes). Useful as a
// deployment smoke check before opening a store; the protocol itself
// needs no pre-flight.
func (b *NetBackend) Ping(ctx context.Context) error {
	b.mu.Lock()
	clients := b.clients
	usable := b.opened && !b.closed
	b.mu.Unlock()
	if !usable {
		return errors.New("trapquorum: net backend not open")
	}
	for i, cl := range clients {
		if err := cl.Ping(ctx); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}
