// Command trapavail evaluates the paper's closed-form availability and
// storage equations (7–15) for one configuration, printing write
// availability, read availability under full replication and erasure
// coding (both equation 13 and the exact protocol-structural value),
// and the storage used per block.
//
// Usage:
//
//	trapavail -n 15 -k 8 -a 2 -b 3 -hh 1 -w 3 -p 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

func main() {
	n := flag.Int("n", 15, "MDS code length n")
	k := flag.Int("k", 8, "MDS code dimension k")
	a := flag.Int("a", 2, "trapezoid slope a")
	b := flag.Int("b", 3, "trapezoid base b (level-0 width)")
	h := flag.Int("hh", 1, "trapezoid top level h (h+1 levels)")
	w := flag.Int("w", 3, "write quorum size at levels 1..h")
	p := flag.Float64("p", 0.9, "node availability p")
	flag.Parse()

	if err := run(*n, *k, *a, *b, *h, *w, *p); err != nil {
		fmt.Fprintln(os.Stderr, "trapavail:", err)
		os.Exit(1)
	}
}

func run(n, k, a, b, h, w int, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("p = %v outside [0,1]", p)
	}
	shape := trapezoid.Shape{A: a, B: b, H: h}
	cfg, err := trapezoid.NewConfig(shape, w)
	if err != nil {
		return err
	}
	if got, want := shape.NbNodes(), n-k+1; got != want {
		return fmt.Errorf("trapezoid holds %d nodes, need n-k+1 = %d", got, want)
	}
	e := availability.ERCParams{Config: cfg, N: n, K: k}
	fmt.Printf("configuration: (n=%d, k=%d) MDS, trapezoid %s, w=%d, p=%g\n", n, k, shape, w, p)
	fmt.Printf("  levels:")
	for l := 0; l <= h; l++ {
		fmt.Printf(" s_%d=%d (w=%d, r=%d)", l, shape.LevelSize(l), cfg.W[l], cfg.ReadThreshold(l))
	}
	fmt.Println()

	fmt.Printf("write availability  (eq 8/9): %.6f\n", availability.Write(cfg, p))
	fmt.Printf("read  availability   TRAP-FR (eq 10): %.6f\n", availability.ReadFR(cfg, p))
	erc, err := availability.ReadERC(e, p)
	if err != nil {
		return err
	}
	p1, p2, err := availability.ReadERCParts(e, p)
	if err != nil {
		return err
	}
	fmt.Printf("read  availability  TRAP-ERC (eq 13): %.6f  (P1=%.6f direct, P2=%.6f decode)\n", erc, p1, p2)
	exact, err := availability.ReadERCExact(e, p)
	if err != nil {
		return err
	}
	fmt.Printf("read  availability  TRAP-ERC (exact protocol): %.6f  (eq13 optimism: %+.6f)\n", exact, erc-exact)
	fmt.Printf("storage per block: TRAP-FR %.3f x blocksize (eq 14), TRAP-ERC %.3f x blocksize (eq 15)\n",
		availability.StorageFR(n, k), availability.StorageERC(n, k))
	fmt.Printf("storage saving: %.1f%%\n", 100*(1-availability.StorageERC(n, k)/availability.StorageFR(n, k)))
	return nil
}
