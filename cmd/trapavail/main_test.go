package main

import "testing"

func TestRunValidConfig(t *testing.T) {
	if err := run(15, 8, 2, 3, 1, 3, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProbability(t *testing.T) {
	if err := run(15, 8, 2, 3, 1, 3, -0.1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if err := run(15, 8, 2, 3, 1, 3, 1.5); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestRunRejectsMismatchedTrapezoid(t *testing.T) {
	// (2,3,2) holds 15 nodes but n-k+1 = 8.
	if err := run(15, 8, 2, 3, 2, 3, 0.5); err == nil {
		t.Fatal("mismatched trapezoid accepted")
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run(15, 8, -1, 3, 1, 3, 0.5); err == nil {
		t.Fatal("a<0 accepted")
	}
	if err := run(15, 8, 2, 3, 1, 9, 0.5); err == nil {
		t.Fatal("w>s1 accepted")
	}
}
