// Command trapnode runs one TRAP-ERC storage node as a network
// daemon: the transport-neutral node engine (internal/nodeengine)
// served over the TCP node protocol (transport/tcp), on either a
// durable per-node directory (internal/diskstore) or process memory.
//
// A cluster is N of these daemons plus any client process opening a
// trapquorum store over a NetBackend:
//
//	trapnode -addr :7420 -dir /var/lib/trapnode    # one per node
//	...
//	backend := trapquorum.NewNetBackend(addrs)     # in the client
//	store, err := trapquorum.Open(ctx, trapquorum.WithBackend(backend))
//
// The daemon exits cleanly on SIGINT/SIGTERM; with -dir, every
// acknowledged mutation is already durable (write-ahead log + atomic
// rename + fsync), so a hard kill loses nothing that was acknowledged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trapquorum/internal/diskstore"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

type config struct {
	addr         string
	dir          string
	noFsync      bool
	groupCommit  bool
	gcLinger     time.Duration
	gcMaxBatch   int
	scanInterval time.Duration
	ioTimeout    time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7420", "TCP address to listen on")
	flag.StringVar(&cfg.dir, "dir", "", "durable storage directory (empty: keep chunks in memory)")
	flag.BoolVar(&cfg.noFsync, "no-fsync", false,
		"skip fsync on mutations (faster, loses crash durability); before reaching for this, see -group-commit, which keeps full durability and amortises the fsync instead — docs/OPERATIONS.md §\"Running without fsync\" derives exactly what each mode risks")
	flag.BoolVar(&cfg.groupCommit, "group-commit", false,
		"batch concurrent mutations into one WAL append + fsync (needs -dir): every acknowledged mutation is still durable, but writers that arrive together share the fsync instead of each paying their own — see docs/OPERATIONS.md §\"Group commit\"")
	flag.DurationVar(&cfg.gcLinger, "gc-linger", -1,
		"group commit: how long the committer lingers for more mutations to join a batch (0 commits immediately, negative selects the built-in default; needs -group-commit)")
	flag.IntVar(&cfg.gcMaxBatch, "gc-max-batch", 0,
		"group commit: max mutations per batch before stagers block (0 selects the built-in default; needs -group-commit)")
	flag.DurationVar(&cfg.scanInterval, "scan-interval", 0,
		"periodic at-rest scan of the durable store: chunk files failing their CRC are quarantined so the cluster's scrub finds cold bit-rot without a client read (0 disables; needs -dir)")
	flag.DurationVar(&cfg.ioTimeout, "io-timeout", 30*time.Second,
		"per-connection IO deadline: a peer that starts a request frame or stalls reading a response gets this long to make progress before the connection is cut (slow-loris guard; 0 disables)")
	flag.Parse()

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("trapnode: %v, shutting down", s)
		close(stop)
	}()

	if err := run(cfg, stop, nil); err != nil {
		log.Fatalf("trapnode: %v", err)
	}
}

// run builds the store + engine + server stack and serves until stop
// closes or the listener fails. started, when non-nil, receives the
// bound address once the node is accepting connections (tests listen
// on :0).
func run(cfg config, stop <-chan struct{}, started func(net.Addr)) error {
	var (
		store nodeengine.ChunkStore
		desc  string
	)
	if cfg.dir == "" {
		if cfg.groupCommit {
			return fmt.Errorf("trapnode: -group-commit needs -dir (the in-memory store has no fsync to amortise)")
		}
		store = memstore.New()
		desc = "in-memory store"
	} else {
		opts := []diskstore.Option{diskstore.WithSyncWrites(!cfg.noFsync)}
		if cfg.groupCommit {
			opts = append(opts, diskstore.WithGroupCommit(cfg.gcLinger, cfg.gcMaxBatch))
		}
		ds, err := diskstore.Open(cfg.dir, opts...)
		if err != nil {
			return err
		}
		store = ds
		desc = fmt.Sprintf("durable store in %s", cfg.dir)
		if cfg.groupCommit {
			desc += ", group commit"
		}
	}
	engine := nodeengine.New(store, nodeengine.WithName("trapnode "+cfg.addr))
	defer engine.Close()

	if cfg.scanInterval > 0 {
		if cfg.dir == "" {
			return fmt.Errorf("trapnode: -scan-interval needs -dir (the in-memory store has no at-rest state to scan)")
		}
		scanDone := make(chan struct{})
		defer close(scanDone)
		go scanLoop(engine, cfg.scanInterval, scanDone)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := tcp.NewServer(engine, tcp.WithServerIOTimeout(cfg.ioTimeout))
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("trapnode: serving on %s (%s)", ln.Addr(), desc)
	if started != nil {
		started(ln.Addr())
	}

	select {
	case <-stop:
		if err := srv.Close(); err != nil {
			return err
		}
		return <-serveErr
	case err := <-serveErr:
		srv.Close()
		return err
	}
}

// scanLoop periodically re-reads every chunk file from disk and
// quarantines the ones failing their CRC: subsequent reads of a
// quarantined chunk answer ErrCorrupt, which the cluster's verified
// read path and scrubber treat as a corruption observation and heal —
// so cold bit-rot on a rarely-read chunk is found and repaired without
// waiting for a client to stumble over it.
func scanLoop(engine *nodeengine.Engine, interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		quarantined, err := engine.VerifyStore(context.Background())
		switch {
		case err != nil:
			log.Printf("trapnode: at-rest scan failed: %v", err)
		case len(quarantined) > 0:
			log.Printf("trapnode: at-rest scan quarantined %d chunk(s): %v", len(quarantined), quarantined)
		}
	}
}
