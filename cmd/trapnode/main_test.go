package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/transport/tcp"
)

// startDaemon runs the daemon stack on a loopback port and returns a
// client for it plus the shutdown function.
func startDaemon(t *testing.T, cfg config) *tcp.NodeClient {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	stop := make(chan struct{})
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, stop, func(a net.Addr) { addrCh <- a }) }()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	t.Cleanup(func() {
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not stop")
		}
	})
	cl := tcp.NewClient(addr.String())
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestDaemonServesMemoryStore(t *testing.T) {
	cl := startDaemon(t, config{})
	ctx := context.Background()
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	id := client.ChunkID{Stripe: 1, Shard: 2}
	if err := cl.PutChunk(ctx, id, []byte{1, 2}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadChunk(ctx, id)
	if err != nil || got.Data[1] != 2 {
		t.Fatalf("chunk = %+v, %v", got, err)
	}
}

// TestDaemonDurableAcrossRestart writes through one daemon over a
// disk store, stops it, starts a fresh daemon on the same directory
// and reads the chunk back.
func TestDaemonDurableAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "node0")
	ctx := context.Background()
	id := client.ChunkID{Stripe: 4, Shard: 7}

	stop := make(chan struct{})
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	cfg := config{addr: "127.0.0.1:0", dir: dir, noFsync: true}
	go func() { done <- run(cfg, stop, func(a net.Addr) { addrCh <- a }) }()
	addr := <-addrCh
	cl := tcp.NewClient(addr.String())
	if err := cl.PutChunk(ctx, id, []byte{9}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	cl2 := startDaemon(t, config{dir: dir, noFsync: true})
	got, err := cl2.ReadChunk(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 9 || got.Versions[0] != 3 {
		t.Fatalf("chunk after daemon restart = %+v", got)
	}
}

// TestDaemonIOTimeoutCutsStalledPeer wires -io-timeout end to end: a
// peer that opens a frame and then stalls must be disconnected by the
// daemon on its own clock, while a well-behaved client keeps working.
func TestDaemonIOTimeoutCutsStalledPeer(t *testing.T) {
	stop := make(chan struct{})
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	cfg := config{addr: "127.0.0.1:0", ioTimeout: 150 * time.Millisecond}
	go func() { done <- run(cfg, stop, func(a net.Addr) { addrCh <- a }) }()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}()

	// Slow-loris: two header bytes, then silence.
	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("daemon answered a half frame")
	} else if time.Since(start) > 3*time.Second {
		t.Fatalf("daemon did not cut the stalled peer (err=%v after %v)", err, time.Since(start))
	}

	// The stalled peer must not have taken the daemon down for others.
	cl := tcp.NewClient(addr.String())
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping after stalled peer was cut: %v", err)
	}
}

func TestDaemonRejectsBadDir(t *testing.T) {
	// A file where the directory should be.
	path := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{addr: "127.0.0.1:0", dir: path}, nil, nil); err == nil {
		t.Fatal("bad -dir accepted")
	}
}
