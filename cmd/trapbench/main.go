// Command trapbench regenerates every figure of the paper's
// evaluation section (Figures 2–5) plus this reproduction's validation
// and ablation studies, printing each as an aligned table and
// optionally writing CSV files for plotting. -latency additionally
// prints operation latency percentiles under a 200µs per-node delay.
//
// Usage:
//
//	trapbench [-fig all|fig2|fig3|fig4|fig5|mcval|ablation-write|ablation-read|update-cost|endurance]
//	          [-trials N] [-seed S] [-csv DIR] [-latency]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"trapquorum/internal/figures"
	"trapquorum/internal/latency"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

func main() {
	figFlag := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	trials := flag.Int("trials", 50000, "Monte-Carlo trials per grid point (mcval)")
	seed := flag.Int64("seed", 1, "Monte-Carlo seed")
	csvDir := flag.String("csv", "", "directory to write <fig>.csv files into (optional)")
	withLatency := flag.Bool("latency", false, "also print operation latency percentiles (A7)")
	flag.Parse()

	if err := run(*figFlag, *trials, *seed, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "trapbench:", err)
		os.Exit(1)
	}
	if *withLatency {
		if err := runLatency(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "trapbench:", err)
			os.Exit(1)
		}
	}
}

// runLatency prints the A7 latency tables on the Figure-3
// configuration: the sequential engine (concurrency 1, the paper's
// implicit one-RPC-at-a-time reading of Algorithms 1–2) against the
// parallel fan-out engine, under the same 200µs per-node delay. The
// gap is the sum-of-nodes vs max-of-level difference DESIGN.md §2 and
// docs/PERFORMANCE.md derive.
func runLatency(seed int64) error {
	tcfg, err := trapezoid.NewConfig(figures.Fig3Shape, figures.Fig3W)
	if err != nil {
		return err
	}
	base := latency.Config{
		N: figures.Fig3N, K: figures.Fig3K,
		Trapezoid: tcfg,
		BlockSize: 4096,
		Delay:     sim.FixedDelay(200 * time.Microsecond),
		Ops:       50,
		Seed:      seed,
	}
	for _, run := range []struct {
		title string
		mut   func(*latency.Config)
	}{
		{"sequential engine (concurrency=1)", func(c *latency.Config) { c.Concurrency = 1 }},
		{"parallel fan-out (default)", func(*latency.Config) {}},
	} {
		cfg := base
		run.mut(&cfg)
		rep, err := latency.Measure(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Printf("A7 — operation latency, %s (200µs per node op, (15,8), a=2 b=3 h=1, w=3)\n", run.title)
		fmt.Println(rep.Table())
	}
	return nil
}

func run(figID string, trials int, seed int64, csvDir string) error {
	all, err := figures.All(trials, seed)
	if err != nil {
		return err
	}
	matched := false
	for _, fig := range all {
		if figID != "all" && fig.ID != figID {
			continue
		}
		matched = true
		fmt.Println(fig.Table())
		if csvDir != "" {
			path := filepath.Join(csvDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", figID)
	}
	return nil
}
