package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	if err := run("fig5", 100, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("fig99", 100, 1, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig5", 100, 1, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "k,TRAP-FR,TRAP-ERC") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
}

func TestRunAllFigures(t *testing.T) {
	// Small trial count keeps the Monte-Carlo figures fast.
	if err := run("all", 200, 1, ""); err != nil {
		t.Fatal(err)
	}
}
