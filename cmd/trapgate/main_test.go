package main

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	gwclient "trapquorum/client/gateway"
	"trapquorum/internal/gateway"
)

// startDaemon runs the gateway daemon on a loopback port with a
// simulated fleet and returns its address, the stop channel and the
// exit channel. The caller owns shutdown.
func startDaemon(t *testing.T, cfg config) (addr string, srv *gateway.Server, stop chan struct{}, done chan error) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.sim == 0 && cfg.nodes == "" {
		cfg.sim = 10
	}
	if cfg.n == 0 {
		cfg.n, cfg.k = 5, 3
		cfg.a, cfg.b, cfg.h, cfg.w = 0, 3, 0, 2
		cfg.block = 1 << 10
	}
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 10 * time.Second
	}
	stop = make(chan struct{})
	done = make(chan error, 1)
	addrCh := make(chan net.Addr, 1)
	srvCh := make(chan *gateway.Server, 1)
	testHookServer = func(s *gateway.Server) { srvCh <- s }
	t.Cleanup(func() { testHookServer = nil })
	go func() { done <- run(cfg, stop, func(a net.Addr) { addrCh <- a }) }()
	select {
	case a := <-addrCh:
		return a.String(), <-srvCh, stop, done
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	panic("unreachable")
}

func TestDaemonServes(t *testing.T) {
	addr, _, stop, done := startDaemon(t, config{})
	t.Cleanup(func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	})
	ctx := context.Background()
	conn, err := gwclient.Dial(ctx, addr, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data := bytes.Repeat([]byte{7}, 3000)
	if err := conn.Put(ctx, "obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get = %d bytes, %v", len(got), err)
	}
	serving, summary, err := conn.Health(ctx)
	if err != nil || !serving {
		t.Fatalf("health = %v %q %v", serving, summary, err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	if err := run(config{}, nil, nil); err == nil {
		t.Fatal("no fleet flags: want error")
	}
	if err := run(config{sim: 4, nodes: "x:1"}, nil, nil); err == nil {
		t.Fatal("-sim with -nodes: want error")
	}
	if err := run(config{nodes: " , "}, nil, nil); err == nil {
		t.Fatal("empty -nodes: want error")
	}
}

// TestDaemonGracefulDrain is the daemon-level shutdown-under-load
// test: with mutations in flight against a deliberately slow fleet,
// stopping the daemon (what SIGTERM does) must let the in-flight
// requests finish, push a drain notice to watchers, refuse new dials,
// and then exit cleanly.
func TestDaemonGracefulDrain(t *testing.T) {
	addr, srv, stop, done := startDaemon(t, config{
		simDelay: 20 * time.Millisecond,
	})
	ctx := context.Background()

	watcher, err := gwclient.Dial(ctx, addr, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	events, err := watcher.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := gwclient.Dial(ctx, addr, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	// Load: puts crossing several slow stripes, still in flight when
	// the stop signal lands.
	base := srv.Stats().Requests
	payload := bytes.Repeat([]byte{0xee}, 6<<10)
	var wg sync.WaitGroup
	putErrs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []string{"a", "b", "c", "d"}[i]
			putErrs <- writer.Put(ctx, key, payload)
		}(i)
	}
	// Wait until the daemon has admitted all four puts, then stop it
	// while they are wedged in the slow quorum layer.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Requests < base+4 {
		if time.Now().After(deadline) {
			t.Fatal("puts never reached the workers")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)

	// The watcher hears the drain notice.
	select {
	case ev := <-events:
		if ev.Kind != gwclient.EventDrain {
			t.Fatalf("event = %+v, want drain", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no drain notice")
	}

	// Every in-flight put completed despite the shutdown.
	wg.Wait()
	close(putErrs)
	for err := range putErrs {
		if err != nil {
			t.Fatalf("in-flight put failed during drain: %v", err)
		}
	}

	// The daemon exits cleanly...
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit = %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}
	// ...and new dials are refused.
	if conn, err := gwclient.Dial(ctx, addr, "acme"); err == nil {
		conn.Close()
		t.Fatal("dial accepted after drain")
	}
}
