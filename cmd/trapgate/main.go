// Command trapgate runs the TRAP-ERC gateway daemon: one process that
// owns a quorum fleet (remote trapnode daemons, or an in-process
// simulated cluster for demos) and serves thousands of persistent
// client connections over the lightweight gateway protocol
// (internal/gwire, client/gateway).
//
// Clients bind to a tenant at hello time; every tenant gets an
// isolated namespace over the shared fleet, bounded by the default
// quota flags. The serve path is pooled and pipelined: requests from
// all connections share one bounded worker pool, and a connection
// exceeding its in-flight window — or a full pool queue — is pushed
// back immediately with an overloaded status rather than queueing
// without bound. Objects too large for one frame stream through the
// upload bracket (client/gateway PutReader/GetWriter): bytes flow
// stripe by stripe into the fleet, so neither the client nor the
// gateway ever holds more than one part of the object in memory.
//
//	trapgate -addr :7440 -nodes host1:7420,host2:7420,... -n 5 -k 3 -a 0 -b 3 -hh 0 -w 2
//	trapgate -addr :7440 -sim 10                       # demo: simulated fleet
//
// On SIGINT/SIGTERM the daemon drains: listeners close so new dials
// are refused, watchers receive a drain notice, in-flight requests
// run to completion (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trapquorum/internal/core"
	"trapquorum/internal/gateway"
	"trapquorum/internal/service"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
	"trapquorum/transport/tcp"
)

type config struct {
	addr  string
	nodes string
	sim   int

	n, k       int
	a, b, h, w int
	block      int

	workers  int
	queue    int
	inflight int

	maxObjects int64
	maxBytes   int64

	drainTimeout time.Duration
	simDelay     time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7440", "TCP address to listen on for gateway clients")
	flag.StringVar(&cfg.nodes, "nodes", "", "comma-separated trapnode addresses (the storage fleet)")
	flag.IntVar(&cfg.sim, "sim", 0, "run against this many simulated in-process nodes instead of -nodes")
	flag.IntVar(&cfg.n, "n", 5, "MDS code length n")
	flag.IntVar(&cfg.k, "k", 3, "MDS code dimension k")
	flag.IntVar(&cfg.a, "a", 0, "trapezoid slope a")
	flag.IntVar(&cfg.b, "b", 3, "trapezoid base b (level-0 width)")
	flag.IntVar(&cfg.h, "hh", 0, "trapezoid top level h (h+1 levels)")
	flag.IntVar(&cfg.w, "w", 2, "write quorum size")
	flag.IntVar(&cfg.block, "block", 64<<10, "erasure block size in bytes")
	flag.IntVar(&cfg.workers, "workers", 0, "shared worker pool size (0: gateway default)")
	flag.IntVar(&cfg.queue, "queue", 0, "worker queue depth (0: gateway default)")
	flag.IntVar(&cfg.inflight, "inflight", 0, "per-connection in-flight request window (0: gateway default)")
	flag.Int64Var(&cfg.maxObjects, "max-objects", 0, "default per-tenant object quota (0: unlimited)")
	flag.Int64Var(&cfg.maxBytes, "max-bytes", 0, "default per-tenant byte quota (0: unlimited)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.DurationVar(&cfg.simDelay, "sim-delay", 0, "per-operation latency of simulated nodes (with -sim)")
	flag.Parse()

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("trapgate: %v, draining", s)
		close(stop)
	}()

	if err := run(cfg, stop, nil); err != nil {
		log.Fatalf("trapgate: %v", err)
	}
}

// testHookServer, when non-nil, receives the gateway server right
// before it starts accepting — tests use it to watch Stats.
var testHookServer func(*gateway.Server)

// run builds the fleet + gateway stack and serves until stop closes
// or the listener fails. started, when non-nil, receives the bound
// address once the gateway is accepting connections.
func run(cfg config, stop <-chan struct{}, started func(net.Addr)) error {
	nodes, desc, cleanup, err := buildNodes(cfg)
	if err != nil {
		return err
	}
	defer cleanup()

	strat, err := placement.NewRing(len(nodes), 16)
	if err != nil {
		return err
	}
	fleet, err := service.NewFleet(nodes, service.Config{
		N: cfg.n, K: cfg.k,
		Shape: trapezoid.Shape{A: cfg.a, B: cfg.b, H: cfg.h}, W: cfg.w,
		BlockSize: cfg.block,
		Placement: strat,
	})
	if err != nil {
		return err
	}

	srv := gateway.NewServer(gateway.FleetTenants{
		Fleet: fleet,
		Quota: service.Quota{MaxObjects: cfg.maxObjects, MaxBytes: cfg.maxBytes},
	}, gateway.Config{
		Workers:     cfg.workers,
		QueueDepth:  cfg.queue,
		MaxInflight: cfg.inflight,
	})
	if testHookServer != nil {
		testHookServer(srv)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.Close()
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("trapgate: serving on %s (%s, (%d,%d) code, trapezoid %s w=%d)",
		ln.Addr(), desc, cfg.n, cfg.k, trapezoid.Shape{A: cfg.a, B: cfg.b, H: cfg.h}, cfg.w)
	if started != nil {
		started(ln.Addr())
	}

	select {
	case <-stop:
		dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("trapgate: drain timed out, closing: %v", err)
			srv.Close()
		}
		return <-serveErr
	case err := <-serveErr:
		srv.Close()
		return err
	}
}

// buildNodes resolves the fleet flags into transport clients: either
// dial-out clients for every -nodes address, or an in-process
// simulated cluster with -sim.
func buildNodes(cfg config) (nodes []core.NodeClient, desc string, cleanup func(), err error) {
	switch {
	case cfg.sim > 0 && cfg.nodes != "":
		return nil, "", nil, fmt.Errorf("-sim and -nodes are mutually exclusive")
	case cfg.sim > 0:
		opts := []sim.Option{}
		if cfg.simDelay > 0 {
			opts = append(opts, sim.WithDelay(sim.FixedDelay(cfg.simDelay)))
		}
		cluster, err := sim.NewCluster(cfg.sim, opts...)
		if err != nil {
			return nil, "", nil, err
		}
		nodes = make([]core.NodeClient, cluster.Size())
		for j := range nodes {
			nodes[j] = cluster.Node(j)
		}
		return nodes, fmt.Sprintf("%d simulated nodes", cfg.sim), cluster.Close, nil
	case cfg.nodes != "":
		addrs := strings.Split(cfg.nodes, ",")
		clients := make([]*tcp.NodeClient, 0, len(addrs))
		for _, a := range addrs {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			clients = append(clients, tcp.NewClient(a))
		}
		if len(clients) == 0 {
			return nil, "", nil, fmt.Errorf("-nodes lists no addresses")
		}
		nodes = make([]core.NodeClient, len(clients))
		for j, c := range clients {
			nodes[j] = c
		}
		cleanup = func() {
			for _, c := range clients {
				c.Close()
			}
		}
		return nodes, fmt.Sprintf("%d storage nodes", len(clients)), cleanup, nil
	default:
		return nil, "", nil, fmt.Errorf("either -nodes or -sim is required")
	}
}
