package main

import "testing"

func TestRunRepairedMode(t *testing.T) {
	if err := run(15, 8, 2, 3, 1, 3, 0.9, 200, 128, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSteadyMode(t *testing.T) {
	if err := run(15, 8, 2, 3, 1, 3, 0.9, 200, 128, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMismatchedTrapezoid(t *testing.T) {
	if err := run(15, 8, 2, 3, 2, 3, 0.9, 10, 128, 1, false); err == nil {
		t.Fatal("mismatched trapezoid accepted")
	}
}

func TestRunRejectsInvalidShape(t *testing.T) {
	if err := run(15, 8, 2, 0, 1, 3, 0.9, 10, 128, 1, false); err == nil {
		t.Fatal("b=0 accepted")
	}
}
