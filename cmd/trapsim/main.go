// Command trapsim runs Monte-Carlo availability estimation against the
// real protocol implementation on a simulated fail-stop cluster and
// prints the estimates next to the closed forms, including the
// operation mix the protocol served (direct vs decode reads — the
// empirical P1/P2 split).
//
// Usage:
//
//	trapsim -n 15 -k 8 -a 2 -b 3 -hh 1 -w 3 -p 0.9 -trials 5000 [-steady]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"trapquorum/internal/availability"
	"trapquorum/internal/montecarlo"
	"trapquorum/internal/trapezoid"
)

func main() {
	n := flag.Int("n", 15, "MDS code length n")
	k := flag.Int("k", 8, "MDS code dimension k")
	a := flag.Int("a", 2, "trapezoid slope a")
	b := flag.Int("b", 3, "trapezoid base b")
	h := flag.Int("hh", 1, "trapezoid top level h")
	w := flag.Int("w", 3, "write quorum size at levels 1..h")
	p := flag.Float64("p", 0.9, "node availability p")
	trials := flag.Int("trials", 5000, "trials per estimate")
	blockSize := flag.Int("blocksize", 4096, "block size in bytes")
	seed := flag.Int64("seed", 1, "random seed")
	steady := flag.Bool("steady", false, "steady-state write estimation (no inter-trial repair)")
	flag.Parse()

	if err := run(*n, *k, *a, *b, *h, *w, *p, *trials, *blockSize, *seed, *steady); err != nil {
		fmt.Fprintln(os.Stderr, "trapsim:", err)
		os.Exit(1)
	}
}

func run(n, k, a, b, h, w int, p float64, trials, blockSize int, seed int64, steady bool) error {
	shape := trapezoid.Shape{A: a, B: b, H: h}
	cfg, err := trapezoid.NewConfig(shape, w)
	if err != nil {
		return err
	}
	if got, want := shape.NbNodes(), n-k+1; got != want {
		return fmt.Errorf("trapezoid holds %d nodes, need n-k+1 = %d", got, want)
	}
	ctx := context.Background()
	pe, err := montecarlo.NewProtocolEstimator(ctx, n, k, cfg, blockSize, seed)
	if err != nil {
		return err
	}
	defer pe.Close()

	fmt.Printf("protocol Monte-Carlo: (n=%d,k=%d) trapezoid %s w=%d, p=%g, %d trials, %dB blocks\n",
		n, k, shape, w, p, trials, blockSize)

	read, err := pe.EstimateRead(ctx, p, trials, seed+10)
	if err != nil {
		return err
	}
	e := availability.ERCParams{Config: cfg, N: n, K: k}
	eq13, err := availability.ReadERC(e, p)
	if err != nil {
		return err
	}
	exact, err := availability.ReadERCExact(e, p)
	if err != nil {
		return err
	}
	lo, hi := read.ConfidenceInterval(1.96)
	fmt.Printf("read : measured %.4f  [%.4f, %.4f]95%%   eq13 %.4f   exact %.4f\n",
		read.Estimate(), lo, hi, eq13, exact)

	var write montecarlo.Result
	if steady {
		write, err = pe.EstimateWriteSteadyState(ctx, p, trials, seed+20)
	} else {
		write, err = pe.EstimateWrite(ctx, p, trials, seed+20)
	}
	if err != nil {
		return err
	}
	lo, hi = write.ConfidenceInterval(1.96)
	mode := "repaired"
	if steady {
		mode = "steady-state (no repair)"
	}
	fmt.Printf("write: measured %.4f  [%.4f, %.4f]95%%   eq8  %.4f   (%s)\n",
		write.Estimate(), lo, hi, availability.Write(cfg, p), mode)

	m := pe.System().Metrics()
	totalReads := m.DirectReads + m.DecodeReads
	if totalReads > 0 {
		fmt.Printf("read mix: %d direct (%.1f%%), %d decode (%.1f%%) — empirical P1/P2 split\n",
			m.DirectReads, 100*float64(m.DirectReads)/float64(totalReads),
			m.DecodeReads, 100*float64(m.DecodeReads)/float64(totalReads))
	}
	fmt.Printf("ops: %d writes ok, %d failed, %d rollbacks, %d repairs\n",
		m.Writes, m.FailedWrites, m.Rollbacks, m.Repairs)
	return nil
}
