package trapquorum

import (
	"context"

	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
)

// Store is the low-level, single-stripe API: an erasure-coded
// quorum-replicated block store over exactly n nodes, exposing the
// protocol's stripe and block operations directly. Most applications
// want ObjectStore (via Open) instead; Store is for callers managing
// stripes themselves and for protocol experiments. It is safe for
// concurrent use.
type Store struct {
	clusterHandle
	sys *core.System
}

// OpenStore validates the configuration, asks the backend for the n
// node clients and assembles the protocol on top. Close must be
// called when done. Placement and block-size options are object-store
// concerns and are ignored here.
func OpenStore(ctx context.Context, opts ...Option) (*Store, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	code, err := erasure.New(cfg.n, cfg.k, erasure.WithParallelism(cfg.codingParallel))
	if err != nil {
		return nil, err
	}
	tcfg, err := cfg.trapezoidConfig()
	if err != nil {
		return nil, err
	}
	nodes, err := cfg.backend.Open(ctx, cfg.n)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(code, tcfg, nodes, core.Options{
		DisableRollback: cfg.disableRollback,
		Concurrency:     cfg.concurrency,
		Hedge:           cfg.hedge,
		NodeGate:        nodeGate(cfg.backend),
	})
	if err != nil {
		cfg.backend.Close()
		return nil, err
	}
	store := &Store{clusterHandle: newClusterHandle(cfg, tcfg), sys: sys}
	if cfg.selfHeal != nil {
		heal, err := startSelfHeal(cfg, cfg.n, coreTarget{sys: sys})
		if err != nil {
			cfg.backend.Close()
			return nil, err
		}
		store.heal = heal
		// Route corruption observations into the health monitor: the
		// low-level store's placement is the identity, so stripe shard
		// j is cluster node j.
		mon := heal.mon
		sys.SetCorruptionHandler(func(shard int) { mon.ReportCorrupt(shard) })
	}
	return store, nil
}

// WriteObject stores a payload of arbitrary size under the given id,
// splitting it into the stripe's k data blocks. All N nodes must be up
// (initial placement is allocation, not a quorum operation).
func (s *Store) WriteObject(ctx context.Context, id uint64, payload []byte) error {
	return s.sys.WriteObject(ctx, id, payload)
}

// ReadObject reads a payload back through one quorum read per block.
func (s *Store) ReadObject(ctx context.Context, id uint64) ([]byte, error) {
	return s.sys.ReadObject(ctx, id)
}

// SeedStripe installs k explicit equally-sized data blocks as stripe
// id, for callers managing blocks directly.
func (s *Store) SeedStripe(ctx context.Context, id uint64, blocks [][]byte) error {
	return s.sys.SeedStripe(ctx, id, blocks)
}

// WriteBlock updates data block index (0 ≤ index < K) of a stripe via
// Algorithm 1: the quorum write with in-place parity deltas.
func (s *Store) WriteBlock(ctx context.Context, id uint64, index int, data []byte) error {
	return s.sys.WriteBlock(ctx, id, index, data)
}

// ReadBlock reads one data block via Algorithm 2 and reports the
// version served.
func (s *Store) ReadBlock(ctx context.Context, id uint64, index int) ([]byte, uint64, error) {
	return s.sys.ReadBlock(ctx, id, index)
}

// NodeCount returns N, the number of storage nodes.
func (s *Store) NodeCount() int { return s.n }

// RepairNode rebuilds every stripe shard assigned to node j from the
// surviving nodes (exact repair). It returns how many chunks were
// rebuilt.
func (s *Store) RepairNode(ctx context.Context, j int) (int, error) {
	return s.sys.RepairNode(ctx, j)
}

// RepairStripeShard rebuilds a single shard of a single stripe.
func (s *Store) RepairStripeShard(ctx context.Context, id uint64, shard int) error {
	return s.sys.RepairShard(ctx, id, shard)
}

// RepairStripe repairs every stale shard of a stripe, iterating to a
// fixpoint (stale parity needs fresh data shards and vice versa; see
// DESIGN.md's ordering discussion). It returns how many repair calls
// succeeded and which shards were left untouched because they are
// ahead of every rebuildable state.
func (s *Store) RepairStripe(ctx context.Context, id uint64) (repaired int, ahead []int, err error) {
	return s.sys.RepairStripe(ctx, id)
}

// ScrubStripe audits a stripe read-only: it reports the freshest
// consistent version vector, stale/ahead/unreachable shards, and
// byte-level parity mismatches (silent corruption). Pair with
// RepairStripe when it reports degradation.
func (s *Store) ScrubStripe(ctx context.Context, id uint64) (ScrubReport, error) {
	return s.sys.ScrubStripe(ctx, id)
}

// Metrics returns a snapshot of the store-level counters: the
// protocol counters, plus the self-heal counters when WithSelfHeal
// is enabled.
func (s *Store) Metrics() Metrics {
	m := metricsFromCore(s.sys.Metrics())
	s.heal.fold(&m)
	s.foldResilience(&m)
	return m
}
