package trapquorum

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"trapquorum/client"
	"trapquorum/internal/service"
	"trapquorum/internal/trapezoid"
)

// ErrMigrationActive rejects a Reconfigure towards a different target
// while another migration is still draining. Resume the active one
// (zero Reconfig) or AbortReconfigure first.
var ErrMigrationActive = service.ErrMigrationActive

// GrowableBackend is the optional Backend extension for online cluster
// growth on backends that can mint nodes themselves: Grow provisions
// count fresh, empty nodes and returns their clients, live
// immediately. SimBackend implements it; a reconfiguration adding
// nodes (Reconfig.AddNodes) requires it.
type GrowableBackend interface {
	// Grow provisions count fresh nodes after the current roster.
	Grow(ctx context.Context, count int) ([]client.NodeClient, error)
}

// AddrGrowableBackend is the optional Backend extension for online
// growth on address-based backends: GrowAddrs dials the given node
// daemons and appends them to the cluster. NetBackend implements it;
// a reconfiguration adding addressed nodes (Reconfig.AddNodeAddrs)
// requires it.
type AddrGrowableBackend interface {
	// GrowAddrs appends one node per address, in order.
	GrowAddrs(ctx context.Context, addrs []string) ([]client.NodeClient, error)
}

// Reconfig describes a live reconfiguration: a new erasure-code
// geometry (recode), a roster change (grow/shrink), or both. Zero
// geometry fields keep the current value, so Reconfig{AddNodes: 3}
// grows without recoding and Reconfig{N: 15, K: 8, TrapezoidA: 2,
// TrapezoidB: 3, TrapezoidH: 1, W: 3} recodes in place. The zero
// Reconfig resumes an interrupted reconfiguration (and is a no-op on a
// converged fleet).
type Reconfig struct {
	// N, K are the target erasure-code parameters (0 = keep current).
	N, K int
	// TrapezoidA/B/H parameterise the target trapezoid shape (all
	// zero = keep current). The shape must hold N-K+1 nodes.
	TrapezoidA, TrapezoidB, TrapezoidH int
	// W is the target write-quorum depth (0 = keep current).
	W int
	// AddNodes provisions this many fresh nodes from the backend
	// (GrowableBackend — the simulator) and adds them to the target
	// roster.
	AddNodes int
	// AddNodeAddrs dials these node daemons (AddrGrowableBackend —
	// NetBackend) and adds them to the target roster. Mutually
	// exclusive with AddNodes.
	AddNodeAddrs []string
	// RemoveNodes drops these cluster node ids from the target roster.
	// The nodes stay provisioned (their ids are not reused) but serve
	// no stripes once the migration completes.
	RemoveNodes []int
}

// MigrationReport is the reconfiguration half of Health(): the fleet's
// placement epochs and, while a migration drains, its progress.
type MigrationReport struct {
	// Active reports whether a migration is draining.
	Active bool
	// Epoch is the placement epoch new objects are placed in; Retired
	// is the highest epoch fenced off at the nodes. Epoch == Retired+1
	// means the fleet is fully converged.
	Epoch, Retired uint64
	// From and To are the source and target epochs of the active
	// migration (zero when idle).
	From, To uint64
	// TargetN, TargetK are the geometry being migrated to.
	TargetN, TargetK int
	// DoneObjects and PendingObjects count the drain's progress;
	// TotalObjects is their sum; Failures counts object moves that
	// errored and were re-queued.
	DoneObjects, PendingObjects, TotalObjects, Failures int
	// MovedBytes is the logical object bytes re-placed so far.
	MovedBytes int64
}

func migrationReport(st service.MigrationStatus) MigrationReport {
	return MigrationReport{
		Active: st.Active, Epoch: st.Epoch, Retired: st.Retired,
		From: st.From, To: st.To, TargetN: st.TargetN, TargetK: st.TargetK,
		DoneObjects: st.DoneObjects, PendingObjects: st.PendingObjects,
		TotalObjects: st.TotalObjects, Failures: st.Failures,
		MovedBytes: st.MovedBytes,
	}
}

// Reconfigure performs a live reconfiguration — grow, shrink, recode,
// or any combination — and drives the data migration to completion:
// when it returns nil, every object lives on the new placement under
// the new code, the old placement epochs are fenced at the nodes, and
// the fleet is fully converged. The store stays fully available
// throughout: reads and writes overlap the old and new quorums until
// each object cuts over, and no acked write is ever lost.
//
// If the context dies mid-migration the fleet is left safe but mixed —
// every object serves from whichever epoch it is in — and the
// migration resumes on its own when self-healing is enabled
// (WithSelfHeal runs a background migration pump), or by calling
// Reconfigure again with a zero Reconfig (same target, no new nodes).
//
// Concurrent reconfigurations towards different targets are refused
// with an ErrMigrationActive wrap.
func (s *ObjectStore) Reconfigure(ctx context.Context, rc Reconfig) error {
	f := s.svc.Fleet()
	if rc.AddNodes < 0 {
		return fmt.Errorf("trapquorum: Reconfigure: negative AddNodes %d", rc.AddNodes)
	}
	if rc.AddNodes > 0 && len(rc.AddNodeAddrs) > 0 {
		return errors.New("trapquorum: Reconfigure: AddNodes and AddNodeAddrs are mutually exclusive")
	}

	active := f.ActiveNodes()
	if rc.AddNodes > 0 || len(rc.AddNodeAddrs) > 0 {
		var clients []client.NodeClient
		var err error
		if rc.AddNodes > 0 {
			g, ok := s.backend.(GrowableBackend)
			if !ok {
				return fmt.Errorf("%w: AddNodes needs a backend implementing GrowableBackend; %T is not one",
					ErrNotSupported, s.backend)
			}
			clients, err = g.Grow(ctx, rc.AddNodes)
		} else {
			g, ok := s.backend.(AddrGrowableBackend)
			if !ok {
				return fmt.Errorf("%w: AddNodeAddrs needs a backend implementing AddrGrowableBackend; %T is not one",
					ErrNotSupported, s.backend)
			}
			clients, err = g.GrowAddrs(ctx, rc.AddNodeAddrs)
		}
		if err != nil {
			return err
		}
		first, err := f.AddNodeClients(clients...)
		if err != nil {
			return err
		}
		for i := range clients {
			active = append(active, first+i)
		}
	}
	if len(rc.RemoveNodes) > 0 {
		rm := make(map[int]bool, len(rc.RemoveNodes))
		for _, id := range rc.RemoveNodes {
			rm[id] = true
		}
		kept := active[:0]
		for _, id := range active {
			if !rm[id] {
				kept = append(kept, id)
				continue
			}
			delete(rm, id)
		}
		active = kept
		if len(rm) > 0 {
			stray := make([]int, 0, len(rm))
			for id := range rm {
				stray = append(stray, id)
			}
			sort.Ints(stray)
			return fmt.Errorf("trapquorum: Reconfigure: RemoveNodes %v not in the active roster", stray)
		}
	}
	sort.Ints(active)

	spec := service.ReconfigSpec{N: rc.N, K: rc.K, W: rc.W, Active: active}
	if rc.TrapezoidA != 0 || rc.TrapezoidB != 0 || rc.TrapezoidH != 0 {
		spec.Shape = trapezoid.Shape{A: rc.TrapezoidA, B: rc.TrapezoidB, H: rc.TrapezoidH}
	}
	return f.Reconfigure(ctx, spec)
}

// AbortReconfigure stops an active migration, leaving the fleet in
// the mixed-epoch state it reached: every object keeps serving from
// whichever epoch it is in, nothing is fenced, and Reconfigure with a
// zero Reconfig resumes the drain later. A no-op when no migration is
// active. Note that with WithSelfHeal the background migration pump
// resumes the drain on its own — abort is for stores driving their
// migrations manually.
func (s *ObjectStore) AbortReconfigure() { s.svc.Fleet().AbortReconfigure() }

// Epoch returns the placement epoch new objects are placed in. It
// starts at 1 and advances by one per reconfiguration.
func (s *ObjectStore) Epoch() uint64 { return s.svc.Fleet().Epoch() }

// ActiveNodes returns the cluster node ids serving the current
// placement epoch (after a shrink, removed nodes keep their ids but
// are absent here).
func (s *ObjectStore) ActiveNodes() []int { return s.svc.Fleet().ActiveNodes() }

// CodeParams returns the current epoch's (n, k) — after a recode, the
// target geometry, shadowing the Open-time value the availability
// analytics keep using.
func (s *ObjectStore) CodeParams() (n, k int) { return s.svc.Fleet().CodeParams() }

// Health returns the self-healing snapshot extended with the
// reconfiguration state: the placement epochs and, while a migration
// drains, its progress. The migration report is populated with or
// without WithSelfHeal.
func (s *ObjectStore) Health() HealthReport {
	r := s.clusterHandle.Health()
	r.Migration = migrationReport(s.svc.Fleet().Migration())
	return r
}
