// Package client defines the transport contract between the TRAP-ERC
// quorum protocol and the storage nodes it runs on: the chunk naming
// and version-vector model, the sentinel errors a node may return, and
// the NodeClient interface every backend must implement.
//
// The protocol core is written entirely against NodeClient, so a
// backend is free to put anything behind it. This repository ships
// two: the in-process simulated cluster (internal/sim) and the TCP
// node client (transport/tcp) that talks to cmd/trapnode daemons.
// Both run the same node-side state machine — internal/nodeengine
// implements the chunk table, version vectors and atomic conditional
// operations once, over pluggable chunk stores (in-memory, on-disk) —
// so "implementing a backend" means carrying these operations to an
// engine, not re-implementing their semantics.
//
// # Fault injection
//
// Crash/restart/wipe fault injection is an optional backend extension
// (trapquorum.FaultInjector), implemented by the simulator. Backends
// without it — a network backend cannot crash a remote machine — make
// the store-level CrashNode/RestartNode/AliveNodes/WipeNode calls
// fail with an error wrapping trapquorum.ErrNotSupported; a node that
// is genuinely down simply answers every operation with ErrNodeDown
// (an unreachable node and a fail-stopped node are indistinguishable
// on the wire, which is exactly the protocol's fail-stop model).
//
// # Concurrency and cancellation
//
// The protocol's dispatch engine issues many RPCs against one node
// concurrently — every node operation of a quorum read or write is in
// flight at once, and hedged reads can put two identical RPCs on the
// wire. A NodeClient therefore must be safe for concurrent use, and
// the conditional operations (CompareAndPut, CompareAndAdd,
// PutChunkIfFresher) must make their version check atomic with the
// data mutation; the protocol's consistency argument depends on that
// per-node atomicity.
//
// Every method takes a context.Context, and the engine leans on two
// cancellation guarantees:
//
//   - Promptness: a backend must give up quickly when the context is
//     cancelled or its deadline expires, returning the context's error
//     (possibly wrapped). First-k reads cancel straggler RPCs and then
//     wait for them to settle, so a backend that ignores cancellation
//     re-introduces the straggler latency the engine exists to remove.
//   - All-or-nothing reporting: an operation that fails with a context
//     error must have left the node state unchanged. An operation that
//     was cancelled *after* taking effect must report its real outcome
//     (success or a non-context error), like an RPC already on the
//     wire. The write path's rollback decides what to undo from
//     exactly this distinction.
//
// The in-process simulator meets the all-or-nothing rule exactly. A
// networked backend cannot: once a request has reached the wire, a
// cancellation races the node's apply, and the client must report the
// context error without knowing whether the mutation landed. The
// protocol absorbs this the same way it absorbs a crash between a
// write's sub-operations — the rollback may skip an applied update,
// leaving residue that version vectors classify as stale-or-ahead and
// that RepairStripe/Scrub reconcile. Deployments that cancel writes
// mid-flight should scrub, exactly as they should after client
// crashes.
//
// Hedging only ever duplicates read-only RPCs (ReadChunk,
// ReadVersions), so a backend needs no idempotency beyond what the
// interface already states.
//
// # Buffer ownership
//
// Request buffers (the data of PutChunk/CompareAndPut/
// PutChunkIfFresher, the delta of CompareAndAdd) are only valid for
// the duration of the call: the protocol core runs its data plane
// over pooled buffers and recycles them once the RPC has settled, so
// a backend must copy what it needs before returning and must never
// retain a reference past the call. Symmetrically, a Chunk returned
// by ReadChunk is owned by the caller — the backend must not alias it
// to state it might mutate later. (DESIGN.md "Buffer ownership" has
// the full data-plane rules.)
//
// # Version semantics
//
// The version model the protocol relies on:
//
//   - A data chunk (shard < k) carries exactly one version, that of
//     the data block it stores.
//   - A parity chunk (shard ≥ k) carries k versions — entry i says
//     which version of data block i is folded into the parity bytes.
//
// See the NodeClient method comments for the per-operation contract.
package client
