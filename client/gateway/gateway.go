// Package gateway is the dial-in client of the gateway tier: a thin,
// pipelined connection to a trapgate process (see cmd/trapgate),
// speaking the object-level gateway protocol. Where the root
// trapquorum package embeds the whole protocol engine — erasure
// coding, placement, quorum I/O against every storage node — this
// client holds exactly one TCP connection and lets the gateway do the
// rest, which is what thin clients (containers, functions, sidecars)
// want: thousands of them can share one fleet through a handful of
// gateways.
//
// A Conn is safe for concurrent use: calls from any number of
// goroutines are pipelined onto the single connection and matched to
// their responses by sequence number, so one slow operation does not
// serialise the rest.
//
//	conn, err := gateway.Dial(ctx, "gate-1:9040", "tenant-a")
//	if err != nil { ... }
//	defer conn.Close()
//	err  = conn.Put(ctx, "vm.img", image)
//	data, err := conn.Get(ctx, "vm.img")
//
// Errors returned by the remote side satisfy errors.Is against the
// public taxonomy (trapquorum.ErrUnknownKey, trapquorum.ErrOverloaded,
// trapquorum.ErrQuotaExceeded, ErrDraining, ...): the wire protocol
// carries the sentinel classification in both directions.
//
// Watch subscribes to the tenant's object-change feed; events are
// delivered best-effort (a consumer that stops reading drops events
// rather than stalling the connection's reader).
package gateway

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"trapquorum/client"
	"trapquorum/internal/gwire"
)

// ErrDraining reports a request refused because the gateway is
// shutting down gracefully: reconnect to another gateway. Test with
// errors.Is.
var ErrDraining = gwire.ErrDraining

// ErrClosed reports an operation on a connection that is closed —
// locally via Close, or remotely (the gateway went away). Test with
// errors.Is.
var ErrClosed = errors.New("gateway: connection closed")

// EventKind classifies a Watch notification.
type EventKind uint8

// Watch event kinds. EventDrain is the gateway's goodbye: the event
// channel is closed right after delivering it.
const (
	EventPut EventKind = iota + 1
	EventWrite
	EventDelete
	EventDrain
)

// String names the event kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EventPut:
		return "put"
	case EventWrite:
		return "write"
	case EventDelete:
		return "delete"
	case EventDrain:
		return "drain"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one object-change notification from a Watch subscription.
type Event struct {
	// Kind says how the object changed; EventDrain carries no key.
	Kind EventKind
	// Key is the changed object's key.
	Key string
}

// Conn is one pipelined client connection to a gateway, bound to a
// tenant namespace by the dial-time handshake.
type Conn struct {
	nc net.Conn

	// wmu serialises request writes (and guards scratch).
	wmu     sync.Mutex
	scratch []byte

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan response
	watch   chan Event
	err     error // sticky transport error, set once the reader exits

	done chan struct{}

	maxFrame int
}

// response is one answer routed to its waiting caller; data is copied
// out of the read buffer.
type response struct {
	status gwire.Status
	flag   bool
	detail string
	data   []byte
}

// Dial connects to a gateway and binds the connection to the tenant
// namespace. The context governs dialing and the handshake only.
func Dial(ctx context.Context, addr, tenant string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(ctx, nc, tenant)
}

// NewConn runs the tenant handshake over an already-established
// connection — any net.Conn works, which is how tests and custom
// transports (TLS, in-memory pipes) plug in. The Conn owns nc from
// here on, including on handshake error.
func NewConn(ctx context.Context, nc net.Conn, tenant string) (*Conn, error) {
	c := &Conn{
		nc:       nc,
		pending:  make(map[uint64]chan response),
		done:     make(chan struct{}),
		maxFrame: gwire.DefaultMaxFrame,
	}
	go c.readLoop()
	resp, err := c.call(ctx, &gwire.Request{Op: gwire.OpHello, Key: []byte(tenant)})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("gateway: hello: %w", err)
	}
	if err := resp.status.Err(resp.detail); err != nil {
		c.Close()
		return nil, fmt.Errorf("gateway: hello: %w", err)
	}
	return c, nil
}

// Close tears the connection down; in-flight calls fail with
// ErrClosed. Closing twice is a no-op.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// fail marks the connection dead, fails every in-flight call and
// closes the watch feed.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = nil
	watch := c.watch
	c.watch = nil
	close(c.done)
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
	if watch != nil {
		close(watch)
	}
}

// readLoop demultiplexes the connection: answers go to their waiting
// callers by sequence number, events go to the watch feed.
func (c *Conn) readLoop() {
	var buf []byte
	for {
		payload, err := gwire.ReadFrame(c.nc, buf, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		buf = payload[:0]
		resp, err := gwire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		if resp.Status == gwire.StatusEvent {
			c.deliverEvent(&resp)
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ch == nil {
			// The caller gave up (context expired); drop the late
			// answer.
			continue
		}
		ch <- response{
			status: resp.Status,
			flag:   resp.Flag,
			detail: resp.Detail,
			data:   append([]byte(nil), resp.Data...),
		}
	}
}

// deliverEvent routes one StatusEvent frame to the watch feed,
// best-effort.
func (c *Conn) deliverEvent(resp *gwire.Response) {
	ev, err := gwire.DecodeEvent(resp.Data)
	if err != nil {
		return
	}
	out := Event{Kind: EventKind(ev.Kind), Key: string(ev.Key)}
	c.mu.Lock()
	watch := c.watch
	if out.Kind == EventDrain {
		// The gateway is saying goodbye: deliver, then end the feed.
		c.watch = nil
	}
	c.mu.Unlock()
	if watch == nil {
		return
	}
	select {
	case watch <- out:
	default:
		// Slow consumer: drop rather than stall the demultiplexer.
	}
	if out.Kind == EventDrain {
		close(watch)
	}
}

// call sends one request and waits for its answer, the context, or
// connection death. Requests the wire cannot carry faithfully are
// refused locally with trapquorum.ErrBadRequest: an over-long key
// would be silently truncated by the codec (colliding with a shorter
// key), and an over-size frame would make the gateway drop the whole
// session — failing every pipelined call — instead of just this one.
func (c *Conn) call(ctx context.Context, req *gwire.Request) (response, error) {
	if len(req.Key) > gwire.MaxKeyLen {
		return response{}, fmt.Errorf("%w: key length %d exceeds the wire limit %d",
			client.ErrBadRequest, len(req.Key), gwire.MaxKeyLen)
	}
	if n := gwire.EncodedRequestSize(req); n > c.maxFrame {
		return response{}, fmt.Errorf("%w: encoded request (%d bytes) exceeds the frame limit %d",
			client.ErrBadRequest, n, c.maxFrame)
	}
	req.Seq = c.seq.Add(1)
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return response{}, err
	}
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.scratch = append(c.scratch[:0], 0, 0, 0, 0)
	c.scratch = gwire.AppendRequest(c.scratch, req)
	n := len(c.scratch) - 4
	c.scratch[0], c.scratch[1], c.scratch[2], c.scratch[3] =
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	_, err := c.nc.Write(c.scratch)
	c.wmu.Unlock()
	if err != nil {
		c.unregister(req.Seq)
		c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return response{}, c.stickyErr()
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, c.stickyErr()
		}
		return resp, nil
	case <-ctx.Done():
		c.unregister(req.Seq)
		return response{}, ctx.Err()
	case <-c.done:
		return response{}, c.stickyErr()
	}
}

func (c *Conn) unregister(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

func (c *Conn) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

// do runs one request and maps the response status through the error
// taxonomy.
func (c *Conn) do(ctx context.Context, req *gwire.Request) (response, error) {
	resp, err := c.call(ctx, req)
	if err != nil {
		return response{}, err
	}
	if err := resp.status.Err(resp.detail); err != nil {
		return response{}, err
	}
	return resp, nil
}

// Put stores data under key in the tenant's namespace. The key must
// not exist (trapquorum.ErrExists otherwise); a quota the object
// would overflow fails with trapquorum.ErrQuotaExceeded.
func (c *Conn) Put(ctx context.Context, key string, data []byte) error {
	_, err := c.do(ctx, &gwire.Request{Op: gwire.OpPut, Key: []byte(key), Data: data})
	return err
}

// streamChunkSize is the slice a streamed object travels in — one
// part frame per chunk on upload, one ranged read per chunk on
// download. 1 MiB keeps frames far under the wire limit while
// amortising the per-request round trip; it is also the peak client
// memory either streaming direction holds.
const streamChunkSize = 1 << 20

// PutReader stores size bytes streamed from r under key — the
// streaming form of Put for objects too large to hold in memory (or
// too large for one request frame). The object travels as a bracketed
// upload (start, ordered parts, finish) and stays invisible until the
// finish is acknowledged; a reader error, short read, or backend
// failure aborts the upload and the gateway unwinds every stripe
// already placed — no partial object is ever visible, and the key
// stays free for a retry. Peak memory is one part either side of the
// connection. Only one streaming upload may be in flight per Conn at
// a time (the gateway refuses a second start on the same connection).
func (c *Conn) PutReader(ctx context.Context, key string, r io.Reader, size int) error {
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", client.ErrBadRequest, size)
	}
	if _, err := c.do(ctx, &gwire.Request{Op: gwire.OpPutStart, Key: []byte(key), Length: int64(size)}); err != nil {
		return err
	}
	buf := make([]byte, streamChunkSize)
	var off int64
	for off < int64(size) {
		n := int64(len(buf))
		if rem := int64(size) - off; n > rem {
			n = rem
		}
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			c.abortUpload()
			return fmt.Errorf("gateway: reading object %q at byte %d of %d: %w", key, off, size, err)
		}
		if _, err := c.do(ctx, &gwire.Request{Op: gwire.OpPutPart, Offset: off, Data: buf[:n]}); err != nil {
			c.abortUpload()
			return err
		}
		off += n
	}
	_, err := c.do(ctx, &gwire.Request{Op: gwire.OpPutFinish})
	return err
}

// abortUpload tells the gateway to unwind the in-flight upload, best
// effort on a detached context: the caller's context may be the very
// thing that failed, and a dead connection unblocks the call anyway.
func (c *Conn) abortUpload() {
	_, _ = c.do(context.Background(), &gwire.Request{Op: gwire.OpPutAbort})
}

// GetWriter streams the object to w as a sequence of bounded ranged
// reads — the streaming form of Get for objects too large to hold in
// memory. It returns the bytes written; on error the count reports how
// much of the object reached w. Like the embedded store's GetWriter,
// the stream is read chunk by chunk, not as a point-in-time snapshot:
// a concurrent WriteAt may land between chunks.
func (c *Conn) GetWriter(ctx context.Context, key string, w io.Writer) (int64, error) {
	size, err := c.Size(ctx, key)
	if err != nil {
		return 0, err
	}
	var written int64
	for off := 0; off < size; {
		n := streamChunkSize
		if rem := size - off; n > rem {
			n = rem
		}
		chunk, err := c.ReadAt(ctx, key, off, n)
		if err != nil {
			return written, err
		}
		m, werr := w.Write(chunk)
		written += int64(m)
		if werr != nil {
			return written, fmt.Errorf("gateway: writing object %q: %w", key, werr)
		}
		off += n
	}
	return written, nil
}

// Size reports the object's byte size.
func (c *Conn) Size(ctx context.Context, key string) (int, error) {
	resp, err := c.do(ctx, &gwire.Request{Op: gwire.OpStat, Key: []byte(key)})
	if err != nil {
		return 0, err
	}
	if len(resp.data) != 8 {
		return 0, fmt.Errorf("%w: stat answer of %d bytes", gwire.ErrMalformed, len(resp.data))
	}
	return int(binary.BigEndian.Uint64(resp.data)), nil
}

// Get reads the whole object.
func (c *Conn) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, &gwire.Request{Op: gwire.OpGet, Key: []byte(key)})
	if err != nil {
		return nil, err
	}
	return resp.data, nil
}

// ReadAt reads length bytes at the given offset.
func (c *Conn) ReadAt(ctx context.Context, key string, offset, length int) ([]byte, error) {
	resp, err := c.do(ctx, &gwire.Request{
		Op: gwire.OpReadAt, Key: []byte(key),
		Offset: int64(offset), Length: int64(length),
	})
	if err != nil {
		return nil, err
	}
	return resp.data, nil
}

// WriteAt overwrites bytes [offset, offset+len(p)) of the object in
// place; it cannot extend the object (trapquorum.ErrBadRange).
func (c *Conn) WriteAt(ctx context.Context, key string, offset int, p []byte) error {
	_, err := c.do(ctx, &gwire.Request{
		Op: gwire.OpWriteAt, Key: []byte(key),
		Offset: int64(offset), Data: p,
	})
	return err
}

// Delete removes the object.
func (c *Conn) Delete(ctx context.Context, key string) error {
	_, err := c.do(ctx, &gwire.Request{Op: gwire.OpDelete, Key: []byte(key)})
	return err
}

// Scrub audits the object's stripes read-only and returns the
// gateway's one-line report.
func (c *Conn) Scrub(ctx context.Context, key string) (string, error) {
	resp, err := c.do(ctx, &gwire.Request{Op: gwire.OpScrub, Key: []byte(key)})
	if err != nil {
		return "", err
	}
	return string(resp.data), nil
}

// Health probes the gateway: serving is false once the gateway is
// draining; summary is its one-line stats report.
func (c *Conn) Health(ctx context.Context) (serving bool, summary string, err error) {
	resp, err := c.do(ctx, &gwire.Request{Op: gwire.OpHealth})
	if err != nil {
		return false, "", err
	}
	return resp.flag, string(resp.data), nil
}

// Watch subscribes to the tenant's object-change feed. The returned
// channel carries events until the connection closes or the gateway
// drains (an EventDrain is delivered, then the channel is closed).
// Delivery is best-effort: events are dropped when the consumer lags.
// A second Watch on the same Conn returns the same feed.
func (c *Conn) Watch(ctx context.Context) (<-chan Event, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.watch != nil {
		ch := c.watch
		c.mu.Unlock()
		return ch, nil
	}
	// Create the feed before the request is acknowledged so no event
	// between the gateway's registration and our bookkeeping is lost.
	ch := make(chan Event, 64)
	c.watch = ch
	c.mu.Unlock()
	if _, err := c.do(ctx, &gwire.Request{Op: gwire.OpWatch}); err != nil {
		c.mu.Lock()
		if c.watch == ch {
			c.watch = nil
		}
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}
