package client

import (
	"context"
	"errors"
)

// ErrEpochStale rejects an operation tagged with a placement epoch the
// node has already retired: the cluster reconfigured past it and the
// issuing coordinator must refresh its placement map before retrying.
// Nodes never retire an epoch before every object has migrated off it,
// so a client seeing this error is provably behind — not racing — the
// reconfiguration.
var ErrEpochStale = errors.New("placement epoch stale")

// epochKey carries the placement epoch tag through a context.
type epochKey struct{}

// WithEpoch returns a context whose node RPCs are stamped with the
// given placement epoch. Epoch 0 means untagged: nodes accept the
// operation regardless of reconfiguration state (the behaviour of
// every pre-epoch client).
func WithEpoch(ctx context.Context, epoch uint64) context.Context {
	return context.WithValue(ctx, epochKey{}, epoch)
}

// EpochFromContext extracts the placement epoch stamped by WithEpoch,
// or 0 when the context is untagged.
func EpochFromContext(ctx context.Context) uint64 {
	e, _ := ctx.Value(epochKey{}).(uint64)
	return e
}

// EpochSetter is the optional node capability behind online
// reconfiguration: nodes implementing it persist the cluster's epoch
// state durably and enforce the stale-epoch guard on tagged
// operations. Coordinators type-assert for it and degrade gracefully
// (no fencing) on nodes that do not implement it.
//
// The state is a pair of watermarks plus an opaque blob:
//
//   - installed — the highest epoch the node has been told about.
//     Installing is monotone; SetEpoch with a lower installed value
//     only updates the retired watermark.
//   - retired — the highest epoch whose operations the node must
//     reject with ErrEpochStale. Always < installed once set. An
//     operation tagged e is rejected iff 0 < e <= retired, so
//     old-epoch traffic keeps working during a migration and is
//     fenced only after cutover completes.
//   - blob — coordinator-defined payload (the serialized placement
//     map) stored alongside, returned verbatim by EpochState.
type EpochSetter interface {
	// SetEpoch durably records the epoch watermarks and blob.
	SetEpoch(ctx context.Context, installed, retired uint64, blob []byte) error
	// EpochState reads back the persisted epoch watermarks and blob.
	// A node that has never seen SetEpoch reports (0, 0, nil, nil).
	EpochState(ctx context.Context) (installed, retired uint64, blob []byte, err error)
}
