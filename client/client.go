package client

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Transport-level errors. Backends must return these (or errors
// wrapping them, testable with errors.Is) so the protocol can
// distinguish a fail-stopped node from a version conflict.
var (
	// ErrNodeDown reports a node that is fail-stopped or unreachable.
	ErrNodeDown = errors.New("client: node is down")
	// ErrNotFound reports a chunk the node does not store.
	ErrNotFound = errors.New("client: chunk not found")
	// ErrVersionMismatch is the failed conditional of CompareAndPut,
	// CompareAndAdd and PutChunkIfFresher: the stored version did not
	// match, and the chunk was left untouched.
	ErrVersionMismatch = errors.New("client: version mismatch")
	// ErrBadRequest reports a malformed request (bad slot index,
	// size-mismatched delta, empty version vector).
	ErrBadRequest = errors.New("client: malformed request")
	// ErrOverloaded is explicit backpressure: the serving side refused
	// to queue the request because its bounded queues (worker pool,
	// per-connection in-flight window) are full. The request was not
	// executed; retry after backing off. Both wire codecs carry it as
	// a dedicated status so pushback survives the network.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrQuotaExceeded reports a mutation that would push a tenant's
	// namespace past its configured object-count or byte quota. The
	// mutation was not applied; free space (Delete) or raise the
	// quota. Both wire codecs carry it as a dedicated status.
	ErrQuotaExceeded = errors.New("client: tenant quota exceeded")
	// ErrCorrupt reports content that fails checksum verification:
	// a node returns it when a stored chunk no longer matches its own
	// integrity metadata (bit-rot, truncation), and the read path
	// returns it when no uncorrupted decode of a block exists. Both
	// wire codecs carry it as a dedicated status.
	ErrCorrupt = errors.New("client: data corrupt")
)

// ChunkID names one shard of one stripe: Shard is the position within
// the stripe (0..n-1; positions < k hold original data blocks,
// positions ≥ k hold parity).
type ChunkID struct {
	// Stripe is the stripe the shard belongs to.
	Stripe uint64
	// Shard is the position within the stripe, 0..n-1.
	Shard int
}

// String renders the id as "stripe/shard".
func (id ChunkID) String() string { return fmt.Sprintf("%d/%d", id.Stripe, id.Shard) }

// NoVersion marks an absent or invalid version, mirroring the
// "version ← −1" sentinel of the paper's Algorithm 2.
const NoVersion = ^uint64(0)

// BlockSum is one entry of a cross-checksum record: the writer-side
// hash of one data block's content at one version. Nodes store the
// record as separate metadata next to a chunk — a data chunk carries
// one entry (its own block), a parity chunk carries k entries (one per
// data block folded into it) — and readers verify retrieved content
// against a majority of the records held by *other* nodes, which is
// what lets them reject a corrupt or lying shard before decoding. A
// zero Version marks an absent entry (no opinion).
type BlockSum struct {
	// Version is the data-block version the hash was computed at.
	Version uint64
	// Sum is the 64-bit content hash of the block at that version.
	Sum uint64
}

// Chunk is one stored shard plus its version bookkeeping (see the
// package comment for the data/parity version-vector model).
type Chunk struct {
	// Data is the shard's byte content.
	Data []byte
	// Versions is the shard's version vector: one entry for a data
	// chunk, k entries for a parity chunk.
	Versions []uint64
	// Sums is the chunk's cross-checksum record, parallel to Versions
	// (one entry per version slot); empty on backends predating
	// verified reads. Entries with Version 0 carry no opinion.
	Sums []BlockSum
}

// Clone deep-copies the chunk so backend-owned buffers never escape.
func (c Chunk) Clone() Chunk {
	return Chunk{
		Data:     append([]byte(nil), c.Data...),
		Versions: append([]uint64(nil), c.Versions...),
		Sums:     append([]BlockSum(nil), c.Sums...),
	}
}

// BreakerState is the circuit-breaker state of one node link, for
// transports that run a per-node breaker (see transport/tcp).
type BreakerState uint8

const (
	// BreakerClosed: the link is healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the link tripped; requests fast-fail without
	// touching the network until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; a limited number of
	// probe requests are admitted to test the node.
	BreakerHalfOpen
)

// String names the state for logs and dashboards.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", uint8(s))
	}
}

// LinkHealth is the client-observed health of one node link: breaker
// state, smoothed latency, and the resilience counters that explain
// why the breaker is where it is. Transports without a resilience
// layer report the zero value (closed breaker, no samples).
type LinkHealth struct {
	// Node is the cluster node index.
	Node int
	// Addr is the node's dial address ("" for in-process backends).
	Addr string
	// Breaker is the link's circuit-breaker state.
	Breaker BreakerState
	// EWMA is the exponentially weighted moving average of successful
	// round-trip latency on the link; 0 until the first sample.
	EWMA time.Duration
	// BreakerOpens counts closed→open transitions.
	BreakerOpens int64
	// FastFails counts requests rejected locally by an open breaker.
	FastFails int64
	// Retries counts transport-level retries spent on the link.
	Retries int64
}

// ResilienceStats aggregates a backend's resilience counters across
// all node links.
type ResilienceStats struct {
	// Enabled reports whether a resilience policy is active.
	Enabled bool
	// BreakerOpens counts closed→open transitions across all links.
	BreakerOpens int64
	// BreakerFastFails counts requests rejected by open breakers.
	BreakerFastFails int64
	// TransportRetries counts budgeted transport retries.
	TransportRetries int64
	// RetryBudgetSpent counts tokens withdrawn from the retry budget.
	RetryBudgetSpent int64
	// RetryBudgetDenied counts retries refused because the budget was
	// exhausted.
	RetryBudgetDenied int64
}

// NodeClient is the per-node RPC surface the protocol uses. The
// in-process simulator's *sim.Node and the TCP transport's
// *tcp.NodeClient implement it; external backends implement it over
// their own transport. All methods must be safe for concurrent use
// and must honour context cancellation.
// The mutation methods accept optional cross-checksum entries as a
// trailing variadic parameter so existing integrations keep compiling:
// zero entries means "no checksum opinion" (the node keeps whatever
// record it holds), the conditional single-slot operations take at most
// one entry (for the slot they touch), and the full-chunk puts take
// either one entry or one per version slot.
type NodeClient interface {
	// ReadChunk returns a copy of the chunk, or ErrNotFound; ErrCorrupt
	// when the stored content fails the node's own integrity check.
	ReadChunk(ctx context.Context, id ChunkID) (Chunk, error)
	// ReadVersions returns a copy of the chunk's version vector and
	// cross-checksum record (nil when the node holds none), or
	// ErrNotFound — the "u.version(id)" probe of Algorithms 1–2.
	ReadVersions(ctx context.Context, id ChunkID) ([]uint64, []BlockSum, error)
	// PutChunk stores a full chunk, replacing any previous value.
	PutChunk(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...BlockSum) error
	// PutChunkIfFresher installs the chunk only when the proposed
	// version vector does not regress any stored slot
	// (componentwise ≥); otherwise ErrVersionMismatch.
	PutChunkIfFresher(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...BlockSum) error
	// CompareAndPut overwrites the data only when version slot `slot`
	// holds expect, then sets it to next; otherwise
	// ErrVersionMismatch. The check and the write are atomic.
	CompareAndPut(ctx context.Context, id ChunkID, slot int, expect, next uint64, data []byte, sum ...BlockSum) error
	// CompareAndAdd XORs delta into the data when version slot `slot`
	// holds expect, then advances it to next — the conditional
	// "u.add(α_{i,j}·(x−chunk))" of Algorithm 1. The check and the
	// add are atomic.
	CompareAndAdd(ctx context.Context, id ChunkID, slot int, expect, next uint64, delta []byte, sum ...BlockSum) error
	// DeleteChunk removes a chunk; deleting a missing chunk is a
	// no-op.
	DeleteChunk(ctx context.Context, id ChunkID) error
}
