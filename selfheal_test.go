package trapquorum_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"trapquorum"
)

// healCfg is the aggressive tuning the self-heal tests run with:
// probes every few milliseconds, scrubs every few tens, so the whole
// detect→repair→verify cycle fits a test budget.
func healCfg(onTransition func(trapquorum.NodeTransition)) trapquorum.SelfHeal {
	return trapquorum.SelfHeal{
		ProbeInterval:      3 * time.Millisecond,
		SuspicionThreshold: 2,
		RepairConcurrency:  4,
		RepairRetry:        20 * time.Millisecond,
		ScrubInterval:      30 * time.Millisecond,
		ScrubPace:          time.Millisecond,
		OnTransition:       onTransition,
	}
}

// waitHealthy polls until cond holds or the deadline passes.
func waitHealthy(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// allStripesHealthy scrubs every key read-only and reports whether
// every stripe is fully redundant again.
func allStripesHealthy(ctx context.Context, t *testing.T, store *trapquorum.ObjectStore, keys []string) bool {
	t.Helper()
	for _, key := range keys {
		reports, err := store.Scrub(ctx, key)
		if err != nil {
			return false
		}
		for _, r := range reports {
			if !r.Healthy {
				return false
			}
		}
	}
	return true
}

// TestSelfHealSimCrashWipeUnderLoad is the sim half of the issue's
// acceptance e2e: a node crashes and loses its disk under foreground
// traffic, and the store returns to full redundancy with zero manual
// RepairNode calls.
func TestSelfHealSimCrashWipeUnderLoad(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithBlockSize(512),
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(7))
	var keys []string
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("obj-%d", i)
		data := make([]byte, 3*512*8) // 3 stripes at (15,8), 512 B blocks
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	// Foreground load: reads and in-place patches while the fault and
	// the healing run. One node down never blocks the quorum, so the
	// operations must keep succeeding throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			patch := make([]byte, 512)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				var opErr error
				if i%2 == 0 {
					_, opErr = store.Get(ctx, key)
				} else {
					r.Read(patch)
					opErr = store.WriteAt(ctx, key, (i%3)*512*8, patch)
				}
				if opErr != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("load op %d on %s: %w", i, key, opErr)
					}
					loadMu.Unlock()
					return
				}
			}
		}(g)
	}

	const victim = 4
	if err := store.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, "monitor marks the crashed node down", 10*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})

	// The node returns with a replaced (empty) disk.
	if err := store.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := store.WipeNode(ctx, victim); err != nil {
		t.Fatal(err)
	}

	waitHealthy(t, "orchestrator heals the node", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "every stripe fully redundant again", 30*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, keys)
	})

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("foreground traffic failed during the outage: %v", loadErr)
	}

	m := store.Metrics()
	if m.DownEvents < 1 || m.Recoveries < 1 {
		t.Fatalf("metrics %+v: want at least one down event and one recovery", m)
	}
	if m.AutoRepairs == 0 {
		t.Fatal("no automatic repairs recorded; the node cannot have been healed by the orchestrator")
	}
	if h := store.Health(); !h.Enabled || len(h.Degraded()) != 0 {
		t.Fatalf("health %+v: want enabled and no degraded nodes", h)
	}
}

// TestSelfHealLowLevelStore exercises the coreTarget adapter: the
// single-stripe-set Store heals a crashed-and-wiped node too.
func TestSelfHealLowLevelStore(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("low level self heal "), 200)
	for id := uint64(1); id <= 3; id++ {
		if err := store.WriteObject(ctx, id, payload); err != nil {
			t.Fatal(err)
		}
	}

	const victim = 11
	if err := store.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, "node down", 10*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})
	if err := store.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := store.WipeNode(ctx, victim); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, "node healed", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "stripes healthy", 30*time.Second, func() bool {
		for id := uint64(1); id <= 3; id++ {
			rep, err := store.ScrubStripe(ctx, id)
			if err != nil || !rep.Healthy {
				return false
			}
		}
		return true
	})
	if m := store.Metrics(); m.AutoRepairs == 0 || m.Recoveries == 0 {
		t.Fatalf("metrics %+v: want automatic repairs and a recovery", m)
	}
}

// TestSelfHealTransitionsObserved pins the state-machine path the
// operator sees: up → suspect → down → repairing → up.
func TestSelfHealTransitionsObserved(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var path []trapquorum.NodeState
	const victim = 2
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBlockSize(256),
		trapquorum.WithSelfHeal(healCfg(func(tr trapquorum.NodeTransition) {
			if tr.Node == victim {
				mu.Lock()
				path = append(path, tr.To)
				mu.Unlock()
			}
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Put(ctx, "k", bytes.Repeat([]byte("x"), 2048)); err != nil {
		t.Fatal(err)
	}

	if err := store.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, "down", 10*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})
	if err := store.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, "healed", 30*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeUp
	})
	// The observer is dispatched asynchronously; wait for the full
	// path to arrive before asserting on it.
	waitHealthy(t, "transition path observed", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(path) >= 4
	})

	mu.Lock()
	got := append([]trapquorum.NodeState(nil), path...)
	mu.Unlock()
	want := []trapquorum.NodeState{
		trapquorum.NodeSuspect, trapquorum.NodeDown,
		trapquorum.NodeRepairing, trapquorum.NodeUp,
	}
	if len(got) < len(want) {
		t.Fatalf("transitions %v, want at least %v", got, want)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("transition %d is %v, want %v (full path %v)", i, got[i], w, got)
		}
	}
}

// TestSelfHealRequiresProbingBackend pins the typed refusal on
// backends without a liveness probe.
func TestSelfHealRequiresProbingBackend(t *testing.T) {
	ctx := context.Background()
	_, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(&stubBackend{}),
		trapquorum.WithSelfHeal(trapquorum.SelfHeal{}),
	)
	if !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("Open with a non-probing backend: %v, want ErrNotSupported", err)
	}
}

// TestSelfHealConfigValidation pins option validation.
func TestSelfHealConfigValidation(t *testing.T) {
	ctx := context.Background()
	bad := []trapquorum.SelfHeal{
		{ProbeInterval: -time.Second},
		{SuspicionThreshold: -1},
		{ScrubJitter: 1.5},
	}
	for _, sh := range bad {
		if _, err := trapquorum.Open(ctx, trapquorum.WithSelfHeal(sh)); err == nil {
			t.Fatalf("WithSelfHeal(%+v) accepted", sh)
		}
	}
}

// TestHealthDisabledWithoutSelfHeal: stores opened without the option
// report a zero snapshot and zero self-heal counters.
func TestHealthDisabledWithoutSelfHeal(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx, trapquorum.WithBlockSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if h := store.Health(); h.Enabled || h.Nodes != nil {
		t.Fatalf("health on a plain store: %+v, want zero report", h)
	}
	if m := store.Metrics(); m.Probes != 0 || m.AutoRepairs != 0 || m.ScrubPasses != 0 {
		t.Fatalf("self-heal counters non-zero on a plain store: %+v", m)
	}
}

// TestMetricsMonotoneUnderConcurrentRepairsAndScrubs samples Metrics
// from several goroutines while faults, automatic repairs and scrubs
// all run, asserting every counter is monotone (run under -race in
// CI: this is the accounting's data-race canary too).
func TestMetricsMonotoneUnderConcurrentRepairsAndScrubs(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBlockSize(256),
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 0; i < 3; i++ {
		if err := store.Put(ctx, fmt.Sprintf("k%d", i), bytes.Repeat([]byte("y"), 4096)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	monotone := func(prev, cur *trapquorum.Metrics) error {
		type pair struct {
			name      string
			old, new_ int64
		}
		checks := []pair{
			{"Writes", prev.Writes, cur.Writes},
			{"DirectReads", prev.DirectReads, cur.DirectReads},
			{"DecodeReads", prev.DecodeReads, cur.DecodeReads},
			{"Repairs", prev.Repairs, cur.Repairs},
			{"Probes", prev.Probes, cur.Probes},
			{"ProbeFailures", prev.ProbeFailures, cur.ProbeFailures},
			{"Suspicions", prev.Suspicions, cur.Suspicions},
			{"DownEvents", prev.DownEvents, cur.DownEvents},
			{"Recoveries", prev.Recoveries, cur.Recoveries},
			{"AutoRepairs", prev.AutoRepairs, cur.AutoRepairs},
			{"AutoRepairFailures", prev.AutoRepairFailures, cur.AutoRepairFailures},
			{"ScrubPasses", prev.ScrubPasses, cur.ScrubPasses},
			{"ScrubStripes", prev.ScrubStripes, cur.ScrubStripes},
			{"ScrubDegraded", prev.ScrubDegraded, cur.ScrubDegraded},
		}
		for _, c := range checks {
			if c.new_ < c.old {
				return fmt.Errorf("%s regressed: %d -> %d", c.name, c.old, c.new_)
			}
		}
		return nil
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev trapquorum.Metrics
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := store.Metrics()
				if err := monotone(&prev, &cur); err != nil {
					t.Error(err)
					return
				}
				prev = cur
				store.Health()
			}
		}()
	}
	// Fault churn: crash/restart/wipe nodes while readers sample.
	for i := 0; i < 6; i++ {
		victim := 1 + i%3
		if err := store.CrashNode(victim); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		if err := store.RestartNode(victim); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			_ = store.WipeNode(ctx, victim) // may race a probe; healing absorbs it
		}
		time.Sleep(25 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSelfHealTCPCrashWipeUnderLoad is the network half of the
// acceptance e2e: the same crash-and-replace-the-disk cycle over real
// TCP sockets against durable diskstore daemons, healed with zero
// manual RepairNode calls.
func TestSelfHealTCPCrashWipeUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fleet e2e in -short mode")
	}
	ctx := context.Background()
	nodes := startFleet(t, 15)
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	cfg := healCfg(nil)
	cfg.ProbeInterval = 10 * time.Millisecond
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(addrs)),
		trapquorum.WithBlockSize(512),
		trapquorum.WithSelfHeal(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(11))
	keys := []string{"vol-a", "vol-b"}
	for _, key := range keys {
		data := make([]byte, 2*512*8)
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		patch := make([]byte, 512)
		r := rand.New(rand.NewSource(13))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := keys[i%len(keys)]
			var opErr error
			if i%2 == 0 {
				_, opErr = store.Get(ctx, key)
			} else {
				r.Read(patch)
				opErr = store.WriteAt(ctx, key, (i%2)*512*8, patch)
			}
			if opErr != nil {
				loadMu.Lock()
				if loadErr == nil {
					loadErr = fmt.Errorf("load op %d: %w", i, opErr)
				}
				loadMu.Unlock()
				return
			}
		}
	}()

	// Kill the daemon, throw its disk away, restart it empty: the
	// full disk-replacement runbook, with nobody calling RepairNode.
	const victim = 6
	nodes[victim].crash()
	waitHealthy(t, "monitor marks the dead daemon down", 15*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})
	if err := os.RemoveAll(nodes[victim].dir); err != nil {
		t.Fatal(err)
	}
	nodes[victim].start()

	waitHealthy(t, "orchestrator heals the replaced disk", 60*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "every stripe fully redundant", 60*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, keys)
	})

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("foreground traffic failed during the outage: %v", loadErr)
	}
	if m := store.Metrics(); m.AutoRepairs == 0 || m.Recoveries == 0 {
		t.Fatalf("metrics %+v: want automatic repairs and a recovery over TCP", m)
	}
}
