package tcp_test

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// flakyGate sits in front of a real node server and rejects (closes
// immediately) every accepted connection while down, or the first
// rejectFirst of them — a deterministic stand-in for a resetting
// link.
type flakyGate struct {
	ln          net.Listener
	target      string
	down        atomic.Bool
	rejectFirst atomic.Int32
}

func startFlakyGate(t *testing.T, target string) *flakyGate {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := &flakyGate{ln: ln, target: target}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if g.down.Load() || g.rejectFirst.Add(-1) >= 0 {
				c.Close()
				continue
			}
			up, err := net.Dial("tcp", g.target)
			if err != nil {
				c.Close()
				continue
			}
			go func() { defer c.Close(); defer up.Close(); buf := make([]byte, 32<<10); copyConn(c, up, buf) }()
			go func() { buf := make([]byte, 32<<10); copyConn(up, c, buf) }()
		}
	}()
	return g
}

func copyConn(dst, src net.Conn, buf []byte) {
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// startEngineServer serves a fresh engine and returns its address.
func startEngineServer(t *testing.T, opts ...tcp.ServerOption) string {
	t.Helper()
	engine := nodeengine.New(memstore.New(), nodeengine.WithName("resilience test node"))
	t.Cleanup(func() { engine.Close() })
	srv := tcp.NewServer(engine, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestBreakerOpensAndFastFails(t *testing.T) {
	// Nothing listens on the address: every attempt is a refused dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	res := tcp.Resilience{
		FailureThreshold: 3,
		OpenTimeout:      time.Minute, // never half-opens within the test
		RetryAttempts:    0,
		Budget:           tcp.NewRetryBudget(100, 0.1),
	}
	cl := tcp.NewClient(addr, tcp.WithResilience(res), tcp.WithDialTimeout(200*time.Millisecond))
	defer cl.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := cl.Ping(ctx); !errors.Is(err, client.ErrNodeDown) {
			t.Fatalf("ping %d err = %v, want ErrNodeDown", i, err)
		}
	}
	if cl.Usable() {
		t.Fatal("breaker should be open after 3 consecutive failures")
	}
	// Next request fast-fails locally without touching the network.
	start := time.Now()
	err = cl.Ping(ctx)
	if !errors.Is(err, client.ErrNodeDown) || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("fast-fail err = %v", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fast-fail took %v, want local rejection", d)
	}
	lh := cl.LinkHealth()
	if lh.Breaker != client.BreakerOpen || lh.BreakerOpens != 1 || lh.FastFails < 1 {
		t.Fatalf("link health = %+v", lh)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	addr := startEngineServer(t)
	gate := startFlakyGate(t, addr)

	res := tcp.Resilience{
		FailureThreshold: 2,
		OpenTimeout:      100 * time.Millisecond,
		RetryAttempts:    0,
		Budget:           tcp.NewRetryBudget(100, 0.1),
	}
	cl := tcp.NewClient(gate.ln.Addr().String(), tcp.WithResilience(res))
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	gate.down.Store(true)
	for i := 0; i < 2; i++ {
		if err := cl.Ping(ctx); !errors.Is(err, client.ErrNodeDown) {
			t.Fatalf("ping %d err = %v", i, err)
		}
	}
	if cl.Usable() {
		t.Fatal("breaker should be open")
	}

	// Node comes back; after the cooldown the next request is admitted
	// as the half-open probe and closes the breaker.
	gate.down.Store(false)
	time.Sleep(150 * time.Millisecond)
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("probe ping: %v", err)
	}
	if !cl.Usable() {
		t.Fatal("breaker should be closed after probe success")
	}
	if lh := cl.LinkHealth(); lh.Breaker != client.BreakerClosed || lh.EWMA <= 0 {
		t.Fatalf("link health after recovery = %+v", lh)
	}
}

func TestBudgetedRetriesHealFlakyLink(t *testing.T) {
	addr := startEngineServer(t)
	gate := startFlakyGate(t, addr)
	gate.rejectFirst.Store(2) // first two connections die at the gate

	budget := tcp.NewRetryBudget(10, 0.1)
	res := tcp.Resilience{
		FailureThreshold: 10,
		OpenTimeout:      time.Second,
		RetryAttempts:    3,
		RetryBase:        time.Millisecond,
		RetryMax:         5 * time.Millisecond,
		Budget:           budget,
	}
	cl := tcp.NewClient(gate.ln.Addr().String(), tcp.WithResilience(res))
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Ping is replay-safe: two failures are absorbed by budgeted
	// retries and the third attempt lands.
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping through flaky link: %v", err)
	}
	if lh := cl.LinkHealth(); lh.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (health %+v)", lh.Retries, lh)
	}
	if budget.Spent() != 2 || budget.Denied() != 0 {
		t.Fatalf("budget spent=%d denied=%d", budget.Spent(), budget.Denied())
	}
}

func TestRetryBudgetExhaustionStopsRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	budget := tcp.NewRetryBudget(1, 0.001) // one retry, then dry
	res := tcp.Resilience{
		FailureThreshold: 100,
		OpenTimeout:      time.Second,
		RetryAttempts:    5,
		RetryBase:        time.Millisecond,
		RetryMax:         2 * time.Millisecond,
		Budget:           budget,
	}
	cl := tcp.NewClient(addr, tcp.WithResilience(res), tcp.WithDialTimeout(100*time.Millisecond))
	defer cl.Close()

	if err := cl.Ping(context.Background()); !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("ping err = %v", err)
	}
	if budget.Spent() != 1 || budget.Denied() != 1 {
		t.Fatalf("budget spent=%d denied=%d, want 1/1", budget.Spent(), budget.Denied())
	}
	if lh := cl.LinkHealth(); lh.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (budget-capped)", lh.Retries)
	}
}

func TestMutationsAreNeverRetried(t *testing.T) {
	addr := startEngineServer(t)
	gate := startFlakyGate(t, addr)
	gate.down.Store(true)

	budget := tcp.NewRetryBudget(10, 0.1)
	res := tcp.Resilience{
		FailureThreshold: 100,
		OpenTimeout:      time.Second,
		RetryAttempts:    5,
		RetryBase:        time.Millisecond,
		RetryMax:         2 * time.Millisecond,
		Budget:           budget,
	}
	cl := tcp.NewClient(gate.ln.Addr().String(), tcp.WithResilience(res))
	defer cl.Close()

	// PutChunk is not replay-safe: one attempt, no budget draw.
	err := cl.PutChunk(context.Background(), client.ChunkID{Stripe: 1}, []byte{1}, []uint64{1})
	if !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("put err = %v", err)
	}
	if lh := cl.LinkHealth(); lh.Retries != 0 {
		t.Fatalf("mutation consumed %d retries, want 0", lh.Retries)
	}
	if budget.Spent() != 0 {
		t.Fatalf("mutation spent budget: %d", budget.Spent())
	}
}

// startTornFrameServer reads one request frame, answers with a torn
// response — a frame header promising n bytes followed by only a few
// of them — then resets the connection.
func startTornFrameServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				// Consume the request frame: 4-byte length prefix, then
				// the payload.
				var hdr [4]byte
				if _, err := readFull(c, hdr[:]); err != nil {
					return
				}
				n := binary.BigEndian.Uint32(hdr[:])
				buf := make([]byte, n)
				if _, err := readFull(c, buf); err != nil {
					return
				}
				// Torn response: promise 64 bytes, deliver 3, vanish.
				binary.BigEndian.PutUint32(hdr[:], 64)
				c.Write(hdr[:])
				c.Write([]byte{0x01, 0x02, 0x03})
			}(c)
		}
	}()
	return ln.Addr().String()
}

func readFull(c net.Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := c.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestTornResponseClassifiesAsNodeDown(t *testing.T) {
	// A connection reset between a frame's header and body must read
	// as a transport failure — ErrNodeDown, counted by the breaker —
	// not as a decode error.
	addr := startTornFrameServer(t)
	res := tcp.Resilience{
		FailureThreshold: 1, // first transport failure opens the breaker
		OpenTimeout:      time.Minute,
		RetryAttempts:    0,
		Budget:           tcp.NewRetryBudget(10, 0.1),
	}
	cl := tcp.NewClient(addr, tcp.WithResilience(res))
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := cl.ReadChunk(ctx, client.ChunkID{Stripe: 1})
	if !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("torn response err = %v, want ErrNodeDown", err)
	}
	if lh := cl.LinkHealth(); lh.Breaker != client.BreakerOpen {
		t.Fatalf("breaker = %v, want open — the torn frame must count as a node failure", lh.Breaker)
	}
}

func TestAttemptTimeoutConvertsStallToNodeDown(t *testing.T) {
	// A server that accepts and never answers: with an attempt timeout
	// the stall surfaces as a node failure while the caller's own
	// context is still live.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold it open, answer nothing
		}
	}()

	res := tcp.Resilience{
		FailureThreshold: 10,
		OpenTimeout:      time.Second,
		RetryAttempts:    0,
		AttemptTimeout:   100 * time.Millisecond,
		Budget:           tcp.NewRetryBudget(10, 0.1),
	}
	cl := tcp.NewClient(ln.Addr().String(), tcp.WithResilience(res))
	defer cl.Close()

	ctx := context.Background() // no caller deadline at all
	start := time.Now()
	err = cl.Ping(ctx)
	if !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("stalled ping err = %v, want ErrNodeDown", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall leaked as the caller's deadline: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stalled ping took %v, want ~attempt timeout", d)
	}
}

func TestServerIOTimeoutCutsSlowLoris(t *testing.T) {
	// A peer that starts a frame and then drips nothing must be cut
	// off; an idle pooled connection must not be.
	addr := startEngineServer(t, tcp.WithServerIOTimeout(150*time.Millisecond))

	// Idle is fine: a client connection can rest past the IO timeout
	// and still serve requests.
	cl := tcp.NewClient(addr)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // pooled conn idles past the timeout
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping after idle rest: %v", err)
	}

	// Slow-loris: two header bytes, then silence. The server must
	// drop the connection on its own.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a half frame")
	} else if errors.Is(err, context.DeadlineExceeded) || time.Since(start) > 3*time.Second {
		t.Fatalf("server did not cut the stalled peer (err=%v after %v)", err, time.Since(start))
	}
}

// TestCancelledProbeReleasesHalfOpenSlot pins a liveness property of
// the breaker: a half-open probe that is *cancelled* (the quorum
// engine routinely cancels RPCs once it has enough answers) must hand
// the probe slot back. If it didn't, the breaker would wedge
// half-open and fast-fail every subsequent request forever — a healed
// node could never rejoin.
func TestCancelledProbeReleasesHalfOpenSlot(t *testing.T) {
	// A server that accepts and never answers, so probes stall until
	// their context decides their fate.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	cl := tcp.NewClient(ln.Addr().String(), tcp.WithResilience(tcp.Resilience{
		FailureThreshold: 1,
		OpenTimeout:      50 * time.Millisecond,
		RetryAttempts:    0,
		AttemptTimeout:   10 * time.Second, // only the caller's ctx ends attempts
		Budget:           tcp.NewRetryBudget(10, 0.1),
	}))
	defer cl.Close()

	// Trip the breaker: a blown caller deadline counts as a failure.
	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := cl.Ping(dctx); err == nil {
		t.Fatal("ping of a mute server succeeded")
	}
	cancel()
	if lh := cl.LinkHealth(); lh.Breaker != client.BreakerOpen {
		t.Fatalf("breaker %v after tripping failure, want open", lh.Breaker)
	}
	time.Sleep(80 * time.Millisecond) // cooldown passes; next request is the probe

	// The probe is admitted, stalls, and is cancelled — the engine's
	// "I have my quorum" path. Cancellation is not a verdict on the
	// node, but it must release the probe slot.
	cctx, cancelProbe := context.WithCancel(context.Background())
	probeDone := make(chan error, 1)
	go func() { probeDone <- cl.Ping(cctx) }()
	time.Sleep(50 * time.Millisecond)
	cancelProbe()
	if err := <-probeDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled probe err = %v, want context.Canceled", err)
	}

	// A fresh request must be ADMITTED as the next probe — attempted
	// against the node and reaped by the caller's deadline (which may
	// surface as ctx.DeadlineExceeded or as the connection's own
	// deadline error; the two race at the same instant) — never
	// fast-failed on a wedged half-open breaker. The discriminators:
	// a fast-fail is local, instant, and counts a FastFail.
	before := cl.LinkHealth().FastFails
	start := time.Now()
	nctx, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	err = cl.Ping(nctx)
	if err == nil {
		t.Fatal("ping of a mute server succeeded")
	}
	if cl.LinkHealth().FastFails > before {
		t.Fatalf("request after a cancelled probe was fast-failed: %v — probe slot leaked", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request after a cancelled probe failed locally in %v (%v) — never attempted", d, err)
	}
}
