package tcp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"trapquorum/client"
)

// Resilience is the per-node failure policy of the TCP transport:
// a circuit breaker that stops burning RPCs on a node that keeps
// failing, and a retry loop for replay-safe operations governed by a
// shared budget so retries cannot amplify an outage into a retry
// storm.
//
// Share one Resilience value (in particular its Budget) across all
// clients of a store — DefaultResilience returns one wired that way,
// and NewNetBackend passes its WithResilience option to every node
// client, so the whole fleet draws from one budget.
type Resilience struct {
	// FailureThreshold is the consecutive transport failures that trip
	// the breaker open (default 5).
	FailureThreshold int
	// OpenTimeout is the first open-state cooldown; it doubles on every
	// re-open up to OpenTimeoutMax and resets on success (defaults
	// 1s / 30s).
	OpenTimeout time.Duration
	// OpenTimeoutMax caps the doubling open-state cooldown.
	OpenTimeoutMax time.Duration
	// RetryAttempts is the extra attempts granted to a replay-safe
	// operation after its first transport failure (default 2).
	RetryAttempts int
	// RetryBase and RetryMax bound the jittered exponential backoff
	// between attempts (defaults 2ms / 250ms).
	RetryBase time.Duration
	// RetryMax caps the backoff growth.
	RetryMax time.Duration
	// AttemptTimeout caps each individual attempt so one stalled
	// stream cannot eat the whole caller deadline; 0 disables. An
	// attempt that hits this cap counts as a node failure, and the
	// remaining caller budget funds the retry.
	AttemptTimeout time.Duration
	// Budget is the shared retry budget; nil gives the client a
	// private one.
	Budget *RetryBudget
	// Seed drives backoff jitter (0 picks a fixed default).
	Seed int64
}

// DefaultResilience is the recommended policy: breaker at 5
// consecutive failures with 1s→30s cooldowns, 2 budgeted retries with
// 2ms..250ms jittered backoff, 1s attempt timeout, and a fresh shared
// budget allowing 10% retry overhead.
func DefaultResilience() Resilience {
	return Resilience{
		FailureThreshold: 5,
		OpenTimeout:      time.Second,
		OpenTimeoutMax:   30 * time.Second,
		RetryAttempts:    2,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         250 * time.Millisecond,
		AttemptTimeout:   time.Second,
		Budget:           NewRetryBudget(10, 0.1),
	}
}

// WithResilience enables the resilience policy on a client. Pass the
// same value (same Budget pointer) to every client of a store so the
// budget is fleet-wide.
func WithResilience(r Resilience) ClientOption {
	return func(c *NodeClient) { c.res = newResilience(r) }
}

// RetryBudget is a token bucket in the Google-SRE style: every
// completed attempt deposits a fraction of a token, every retry
// withdraws a whole one, so sustained retry traffic is capped at
// ratio × request traffic no matter how hard the network misbehaves.
// Safe for concurrent use and meant to be shared across all node
// clients of a store.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
	spent  atomic.Int64
	denied atomic.Int64
}

// NewRetryBudget builds a budget holding at most max tokens (starting
// full) that earns ratio tokens per completed attempt.
func NewRetryBudget(max, ratio float64) *RetryBudget {
	if max <= 0 {
		max = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// deposit credits one completed attempt.
func (b *RetryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// withdraw takes one token for a retry, reporting false (and counting
// a denial) when the budget is exhausted.
func (b *RetryBudget) withdraw() bool {
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if ok {
		b.spent.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Spent counts tokens withdrawn over the budget's lifetime.
func (b *RetryBudget) Spent() int64 { return b.spent.Load() }

// Denied counts retries refused for lack of tokens.
func (b *RetryBudget) Denied() int64 { return b.denied.Load() }

// resilience is the runtime state behind one client's policy.
type resilience struct {
	cfg    Resilience
	budget *RetryBudget

	mu        sync.Mutex
	state     client.BreakerState
	fails     int           // consecutive transport failures
	cooldown  time.Duration // next open-state duration
	reopenAt  time.Time     // when an open breaker admits a probe
	probing   bool          // a half-open probe is in flight
	jitterRng *rand.Rand

	ewmaNanos atomic.Int64
	opens     atomic.Int64
	fastFails atomic.Int64
	retries   atomic.Int64
}

// ewmaAlpha is the smoothing factor of the per-node latency average.
const ewmaAlpha = 0.2

func newResilience(cfg Resilience) *resilience {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = time.Second
	}
	if cfg.OpenTimeoutMax < cfg.OpenTimeout {
		cfg.OpenTimeoutMax = 30 * time.Second
		if cfg.OpenTimeoutMax < cfg.OpenTimeout {
			cfg.OpenTimeoutMax = cfg.OpenTimeout
		}
	}
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 2 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = 250 * time.Millisecond
		if cfg.RetryMax < cfg.RetryBase {
			cfg.RetryMax = cfg.RetryBase
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x7e5111e4ce
	}
	budget := cfg.Budget
	if budget == nil {
		budget = NewRetryBudget(10, 0.1)
	}
	return &resilience{
		cfg:       cfg,
		budget:    budget,
		state:     client.BreakerClosed,
		cooldown:  cfg.OpenTimeout,
		jitterRng: rand.New(rand.NewSource(seed)),
	}
}

// allow decides whether a request may touch the network. An open
// breaker whose cooldown elapsed flips to half-open and admits one
// probe; concurrent requests during the probe are fast-failed.
func (r *resilience) allow(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case client.BreakerClosed:
		return true
	case client.BreakerOpen:
		if now.Before(r.reopenAt) {
			return false
		}
		r.state = client.BreakerHalfOpen
		r.probing = true
		return true
	default: // half-open
		if r.probing {
			return false
		}
		r.probing = true
		return true
	}
}

// onSuccess records a completed exchange: the breaker closes, the
// cooldown resets, and the latency EWMA absorbs the sample.
func (r *resilience) onSuccess(lat time.Duration) {
	r.mu.Lock()
	r.state = client.BreakerClosed
	r.fails = 0
	r.probing = false
	r.cooldown = r.cfg.OpenTimeout
	r.mu.Unlock()
	r.observe(lat)
}

// onFailure records a transport failure. A half-open probe failure
// reopens immediately with a doubled cooldown; in the closed state the
// breaker opens once the consecutive-failure threshold is reached.
func (r *resilience) onFailure(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	switch r.state {
	case client.BreakerHalfOpen:
		r.openLocked(now)
	case client.BreakerClosed:
		if r.fails >= r.cfg.FailureThreshold {
			r.openLocked(now)
		}
	case client.BreakerOpen:
		// Already open (a straggler attempt finished late); leave the
		// cooldown clock alone.
	}
}

// onAbandon releases the half-open probe slot without a verdict: the
// attempt ended for a reason that says nothing about the node (caller
// cancellation, client shutdown). Without this, a cancelled probe
// would leave `probing` set and the breaker would fast-fail every
// subsequent request forever.
func (r *resilience) onAbandon() {
	r.mu.Lock()
	if r.state == client.BreakerHalfOpen {
		r.probing = false
	}
	r.mu.Unlock()
}

// openLocked trips the breaker; r.mu must be held.
func (r *resilience) openLocked(now time.Time) {
	r.state = client.BreakerOpen
	r.probing = false
	r.reopenAt = now.Add(r.cooldown)
	r.cooldown *= 2
	if r.cooldown > r.cfg.OpenTimeoutMax {
		r.cooldown = r.cfg.OpenTimeoutMax
	}
	r.opens.Add(1)
}

// observe folds one successful round trip into the latency EWMA.
func (r *resilience) observe(lat time.Duration) {
	for {
		old := r.ewmaNanos.Load()
		next := int64(lat)
		if old > 0 {
			next = int64(float64(old)*(1-ewmaAlpha) + float64(lat)*ewmaAlpha)
		}
		if r.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// usable reports whether the link is worth sending fresh work to:
// false only while the breaker is open and cooling down. A half-open
// link reports true so protocol traffic can serve as the probe.
func (r *resilience) usable(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != client.BreakerOpen || !now.Before(r.reopenAt)
}

// snapshot returns the breaker state and counters for LinkHealth.
func (r *resilience) snapshot() (client.BreakerState, time.Duration) {
	r.mu.Lock()
	st := r.state
	r.mu.Unlock()
	return st, time.Duration(r.ewmaNanos.Load())
}

// backoff computes the jittered exponential delay before retry n
// (n = 1 for the first retry): uniform in (base·2ⁿ⁻¹ /2, base·2ⁿ⁻¹],
// capped at RetryMax.
func (r *resilience) backoff(n int) time.Duration {
	d := r.cfg.RetryBase << uint(n-1)
	if d > r.cfg.RetryMax || d <= 0 {
		d = r.cfg.RetryMax
	}
	r.mu.Lock()
	j := r.jitterRng.Int63n(int64(d)/2 + 1)
	r.mu.Unlock()
	return d/2 + time.Duration(j)
}
