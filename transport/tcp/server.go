// Package tcp puts the TRAP-ERC node protocol on real sockets: a
// NodeServer that serves any node engine over length-prefixed binary
// frames (see internal/wire), and a pooling NodeClient that implements
// the public client.NodeClient transport contract against such a
// server. The cmd/trapnode daemon is a thin wrapper around NodeServer;
// the trapquorum.NetBackend assembles one NodeClient per address into
// a Backend.
//
// One connection carries one request at a time (the client pools
// connections for concurrency), so the protocol needs no request ids
// and a broken frame can simply drop the connection.
package tcp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/internal/wire"
)

// Service is the node surface a server exposes on the wire: the
// public transport contract plus the maintenance operations
// (existence probe, media wipe). *nodeengine.Engine implements it.
type Service interface {
	client.NodeClient
	// HasChunk reports whether the node stores the chunk.
	HasChunk(ctx context.Context, id client.ChunkID) (bool, error)
	// Wipe erases the node's store (media replacement).
	Wipe(ctx context.Context) error
}

// ServerOption customises a NodeServer.
type ServerOption func(*NodeServer)

// WithServerMaxFrame caps the request frames the server accepts.
// Larger frames drop the connection. The default is
// wire.DefaultMaxFrame.
func WithServerMaxFrame(max int) ServerOption {
	return func(s *NodeServer) { s.maxFrame = max }
}

// WithServerIOTimeout bounds how long a connection may take to deliver
// one request frame once its first byte has arrived, and how long a
// response write may block — the slow-loris guard. An *idle*
// connection (no request in progress) is never timed out, so client
// connection pools keep working. 0 disables; the default is 30s.
func WithServerIOTimeout(d time.Duration) ServerOption {
	return func(s *NodeServer) { s.ioTimeout = d }
}

// NodeServer serves one node engine to any number of TCP clients. It
// is transport plumbing only: every operation, including its
// concurrency and atomicity guarantees, is delegated to the Service.
type NodeServer struct {
	svc       Service
	maxFrame  int
	ioTimeout time.Duration

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server around the given service.
func NewServer(svc Service, opts ...ServerOption) *NodeServer {
	s := &NodeServer{
		svc:       svc,
		maxFrame:  wire.DefaultMaxFrame,
		ioTimeout: 30 * time.Second,
		conns:     make(map[net.Conn]struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Serve accepts connections on ln until Close. It returns nil after a
// Close, or the listener's error otherwise. The listener is owned by
// the server from this point on.
func (s *NodeServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tcp: server closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("tcp: server already serving")
	}
	s.ln = ln
	s.mu.Unlock()

	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				// The listener died underneath us without a Close —
				// nothing left to accept from.
				return fmt.Errorf("tcp: accept: %w", err)
			}
			// Transient accept failures (fd exhaustion, aborted
			// handshakes) must not take the node down: back off and
			// keep accepting, like a daemon should.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			select {
			case <-time.After(backoff):
			case <-s.ctx.Done():
				return nil
			}
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *NodeServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("tcp: %w", err)
	}
	return s.Serve(ln)
}

// Close stops accepting, drops every open connection and cancels the
// contexts of in-flight operations, then waits for the connection
// handlers to drain. The wrapped Service is not closed — the caller
// owns it (so a store can be reopened or served again after a
// simulated crash).
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn answers requests on one connection until it breaks or the
// server closes. Requests are served strictly in order — the per-node
// atomicity lives in the Service, but frame handling reuses one buffer
// per connection, so responses must not interleave.
func (s *NodeServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Frame buffers are reused across requests but trimmed after
	// oversized ones, so one large transfer does not pin
	// frame-sized heap for the connection's lifetime (mirrors the
	// client pool's maxPooledScratch).
	const maxKeptScratch = 64 << 10
	var readBuf, writeBuf []byte
	for {
		// Idle wait: block without a deadline until the next request's
		// first byte, so pooled connections can rest indefinitely. Once
		// a request has started arriving, the peer gets ioTimeout to
		// deliver the whole frame — a slow-loris drip-feeding bytes is
		// cut off instead of pinning the handler forever.
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
			if _, err := br.Peek(1); err != nil {
				return
			}
			if err := conn.SetReadDeadline(time.Now().Add(s.ioTimeout)); err != nil {
				return
			}
		}
		payload, err := wire.ReadFrame(br, readBuf, s.maxFrame)
		if err != nil {
			// Clean EOF, a broken peer, a stalled frame or an oversized
			// one: the connection is unusable either way.
			return
		}
		readBuf = payload[:0]
		req, err := wire.DecodeRequest(payload)
		var resp wire.Response
		if err != nil {
			// The framing survived but the payload did not parse:
			// answer the error, then drop the connection (the peer's
			// encoder is broken).
			resp = wire.Response{Status: wire.StatusBadRequest, Detail: err.Error()}
			if s.ioTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
			}
			writeBuf = wire.AppendResponse(writeBuf[:0], &resp)
			if wire.WriteFrame(bw, writeBuf) == nil {
				bw.Flush()
			}
			return
		}
		resp = s.handle(&req)
		// A peer that stops draining its socket must not pin the
		// handler in a blocked write (the read-side twin of slow-loris).
		if s.ioTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.ioTimeout)); err != nil {
				return
			}
		}
		writeBuf = wire.AppendResponse(writeBuf[:0], &resp)
		if err := wire.WriteFrame(bw, writeBuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if cap(readBuf) > maxKeptScratch {
			readBuf = nil
		}
		if cap(writeBuf) > maxKeptScratch {
			writeBuf = nil
		}
	}
}

// epochGuarder is the optional stale-epoch enforcement surface of a
// Service (*nodeengine.Engine implements it). Services without it —
// proxies, pre-epoch engines — pass tagged traffic through; the tag
// still forwards via the context, so enforcement happens wherever a
// guard-capable engine terminates the chain.
type epochGuarder interface {
	EpochGuard(tag uint64) error
}

// handle executes one decoded request against the service. The
// server's context is the operation context: Close cancels it, so
// in-flight operations abort promptly when the node shuts down.
func (s *NodeServer) handle(req *wire.Request) wire.Response {
	ctx := s.ctx
	if req.Epoch != 0 {
		if eg, ok := s.svc.(epochGuarder); ok {
			if err := eg.EpochGuard(req.Epoch); err != nil {
				return errResponse(err)
			}
		}
		// Re-tag the context so a proxying service (a NodeClient as the
		// backend) forwards the epoch on its own outgoing frames.
		ctx = client.WithEpoch(ctx, req.Epoch)
	}
	switch req.Op {
	case wire.OpPing:
		return wire.Response{Status: wire.StatusOK}
	case wire.OpReadChunk:
		chunk, err := s.svc.ReadChunk(ctx, req.ID)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Data: chunk.Data, Versions: chunk.Versions, Sums: chunk.Sums}
	case wire.OpReadVersions:
		versions, sums, err := s.svc.ReadVersions(ctx, req.ID)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Versions: versions, Sums: sums}
	case wire.OpPutChunk:
		return errResponse(s.svc.PutChunk(ctx, req.ID, req.Data, req.Versions, req.Sums...))
	case wire.OpPutChunkIfFresher:
		return errResponse(s.svc.PutChunkIfFresher(ctx, req.ID, req.Data, req.Versions, req.Sums...))
	case wire.OpCompareAndPut:
		return errResponse(s.svc.CompareAndPut(ctx, req.ID, req.Slot, req.Expect, req.Next, req.Data, req.Sums...))
	case wire.OpCompareAndAdd:
		return errResponse(s.svc.CompareAndAdd(ctx, req.ID, req.Slot, req.Expect, req.Next, req.Data, req.Sums...))
	case wire.OpDeleteChunk:
		return errResponse(s.svc.DeleteChunk(ctx, req.ID))
	case wire.OpHasChunk:
		ok, err := s.svc.HasChunk(ctx, req.ID)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Flag: ok}
	case wire.OpWipe:
		return errResponse(s.svc.Wipe(ctx))
	case wire.OpEpochGet:
		es, ok := s.svc.(client.EpochSetter)
		if !ok {
			return wire.Response{Status: wire.StatusBadRequest, Detail: "node does not persist epoch state"}
		}
		installed, retired, blob, err := es.EpochState(ctx)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Versions: []uint64{installed, retired}, Data: blob}
	case wire.OpEpochSet:
		es, ok := s.svc.(client.EpochSetter)
		if !ok {
			return wire.Response{Status: wire.StatusBadRequest, Detail: "node does not persist epoch state"}
		}
		// Installed watermark in Next, retired in Expect (see the wire
		// package's Request doc).
		return errResponse(es.SetEpoch(ctx, req.Next, req.Expect, req.Data))
	default:
		return wire.Response{Status: wire.StatusBadRequest, Detail: fmt.Sprintf("unhandled op %s", req.Op)}
	}
}

// errResponse folds a service result into a response: the sentinel
// taxonomy travels as a status, everything else as an internal error
// with the message preserved.
func errResponse(err error) wire.Response {
	if err == nil {
		return wire.Response{Status: wire.StatusOK}
	}
	return wire.Response{Status: wire.StatusOf(err), Detail: err.Error()}
}
