package tcp_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// startNode serves a fresh engine on a loopback listener and returns
// the client plus the server handle.
func startNode(t *testing.T) (*tcp.NodeClient, *tcp.NodeServer, *nodeengine.Engine) {
	t.Helper()
	engine := nodeengine.New(memstore.New(), nodeengine.WithName("tcp test node"))
	t.Cleanup(func() { engine.Close() })
	srv := tcp.NewServer(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	cl := tcp.NewClient(ln.Addr().String())
	t.Cleanup(func() { cl.Close() })
	return cl, srv, engine
}

func TestAllOpsRoundTrip(t *testing.T) {
	cl, _, _ := startNode(t)
	ctx := context.Background()
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	id := client.ChunkID{Stripe: 7, Shard: 12}
	if err := cl.PutChunk(ctx, id, []byte{0xf0, 0x0f}, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadChunk(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 0xf0 || len(got.Versions) != 2 {
		t.Fatalf("chunk = %+v", got)
	}
	vers, _, err := cl.ReadVersions(ctx, id)
	if err != nil || len(vers) != 2 || vers[0] != 1 {
		t.Fatalf("versions = %v, %v", vers, err)
	}
	if err := cl.CompareAndPut(ctx, id, 0, 1, 2, []byte{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.CompareAndAdd(ctx, id, 1, 1, 2, []byte{0x0f, 0x0f}); err != nil {
		t.Fatal(err)
	}
	got, _ = cl.ReadChunk(ctx, id)
	if got.Data[0] != 0x0e || got.Data[1] != 0x0e {
		t.Fatalf("data after CAP+CAA = %v", got.Data)
	}
	if got.Versions[0] != 2 || got.Versions[1] != 2 {
		t.Fatalf("versions after CAP+CAA = %v", got.Versions)
	}
	if err := cl.PutChunkIfFresher(ctx, id, []byte{9, 9}, []uint64{2, 3}); err != nil {
		t.Fatal(err)
	}
	ok, err := cl.HasChunk(ctx, id)
	if err != nil || !ok {
		t.Fatalf("HasChunk = %v, %v", ok, err)
	}
	if err := cl.DeleteChunk(ctx, id); err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl.HasChunk(ctx, id); ok {
		t.Fatal("chunk survived delete")
	}
	if err := cl.PutChunk(ctx, id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Wipe(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, _ := cl.HasChunk(ctx, id); ok {
		t.Fatal("chunk survived wipe")
	}
}

// TestSentinelTaxonomyOverTheWire: remote protocol errors must come
// back as the same sentinels the in-process simulator returns.
func TestSentinelTaxonomyOverTheWire(t *testing.T) {
	cl, _, _ := startNode(t)
	ctx := context.Background()
	id := client.ChunkID{Stripe: 1}
	if _, err := cl.ReadChunk(ctx, id); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := cl.PutChunk(ctx, id, []byte{1}, nil); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	if err := cl.PutChunk(ctx, id, []byte{1}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := cl.CompareAndPut(ctx, id, 0, 4, 6, []byte{2}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	if err := cl.CompareAndAdd(ctx, id, 0, 5, 6, []byte{1, 2}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("size-mismatch err = %v", err)
	}
}

// TestConcurrentClientsSerialiseAtEngine: the per-node atomicity must
// hold across many TCP connections — exactly one CompareAndAdd may win
// each version transition.
func TestConcurrentClientsSerialiseAtEngine(t *testing.T) {
	cl, _, _ := startNode(t)
	ctx := context.Background()
	id := client.ChunkID{Stripe: 1, Shard: 3}
	if err := cl.PutChunk(ctx, id, []byte{0}, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wins := make(chan struct{}, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.CompareAndAdd(ctx, id, 0, 0, 1, []byte{1}); err == nil {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d writers won the 0→1 transition, want exactly 1", n)
	}
	got, _ := cl.ReadChunk(ctx, id)
	if got.Versions[0] != 1 || got.Data[0] != 1 {
		t.Fatalf("final chunk %+v", got)
	}
}

// TestServerClosedMidRunSurfacesNodeDown: killing the node's listener
// and connections must surface as ErrNodeDown on the next operation —
// promptly, not as a hang.
func TestServerClosedMidRunSurfacesNodeDown(t *testing.T) {
	cl, srv, _ := startNode(t)
	ctx := context.Background()
	id := client.ChunkID{Stripe: 2}
	if err := cl.PutChunk(ctx, id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.ReadChunk(ctx, id)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrNodeDown) {
			t.Fatalf("err = %v, want ErrNodeDown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("operation against a closed server hung")
	}
}

// TestServerRestartHeals: a new server on the same address (same
// engine) is reachable through the same client — the pool redials.
func TestServerRestartHeals(t *testing.T) {
	engine := nodeengine.New(memstore.New())
	defer engine.Close()
	srv := tcp.NewServer(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)
	cl := tcp.NewClient(addr)
	defer cl.Close()
	ctx := context.Background()
	id := client.ChunkID{Stripe: 1}
	if err := cl.PutChunk(ctx, id, []byte{7}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cl.ReadChunk(ctx, id); !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("down err = %v", err)
	}
	srv2 := tcp.NewServer(engine)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()
	got, err := cl.ReadChunk(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 7 {
		t.Fatalf("chunk lost across server restart: %+v", got)
	}
}

// TestStalePooledConnHealsTransparently: a node restart while the
// client holds idle pooled connections must not cost a spurious
// node-down — the first operation after the restart retries the dead
// pooled connection on a fresh dial and succeeds.
func TestStalePooledConnHealsTransparently(t *testing.T) {
	engine := nodeengine.New(memstore.New())
	defer engine.Close()
	srv := tcp.NewServer(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)
	cl := tcp.NewClient(addr)
	defer cl.Close()
	ctx := context.Background()
	id := client.ChunkID{Stripe: 5}
	if err := cl.PutChunk(ctx, id, []byte{3}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	// The pool now holds the connection that served the put. Restart
	// the node before the client touches it again.
	srv.Close()
	srv2 := tcp.NewServer(engine)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()
	got, err := cl.ReadChunk(ctx, id)
	if err != nil {
		t.Fatalf("read after node restart: %v (stale pooled conn not retried)", err)
	}
	if got.Data[0] != 3 {
		t.Fatalf("chunk = %+v", got)
	}
}

// stallService delays every ReadChunk until released, for cancellation
// tests.
type stallService struct {
	tcp.Service
	gate chan struct{}
}

func (s *stallService) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return client.Chunk{}, ctx.Err()
	}
	return s.Service.ReadChunk(ctx, id)
}

// TestCancellationUnblocksPromptly: a context cancelled while the node
// is stalling must unblock the client with the context's error, well
// before the node answers.
func TestCancellationUnblocksPromptly(t *testing.T) {
	engine := nodeengine.New(memstore.New())
	defer engine.Close()
	stall := &stallService{Service: engine, gate: make(chan struct{})}
	srv := tcp.NewServer(stall)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	defer close(stall.gate)
	cl := tcp.NewClient(ln.Addr().String())
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.ReadChunk(ctx, client.ChunkID{Stripe: 1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock the client")
	}
}

// TestDeadlineExpiresAsDeadlineError: an already-short deadline must
// come back as context.DeadlineExceeded, not ErrNodeDown.
func TestDeadlineExpiresAsDeadlineError(t *testing.T) {
	engine := nodeengine.New(memstore.New())
	defer engine.Close()
	stall := &stallService{Service: engine, gate: make(chan struct{})}
	srv := tcp.NewServer(stall)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	defer close(stall.gate)
	cl := tcp.NewClient(ln.Addr().String())
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := cl.ReadChunk(ctx, client.ChunkID{Stripe: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestUnreachableAddressIsNodeDown(t *testing.T) {
	// Reserve a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := tcp.NewClient(addr, tcp.WithDialTimeout(time.Second))
	defer cl.Close()
	if err := cl.Ping(context.Background()); !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestClosedClientRefusesOps(t *testing.T) {
	cl, _, _ := startNode(t)
	cl.Close()
	if err := cl.Ping(context.Background()); !errors.Is(err, tcp.ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

// TestOversizedRequestRejectedAsBadRequest: a request that cannot fit
// the frame limit must fail honestly as ErrBadRequest before touching
// the wire — not as a phantom node-down after the server drops the
// connection.
func TestOversizedRequestRejectedAsBadRequest(t *testing.T) {
	cl, _, _ := startNode(t)
	small := tcp.NewClient(cl.Addr(), tcp.WithClientMaxFrame(64))
	defer small.Close()
	err := small.PutChunk(context.Background(), client.ChunkID{Stripe: 1}, make([]byte, 4096), []uint64{1})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

// TestOversizedResponseLimit: a client with a tiny frame limit drops
// the connection instead of allocating the oversized response, and the
// failure is classified as node-down (the reply was unusable).
func TestOversizedResponseLimit(t *testing.T) {
	cl, _, _ := startNode(t)
	ctx := context.Background()
	id := client.ChunkID{Stripe: 3}
	if err := cl.PutChunk(ctx, id, make([]byte, 4096), []uint64{1}); err != nil {
		t.Fatal(err)
	}
	small := tcp.NewClient(cl.Addr(), tcp.WithClientMaxFrame(64))
	defer small.Close()
	if _, err := small.ReadChunk(ctx, id); !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}
