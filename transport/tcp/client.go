package tcp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/internal/wire"
)

// ErrClientClosed reports an operation on a closed NodeClient.
var ErrClientClosed = errors.New("tcp: client closed")

// ClientOption customises a NodeClient.
type ClientOption func(*NodeClient)

// WithDialTimeout bounds each connection attempt (default 5s). The
// operation context can always cut it shorter.
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *NodeClient) { c.dialTimeout = d }
}

// WithMaxIdleConns caps the pooled idle connections per node (default
// 8 — enough for the dispatch engine's default fan-out against one
// node). Extra connections are closed on release.
func WithMaxIdleConns(n int) ClientOption {
	return func(c *NodeClient) { c.maxIdle = n }
}

// WithClientMaxFrame caps the response frames the client accepts
// (default wire.DefaultMaxFrame).
func WithClientMaxFrame(max int) ClientOption {
	return func(c *NodeClient) { c.maxFrame = max }
}

// conn is one pooled connection with its per-connection buffers.
type conn struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sbuf []byte // request encode scratch
	rbuf []byte // response frame scratch
}

// NodeClient implements the public client.NodeClient contract over
// TCP against one node address. Connections are dialed on demand,
// pooled while idle, and dropped on any error, so a node restart heals
// transparently on the next operation.
//
// # Error taxonomy
//
// Node-side results travel as wire statuses and come back as the
// client package's sentinels (a remote version conflict still
// satisfies errors.Is(err, client.ErrVersionMismatch)). Transport
// failures — connection refused, reset, timeout — surface as
// client.ErrNodeDown wraps: on the wire, an unreachable node and a
// fail-stopped node are indistinguishable, which is exactly the
// protocol's fail-stop model. A cancelled or expired context surfaces
// as the context's error.
//
// # Cancellation
//
// Deadlines map onto socket deadlines; a cancellation mid-flight
// unblocks the socket immediately. One weakening of the in-process
// contract is inherent to real networks: an operation cancelled after
// the request reached the wire may or may not have taken effect on
// the node — the client cannot know, and reports the context error.
// See the client package's transport contract for how the protocol
// layers (rollback, repair, scrub) absorb that ambiguity.
type NodeClient struct {
	addr        string
	dialTimeout time.Duration
	maxIdle     int
	maxFrame    int
	res         *resilience // nil = no breaker/retry policy

	mu     sync.Mutex
	idle   []*conn
	closed bool
}

// Compile-time conformance: the TCP client is a full node client and
// a servable Service (so proxies compose).
var (
	_ client.NodeClient = (*NodeClient)(nil)
	_ Service           = (*NodeClient)(nil)
)

// NewClient builds a client for one node address. No connection is
// made until the first operation.
func NewClient(addr string, opts ...ClientOption) *NodeClient {
	c := &NodeClient{
		addr:        addr,
		dialTimeout: 5 * time.Second,
		maxIdle:     8,
		maxFrame:    wire.DefaultMaxFrame,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Addr returns the node address this client dials.
func (c *NodeClient) Addr() string { return c.addr }

// Close drops the idle pool. In-flight operations finish; their
// connections are closed on release.
func (c *NodeClient) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, cn := range idle {
		cn.nc.Close()
	}
	return nil
}

// Usable reports whether the link is worth sending fresh work to:
// false only while the circuit breaker is open and cooling down.
// Always true without a resilience policy.
func (c *NodeClient) Usable() bool {
	if c.res == nil {
		return true
	}
	return c.res.usable(time.Now())
}

// Latency returns the smoothed round-trip latency of successful
// exchanges, and false before the first sample (or without a
// resilience policy).
func (c *NodeClient) Latency() (time.Duration, bool) {
	if c.res == nil {
		return 0, false
	}
	d := time.Duration(c.res.ewmaNanos.Load())
	return d, d > 0
}

// LinkHealth snapshots the link's breaker state and resilience
// counters. The Node field is left zero — the backend that owns the
// client fills in the cluster index.
func (c *NodeClient) LinkHealth() client.LinkHealth {
	lh := client.LinkHealth{Addr: c.addr}
	if c.res == nil {
		return lh
	}
	lh.Breaker, lh.EWMA = c.res.snapshot()
	lh.BreakerOpens = c.res.opens.Load()
	lh.FastFails = c.res.fastFails.Load()
	lh.Retries = c.res.retries.Load()
	return lh
}

// RetryBudget exposes the budget the client draws from (nil without a
// resilience policy). Backends use pointer identity to aggregate a
// shared budget exactly once.
func (c *NodeClient) RetryBudget() *RetryBudget {
	if c.res == nil {
		return nil
	}
	return c.res.budget
}

// getConn pops an idle connection (pooled == true) or dials a new
// one.
func (c *NodeClient) getConn(ctx context.Context) (cn *conn, pooled bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, true, nil
	}
	c.mu.Unlock()
	cn, err = c.dial(ctx)
	return cn, false, err
}

// dial opens a fresh connection, bypassing the pool.
func (c *NodeClient) dial(ctx context.Context) (*conn, error) {
	d := net.Dialer{Timeout: c.dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	return &conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
}

// maxPooledScratch caps the per-connection frame buffers an idle
// connection may keep: one large transfer must not pin
// maxIdle × maxFrame of heap for the pool's lifetime.
const maxPooledScratch = 64 << 10

// putConn returns a healthy connection to the pool.
func (c *NodeClient) putConn(cn *conn) {
	// Clear any per-operation deadline before the connection rests.
	if err := cn.nc.SetDeadline(time.Time{}); err != nil {
		cn.nc.Close()
		return
	}
	if cap(cn.sbuf) > maxPooledScratch {
		cn.sbuf = nil
	}
	if cap(cn.rbuf) > maxPooledScratch {
		cn.rbuf = nil
	}
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.maxIdle {
		c.mu.Unlock()
		cn.nc.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// aLongTimeAgo is the deadline used to unblock socket IO on
// cancellation (the net package treats any past deadline as
// "interrupt now").
var aLongTimeAgo = time.Unix(1, 0)

// do performs one exchange under the client's resilience policy (if
// any): the breaker fast-fails while the node is known bad, each
// attempt is individually bounded by AttemptTimeout, and replay-safe
// operations retry with jittered backoff while the retry budget
// lasts. Without a policy it is exactly one attempt.
func (c *NodeClient) do(ctx context.Context, req *wire.Request) (wire.Response, error) {
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	// Stamp the placement epoch riding the context (client.WithEpoch)
	// into the frame, once for every operation: the node's stale-epoch
	// guard sees exactly what the coordinator operated under.
	if req.Epoch == 0 {
		req.Epoch = client.EpochFromContext(ctx)
	}
	// An oversized request would just make the server drop the
	// connection, reading as a phantom node-down; reject it here with
	// an honest error instead.
	if size := wire.EncodedRequestSize(req); size > c.maxFrame {
		return wire.Response{}, fmt.Errorf(
			"%w: encoded %s request is %d bytes, frame limit %d — raise the frame limit on client and server, or use smaller blocks",
			client.ErrBadRequest, req.Op, size, c.maxFrame)
	}
	r := c.res
	if r == nil {
		return c.attempt(ctx, req)
	}
	for n := 0; ; n++ {
		if !r.allow(time.Now()) {
			r.fastFails.Add(1)
			return wire.Response{}, fmt.Errorf("%w: %s %s: circuit breaker open",
				client.ErrNodeDown, req.Op, c.addr)
		}
		start := time.Now()
		resp, err := c.boundedAttempt(ctx, req)
		if err == nil {
			r.onSuccess(time.Since(start))
			r.budget.deposit()
			return resp, nil
		}
		if errors.Is(err, ErrClientClosed) {
			r.onAbandon()
			return wire.Response{}, err
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller's own context ended. A deadline blown on this
			// node is evidence against the node; a cancellation says
			// nothing about it — but either way the attempt must hand
			// back the half-open probe slot it may hold, or the breaker
			// would wedge half-open and fast-fail forever.
			if errors.Is(cerr, context.DeadlineExceeded) {
				r.onFailure(time.Now())
			} else {
				r.onAbandon()
			}
			return wire.Response{}, err
		}
		// Transport failure: refused, reset, torn frame, undecodable
		// response, attempt timeout — the breaker counts them all.
		r.onFailure(time.Now())
		if !req.Op.ReplaySafe() || n >= r.cfg.RetryAttempts || !r.budget.withdraw() {
			return wire.Response{}, err
		}
		r.retries.Add(1)
		if serr := sleepCtx(ctx, r.backoff(n+1)); serr != nil {
			return wire.Response{}, c.mapErr(ctx, req.Op, serr)
		}
	}
}

// boundedAttempt runs one attempt under the policy's AttemptTimeout.
// An attempt that hits the cap while the caller's context is still
// live is remapped to a node failure: the node had its chance and
// stalled, which must feed the breaker and fund a retry, not surface
// as the caller's own timeout.
func (c *NodeClient) boundedAttempt(ctx context.Context, req *wire.Request) (wire.Response, error) {
	at := c.res.cfg.AttemptTimeout
	if at <= 0 {
		return c.attempt(ctx, req)
	}
	actx, cancel := context.WithTimeout(ctx, at)
	defer cancel()
	resp, err := c.attempt(actx, req)
	if err != nil && ctx.Err() == nil && actx.Err() != nil {
		err = fmt.Errorf("%w: %s %s: attempt timed out after %v",
			client.ErrNodeDown, req.Op, c.addr, at)
	}
	return resp, err
}

// sleepCtx sleeps d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt performs one request/response exchange, mapping every
// failure into the transport taxonomy. The returned response's Data is
// copied out of connection-owned buffers and safe to retain.
//
// A pooled connection can be stale — the node restarted while it
// rested, and the first use discovers the broken pipe. So that a
// restart heals on the next operation instead of burning one spurious
// node-down per idle connection, a failure on a *reused* connection is
// retried once on a fresh dial — but only when the retry cannot
// duplicate an applied mutation: either the request never finished
// reaching the wire, or the operation is replay-safe under concurrent
// writers (see wire.Op.ReplaySafe). This free redial predates the
// resilience policy's budgeted retries and stays outside the budget: a
// stale pooled connection is a local artefact, not network weather.
func (c *NodeClient) attempt(ctx context.Context, req *wire.Request) (wire.Response, error) {
	cn, pooled, err := c.getConn(ctx)
	if err != nil {
		if errors.Is(err, ErrClientClosed) {
			return wire.Response{}, err
		}
		return wire.Response{}, c.mapErr(ctx, req.Op, err)
	}
	resp, wrote, err := c.exchange(ctx, cn, req)
	if err != nil {
		// The connection's state is unknown (a response may be in
		// flight, a frame half-written): never reuse it.
		cn.nc.Close()
		if pooled && ctx.Err() == nil && (!wrote || req.Op.ReplaySafe()) {
			fresh, derr := c.dial(ctx)
			if derr != nil {
				return wire.Response{}, c.mapErr(ctx, req.Op, derr)
			}
			resp, _, err = c.exchange(ctx, fresh, req)
			if err != nil {
				fresh.nc.Close()
				return wire.Response{}, c.mapErr(ctx, req.Op, err)
			}
			c.putConn(fresh)
			return resp, nil
		}
		return wire.Response{}, c.mapErr(ctx, req.Op, err)
	}
	c.putConn(cn)
	return resp, nil
}

// exchange runs the frame round trip on one connection, honouring the
// context through socket deadlines plus a cancellation watcher. wrote
// reports whether the request frame completely reached the socket —
// before that point the node cannot have applied anything, so the
// caller may retry any operation on a fresh connection.
func (c *NodeClient) exchange(ctx context.Context, cn *conn, req *wire.Request) (resp wire.Response, wrote bool, err error) {
	if deadline, ok := ctx.Deadline(); ok {
		if err := cn.nc.SetDeadline(deadline); err != nil {
			return wire.Response{}, false, err
		}
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		parked := make(chan struct{})
		go func() {
			defer close(parked)
			select {
			case <-ctx.Done():
				cn.nc.SetDeadline(aLongTimeAgo)
			case <-stop:
			}
		}()
		// Wait the watcher out so a late cancellation cannot poison
		// the connection after it returns to the pool.
		defer func() { close(stop); <-parked }()
	}

	cn.sbuf = wire.AppendRequest(cn.sbuf[:0], req)
	if err := wire.WriteFrame(cn.bw, cn.sbuf); err != nil {
		return wire.Response{}, false, err
	}
	if err := cn.bw.Flush(); err != nil {
		return wire.Response{}, false, err
	}
	wrote = true
	payload, err := wire.ReadFrame(cn.br, cn.rbuf, c.maxFrame)
	if err != nil {
		return wire.Response{}, wrote, err
	}
	cn.rbuf = payload[:0]
	resp, err = wire.DecodeResponse(payload)
	if err != nil {
		return wire.Response{}, wrote, err
	}
	// The response data aliases the connection's frame buffer; copy it
	// before the connection serves anyone else.
	if len(resp.Data) > 0 {
		resp.Data = append([]byte(nil), resp.Data...)
	}
	return resp, wrote, nil
}

// mapErr folds a transport failure into the protocol's taxonomy: the
// context's own error when the caller gave up, client.ErrNodeDown for
// everything else (refused, reset, timed out, torn frames — on the
// wire they are all "the node did not answer").
func (c *NodeClient) mapErr(ctx context.Context, op wire.Op, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("tcp: %s %s: %w", op, c.addr, ctxErr)
	}
	return fmt.Errorf("%w: %s %s: %v", client.ErrNodeDown, op, c.addr, err)
}

// call runs an exchange and surfaces the node's status as an error.
func (c *NodeClient) call(ctx context.Context, req *wire.Request) (wire.Response, error) {
	resp, err := c.do(ctx, req)
	if err != nil {
		return wire.Response{}, err
	}
	if err := resp.Status.Err(resp.Detail); err != nil {
		return wire.Response{}, err
	}
	return resp, nil
}

// Ping checks the node answers on the wire (a transport health probe;
// no store access).
func (c *NodeClient) Ping(ctx context.Context) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// ReadChunk implements client.NodeClient.
func (c *NodeClient) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpReadChunk, ID: id})
	if err != nil {
		return client.Chunk{}, err
	}
	return client.Chunk{Data: resp.Data, Versions: resp.Versions, Sums: resp.Sums}, nil
}

// ReadVersions implements client.NodeClient.
func (c *NodeClient) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, []client.BlockSum, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpReadVersions, ID: id})
	if err != nil {
		return nil, nil, err
	}
	return resp.Versions, resp.Sums, nil
}

// PutChunk implements client.NodeClient.
func (c *NodeClient) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpPutChunk, ID: id, Data: data, Versions: versions, Sums: sums})
	return err
}

// PutChunkIfFresher implements client.NodeClient.
func (c *NodeClient) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpPutChunkIfFresher, ID: id, Data: data, Versions: versions, Sums: sums})
	return err
}

// CompareAndPut implements client.NodeClient.
func (c *NodeClient) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpCompareAndPut, ID: id, Slot: slot, Expect: expect, Next: next, Data: data, Sums: sum})
	return err
}

// CompareAndAdd implements client.NodeClient.
func (c *NodeClient) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpCompareAndAdd, ID: id, Slot: slot, Expect: expect, Next: next, Data: delta, Sums: sum})
	return err
}

// DeleteChunk implements client.NodeClient.
func (c *NodeClient) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpDeleteChunk, ID: id})
	return err
}

// HasChunk reports whether the node stores the chunk.
func (c *NodeClient) HasChunk(ctx context.Context, id client.ChunkID) (bool, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpHasChunk, ID: id})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Wipe erases the remote node's store (media replacement).
func (c *NodeClient) Wipe(ctx context.Context) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpWipe})
	return err
}

// SetEpoch durably records the epoch watermarks and placement blob on
// the remote node (see client.EpochSetter). The installed watermark
// rides the Next field, the retired watermark rides Expect.
func (c *NodeClient) SetEpoch(ctx context.Context, installed, retired uint64, blob []byte) error {
	_, err := c.call(ctx, &wire.Request{Op: wire.OpEpochSet, Next: installed, Expect: retired, Data: blob})
	return err
}

// EpochState reads back the remote node's persisted epoch watermarks
// and placement blob (see client.EpochSetter).
func (c *NodeClient) EpochState(ctx context.Context) (installed, retired uint64, blob []byte, err error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpEpochGet})
	if err != nil {
		return 0, 0, nil, err
	}
	if len(resp.Versions) >= 2 {
		installed, retired = resp.Versions[0], resp.Versions[1]
	}
	return installed, retired, resp.Data, nil
}

// Compile-time conformance with the optional reconfiguration surface.
var _ client.EpochSetter = (*NodeClient)(nil)
