package trapquorum

// One benchmark per experiment of DESIGN.md §3. Each regenerates the
// corresponding figure's data (F2–F5), validates closed forms by
// Monte-Carlo (V1), or measures the ablations (A1–A4) and the
// concurrent-engine experiments (A8: sequential vs parallel latency,
// straggler isolation, hedged tails — recorded in
// docs/PERFORMANCE.md). Key scalar outputs are attached via
// b.ReportMetric so `go test -bench` output doubles as the numeric
// record the docs cite.

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"trapquorum/internal/availability"
	"trapquorum/internal/erasure"
	"trapquorum/internal/figures"
	"trapquorum/internal/latency"
	"trapquorum/internal/montecarlo"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// BenchmarkFig2WriteAvailability regenerates Figure 2 (write
// availability vs p, one curve per w on the Figure-1 trapezoid).
func BenchmarkFig2WriteAvailability(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	v, err := fig.At("w=3", 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "Pwrite(w=3,p=0.9)")
}

// BenchmarkFig3ReadAvailability regenerates Figure 3 (read
// availability, TRAP-ERC vs TRAP-FR). The reported metrics are the
// paper's quoted p=0.5 values: FR ≈ 0.75, ERC ≈ 0.63.
func BenchmarkFig3ReadAvailability(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	fr, _ := fig.At("TRAP-FR", 0.5)
	erc, _ := fig.At("TRAP-ERC(eq13)", 0.5)
	b.ReportMetric(fr, "PreadFR(p=0.5)")
	b.ReportMetric(erc, "PreadERC(p=0.5)")
}

// BenchmarkFig4ReadAvailabilityRedundancy regenerates Figure 4 (ERC
// read availability vs p for n−k ∈ {5,7,9,11}, n=15).
func BenchmarkFig4ReadAvailabilityRedundancy(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, _ := fig.At("k=10 (n-k=5)", 0.5)
	hi, _ := fig.At("k=4 (n-k=11)", 0.5)
	b.ReportMetric(lo, "Pread(k=10,p=0.5)")
	b.ReportMetric(hi, "Pread(k=4,p=0.5)")
}

// BenchmarkFig5StorageSpace regenerates Figure 5 (storage per block vs
// k for n=15). Reported: the paper's k=8 example (FR = 8 blocks,
// ERC = 1.875 blocks).
func BenchmarkFig5StorageSpace(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	fr, _ := fig.At("TRAP-FR", 8)
	erc, _ := fig.At("TRAP-ERC", 8)
	b.ReportMetric(fr, "D_FR(k=8)")
	b.ReportMetric(erc, "D_ERC(k=8)")
}

// BenchmarkMonteCarloValidation runs the V1 experiment: Monte-Carlo
// estimates against every closed form on the Figure-3 configuration.
// Reported: the worst absolute formula-vs-estimate gap across the
// grid (should sit within sampling noise).
func BenchmarkMonteCarloValidation(b *testing.B) {
	const trials = 4000
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.MonteCarloValidation(trials, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for pair := 0; pair < len(fig.Series); pair += 2 {
		for i := range fig.X {
			if d := math.Abs(fig.Series[pair].Y[i] - fig.Series[pair+1].Y[i]); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "worst|formula-mc|")
}

// BenchmarkAblationBaselines runs the A1 experiment: trapezoid vs
// ROWA/Majority/Grid/Tree availability curves. Reported: trapezoid and
// majority write availability at p=0.9.
func BenchmarkAblationBaselines(b *testing.B) {
	var w *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		w, err = figures.AblationWrite()
		if err != nil {
			b.Fatal(err)
		}
		if _, err = figures.AblationRead(); err != nil {
			b.Fatal(err)
		}
	}
	trap, _ := w.At("Trapezoid(a=2 b=3 h=1)", 0.9)
	maj, _ := w.At("Majority(n=8)", 0.9)
	b.ReportMetric(trap, "trapezoid@0.9")
	b.ReportMetric(maj, "majority@0.9")
}

// BenchmarkAblationUpdateCostDelta measures the A2 experiment's fast
// path: updating one block's parity via the in-place Galois delta
// (what Algorithm 1 ships to parity nodes).
func BenchmarkAblationUpdateCostDelta(b *testing.B) {
	code, err := erasure.New(15, 8)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	data := make([][]byte, 8)
	for i := range data {
		data[i] = make([]byte, 4096)
		r.Read(data[i])
	}
	shards, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	newBlock := make([]byte, 4096)
	r.Read(newBlock)
	b.SetBytes(int64(code.ParityCount()) * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 8; j < 15; j++ {
			code.UpdateParity(shards[j], j, 3, data[3], newBlock)
		}
	}
}

// BenchmarkAblationUpdateCostReencode measures the A2 experiment's
// slow path: the full stripe re-encode a protocol without in-place
// updates would need for the same single-block change.
func BenchmarkAblationUpdateCostReencode(b *testing.B) {
	code, err := erasure.New(15, 8)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	data := make([][]byte, 8)
	for i := range data {
		data[i] = make([]byte, 4096)
		r.Read(data[i])
	}
	b.SetBytes(int64(code.ParityCount()) * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolEndToEndWrite measures the A3 experiment: one
// quorum block write (Algorithm 1) on a healthy (15,8) cluster.
func BenchmarkProtocolEndToEndWrite(b *testing.B) {
	store, err := OpenStore(context.Background(), WithCode(15, 8), WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 4096)
	}
	if err := store.SeedStripe(context.Background(), 1, blocks); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteBlock(context.Background(), 1, i%8, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolEndToEndRead measures one quorum block read
// (Algorithm 2, Case 1 fast path) on a healthy cluster.
func BenchmarkProtocolEndToEndRead(b *testing.B) {
	store, err := OpenStore(context.Background(), WithCode(15, 8), WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 4096)
	}
	if err := store.SeedStripe(context.Background(), 1, blocks); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolDegradedRead measures the decode path (Algorithm 2
// Case 2): the data node is down, the block is rebuilt from k shards.
func BenchmarkProtocolDegradedRead(b *testing.B) {
	store, err := OpenStore(context.Background(), WithCode(15, 8), WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 4096)
	}
	if err := store.SeedStripe(context.Background(), 1, blocks); err != nil {
		b.Fatal(err)
	}
	store.CrashNode(2) // force Case 2 for block 2
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndurance runs the A4 experiment: availability over
// virtual time under MTBF/MTTR failures, with and without the repair
// daemon. Reported: the final-window write rates of both runs — the
// gap is the decay the paper's model hides.
func BenchmarkEndurance(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Endurance(1500, 10, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.X) - 1
	for _, s := range fig.Series {
		switch s.Name {
		case "write(no repair)":
			b.ReportMetric(s.Y[last], "write-norepair@end")
		case "write(repair)":
			b.ReportMetric(s.Y[last], "write-repair@end")
		}
	}
}

// BenchmarkLatencyDistribution runs the A7 experiment: operation
// latency percentiles under a fixed 200µs per-node-op delay (a LAN
// RPC). Reported: p50 per scenario in milliseconds — healthy reads
// touch r_0+1 nodes, degraded reads fan out to decode, writes touch
// the whole write quorum.
func BenchmarkLatencyDistribution(b *testing.B) {
	tcfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := latency.Config{
		N: 15, K: 8,
		Trapezoid: tcfg,
		BlockSize: 4096,
		Delay:     sim.FixedDelay(200 * time.Microsecond),
		Ops:       20,
		Seed:      9,
	}
	var rep *latency.Report
	for i := 0; i < b.N; i++ {
		rep, err = latency.Measure(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e3*rep.Samples[latency.HealthyRead].Percentile(0.5), "readP50ms")
	b.ReportMetric(1e3*rep.Samples[latency.DegradedRead].Percentile(0.5), "degradedP50ms")
	b.ReportMetric(1e3*rep.Samples[latency.QuorumWrite].Percentile(0.5), "writeP50ms")
}

// lanBackend is the default fixture backend of the A8 concurrency
// benchmarks: every simulated node imposes a fixed 200µs
// per-operation latency (a LAN RPC).
func lanBackend() *SimBackend {
	return NewSimBackend(WithFixedNodeDelay(200 * time.Microsecond))
}

// benchDelayedStore opens a seeded (15,8) store on the given simulated
// backend, plus any extra options.
func benchDelayedStore(b *testing.B, backend *SimBackend, extra ...Option) *Store {
	b.Helper()
	opts := append([]Option{
		WithCode(15, 8),
		WithTrapezoid(2, 3, 1, 3),
		WithBackend(backend),
	}, extra...)
	store, err := OpenStore(context.Background(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 4096)
	}
	if err := store.SeedStripe(context.Background(), 1, blocks); err != nil {
		b.Fatal(err)
	}
	return store
}

// BenchmarkQuorumReadSequential measures a healthy quorum read under a
// 200µs per-node delay with the sequential engine (concurrency 1):
// latency is the *sum* of the version probes plus the chunk read.
func BenchmarkQuorumReadSequential(b *testing.B) {
	store := benchDelayedStore(b, lanBackend(), WithConcurrency(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuorumReadParallel is BenchmarkQuorumReadSequential on the
// default parallel fan-out: all probes fly at once and the read
// terminates at the first level quorum, so latency tracks the *max*
// per-level RPC latency. The A8 experiment is the ratio of the two.
func BenchmarkQuorumReadParallel(b *testing.B) {
	store := benchDelayedStore(b, lanBackend())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuorumWriteSequential measures a quorum write (initial
// read + 8 node updates) under a 200µs per-node delay, one RPC at a
// time.
func BenchmarkQuorumWriteSequential(b *testing.B) {
	store := benchDelayedStore(b, lanBackend(), WithConcurrency(1))
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteBlock(context.Background(), 1, i%8, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuorumWriteParallel is the same write on the parallel
// engine: the whole trapezoid is updated in one fan-out round.
func BenchmarkQuorumWriteParallel(b *testing.B) {
	store := benchDelayedStore(b, lanBackend())
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteBlock(context.Background(), 1, i%8, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstKDecodeUnderStraggler measures the degraded-read
// decode path with one surviving parity node 100× slower than the
// rest: first-k termination decodes from the 13 prompt shards and
// cancels the straggler, so the extra latency never lands on the
// read. (On the sequential engine the same read would serialise
// behind the straggler.)
func BenchmarkFirstKDecodeUnderStraggler(b *testing.B) {
	backend := lanBackend()
	store := benchDelayedStore(b, backend)
	store.CrashNode(2)                           // force Case 2 for block 2
	backend.SetNodeDelay(9, 20*time.Millisecond) // parity shard 9 lags
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnhedgedReadTailLatency is the no-hedging baseline of
// BenchmarkHedgedReadTailLatency: healthy reads under the same
// heavy-tailed per-node delay (uniform 100µs–8ms), where a slow draw
// on a needed node lands directly on the read latency.
func BenchmarkUnhedgedReadTailLatency(b *testing.B) {
	store := benchDelayedStore(b,
		NewSimBackend(WithUniformNodeDelay(100*time.Microsecond, 8*time.Millisecond, 7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHedgedReadTailLatency measures healthy reads under a heavy-
// tailed per-node delay (uniform 100µs–8ms) with adaptive hedging at
// the 0.25 window quantile (floored at 500µs) — aggressive on purpose,
// since under this distribution most of a read's latency is one slow
// draw and a fresh draw usually lands first. Reported: how many RPCs
// the run hedged.
func BenchmarkHedgedReadTailLatency(b *testing.B) {
	store := benchDelayedStore(b,
		NewSimBackend(WithUniformNodeDelay(100*time.Microsecond, 8*time.Millisecond, 7)),
		WithHedging(500*time.Microsecond, 0.25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.ReadBlock(context.Background(), 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Metrics().HedgedRPCs), "hedgedRPCs")
}

// BenchmarkProtocolAvailabilityAtP measures protocol-level Monte-Carlo
// availability estimation throughput (trials per op) and reports the
// estimates at p = 0.85 next to the closed forms.
func BenchmarkProtocolAvailabilityAtP(b *testing.B) {
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		b.Fatal(err)
	}
	pe, err := montecarlo.NewProtocolEstimator(context.Background(), 15, 8, cfg, 512, 3)
	if err != nil {
		b.Fatal(err)
	}
	defer pe.Close()
	const trials = 400
	var res montecarlo.Result
	for i := 0; i < b.N; i++ {
		res, err = pe.EstimateRead(context.Background(), 0.85, trials, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Estimate(), "mcRead@0.85")
	e := availability.ERCParams{Config: cfg, N: 15, K: 8}
	exact, err := availability.ReadERCExact(e, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(exact, "exactRead@0.85")
}
