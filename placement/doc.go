// Package placement maps stripes onto the nodes of a cluster that is
// larger than one stripe's n shards — the layer that turns the
// single-stripe trapezoid protocol into a storage system.
//
// # The placement model
//
// The quorum protocol operates on one stripe at a time: n shards (k
// data + n−k parity), each on its own node. A cluster serving real
// traffic holds many stripes over M ≥ n nodes, and a Strategy decides
// which M-sized cluster node stores each of a stripe's n shards. The
// contract is pure and deterministic: Place(stripe, n) must always
// return the same n distinct cluster nodes for the same stripe, so
// that every reader, writer and repairer derives the identical layout
// without coordination, and Nodes() declares the cluster size the
// backend is asked to provision.
//
// Spreading stripes matters for two reasons. Load: rotating placements
// level both foreground I/O and repair traffic across the cluster
// instead of hammering the first n nodes. Fault domains: when one node
// fails, the shards it held belong to many different stripes, so the
// repair work fans out across the whole cluster rather than
// serialising behind n−1 fixed peers.
//
// Two strategies are provided: RoundRobin rotation (balanced,
// trivially debuggable) and the consistent-hash Ring (stable under
// cluster growth: adding a node moves only the stripes that hash next
// to it). Implement Strategy to bring your own layout — e.g.
// rack-aware spreading.
package placement
