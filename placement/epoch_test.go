package placement_test

import (
	"testing"

	"trapquorum/placement"
)

// TestMapTranslatesPositions pins the epoch map's one job: the inner
// strategy places over positions 0..len(roster)-1 and the map
// translates each position to the roster's cluster id, preserving
// order and determinism.
func TestMapTranslatesPositions(t *testing.T) {
	rr, err := placement.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	roster := []int{2, 5, 9, 11}
	m, err := placement.NewMap(3, rr, roster)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 3 {
		t.Fatalf("Epoch = %d, want 3", got)
	}
	if got := m.Nodes(); got != 12 {
		t.Fatalf("Nodes = %d, want max(roster)+1 = 12", got)
	}
	inner, err := rr.Place(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Place(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inner) {
		t.Fatalf("Place returned %d nodes, inner strategy %d", len(got), len(inner))
	}
	for i, p := range inner {
		if got[i] != roster[p] {
			t.Fatalf("shard %d: position %d should map to node %d, got %d", i, p, roster[p], got[i])
		}
	}
	// Same stripe, same answer: the map adds no nondeterminism.
	again, err := m.Place(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("Place(7) not deterministic: %v vs %v", got, again)
		}
	}
}

// TestMapActiveIsACopy pins the immutability contract: mutating the
// roster slice passed in, or the one handed out, never changes the map.
func TestMapActiveIsACopy(t *testing.T) {
	rr, err := placement.NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	roster := []int{0, 1, 2}
	m, err := placement.NewMap(1, rr, roster)
	if err != nil {
		t.Fatal(err)
	}
	roster[0] = 99
	if got := m.Active(); got[0] != 0 {
		t.Fatalf("map shares the caller's roster slice: Active = %v", got)
	}
	out := m.Active()
	out[1] = 99
	if got := m.Active(); got[1] != 1 {
		t.Fatalf("Active hands out its internal slice: %v", got)
	}
}

// TestMapValidation pins the constructor's rejections.
func TestMapValidation(t *testing.T) {
	rr3, err := placement.NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		strat  placement.Strategy
		active []int
	}{
		"nil strategy":         {nil, []int{0, 1, 2}},
		"empty roster":         {rr3, nil},
		"roster size mismatch": {rr3, []int{0, 1}},
		"negative node id":     {rr3, []int{0, -1, 2}},
		"duplicate node id":    {rr3, []int{0, 1, 1}},
	} {
		if _, err := placement.NewMap(1, tc.strat, tc.active); err == nil {
			t.Errorf("%s: NewMap accepted it", name)
		}
	}
}

// TestMapWithRing pins that the map composes with any inner strategy,
// not just round-robin: a ring over 5 positions mapped onto a sparse
// roster places every shard on a roster id.
func TestMapWithRing(t *testing.T) {
	ring, err := placement.NewRing(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	roster := []int{1, 3, 5, 7, 9}
	m, err := placement.NewMap(2, ring, roster)
	if err != nil {
		t.Fatal(err)
	}
	onRoster := make(map[int]bool, len(roster))
	for _, id := range roster {
		onRoster[id] = true
	}
	for stripe := uint64(0); stripe < 50; stripe++ {
		nodes, err := m.Place(stripe, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 4 {
			t.Fatalf("stripe %d: placed %d shards, want 4", stripe, len(nodes))
		}
		seen := make(map[int]bool, len(nodes))
		for _, id := range nodes {
			if !onRoster[id] {
				t.Fatalf("stripe %d placed on node %d outside roster %v", stripe, id, roster)
			}
			if seen[id] {
				t.Fatalf("stripe %d placed two shards on node %d", stripe, id)
			}
			seen[id] = true
		}
	}
}
