// Package placement maps stripes onto the nodes of a cluster that is
// larger than one stripe's n shards — the layer that turns the
// single-stripe protocol into a storage system. Two strategies are
// provided: round-robin rotation (balanced, trivially debuggable) and
// a consistent-hash ring (stable under cluster growth).
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Strategy assigns the n shards of a stripe to distinct cluster nodes.
type Strategy interface {
	// Name identifies the strategy in tables.
	Name() string
	// Place returns the cluster node for every shard of the stripe:
	// a slice of length shards with distinct entries in [0, Nodes()).
	Place(stripe uint64, shards int) ([]int, error)
	// Nodes returns the cluster size.
	Nodes() int
}

// RoundRobin rotates stripe s by s mod M across M nodes: shard j of
// stripe s lands on node (s + j) mod M.
type RoundRobin struct {
	nodes int
}

// NewRoundRobin builds a rotation placement over `nodes` cluster nodes.
func NewRoundRobin(nodes int) (*RoundRobin, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("placement: need nodes >= 1, got %d", nodes)
	}
	return &RoundRobin{nodes: nodes}, nil
}

// Name implements Strategy.
func (r *RoundRobin) Name() string { return fmt.Sprintf("roundrobin(%d)", r.nodes) }

// Nodes implements Strategy.
func (r *RoundRobin) Nodes() int { return r.nodes }

// Place implements Strategy.
func (r *RoundRobin) Place(stripe uint64, shards int) ([]int, error) {
	if shards < 1 || shards > r.nodes {
		return nil, fmt.Errorf("placement: %d shards do not fit %d nodes", shards, r.nodes)
	}
	out := make([]int, shards)
	base := int(stripe % uint64(r.nodes))
	for j := range out {
		out[j] = (base + j) % r.nodes
	}
	return out, nil
}

// Ring is a consistent-hash ring with virtual nodes: shard j of stripe
// s is assigned to the owner of hash(s, j), walking the ring to skip
// nodes already used by the stripe. Placements are stable: adding a
// node moves only the stripes that hash next to it.
type Ring struct {
	nodes    int
	vnodes   int
	hashes   []uint64 // sorted virtual-node hashes
	owners   []int    // owners[i] = node owning hashes[i]
	ringName string
}

// NewRing builds a ring over `nodes` cluster nodes with `vnodes`
// virtual nodes each (16–128 is typical; more = smoother balance).
func NewRing(nodes, vnodes int) (*Ring, error) {
	if nodes < 1 || vnodes < 1 {
		return nil, fmt.Errorf("placement: need nodes >= 1 and vnodes >= 1, got %d/%d", nodes, vnodes)
	}
	r := &Ring{nodes: nodes, vnodes: vnodes, ringName: fmt.Sprintf("ring(%d,v%d)", nodes, vnodes)}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, nodes*vnodes)
	for node := 0; node < nodes; node++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{h: hash2(uint64(node), uint64(v)), owner: node})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].owner < points[j].owner
	})
	r.hashes = make([]uint64, len(points))
	r.owners = make([]int, len(points))
	for i, pt := range points {
		r.hashes[i] = pt.h
		r.owners[i] = pt.owner
	}
	return r, nil
}

// Name implements Strategy.
func (r *Ring) Name() string { return r.ringName }

// Nodes implements Strategy.
func (r *Ring) Nodes() int { return r.nodes }

// Place implements Strategy.
func (r *Ring) Place(stripe uint64, shards int) ([]int, error) {
	if shards < 1 || shards > r.nodes {
		return nil, fmt.Errorf("placement: %d shards do not fit %d nodes", shards, r.nodes)
	}
	out := make([]int, 0, shards)
	used := make(map[int]bool, shards)
	for j := 0; len(out) < shards; j++ {
		h := hash2(stripe, uint64(j))
		idx := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
		// Walk clockwise until an unused node owns the point.
		for probe := 0; probe < len(r.owners); probe++ {
			owner := r.owners[(idx+probe)%len(r.owners)]
			if !used[owner] {
				used[owner] = true
				out = append(out, owner)
				break
			}
		}
	}
	return out, nil
}

// hash2 hashes a pair of integers with FNV-1a.
func hash2(a, b uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(a >> (8 * i))
		buf[8+i] = byte(b >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}
