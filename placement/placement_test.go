package placement

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinValidation(t *testing.T) {
	if _, err := NewRoundRobin(0); err == nil {
		t.Fatal("nodes=0 accepted")
	}
	rr, err := NewRoundRobin(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Place(1, 6); err == nil {
		t.Fatal("shards > nodes accepted")
	}
	if _, err := rr.Place(1, 0); err == nil {
		t.Fatal("shards = 0 accepted")
	}
}

func TestRoundRobinDistinctAndRotating(t *testing.T) {
	rr, _ := NewRoundRobin(10)
	for stripe := uint64(0); stripe < 30; stripe++ {
		p, err := rr.Place(stripe, 4)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, node := range p {
			if node < 0 || node >= 10 {
				t.Fatalf("node %d out of range", node)
			}
			if seen[node] {
				t.Fatalf("stripe %d: duplicate node %d", stripe, node)
			}
			seen[node] = true
		}
		if p[0] != int(stripe%10) {
			t.Fatalf("stripe %d starts at %d", stripe, p[0])
		}
	}
}

func TestRoundRobinBalance(t *testing.T) {
	rr, _ := NewRoundRobin(8)
	counts := make([]int, 8)
	const stripes = 800
	for s := uint64(0); s < stripes; s++ {
		p, _ := rr.Place(s, 3)
		for _, node := range p {
			counts[node]++
		}
	}
	for node, c := range counts {
		if c != 3*stripes/8 {
			t.Fatalf("node %d holds %d shards, want %d", node, c, 3*stripes/8)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("nodes=0 accepted")
	}
	if _, err := NewRing(4, 0); err == nil {
		t.Fatal("vnodes=0 accepted")
	}
	ring, err := NewRing(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Place(1, 5); err == nil {
		t.Fatal("shards > nodes accepted")
	}
}

func TestRingDistinctNodes(t *testing.T) {
	ring, _ := NewRing(12, 32)
	for stripe := uint64(0); stripe < 200; stripe++ {
		p, err := ring.Place(stripe, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 9 {
			t.Fatalf("placement size %d", len(p))
		}
		seen := map[int]bool{}
		for _, node := range p {
			if node < 0 || node >= 12 {
				t.Fatalf("node %d out of range", node)
			}
			if seen[node] {
				t.Fatalf("stripe %d: duplicate node", stripe)
			}
			seen[node] = true
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(10, 16)
	b, _ := NewRing(10, 16)
	for stripe := uint64(0); stripe < 50; stripe++ {
		pa, _ := a.Place(stripe, 6)
		pb, _ := b.Place(stripe, 6)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("ring placement not deterministic")
			}
		}
	}
}

func TestRingRoughBalance(t *testing.T) {
	ring, _ := NewRing(10, 64)
	counts := make([]int, 10)
	const stripes = 3000
	for s := uint64(0); s < stripes; s++ {
		p, _ := ring.Place(s, 3)
		for _, node := range p {
			counts[node]++
		}
	}
	mean := 3 * stripes / 10
	for node, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("node %d holds %d shards, mean %d — ring badly unbalanced", node, c, mean)
		}
	}
}

// TestRingStability checks the consistent-hashing property: growing
// the cluster by one node relocates only a minority of shard slots.
func TestRingStability(t *testing.T) {
	small, _ := NewRing(10, 64)
	big, _ := NewRing(11, 64)
	const stripes = 1000
	const shards = 5
	moved := 0
	for s := uint64(0); s < stripes; s++ {
		ps, _ := small.Place(s, shards)
		pb, _ := big.Place(s, shards)
		for i := range ps {
			if ps[i] != pb[i] {
				moved++
			}
		}
	}
	frac := float64(moved) / float64(stripes*shards)
	// Perfect consistent hashing would move ~1/11 ≈ 9%; allow slack
	// for the distinct-node walk, but far below rehash-everything.
	if frac > 0.35 {
		t.Fatalf("adding one node moved %.1f%% of shard slots", 100*frac)
	}
}

func TestPlacementFullWidth(t *testing.T) {
	// shards == nodes must enumerate every node exactly once.
	for _, strat := range []Strategy{
		mustRR(t, 7), mustRing(t, 7, 16),
	} {
		p, err := strat.Place(3, 7)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		seen := map[int]bool{}
		for _, n := range p {
			seen[n] = true
		}
		if len(seen) != 7 {
			t.Fatalf("%s: full-width placement covers %d nodes", strat.Name(), len(seen))
		}
	}
}

func mustRR(t *testing.T, n int) *RoundRobin {
	t.Helper()
	rr, err := NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

func mustRing(t *testing.T, n, v int) *Ring {
	t.Helper()
	r, err := NewRing(n, v)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPlacementProperty(t *testing.T) {
	ring, _ := NewRing(20, 32)
	rr, _ := NewRoundRobin(20)
	f := func(stripe uint64, shardsRaw uint8) bool {
		shards := 1 + int(shardsRaw%20)
		for _, strat := range []Strategy{ring, rr} {
			p, err := strat.Place(stripe, shards)
			if err != nil || len(p) != shards {
				return false
			}
			seen := map[int]bool{}
			for _, n := range p {
				if n < 0 || n >= 20 || seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRingPlace(b *testing.B) {
	ring, _ := NewRing(50, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Place(uint64(i), 15); err != nil {
			b.Fatal(err)
		}
	}
}
