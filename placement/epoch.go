package placement

import (
	"errors"
	"fmt"
)

// Map is an epoch-stamped placement: a Strategy bound to a specific
// placement epoch and to the roster of cluster node ids active in that
// epoch. The inner strategy places shards over positions
// 0..len(active)-1; Map translates those positions to real cluster
// node ids, so the same strategy type serves every epoch of a cluster
// whose membership grows and shrinks. Map is immutable once built —
// reconfiguration creates a new Map under the next epoch rather than
// mutating the old one, which lets old and new placements coexist
// while a migration drains.
type Map struct {
	epoch  uint64
	strat  Strategy
	active []int
	nodes  int // max(active)+1: the id-space size, not the roster size
}

// NewMap binds strat to an epoch and an active node roster. The
// strategy's node count must equal len(active), and the roster must be
// distinct non-negative cluster ids (order is meaningful: strategy
// position i maps to active[i]).
func NewMap(epoch uint64, strat Strategy, active []int) (*Map, error) {
	if strat == nil {
		return nil, errors.New("placement: NewMap(nil strategy)")
	}
	if len(active) == 0 {
		return nil, errors.New("placement: NewMap with empty roster")
	}
	if got := strat.Nodes(); got != len(active) {
		return nil, fmt.Errorf("placement: strategy spans %d nodes, roster has %d", got, len(active))
	}
	seen := make(map[int]bool, len(active))
	maxID := -1
	for _, id := range active {
		if id < 0 {
			return nil, fmt.Errorf("placement: negative node id %d in roster", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("placement: duplicate node id %d in roster", id)
		}
		seen[id] = true
		if id > maxID {
			maxID = id
		}
	}
	roster := make([]int, len(active))
	copy(roster, active)
	return &Map{epoch: epoch, strat: strat, active: roster, nodes: maxID + 1}, nil
}

// Epoch returns the placement epoch this map is stamped with.
func (m *Map) Epoch() uint64 { return m.epoch }

// Active returns a copy of the active node roster.
func (m *Map) Active() []int {
	out := make([]int, len(m.active))
	copy(out, m.active)
	return out
}

// Name identifies the map for diagnostics.
func (m *Map) Name() string {
	return fmt.Sprintf("epoch(%d,%s)", m.epoch, m.strat.Name())
}

// Place maps the stripe's shards through the inner strategy and
// translates strategy positions to active cluster node ids.
func (m *Map) Place(stripe uint64, shards int) ([]int, error) {
	pos, err := m.strat.Place(stripe, shards)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(pos))
	for i, p := range pos {
		if p < 0 || p >= len(m.active) {
			return nil, fmt.Errorf("placement: %s placed shard %d at position %d outside roster of %d",
				m.strat.Name(), i, p, len(m.active))
		}
		out[i] = m.active[p]
	}
	return out, nil
}

// Nodes reports the cluster id-space the map spans: max(active)+1.
// This is the count of node slots a backend must provision, which can
// exceed the roster size after nodes are removed from the roster but
// keep their ids.
func (m *Map) Nodes() int { return m.nodes }
