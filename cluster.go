package trapquorum

import (
	"context"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

// clusterHandle is the node-management and availability-analytics
// surface Store and ObjectStore share: both sit on one backend-provided
// cluster and one (n,k)+trapezoid configuration.
type clusterHandle struct {
	n, k    int
	tcfg    trapezoid.Config
	backend Backend
	heal    *healer // nil unless WithSelfHeal was configured
}

func newClusterHandle(cfg *config, tcfg trapezoid.Config) clusterHandle {
	return clusterHandle{n: cfg.n, k: cfg.k, tcfg: tcfg, backend: cfg.backend}
}

// Close stops the self-healing subsystem (when enabled) and releases
// the backend's nodes. The store is unusable afterwards.
func (h *clusterHandle) Close() error {
	h.heal.Close()
	return h.backend.Close()
}

// Health returns the self-healing subsystem's snapshot: per-node
// liveness state, the repair backlog and the anti-entropy scrub
// position. On a store opened without WithSelfHeal it returns the
// zero report (Enabled false) — except Links, which the transport's
// resilience layer populates with or without a monitor when the
// backend implements LinkReporter.
func (h *clusterHandle) Health() HealthReport {
	r := h.heal.report()
	if lr, ok := h.backend.(LinkReporter); ok {
		r.Links = lr.LinkHealth()
	}
	return r
}

// CodeParams returns the (n, k) MDS code parameters.
func (h *clusterHandle) CodeParams() (n, k int) { return h.n, h.k }

// CrashNode fail-stops cluster node j: data survives, operations
// against the node fail until RestartNode. It requires a
// fault-injecting backend (the simulator) and returns an
// ErrNotSupported wrap otherwise — a real fleet's nodes crash on
// their own, they cannot be crashed through the client.
func (h *clusterHandle) CrashNode(j int) error {
	fi, err := faultInjector(h.backend, "CrashNode")
	if err != nil {
		return err
	}
	fi.Crash(j)
	return nil
}

// RestartNode revives cluster node j with its chunks intact. Requires
// a fault-injecting backend (ErrNotSupported otherwise).
func (h *clusterHandle) RestartNode(j int) error {
	fi, err := faultInjector(h.backend, "RestartNode")
	if err != nil {
		return err
	}
	fi.Restart(j)
	return nil
}

// AliveNodes returns how many cluster nodes are currently up.
// Requires a fault-injecting backend (ErrNotSupported otherwise —
// over a real transport, liveness is an observation, not a census;
// probe the nodes or scrub instead).
func (h *clusterHandle) AliveNodes() (int, error) {
	fi, err := faultInjector(h.backend, "AliveNodes")
	if err != nil {
		return 0, err
	}
	return fi.AliveNodes(), nil
}

// WipeNode erases cluster node j's storage (media replacement).
// Requires a fault-injecting backend (ErrNotSupported otherwise). The
// node must be up. Follow with RepairNode.
func (h *clusterHandle) WipeNode(ctx context.Context, j int) error {
	fi, err := faultInjector(h.backend, "WipeNode")
	if err != nil {
		return err
	}
	return fi.Wipe(ctx, j)
}

// WriteAvailability evaluates the paper's equation (8)/(9): the
// probability a block write succeeds when every node is independently
// up with probability p. Identical for the erasure-coded and
// full-replication variants.
func (h *clusterHandle) WriteAvailability(p float64) float64 {
	return availability.Write(h.tcfg, p)
}

// ReadAvailability evaluates the paper's equation (13): the
// probability a block read succeeds at node availability p.
func (h *clusterHandle) ReadAvailability(p float64) (float64, error) {
	return availability.ReadERC(availability.ERCParams{Config: h.tcfg, N: h.n, K: h.k}, p)
}

// ReadAvailabilityFullReplication evaluates equation (10): what the
// same trapezoid would deliver with full replicas instead of parity.
func (h *clusterHandle) ReadAvailabilityFullReplication(p float64) float64 {
	return availability.ReadFR(h.tcfg, p)
}

// StorageOverhead returns the disk used per data block in units of
// block size: n/k (equation 15), versus n−k+1 under full replication
// (equation 14).
func (h *clusterHandle) StorageOverhead() float64 {
	return availability.StorageERC(h.n, h.k)
}

// FullReplicationOverhead returns equation (14)'s n−k+1 for
// comparison.
func (h *clusterHandle) FullReplicationOverhead() float64 {
	return availability.StorageFR(h.n, h.k)
}
