// Quickstart: open a TRAP-ERC store with the paper's (15,8)
// configuration, store an object, update a block in place, lose nodes
// up to the code's tolerance, and read everything back intact.
package main

import (
	"bytes"
	"fmt"
	"log"

	"trapquorum"
)

func main() {
	// The paper's Figure-3 configuration: a (15,8) MDS code protected
	// by a two-level trapezoid (levels of 3 and 5 nodes) with w = 3.
	store, err := trapquorum.Open(trapquorum.Config{
		N: 15, K: 8,
		A: 2, B: 3, H: 1, W: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Printf("storage overhead: %.3fx block size (full replication would use %.0fx)\n",
		store.StorageOverhead(), store.FullReplicationOverhead())
	fmt.Printf("write availability at p=0.9: %.4f\n", store.WriteAvailability(0.9))
	if ra, err := store.ReadAvailability(0.9); err == nil {
		fmt.Printf("read availability at p=0.9:  %.4f\n\n", ra)
	}

	// Store an object: it is split into 8 data blocks and 7 parity
	// blocks, spread over the 15 nodes.
	payload := bytes.Repeat([]byte("all virtual machines need strictly consistent disks. "), 40)
	if err := store.WriteObject(1, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored object of %d bytes\n", len(payload))

	// Update one block in place: Algorithm 1 ships the Galois delta
	// α·(new−old) to the parity quorum instead of re-encoding.
	blockData, _, err := store.ReadBlock(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	copy(blockData, []byte("UPDATED IN PLACE"))
	if err := store.WriteBlock(1, 3, blockData); err != nil {
		log.Fatal(err)
	}
	fmt.Println("updated block 3 through the write quorum")

	// Fail nodes. The (15,8) code tolerates up to 7 lost shards; the
	// protocol additionally needs a version-check quorum, so keep the
	// level-0 parity nodes (shards 8 and 9) alive.
	for _, node := range []int{0, 3, 5, 11, 14} {
		store.CrashNode(node)
	}
	fmt.Printf("crashed 5 of 15 nodes (%d alive)\n", store.AliveNodes())

	got, err := store.ReadObject(1)
	if err != nil {
		log.Fatal(err)
	}
	want := append([]byte(nil), payload...)
	// Recompute the expected object after the block-3 update.
	per := (len(payload) + 7) / 8
	copy(want[3*per:], []byte("UPDATED IN PLACE"))
	if !bytes.Equal(got, want) {
		log.Fatal("read returned wrong data")
	}
	fmt.Println("degraded read returned the correct, updated object")

	m := store.Metrics()
	fmt.Printf("\nprotocol metrics: %d direct reads, %d decode reads, %d writes\n",
		m.DirectReads, m.DecodeReads, m.Writes)
}
