// Quickstart: open a TRAP-ERC object store with the paper's (15,8)
// configuration, store an object under a key, patch it in place, lose
// nodes up to the code's tolerance, and read everything back intact —
// every operation bounded by a context.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"trapquorum"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The paper's Figure-3 configuration: a (15,8) MDS code protected
	// by a two-level trapezoid (levels of 3 and 5 nodes) with w = 3.
	// These are also the defaults — listed explicitly for the tour.
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(512),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := store.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	fmt.Printf("storage overhead: %.3fx block size (full replication would use %.0fx)\n",
		store.StorageOverhead(), store.FullReplicationOverhead())
	fmt.Printf("write availability at p=0.9: %.4f\n", store.WriteAvailability(0.9))
	ra, err := store.ReadAvailability(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read availability at p=0.9:  %.4f\n\n", ra)

	// Store an object: it is split into 512-byte blocks, 8 data + 7
	// parity per stripe, spread over the 15 nodes.
	payload := bytes.Repeat([]byte("all virtual machines need strictly consistent disks. "), 40)
	if err := store.Put(ctx, "vm-root.img", payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %q: %d bytes\n", "vm-root.img", len(payload))

	// Patch 16 bytes in place: Algorithm 1 ships the Galois delta
	// α·(new−old) to the parity quorum instead of re-encoding.
	patch := []byte("UPDATED IN PLACE")
	if err := store.WriteAt(ctx, "vm-root.img", 1024, patch); err != nil {
		log.Fatal(err)
	}
	copy(payload[1024:], patch)
	fmt.Println("patched 16 bytes through the write quorum")

	// Fail nodes. The (15,8) code tolerates up to 7 lost shards; the
	// protocol additionally needs a version-check quorum per stripe.
	for _, node := range []int{0, 3, 5, 11, 14} {
		if err := store.CrashNode(node); err != nil {
			log.Fatal(err)
		}
	}
	alive, err := store.AliveNodes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed 5 of 15 nodes (%d alive)\n", alive)

	got, err := store.Get(ctx, "vm-root.img")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("read returned wrong data")
	}
	fmt.Println("degraded read returned the correct, updated object")

	// A context that has already expired aborts cleanly — nothing
	// commits, and the error unwraps to context.DeadlineExceeded.
	expired, cancel2 := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	err = store.WriteAt(expired, "vm-root.img", 0, patch)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("expired context rejected the write: deadline exceeded")
	case err == nil:
		log.Fatal("write with an expired context committed")
	default:
		log.Fatalf("unexpected error from expired-context write: %v", err)
	}
}
