// Partition: what the store does when the NETWORK fails, not the
// node. This example boots a 15-node TCP fleet in-process, routes the
// link to node 3 (a trapezoid-minority node) through the chaos engine
// (internal/chaosnet — the same engine tools/chaosproxy runs from the
// command line), and walks the full triage ladder under a foreground
// read workload:
//
//	healthy  →  brownout (link slow: latency EWMA over threshold)
//	         →  down     (link partitioned: breaker opens, prober confirms)
//	         →  healed   (link restored: breaker closes, scrubs come back clean)
//
// The node process is healthy the whole time — only its network path
// is damaged — and the workload never sees an error: the quorum reads
// decode around the dark node, the circuit breaker stops the client
// burning RPCs on it, and the health monitor tells the operator
// whether this is a slow link (brownout) or a dead one (down).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"trapquorum"
	"trapquorum/internal/chaosnet"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// node is one in-process "daemon": store, engine, TCP server.
type node struct {
	addr   string
	engine *nodeengine.Engine
	srv    *tcp.NodeServer
}

func (n *node) start() error {
	n.engine = nodeengine.New(memstore.New(), nodeengine.WithName("node@"+n.addr))
	n.srv = tcp.NewServer(n.engine)
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return err
	}
	n.addr = ln.Addr().String()
	go n.srv.Serve(ln)
	return nil
}

func (n *node) stop() {
	n.srv.Close()
	n.engine.Close()
}

// waitState polls the health report until node 3 reaches the wanted
// state.
func waitState(store *trapquorum.ObjectStore, want trapquorum.NodeState) {
	deadline := time.Now().Add(60 * time.Second)
	for store.Health().Nodes[3].State != want {
		if time.Now().After(deadline) {
			log.Fatalf("node 3 never reached state %v (now %v)", want, store.Health().Nodes[3].State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func main() {
	ctx := context.Background()

	// Boot the fleet on loopback, then slide the chaos proxy in front
	// of node 3 only: every byte between the client and that one node
	// crosses the fault engine, all other links stay clean. Node 3 and
	// node 13 form a trapezoid minority — losing this link must not
	// cost a single operation.
	nodes := make([]*node, 15)
	addrs := make([]string, 15)
	for i := range nodes {
		nodes[i] = &node{addr: "127.0.0.1:0"}
		if err := nodes[i].start(); err != nil {
			log.Fatal(err)
		}
		addrs[i] = nodes[i].addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()
	link := chaosnet.NewLink(42)
	proxy, err := chaosnet.NewProxy("127.0.0.1:0", addrs[3], link)
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	addrs[3] = proxy.Addr()
	fmt.Println("fleet up: 15 nodes on loopback, the link to node 3 routed through the chaos engine")

	// The client: resilience policy on the transport (breakers, retry
	// budget, attempt timeouts) and a self-heal monitor with a brownout
	// threshold — a link whose smoothed round trip exceeds 40ms is
	// flagged degraded before it is anywhere near dead.
	res := tcp.DefaultResilience()
	res.FailureThreshold = 2
	res.OpenTimeout = 100 * time.Millisecond
	res.AttemptTimeout = 500 * time.Millisecond
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(addrs,
			tcp.WithDialTimeout(2*time.Second), tcp.WithResilience(res))),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(4096),
		trapquorum.WithSelfHeal(trapquorum.SelfHeal{
			ProbeInterval:      25 * time.Millisecond,
			ProbeTimeout:       2 * time.Second, // above the browned-out RTT, so slow ≠ dead
			SuspicionThreshold: 3,
			ScrubInterval:      100 * time.Millisecond,
			BrownoutLatency:    40 * time.Millisecond,
			OnTransition: func(tr trapquorum.NodeTransition) {
				fmt.Printf("  health: %s\n", tr)
			},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("survive the network. "), 2048) // 42 KiB
	if err := store.Put(ctx, "disk.img", payload); err != nil {
		log.Fatal(err)
	}

	// Foreground workload: keep reading the object for the whole
	// drill and count every caller-visible error. The ladder below
	// must leave this counter at zero.
	var reads, readErrs atomic.Int64
	workDone := make(chan struct{})
	stopWork := make(chan struct{})
	go func() {
		defer close(workDone)
		for {
			select {
			case <-stopWork:
				return
			default:
			}
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			got, err := store.Get(rctx, "disk.img")
			cancel()
			reads.Add(1)
			if err != nil || !bytes.Equal(got, payload) {
				readErrs.Add(1)
			}
		}
	}()

	// Rung 1 — brownout. The link is alive but slow: 60ms each way.
	// Probes still succeed, so the node is NOT down; the latency EWMA
	// crosses the 40ms threshold and the monitor flags the link
	// degraded. This is the "check the switch, not the server" signal.
	slow := chaosnet.Faults{Delay: 60 * time.Millisecond}
	link.SetFaults(slow, slow)
	fmt.Println("\nlink to node 3 degraded: +60ms each way")
	waitState(store, trapquorum.NodeBrownout)
	fmt.Printf("monitor: node 3 browned out (link EWMA %v over the 40ms threshold)\n",
		store.Health().Links[3].EWMA.Round(time.Millisecond))

	// Rung 2 — partition. The link is cut outright: dials refused,
	// open connections reset. The node process is still running; the
	// client cannot know the difference, and does not need to — the
	// breaker opens, the prober walks the node to down, reads decode
	// around it.
	link.Partition()
	fmt.Println("\nlink to node 3 partitioned: dials refused, connections reset")
	waitState(store, trapquorum.NodeDown)
	h := store.Health()
	fmt.Printf("monitor: node 3 down; breaker %s after %d open(s), %d fast-fail(s)\n",
		h.Links[3].Breaker, h.Links[3].BreakerOpens, h.Links[3].FastFails)

	// Rung 3 — heal. Restore the link and the system converges on its
	// own: a breaker probe gets through, the prober sees answers, the
	// monitor walks the node back up, and the scrubber repairs any
	// writes the node missed while dark.
	link.Heal()
	fmt.Println("\nlink to node 3 healed")
	waitState(store, trapquorum.NodeUp)
	deadline := time.Now().Add(60 * time.Second)
	for {
		reports, err := store.Scrub(ctx, "disk.img")
		if err != nil {
			log.Fatal(err)
		}
		healthy := 0
		for _, r := range reports {
			if r.Healthy {
				healthy++
			}
		}
		if healthy == len(reports) {
			fmt.Printf("scrub: %d/%d stripes healthy after the partition\n", healthy, len(reports))
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("scrub: only %d/%d stripes healthy", healthy, len(reports))
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stopWork)
	<-workDone
	m := store.Metrics()
	fmt.Printf("\nworkload: %d reads, %d errors — the partition cost the callers nothing\n",
		reads.Load(), readErrs.Load())
	fmt.Printf("resilience: %d brownout(s), %d down event(s), %d breaker open(s), %d fast-fail(s), %d budgeted retr(ies)\n",
		m.Brownouts, m.DownEvents, m.BreakerOpens, m.BreakerFastFails, m.TransportRetries)
	if readErrs.Load() > 0 {
		log.Fatal("the workload saw errors; the minority link loss should have been invisible")
	}
}
