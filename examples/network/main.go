// Network: the TRAP-ERC store over real TCP sockets and real disks.
// This example boots a 15-node fleet in-process — each node is the
// same engine+diskstore+server stack the cmd/trapnode daemon runs —
// then drives an ObjectStore through a NetBackend: put/get, an
// in-place patch, a node crash mid-run (degraded reads, typed
// fault-injection refusal), disk replacement and repair over the
// wire.
//
// By default the client runs in self-heal mode (-selfheal=true): the
// store's own monitor notices the dead daemon, and when it returns on
// an empty disk the repair orchestrator rebuilds its chunks with no
// RepairNode call. Run with -selfheal=false for the manual
// disk-replacement runbook (explicit RepairNode) instead.
//
// In a real deployment the nodes are separate processes or machines:
//
//	trapnode -addr host0:7420 -dir /var/lib/trapnode   # x 15
//
// and the client side below stays exactly the same.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"trapquorum"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// node is one in-process "daemon": durable store, engine, TCP server.
type node struct {
	dir    string
	addr   string
	engine *nodeengine.Engine
	srv    *tcp.NodeServer
}

func (n *node) start() error {
	var store nodeengine.ChunkStore
	if n.dir != "" {
		ds, err := diskstore.Open(n.dir)
		if err != nil {
			return err
		}
		store = ds
	} else {
		store = memstore.New()
	}
	n.engine = nodeengine.New(store, nodeengine.WithName("node@"+n.addr))
	n.srv = tcp.NewServer(n.engine)
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return err
	}
	n.addr = ln.Addr().String()
	go n.srv.Serve(ln)
	return nil
}

func (n *node) stop() {
	n.srv.Close()
	n.engine.Close()
}

func main() {
	selfheal := flag.Bool("selfheal", true, "let the store detect the dead node and repair it itself")
	flag.Parse()
	ctx := context.Background()
	base, err := os.MkdirTemp("", "trapnet-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// Boot the fleet: 15 durable nodes on loopback.
	nodes := make([]*node, 15)
	addrs := make([]string, 15)
	for i := range nodes {
		nodes[i] = &node{dir: filepath.Join(base, fmt.Sprintf("node%d", i)), addr: "127.0.0.1:0"}
		if err := nodes[i].start(); err != nil {
			log.Fatal(err)
		}
		addrs[i] = nodes[i].addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()
	fmt.Printf("fleet up: 15 trapnode stacks on loopback, durable dirs under %s\n", base)

	// The client side: a NetBackend instead of the simulator — the
	// only line that changes between a simulation and a deployment.
	// In self-heal mode the store also probes every daemon and
	// repairs returning nodes on its own.
	opts := []trapquorum.Option{
		trapquorum.WithBackend(trapquorum.NewNetBackend(addrs, tcp.WithDialTimeout(2*time.Second))),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(4096),
	}
	if *selfheal {
		opts = append(opts, trapquorum.WithSelfHeal(trapquorum.SelfHeal{
			ProbeInterval:      20 * time.Millisecond,
			SuspicionThreshold: 2,
			ScrubInterval:      100 * time.Millisecond,
			OnTransition: func(tr trapquorum.NodeTransition) {
				fmt.Printf("  health: %s\n", tr)
			},
		}))
	}
	store, err := trapquorum.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("erasure coded over tcp. "), 2048) // 48 KiB
	if err := store.Put(ctx, "vm-root.img", payload); err != nil {
		log.Fatal(err)
	}
	got, err := store.Get(ctx, "vm-root.img")
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("round trip failed: %v", err)
	}
	fmt.Println("48 KiB object put+get through quorum writes and reads on real sockets")

	patch := []byte("PATCHED OVER THE WIRE!")
	if err := store.WriteAt(ctx, "vm-root.img", 8192, patch); err != nil {
		log.Fatal(err)
	}
	copy(payload[8192:], patch)
	fmt.Println("in-place patch shipped as Galois parity deltas")

	// Fault injection belongs to the simulator; a real backend refuses
	// with a typed error instead of pretending.
	if err := store.CrashNode(4); errors.Is(err, trapquorum.ErrNotSupported) {
		fmt.Println("CrashNode on NetBackend: ErrNotSupported (real nodes crash on their own)")
	}

	// So crash a real node: kill its server and store.
	nodes[4].stop()
	got, err = store.Get(ctx, "vm-root.img")
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("degraded get failed: %v", err)
	}
	fmt.Println("node 4 killed; reads continue, decoding around the dead socket")

	if *selfheal {
		// Let the failure detector confirm the death before the disk
		// swap, like a real replacement would.
		deadline := time.Now().Add(30 * time.Second)
		for store.Health().Nodes[4].State != trapquorum.NodeDown {
			if time.Now().After(deadline) {
				log.Fatal("monitor never marked node 4 down")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Replace its disk and bring the daemon back empty.
	if err := os.RemoveAll(nodes[4].dir); err != nil {
		log.Fatal(err)
	}
	if err := nodes[4].start(); err != nil {
		log.Fatal(err)
	}

	if *selfheal {
		// No RepairNode here: the monitor sees the daemon answering
		// again and the orchestrator rebuilds everything it held.
		deadline := time.Now().Add(60 * time.Second)
		for store.Health().Nodes[4].State != trapquorum.NodeUp {
			if time.Now().After(deadline) {
				log.Fatal("node 4 did not heal")
			}
			time.Sleep(10 * time.Millisecond)
		}
		m := store.Metrics()
		fmt.Printf("node 4 back on an empty disk: %d chunks rebuilt automatically (%d probes, %d down events)\n",
			m.AutoRepairs, m.Probes, m.DownEvents)
	} else {
		rebuilt, err := store.RepairNode(ctx, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node 4 back on an empty disk: %d chunks rebuilt by explicit RepairNode\n", rebuilt)
	}

	// Either way, full redundancy must be back (in self-heal mode the
	// anti-entropy scrubber closes any remaining gap).
	deadline := time.Now().Add(60 * time.Second)
	for {
		reports, err := store.Scrub(ctx, "vm-root.img")
		if err != nil {
			log.Fatal(err)
		}
		healthy := 0
		for _, r := range reports {
			if r.Healthy {
				healthy++
			}
		}
		if healthy == len(reports) {
			fmt.Printf("scrub: %d/%d stripes healthy after repair\n", healthy, len(reports))
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("scrub: only %d/%d stripes healthy", healthy, len(reports))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
