// Network: the TRAP-ERC store over real TCP sockets and real disks.
// This example boots a 15-node fleet in-process — each node is the
// same engine+diskstore+server stack the cmd/trapnode daemon runs —
// then drives an ObjectStore through a NetBackend: put/get, an
// in-place patch, a node crash mid-run (degraded reads, typed
// fault-injection refusal), disk replacement and exact repair over
// the wire.
//
// In a real deployment the nodes are separate processes or machines:
//
//	trapnode -addr host0:7420 -dir /var/lib/trapnode   # x 15
//
// and the client side below stays exactly the same.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"trapquorum"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// node is one in-process "daemon": durable store, engine, TCP server.
type node struct {
	dir    string
	addr   string
	engine *nodeengine.Engine
	srv    *tcp.NodeServer
}

func (n *node) start() error {
	var store nodeengine.ChunkStore
	if n.dir != "" {
		ds, err := diskstore.Open(n.dir)
		if err != nil {
			return err
		}
		store = ds
	} else {
		store = memstore.New()
	}
	n.engine = nodeengine.New(store, nodeengine.WithName("node@"+n.addr))
	n.srv = tcp.NewServer(n.engine)
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return err
	}
	n.addr = ln.Addr().String()
	go n.srv.Serve(ln)
	return nil
}

func (n *node) stop() {
	n.srv.Close()
	n.engine.Close()
}

func main() {
	ctx := context.Background()
	base, err := os.MkdirTemp("", "trapnet-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// Boot the fleet: 15 durable nodes on loopback.
	nodes := make([]*node, 15)
	addrs := make([]string, 15)
	for i := range nodes {
		nodes[i] = &node{dir: filepath.Join(base, fmt.Sprintf("node%d", i)), addr: "127.0.0.1:0"}
		if err := nodes[i].start(); err != nil {
			log.Fatal(err)
		}
		addrs[i] = nodes[i].addr
	}
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()
	fmt.Printf("fleet up: 15 trapnode stacks on loopback, durable dirs under %s\n", base)

	// The client side: a NetBackend instead of the simulator — the
	// only line that changes between a simulation and a deployment.
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(addrs, tcp.WithDialTimeout(2*time.Second))),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(4096),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("erasure coded over tcp. "), 2048) // 48 KiB
	if err := store.Put(ctx, "vm-root.img", payload); err != nil {
		log.Fatal(err)
	}
	got, err := store.Get(ctx, "vm-root.img")
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("round trip failed: %v", err)
	}
	fmt.Println("48 KiB object put+get through quorum writes and reads on real sockets")

	patch := []byte("PATCHED OVER THE WIRE!")
	if err := store.WriteAt(ctx, "vm-root.img", 8192, patch); err != nil {
		log.Fatal(err)
	}
	copy(payload[8192:], patch)
	fmt.Println("in-place patch shipped as Galois parity deltas")

	// Fault injection belongs to the simulator; a real backend refuses
	// with a typed error instead of pretending.
	if err := store.CrashNode(4); errors.Is(err, trapquorum.ErrNotSupported) {
		fmt.Println("CrashNode on NetBackend: ErrNotSupported (real nodes crash on their own)")
	}

	// So crash a real node: kill its server and store.
	nodes[4].stop()
	got, err = store.Get(ctx, "vm-root.img")
	if err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("degraded get failed: %v", err)
	}
	fmt.Println("node 4 killed; reads continue, decoding around the dead socket")

	// Replace its disk and repair over the wire.
	if err := os.RemoveAll(nodes[4].dir); err != nil {
		log.Fatal(err)
	}
	if err := nodes[4].start(); err != nil {
		log.Fatal(err)
	}
	rebuilt, err := store.RepairNode(ctx, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 4 back on an empty disk: %d chunks rebuilt by exact repair\n", rebuilt)

	reports, err := store.Scrub(ctx, "vm-root.img")
	if err != nil {
		log.Fatal(err)
	}
	healthy := 0
	for _, r := range reports {
		if r.Healthy {
			healthy++
		}
	}
	fmt.Printf("scrub: %d/%d stripes healthy after repair\n", healthy, len(reports))
}
