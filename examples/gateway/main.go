// Gateway: the multi-tenant connection tier. One trapgate-style
// server owns a simulated quorum fleet and serves many persistent
// client connections; the demo runs three tenants over one fleet and
// shows namespace isolation, a byte quota pushing back with
// ErrQuotaExceeded, a Watch subscription seeing another connection's
// writes, and the drain notice watchers receive when the gateway
// shuts down gracefully.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"trapquorum/client"
	gwclient "trapquorum/client/gateway"
	"trapquorum/internal/core"
	"trapquorum/internal/gateway"
	"trapquorum/internal/service"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

func main() {
	ctx := context.Background()

	// A 10-node simulated fleet under a (5,3) code: each stripe needs
	// n-k+1 = 3 trapezoid nodes, written as a flat 3-node majority.
	cluster, err := sim.NewCluster(10)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	nodes := make([]core.NodeClient, cluster.Size())
	for j := range nodes {
		nodes[j] = cluster.Node(j)
	}
	ring, err := placement.NewRing(len(nodes), 16)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := service.NewFleet(nodes, service.Config{
		N: 5, K: 3,
		Shape: trapezoid.Shape{A: 0, B: 3, H: 0}, W: 2,
		BlockSize: 1024,
		Placement: ring,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The gateway: every tenant that dials in gets an isolated
	// namespace on the shared fleet, capped at 8 KiB here so the demo
	// can trip the quota.
	srv := gateway.NewServer(gateway.FleetTenants{
		Fleet: fleet,
		Quota: service.Quota{MaxBytes: 8 << 10},
	}, gateway.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	addr := ln.Addr().String()
	fmt.Printf("gateway serving on %s\n\n", addr)

	// Three tenants, one fleet. Same key, three different objects.
	conns := map[string]*gwclient.Conn{}
	for _, tenant := range []string{"acme", "globex", "initech"} {
		c, err := gwclient.Dial(ctx, addr, tenant)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		conns[tenant] = c
		payload := []byte("config for " + tenant)
		if err := c.Put(ctx, "app.conf", payload); err != nil {
			log.Fatalf("put %s: %v", tenant, err)
		}
	}
	for tenant, c := range conns {
		got, err := c.Get(ctx, "app.conf")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %-8s app.conf = %q\n", tenant, got)
	}

	// Quota: acme's namespace is capped at 8 KiB; a put that would
	// cross the cap is refused at the gateway with the library's
	// public sentinel.
	big := bytes.Repeat([]byte{0xfe}, 9<<10)
	err = conns["acme"].Put(ctx, "too-big.bin", big)
	fmt.Printf("\n9 KiB put against the 8 KiB quota: %v (ErrQuotaExceeded: %v)\n",
		err, errors.Is(err, client.ErrQuotaExceeded))

	// Watch: a second acme connection subscribes and sees the first
	// one's mutations — but nothing from other tenants.
	watchConn, err := gwclient.Dial(ctx, addr, "acme")
	if err != nil {
		log.Fatal(err)
	}
	defer watchConn.Close()
	events, err := watchConn.Watch(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := conns["acme"].Put(ctx, "rollout.flag", []byte("on")); err != nil {
		log.Fatal(err)
	}
	if err := conns["globex"].Put(ctx, "unrelated", []byte("x")); err != nil {
		log.Fatal(err)
	}
	if err := conns["acme"].Delete(ctx, "rollout.flag"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nacme watcher sees:")
	for i := 0; i < 2; i++ {
		select {
		case ev := <-events:
			fmt.Printf("  %v %q\n", ev.Kind, ev.Key)
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for watch event")
		}
	}

	// Graceful drain: the watcher is told the gateway is going away
	// before its connection closes.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	select {
	case ev := <-events:
		fmt.Printf("\nafter drain, watcher receives: %v\n", ev.Kind)
	case <-time.After(5 * time.Second):
		log.Fatal("no drain notice")
	}
	if _, err := gwclient.Dial(ctx, addr, "acme"); err != nil {
		fmt.Println("new dial after drain: refused")
	}
}
