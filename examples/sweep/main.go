// Sweep: design-space exploration. For a fixed (n,k) code, enumerate
// every trapezoid shape holding n−k+1 nodes and every legal w, and
// print the read/write availability each configuration delivers at a
// target node availability, next to the storage cost — the table an
// operator would use to pick deployment parameters.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

func main() {
	n := flag.Int("n", 15, "MDS code length n")
	k := flag.Int("k", 8, "MDS code dimension k")
	p := flag.Float64("p", 0.9, "node availability to evaluate at")
	maxH := flag.Int("maxh", 3, "largest trapezoid height to consider")
	flag.Parse()

	if err := run(*n, *k, *p, *maxH); err != nil {
		log.Fatal(err)
	}
}

type row struct {
	shape      trapezoid.Shape
	w          int
	writeAvail float64
	readAvail  float64
	wqSize     int
}

func run(n, k int, p float64, maxH int) error {
	nb := n - k + 1
	shapes := trapezoid.EnumerateShapes(nb, maxH)
	if len(shapes) == 0 {
		return fmt.Errorf("no trapezoid shapes hold %d nodes with h <= %d", nb, maxH)
	}
	var rows []row
	for _, shape := range shapes {
		maxW := shape.NbNodes() // any larger is invalid everywhere
		for w := 1; w <= maxW; w++ {
			cfg, err := trapezoid.NewConfig(shape, w)
			if err != nil {
				break // w exceeds some level size; larger w only worse
			}
			e := availability.ERCParams{Config: cfg, N: n, K: k}
			readAvail, err := availability.ReadERC(e, p)
			if err != nil {
				return err
			}
			rows = append(rows, row{
				shape:      shape,
				w:          w,
				writeAvail: availability.Write(cfg, p),
				readAvail:  readAvail,
				wqSize:     cfg.WriteQuorumSize(),
			})
			if shape.H == 0 {
				break // w unused for single-level trapezoids
			}
		}
	}
	// Rank by balanced availability (min of read/write), then by
	// smaller write quorum (cheaper updates).
	sort.Slice(rows, func(i, j int) bool {
		mi := min(rows[i].writeAvail, rows[i].readAvail)
		mj := min(rows[j].writeAvail, rows[j].readAvail)
		if mi != mj {
			return mi > mj
		}
		return rows[i].wqSize < rows[j].wqSize
	})

	fmt.Printf("design sweep: (n=%d, k=%d) MDS, %d trapezoid nodes, p=%g\n", n, k, nb, p)
	fmt.Printf("storage: %.3fx blocksize (vs %.0fx full replication, %.1f%% saved)\n\n",
		availability.StorageERC(n, k), availability.StorageFR(n, k),
		100*(1-availability.StorageERC(n, k)/availability.StorageFR(n, k)))
	fmt.Printf("%-16s %3s %6s %12s %12s %10s\n", "shape", "w", "|WQ|", "P_write", "P_read", "min")
	for i, r := range rows {
		if i >= 15 {
			fmt.Printf("... (%d more configurations)\n", len(rows)-i)
			break
		}
		fmt.Printf("%-16s %3d %6d %12.6f %12.6f %10.6f\n",
			r.shape, r.w, r.wqSize, r.writeAvail, r.readAvail,
			min(r.writeAvail, r.readAvail))
	}
	best := rows[0]
	fmt.Printf("\nrecommended: trapezoid %s with w=%d (write %.6f, read %.6f at p=%g)\n",
		best.shape, best.w, best.writeAvail, best.readAvail, p)
	return nil
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
