// Virtualdisk: the paper's motivating workload. Several virtual
// machines share an erasure-coded storage backend; each VM owns a
// range of disk blocks and issues a Zipf-skewed read/write mix, while
// a fault injector crashes, restarts and repairs nodes. Strict
// consistency is checked continuously: every read must return the
// last value the VM wrote to that block.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"trapquorum"
	"trapquorum/internal/workload"
)

const (
	numVMs         = 4
	blocksPerVM    = 2
	blockSize      = 1024
	opsPerVM       = 400
	nodeCount      = 15
	dataBlockCount = 8 // k of the (15,8) code; VMs share one stripe
)

func main() {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(nodeCount, dataBlockCount),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// One stripe backs the shared disk: 8 blocks of 1 KiB.
	initial := make([][]byte, dataBlockCount)
	for i := range initial {
		initial[i] = bytes.Repeat([]byte{byte(i)}, blockSize)
	}
	if err := store.SeedStripe(ctx, 1, initial); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	stale, failedReads, failedWrites, okOps := 0, 0, 0, 0

	// Fault injector: crashes a random non-critical node, lets the
	// workload run degraded for a moment, then heals and repairs it.
	// Level-0 parity shards (8, 9) stay up so version checks always
	// have a home — the paper's "usual p" regime. A repair may lose
	// its race against concurrent writes (version-guarded install);
	// it is retried a few times and the node self-heals on the next
	// cycle otherwise.
	stopFaults := make(chan struct{})
	var injectorWG sync.WaitGroup
	var faultCycles, repairRetries atomic.Int64
	injectorWG.Add(1)
	go func() {
		defer injectorWG.Done()
		r := rand.New(rand.NewSource(999))
		candidates := []int{0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14}
		for {
			select {
			case <-stopFaults:
				return
			default:
			}
			victim := candidates[r.Intn(len(candidates))]
			if err := store.CrashNode(victim); err != nil {
				log.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond) // degraded window
			if err := store.RestartNode(victim); err != nil {
				log.Fatal(err)
			}
			for attempt := 0; attempt < 5; attempt++ {
				if _, err := store.RepairNode(ctx, victim); err == nil {
					break
				}
				repairRetries.Add(1)
			}
			faultCycles.Add(1)
		}
	}()

	// VM workers: VM v owns blocks [v*blocksPerVM, (v+1)*blocksPerVM).
	var vmWG sync.WaitGroup
	for vm := 0; vm < numVMs; vm++ {
		vmWG.Add(1)
		go func(vm int) {
			defer vmWG.Done()
			pattern, err := workload.NewZipf(blocksPerVM, 1.3, int64(vm))
			if err != nil {
				log.Fatal(err)
			}
			mix, err := workload.NewMix(pattern, 0.6, int64(vm)+100)
			if err != nil {
				log.Fatal(err)
			}
			payloads, err := workload.NewPayloadGenerator(blockSize, int64(vm)+200)
			if err != nil {
				log.Fatal(err)
			}
			last := make(map[int][]byte)
			for op := 0; op < opsPerVM; op++ {
				o := mix.Next()
				block := vm*blocksPerVM + o.Block
				switch o.Kind {
				case workload.Write:
					data := payloads.Next()
					err := store.WriteBlock(ctx, 1, block, data)
					mu.Lock()
					if err == nil {
						last[block] = data
						okOps++
					} else if errors.Is(err, trapquorum.ErrWriteFailed) {
						failedWrites++
					} else {
						log.Fatalf("unexpected write error: %v", err)
					}
					mu.Unlock()
				case workload.Read:
					data, _, err := store.ReadBlock(ctx, 1, block)
					mu.Lock()
					switch {
					case err == nil:
						if want, ok := last[block]; ok && !bytes.Equal(data, want) {
							stale++
						} else {
							okOps++
						}
					case errors.Is(err, trapquorum.ErrNotReadable):
						failedReads++
					default:
						log.Fatalf("unexpected read error: %v", err)
					}
					mu.Unlock()
				}
			}
		}(vm)
	}

	vmWG.Wait()
	close(stopFaults)
	injectorWG.Wait()

	fmt.Printf("virtual-disk workload: %d VMs x %d ops, %d-byte blocks, %d fault cycles injected\n",
		numVMs, opsPerVM, blockSize, faultCycles.Load())
	fmt.Printf("  ops ok:         %d\n", okOps)
	fmt.Printf("  failed writes:  %d (no quorum at failure instant)\n", failedWrites)
	fmt.Printf("  failed reads:   %d (no version-check quorum)\n", failedReads)
	fmt.Printf("  repair retries: %d (lost races against live writes)\n", repairRetries.Load())
	fmt.Printf("  STALE READS:    %d  <- strict consistency requires 0\n", stale)
	m := store.Metrics()
	fmt.Printf("  protocol: %d direct reads, %d decode reads, %d rollbacks, %d repairs\n",
		m.DirectReads, m.DecodeReads, m.Rollbacks, m.Repairs)
	if stale > 0 {
		log.Fatal("CONSISTENCY VIOLATION")
	}
	fmt.Println("strict consistency held under failures.")
}
