// Objectstore: the storage-system layer through the public v1 API. A
// keyed object store spreads erasure-coded stripes across a 30-node
// cluster with consistent-hash placement; objects larger than one
// stripe span several; reads and in-place updates go through the
// quorum protocol block by block. The demo stores a set of
// virtual-disk images, patches one in place, survives a multi-node
// outage, replaces a disk, repairs it, and scrubs the result.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"trapquorum"
	"trapquorum/placement"
)

func main() {
	ctx := context.Background()
	const clusterSize = 30

	ring, err := placement.NewRing(clusterSize, 32)
	if err != nil {
		log.Fatal(err)
	}
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(1024),
		trapquorum.WithPlacement(ring),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Store three "disk images" of different sizes.
	r := rand.New(rand.NewSource(1))
	images := map[string][]byte{
		"vm-alpha.img": make([]byte, 3*1024),  // single stripe
		"vm-beta.img":  make([]byte, 20*1024), // three stripes
		"vm-gamma.img": make([]byte, 45*1024), // six stripes
	}
	for key, img := range images {
		r.Read(img)
		if err := store.Put(ctx, key, img); err != nil {
			log.Fatalf("put %s: %v", key, err)
		}
		stripes, err := store.StripesOf(key)
		if err != nil {
			log.Fatalf("stripes of %s: %v", key, err)
		}
		fmt.Printf("stored %-13s %6d bytes in %d stripe(s)\n", key, len(img), len(stripes))
	}

	// Patch a boot sector in place: only the affected blocks move
	// through quorum writes; parity receives Galois deltas.
	patch := bytes.Repeat([]byte{0x55, 0xAA}, 256)
	if err := store.WriteAt(ctx, "vm-beta.img", 512, patch); err != nil {
		log.Fatal(err)
	}
	copy(images["vm-beta.img"][512:], patch)
	fmt.Println("\npatched vm-beta.img[512:1024] in place through the write quorum")

	// Multi-node outage: each stripe loses at most a few of its 15
	// shards, well inside the (15,8) tolerance.
	for _, n := range []int{2, 9, 16, 23, 28} {
		if err := store.CrashNode(n); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("crashed 5 of %d nodes\n", clusterSize)
	for key, want := range images {
		got, err := store.Get(ctx, key)
		if err != nil {
			log.Fatalf("degraded get %s: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("%s corrupted", key)
		}
	}
	fmt.Println("all images readable and intact while degraded")

	// Disk replacement on node 9: restart empty, rebuild every chunk
	// the placement assigned to it.
	if err := store.RestartNode(9); err != nil {
		log.Fatal(err)
	}
	if err := store.WipeNode(ctx, 9); err != nil {
		log.Fatal(err)
	}
	rebuilt, err := store.RepairNode(ctx, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 9 disk replaced: %d chunks rebuilt by exact repair\n", rebuilt)

	// Partial reads hit only the blocks they need.
	head, err := store.ReadAt(ctx, "vm-gamma.img", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(head, images["vm-gamma.img"][:64]) {
		log.Fatal("ReadAt mismatch")
	}
	fmt.Println("range read served from a single quorum block read")

	// Scrub the repaired image: every stripe should be consistent
	// again apart from the shards on still-crashed nodes.
	reports, err := store.Scrub(ctx, "vm-beta.img")
	if err != nil {
		log.Fatal(err)
	}
	degraded := 0
	for _, rep := range reports {
		if !rep.Healthy {
			degraded++
		}
	}
	fmt.Printf("scrub: %d stripes audited, %d degraded (crashed nodes still hold shards)\n",
		len(reports), degraded)

	// Cleanup path.
	if err := store.Delete(ctx, "vm-alpha.img"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted vm-alpha.img; remaining keys: %v\n", store.Keys())
}
