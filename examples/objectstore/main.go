// Objectstore: the storage-system layer. A keyed object store spreads
// erasure-coded stripes across a 30-node cluster with consistent-hash
// placement; objects larger than one stripe span several; reads and
// in-place updates go through the quorum protocol block by block.
// The demo stores a set of virtual-disk images, patches one in place,
// survives a multi-node outage, replaces a disk, and repairs it.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"trapquorum/internal/placement"
	"trapquorum/internal/service"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

func main() {
	const clusterSize = 30
	cluster, err := sim.NewCluster(clusterSize)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ring, err := placement.NewRing(clusterSize, 32)
	if err != nil {
		log.Fatal(err)
	}
	store, err := service.New(cluster, service.Config{
		N: 15, K: 8,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: 1024,
		Placement: ring,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store three "disk images" of different sizes.
	r := rand.New(rand.NewSource(1))
	images := map[string][]byte{
		"vm-alpha.img": make([]byte, 3*1024),  // single stripe
		"vm-beta.img":  make([]byte, 20*1024), // three stripes
		"vm-gamma.img": make([]byte, 45*1024), // six stripes
	}
	for key, img := range images {
		r.Read(img)
		if err := store.Put(key, img); err != nil {
			log.Fatalf("put %s: %v", key, err)
		}
		stripes, _ := store.StripesOf(key)
		fmt.Printf("stored %-13s %6d bytes in %d stripe(s)\n", key, len(img), len(stripes))
	}

	// Patch a boot sector in place: only the affected blocks move
	// through quorum writes; parity receives Galois deltas.
	patch := bytes.Repeat([]byte{0x55, 0xAA}, 256)
	if err := store.WriteAt("vm-beta.img", 512, patch); err != nil {
		log.Fatal(err)
	}
	copy(images["vm-beta.img"][512:], patch)
	fmt.Println("\npatched vm-beta.img[512:1024] in place through the write quorum")

	// Multi-node outage: each stripe loses at most a few of its 15
	// shards, well inside the (15,8) tolerance.
	for _, n := range []int{2, 9, 16, 23, 28} {
		cluster.Crash(n)
	}
	fmt.Printf("crashed 5 of %d nodes\n", clusterSize)
	for key, want := range images {
		got, err := store.Get(key)
		if err != nil {
			log.Fatalf("degraded get %s: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("%s corrupted", key)
		}
	}
	fmt.Println("all images readable and intact while degraded")

	// Disk replacement on node 9: restart empty, rebuild every chunk
	// the placement assigned to it.
	cluster.Restart(9)
	if err := cluster.Node(9).Wipe(); err != nil {
		log.Fatal(err)
	}
	rebuilt, err := store.RepairClusterNode(9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 9 disk replaced: %d chunks rebuilt by exact repair\n", rebuilt)

	// Partial reads hit only the blocks they need.
	head, err := store.ReadAt("vm-gamma.img", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(head, images["vm-gamma.img"][:64]) {
		log.Fatal("ReadAt mismatch")
	}
	fmt.Println("range read served from a single quorum block read")

	// Cleanup path.
	if err := store.Delete("vm-alpha.img"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted vm-alpha.img; remaining keys: %v\n", store.Keys())
}
