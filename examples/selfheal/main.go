// Selfheal: kill a storage node mid-workload and watch the store put
// itself back together. The self-healing subsystem (WithSelfHeal)
// probes every node, runs each through the liveness state machine
// up → suspect → down → repairing → up, and rebuilds the chunks of a
// node that returns — here after a crash *and* a wiped disk — with no
// RepairNode call anywhere in this file. Every liveness transition is
// printed as it happens, then the health snapshot, the self-heal
// counters and a final scrub prove full redundancy came back on its
// own.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"trapquorum"
)

func main() {
	ctx := context.Background()

	// Self-heal tuned for demo speed: probe every 5ms, declare a node
	// down after 2 straight failures, scrub every 50ms.
	heal := trapquorum.SelfHeal{
		ProbeInterval:      5 * time.Millisecond,
		SuspicionThreshold: 2,
		RepairConcurrency:  4,
		ScrubInterval:      50 * time.Millisecond,
		ScrubPace:          time.Millisecond,
		OnTransition: func(tr trapquorum.NodeTransition) {
			fmt.Printf("  health: %s\n", tr)
		},
	}
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(1024),
		trapquorum.WithSelfHeal(heal),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Some data to protect: three objects, a few stripes each.
	rng := rand.New(rand.NewSource(42))
	keys := []string{"vm-a.img", "vm-b.img", "vm-c.img"}
	for _, key := range keys {
		data := make([]byte, 3*8*1024)
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("3 objects stored across a 15-node simulated cluster; self-healing on")

	// Foreground workload that never stops: reads and in-place
	// patches, running right through the failure and the repair.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops, opErrs int
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		patch := make([]byte, 1024)
		r := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := keys[i%len(keys)]
			var err error
			if i%2 == 0 {
				_, err = store.Get(ctx, key)
			} else {
				r.Read(patch)
				err = store.WriteAt(ctx, key, (i%24)*1024, patch)
			}
			mu.Lock()
			ops++
			if err != nil {
				opErrs++
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Mid-workload: node 4 dies...
	const victim = 4
	fmt.Printf("\ncrashing node %d under load\n", victim)
	if err := store.CrashNode(victim); err != nil {
		log.Fatal(err)
	}
	waitState(store, victim, trapquorum.NodeDown)

	// ...and comes back with a replaced, empty disk. Nobody calls
	// RepairNode: the monitor notices the node answering again and
	// the orchestrator rebuilds everything it held.
	fmt.Printf("\nnode %d returns with a wiped disk (media replacement)\n", victim)
	if err := store.RestartNode(victim); err != nil {
		log.Fatal(err)
	}
	if err := store.WipeNode(ctx, victim); err != nil {
		log.Fatal(err)
	}
	waitState(store, victim, trapquorum.NodeUp)

	// Redundancy must be fully back: wait for a clean scrub of every
	// stripe (the anti-entropy scrubber also closes any gap a probe
	// raced into).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if healthy(ctx, store, keys) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("stripes did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	fmt.Printf("\nworkload: %d ops during the outage+repair, %d errors\n", ops, opErrs)
	mu.Unlock()
	m := store.Metrics()
	fmt.Printf("self-heal: %d probes, %d down events, %d automatic chunk repairs, %d recoveries\n",
		m.Probes, m.DownEvents, m.AutoRepairs, m.Recoveries)
	fmt.Printf("scrubber: %d passes, %d stripes audited, %d degraded chunks found\n",
		m.ScrubPasses, m.ScrubStripes, m.ScrubDegraded)
	fmt.Printf("final scrub: every stripe healthy, zero manual RepairNode calls\n")
}

// waitState blocks until the node reaches the wanted liveness state,
// giving up loudly rather than hanging if it never does.
func waitState(store *trapquorum.ObjectStore, node int, want trapquorum.NodeState) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if store.Health().Nodes[node].State == want {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("node %d never reached %v (now %v)", node, want, store.Health().Nodes[node].State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// healthy reports whether every stripe of every key scrubs clean.
func healthy(ctx context.Context, store *trapquorum.ObjectStore, keys []string) bool {
	for _, key := range keys {
		reports, err := store.Scrub(ctx, key)
		if err != nil {
			return false
		}
		for _, r := range reports {
			if !r.Healthy {
				return false
			}
		}
	}
	return true
}
