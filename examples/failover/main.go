// Failover: walks a (15,8) TRAP-ERC store through the full failure
// lifecycle — healthy operation, progressive node loss with degraded
// reads, a write hitting its quorum limit, disk replacement and exact
// repair — printing the protocol's state transitions at each step.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"trapquorum"
)

func main() {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := store.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	step := func(format string, args ...any) {
		fmt.Printf("\n== "+format+"\n", args...)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	alive := func() int {
		n, err := store.AliveNodes()
		must(err)
		return n
	}

	step("healthy cluster: seed 3 stripes")
	for stripe := uint64(1); stripe <= 3; stripe++ {
		blocks := make([][]byte, 8)
		for i := range blocks {
			blocks[i] = bytes.Repeat([]byte{byte(stripe), byte(i)}, 512)
		}
		if err := store.SeedStripe(ctx, stripe, blocks); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("3 stripes x 8 blocks x 1 KiB seeded on 15 nodes")

	step("write load: bump every block of stripe 1")
	for i := 0; i < 8; i++ {
		x := bytes.Repeat([]byte{0xC0, byte(i)}, 512)
		if err := store.WriteBlock(ctx, 1, i, x); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("8 quorum writes committed (version 2 everywhere)")

	step("progressive failures: crash data nodes 0..3")
	for j := 0; j <= 3; j++ {
		must(store.CrashNode(j))
		data, _, err := store.ReadBlock(ctx, 1, j)
		if err != nil {
			log.Fatalf("read block %d with its node down: %v", j, err)
		}
		if !bytes.Equal(data, bytes.Repeat([]byte{0xC0, byte(j)}, 512)) {
			log.Fatalf("block %d decoded wrong", j)
		}
		fmt.Printf("node %d down -> block %d decoded from parity: ok (%d alive)\n",
			j, j, alive())
	}

	step("push to the protocol's write limit")
	// Level 1 = parity shards 10..14 with w = 3: after two of them
	// fail, writes still work; after three, they must fail.
	must(store.CrashNode(13))
	must(store.CrashNode(14))
	x := bytes.Repeat([]byte{0xEE, 0xEE}, 512)
	if err := store.WriteBlock(ctx, 1, 5, x); err != nil {
		log.Fatalf("write with 2 level-1 nodes down should work: %v", err)
	}
	fmt.Println("write with 6 nodes down: committed (level 1 still has 3 of 5)")
	must(store.CrashNode(12))
	err = store.WriteBlock(ctx, 1, 5, x)
	if !errors.Is(err, trapquorum.ErrWriteFailed) {
		log.Fatalf("expected quorum failure, got %v", err)
	}
	fmt.Println("write with 7 nodes down: rejected — level 1 cannot reach w=3 (rolled back cleanly)")

	step("reads keep working at 8/15 nodes")
	for i := 0; i < 8; i++ {
		if _, _, err := store.ReadBlock(ctx, 1, i); err != nil {
			log.Fatalf("read %d: %v", i, err)
		}
	}
	fmt.Println("all 8 blocks readable through decode (k = 8 shards survive)")

	step("disk replacement: node 2 returns empty and is repaired")
	must(store.RestartNode(2))
	if err := store.WipeNode(ctx, 2); err != nil {
		log.Fatal(err)
	}
	repaired, err := store.RepairNode(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2 wiped and repaired: %d chunks rebuilt by exact repair\n", repaired)
	data, version, err := store.ReadBlock(ctx, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xC0, 2}, 512)) {
		log.Fatal("repaired block content wrong")
	}
	fmt.Printf("block 2 served at version %d directly again\n", version)

	step("full recovery")
	for _, j := range []int{0, 1, 3, 12, 13, 14} {
		must(store.RestartNode(j))
		if _, err := store.RepairNode(ctx, j); err != nil {
			log.Fatalf("repair node %d: %v", j, err)
		}
	}
	if err := store.WriteBlock(ctx, 1, 5, x); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster healed (%d alive), writes flowing again\n", alive())

	m := store.Metrics()
	fmt.Printf("\nprotocol metrics: writes=%d failedWrites=%d directReads=%d decodeReads=%d rollbacks=%d repairs=%d\n",
		m.Writes, m.FailedWrites, m.DirectReads, m.DecodeReads, m.Rollbacks, m.Repairs)
}
