package trapquorum_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trapquorum"
	"trapquorum/client"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/nodeengine"
	"trapquorum/transport/tcp"
)

// tcpNode is one "machine" of the loopback fleet: a durable disk
// store, a node engine and a TCP server, restartable on a fixed
// address like a real daemon.
type tcpNode struct {
	t      *testing.T
	dir    string
	addr   string
	engine *nodeengine.Engine
	srv    *tcp.NodeServer
}

func (n *tcpNode) start() {
	n.t.Helper()
	store, err := diskstore.Open(n.dir, diskstore.WithSyncWrites(false))
	if err != nil {
		n.t.Fatal(err)
	}
	n.engine = nodeengine.New(store, nodeengine.WithName("node@"+n.addr))
	n.srv = tcp.NewServer(n.engine)
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	go n.srv.Serve(ln)
}

// crash kills the node the way a process death does: listener and
// connections drop, the store's file handles close, nothing is
// flushed beyond what the store already made durable.
func (n *tcpNode) crash() {
	n.t.Helper()
	if err := n.srv.Close(); err != nil {
		n.t.Fatal(err)
	}
	if err := n.engine.Close(); err != nil {
		n.t.Fatal(err)
	}
}

// startFleet boots n durable TCP nodes on loopback.
func startFleet(t *testing.T, n int) []*tcpNode {
	t.Helper()
	nodes := make([]*tcpNode, n)
	for i := range nodes {
		nodes[i] = &tcpNode{
			t:    t,
			dir:  filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i)),
			addr: "127.0.0.1:0",
		}
		nodes[i].start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.engine.Close()
		}
	})
	return nodes
}

func fleetAddrs(nodes []*tcpNode) []string {
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	return addrs
}

// TestNetBackendEndToEnd drives a full ObjectStore workload — Put,
// Get, WriteAt, ReadAt, Scrub, RepairNode, Delete — over real TCP
// sockets and real on-disk stores, including a node crash mid-run
// (must surface as node-down, never hang), a disk replacement and the
// repair that heals it.
func TestNetBackendEndToEnd(t *testing.T) {
	ctx := context.Background()
	nodes := startFleet(t, 15)
	backend := trapquorum.NewNetBackend(fleetAddrs(nodes), tcp.WithDialTimeout(2*time.Second))

	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(128),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Put + Get through the network plane.
	payload := bytes.Repeat([]byte("trapezoid over tcp! "), 100) // 2000 bytes → 2 stripes
	if err := store.Put(ctx, "vm.img", payload); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("network round trip corrupted object")
	}

	// In-place update: parity deltas over the wire.
	patch := []byte("PATCHED-IN-PLACE")
	if err := store.WriteAt(ctx, "vm.img", 256, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[256:], patch)
	span, err := store.ReadAt(ctx, "vm.img", 200, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(span, payload[200:328]) {
		t.Fatal("ReadAt after WriteAt returned stale bytes")
	}

	// Fault injection is a simulator feature; over a real transport it
	// must refuse with the typed error, not panic.
	if err := store.CrashNode(3); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("CrashNode over NetBackend: %v, want ErrNotSupported", err)
	}

	// Crash a real node mid-run: listener and connections die.
	nodes[3].crash()

	// Degraded reads must keep working, promptly (the dead node is
	// node-down, not a hang).
	done := make(chan error, 1)
	go func() {
		g, err := store.Get(ctx, "vm.img")
		if err == nil && !bytes.Equal(g, payload) {
			err = errors.New("degraded get corrupted object")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded get: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded get hung on a crashed node")
	}

	// A fresh Put needs full placement and must fail fast with the
	// node-down sentinel visible through the OpError chain.
	err = store.Put(ctx, "other.img", bytes.Repeat([]byte{1}, 300))
	if !errors.Is(err, client.ErrNodeDown) {
		t.Fatalf("put with a crashed node: %v, want ErrNodeDown in the chain", err)
	}

	// Scrub sees the dead node as unreachable, not as corruption.
	reports, err := store.Scrub(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	sawUnreachable := false
	for _, r := range reports {
		if r.ParityMismatch {
			t.Fatalf("scrub reported corruption: %+v", r)
		}
		// The crashed cluster node holds one shard of each stripe
		// (which one depends on the placement's rotation).
		sawUnreachable = sawUnreachable || len(r.UnreachableShards) > 0
	}
	if !sawUnreachable {
		t.Fatal("scrub did not flag the crashed node's shards unreachable")
	}

	// Disk replacement: the node comes back empty on a new disk and is
	// rebuilt by exact repair over the wire.
	if err := os.RemoveAll(nodes[3].dir); err != nil {
		t.Fatal(err)
	}
	nodes[3].start() // same address, empty store
	rebuilt, err := store.RepairNode(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Fatal("repair rebuilt nothing on the replaced disk")
	}

	// The fleet is whole again: scrub healthy, new writes flow.
	reports, err = store.Scrub(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Healthy {
			t.Fatalf("post-repair scrub: %+v", r)
		}
	}
	if err := store.Put(ctx, "other.img", bytes.Repeat([]byte{1}, 300)); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(ctx, "vm.img"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(ctx, "vm.img"); !errors.Is(err, trapquorum.ErrUnknownKey) {
		t.Fatalf("get after delete: %v", err)
	}
}

// TestNetBackendDurability: chunks written over the wire survive a
// whole-fleet stop/start (daemon restart on the same directories).
func TestNetBackendDurability(t *testing.T) {
	ctx := context.Background()
	nodes := startFleet(t, 15)
	payload := bytes.Repeat([]byte("durable"), 64)

	open := func() *trapquorum.ObjectStore {
		t.Helper()
		store, err := trapquorum.Open(ctx,
			trapquorum.WithBackend(trapquorum.NewNetBackend(fleetAddrs(nodes))),
			trapquorum.WithCode(15, 8),
			trapquorum.WithTrapezoid(2, 3, 1, 3),
			trapquorum.WithBlockSize(64),
		)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}

	store := open()
	if err := store.Put(ctx, "persist.img", payload); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Stop every daemon, then bring the fleet back from disk.
	for _, nd := range nodes {
		nd.crash()
	}
	for _, nd := range nodes {
		nd.start()
	}

	store2 := open()
	defer store2.Close()
	// The object-key registry is client-side state, so a fresh store
	// cannot Get the key back; durability is a node property. Assert
	// every node still serves exactly the shards it held: one chunk
	// per node per stripe of the object.
	stripes := (len(payload) + 64*8 - 1) / (64 * 8)
	total := 0
	for _, nd := range nodes {
		n, err := nd.engine.ChunkCount(ctx)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if want := 15 * stripes; total != want {
		t.Fatalf("fleet serves %d chunks after restart, want %d", total, want)
	}
}
