package trapquorum

import (
	"context"
	"io"

	"trapquorum/internal/service"
)

// ObjectStore is the headline API: a keyed erasure-coded object store
// with quorum consistency, spreading stripes across a cluster larger
// than one stripe by a placement strategy. Objects are chunked into
// stripes of k fixed-size blocks; Get/ReadAt/WriteAt go through the
// quorum protocol block by block, so reads stay strictly consistent
// with in-place updates even while nodes fail. It is safe for
// concurrent use; see WriteAt for the block-granularity semantics of
// overlapping writers.
type ObjectStore struct {
	clusterHandle
	clusterSize int
	svc         *service.Store
}

// Open validates the configuration, asks the backend to provision the
// cluster (sized by the placement strategy) and assembles the object
// store. Close must be called when done.
//
// Defaults: the paper's Figure-3 configuration — WithCode(15, 8),
// WithTrapezoid(2, 3, 1, 3) — 4 KiB blocks, round-robin placement
// over exactly n nodes, and the in-process simulated cluster.
func Open(ctx context.Context, opts ...Option) (*ObjectStore, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	tcfg, err := cfg.trapezoidConfig()
	if err != nil {
		return nil, err
	}
	clusterSize := cfg.place.Nodes()
	nodes, err := cfg.backend.Open(ctx, clusterSize)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(nodes, service.Config{
		N: cfg.n, K: cfg.k,
		Shape: cfg.shape, W: cfg.w,
		BlockSize:         cfg.blockSize,
		Placement:         cfg.place,
		DisableRollback:   cfg.disableRollback,
		Concurrency:       cfg.concurrency,
		CodingParallelism: cfg.codingParallel,
		Hedge:             cfg.hedge,
		NodeGate:          nodeGate(cfg.backend),
	})
	if err != nil {
		cfg.backend.Close()
		return nil, err
	}
	store := &ObjectStore{
		clusterHandle: newClusterHandle(cfg, tcfg),
		clusterSize:   clusterSize,
		svc:           svc,
	}
	if cfg.selfHeal != nil {
		heal, err := startSelfHeal(cfg, clusterSize, svc)
		if err != nil {
			cfg.backend.Close()
			return nil, err
		}
		store.heal = heal
		// Route corruption observations into the health monitor; the
		// service layer translates shard indices to cluster nodes
		// through each stripe's placement.
		mon := heal.mon
		svc.SetCorruptionHandler(func(node int) { mon.ReportCorrupt(node) })
	}
	return store, nil
}

// Put stores data under key. The key must not exist (ErrExists
// otherwise): objects are immutable in extent — use WriteAt for
// in-place updates, or Delete then Put to replace. All placed nodes
// must be up for the initial seeding.
func (s *ObjectStore) Put(ctx context.Context, key string, data []byte) error {
	return s.svc.Put(ctx, key, data)
}

// PutReader stores size bytes streamed from r under key — the
// streaming form of Put for objects too large to hold in memory.
// Stripes are read, encoded and seeded in a bounded pipeline, so peak
// memory stays at two stripes (2·k·BlockSize) however large the
// object. The reader must deliver exactly size bytes; a short read, a
// reader error or a node failure unwinds every stripe already placed —
// no partial object is ever visible, and the key stays free for a
// retry. See docs/PERFORMANCE.md for sizing the stripe to the stream.
func (s *ObjectStore) PutReader(ctx context.Context, key string, r io.Reader, size int) error {
	return s.svc.PutReader(ctx, key, r, size)
}

// Get reads the whole object back through quorum reads.
func (s *ObjectStore) Get(ctx context.Context, key string) ([]byte, error) {
	return s.svc.Get(ctx, key)
}

// GetWriter streams the object to w through quorum reads, one block at
// a time — the streaming form of Get, with peak memory of one block
// however large the object. It returns the bytes written; on error the
// count reports how much of the object reached w.
func (s *ObjectStore) GetWriter(ctx context.Context, key string, w io.Writer) (int64, error) {
	return s.svc.GetWriter(ctx, key, w)
}

// ReadAt reads length bytes at the given offset through quorum reads
// of only the affected blocks.
func (s *ObjectStore) ReadAt(ctx context.Context, key string, offset, length int) ([]byte, error) {
	return s.svc.ReadAt(ctx, key, offset, length)
}

// WriteAt overwrites bytes [offset, offset+len(p)) in place through
// quorum writes, shipping only parity deltas for the affected blocks.
// Writes cannot extend the object (ErrBadRange).
//
// Consistency granularity is the block: each block update is an
// atomic quorum write, but a multi-block span is not a transaction,
// and two WriteAt calls overlapping on the *same* block perform
// independent read-modify-write cycles — the last writer wins at
// block granularity. Callers updating overlapping ranges concurrently
// need their own coordination (the paper assumes classical
// concurrency control above the protocol).
func (s *ObjectStore) WriteAt(ctx context.Context, key string, offset int, p []byte) error {
	return s.svc.WriteAt(ctx, key, offset, p)
}

// Delete removes the object and best-effort deletes its chunks from
// the placed nodes.
func (s *ObjectStore) Delete(ctx context.Context, key string) error {
	return s.svc.Delete(ctx, key)
}

// Size returns the object's byte size.
func (s *ObjectStore) Size(key string) (int, error) { return s.svc.Size(key) }

// Keys lists stored keys in sorted order.
func (s *ObjectStore) Keys() []string { return s.svc.Keys() }

// StripesOf reports the stripe ids backing an object (diagnostics).
func (s *ObjectStore) StripesOf(key string) ([]uint64, error) { return s.svc.StripesOf(key) }

// RepairNode rebuilds every stripe shard placed on the given cluster
// node (after the node returns, possibly with a fresh disk). It
// returns how many chunks were rebuilt.
func (s *ObjectStore) RepairNode(ctx context.Context, node int) (int, error) {
	return s.svc.RepairClusterNode(ctx, node)
}

// Scrub audits every stripe of the object read-only, one ScrubReport
// per stripe. Pair with RepairNode when it reports degradation.
func (s *ObjectStore) Scrub(ctx context.Context, key string) ([]ScrubReport, error) {
	return s.svc.Scrub(ctx, key)
}

// NodeCount returns the number of provisioned cluster nodes — the
// Open-time size plus any nodes added by Reconfigure (removed nodes
// keep their ids, so the count never shrinks; see ActiveNodes for the
// serving roster).
func (s *ObjectStore) NodeCount() int { return s.svc.Fleet().NodeCount() }

// Metrics returns a snapshot of the store-level counters: the
// protocol counters aggregated across every placement, plus the
// self-heal counters when WithSelfHeal is enabled.
func (s *ObjectStore) Metrics() Metrics {
	m := metricsFromCore(s.svc.Metrics())
	s.heal.fold(&m)
	s.foldResilience(&m)
	return m
}
