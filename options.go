package trapquorum

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"trapquorum/internal/core"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// Option configures Open and OpenStore. Options validate eagerly
// where they can; all collected problems are reported together by the
// constructor.
type Option func(*config)

// config is the resolved option set. The zero values of unset fields
// are filled by defaults() before validation.
type config struct {
	n, k            int
	shape           trapezoid.Shape
	w               int
	blockSize       int
	place           placement.Strategy
	backend         Backend
	disableRollback bool
	concurrency     int
	codingParallel  int
	hedge           core.HedgeConfig
	selfHeal        *SelfHeal
	errs            []error
}

// newConfig applies the options over the paper's Figure-3 defaults:
// a (15,8) MDS code under an a=2 b=3 h=1 trapezoid with w=3, 4 KiB
// blocks, round-robin placement over exactly n nodes, and the
// in-process simulated cluster as backend.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{
		n: 15, k: 8,
		shape:          trapezoid.Shape{A: 2, B: 3, H: 1},
		w:              3,
		blockSize:      4096,
		codingParallel: 1,
	}
	for _, opt := range opts {
		if opt == nil {
			cfg.errs = append(cfg.errs, errors.New("trapquorum: nil Option"))
			continue
		}
		opt(cfg)
	}
	if cfg.k < 1 || cfg.n < cfg.k {
		cfg.errs = append(cfg.errs, fmt.Errorf("trapquorum: need 1 <= k <= n, got (n=%d, k=%d)", cfg.n, cfg.k))
	}
	if cfg.blockSize < 1 {
		cfg.errs = append(cfg.errs, fmt.Errorf("trapquorum: block size %d invalid", cfg.blockSize))
	}
	if got, want := cfg.shape.NbNodes(), cfg.n-cfg.k+1; len(cfg.errs) == 0 && got != want {
		cfg.errs = append(cfg.errs, fmt.Errorf(
			"trapquorum: trapezoid (a=%d b=%d h=%d) holds %d nodes; need n-k+1 = %d",
			cfg.shape.A, cfg.shape.B, cfg.shape.H, got, want))
	}
	if cfg.place == nil {
		rr, err := placement.NewRoundRobin(max(cfg.n, 1))
		if err != nil {
			cfg.errs = append(cfg.errs, err)
		} else {
			cfg.place = rr
		}
	}
	if cfg.backend == nil {
		cfg.backend = NewSimBackend()
	}
	if len(cfg.errs) > 0 {
		return nil, errors.Join(cfg.errs...)
	}
	return cfg, nil
}

// trapezoidConfig validates and builds the quorum thresholds.
func (c *config) trapezoidConfig() (trapezoid.Config, error) {
	return trapezoid.NewConfig(c.shape, c.w)
}

// WithCode selects the (n,k) MDS erasure code: k data blocks and n−k
// parity blocks per stripe (1 ≤ k ≤ n ≤ 256).
func WithCode(n, k int) Option {
	return func(c *config) { c.n, c.k = n, k }
}

// WithTrapezoid selects the trapezoid quorum geometry: level l of
// levels 0..h holds a·l+b nodes, and Σ(a·l+b) must equal n−k+1; w is
// the write-quorum size at levels 1..h (ignored when h = 0).
func WithTrapezoid(a, b, h, w int) Option {
	return func(c *config) {
		c.shape = trapezoid.Shape{A: a, B: b, H: h}
		c.w = w
	}
}

// WithPlacement selects the strategy mapping stripes to cluster
// nodes; the strategy's node count defines the cluster size the
// backend is asked to provision. Only meaningful for Open (the
// object store); OpenStore always uses exactly n nodes.
func WithPlacement(p placement.Strategy) Option {
	return func(c *config) {
		if p == nil {
			c.errs = append(c.errs, errors.New("trapquorum: WithPlacement(nil)"))
			return
		}
		c.place = p
	}
}

// WithBlockSize sets the fixed data-block size in bytes for the
// object store's stripes (default 4096). Only meaningful for Open;
// OpenStore derives block sizes from the payloads it is given.
func WithBlockSize(bytes int) Option {
	return func(c *config) { c.blockSize = bytes }
}

// WithBackend selects the transport backend providing the cluster's
// node clients. The default is NewSimBackend(), the in-process
// simulated fail-stop cluster.
func WithBackend(b Backend) Option {
	return func(c *config) {
		if b == nil {
			c.errs = append(c.errs, errors.New("trapquorum: WithBackend(nil)"))
			return
		}
		c.backend = b
	}
}

// WithDisableRollback reproduces the paper's Algorithm 1 verbatim:
// failed writes leave their partial updates behind. Leave unset
// unless studying the failed-write residue hazard.
func WithDisableRollback() Option {
	return func(c *config) { c.disableRollback = true }
}

// WithConcurrency bounds the number of in-flight per-node RPCs a
// single quorum operation issues. The default (0) contacts every node
// of the operation at once, so operation latency tracks the slowest
// individual RPC instead of the sum over the quorum.
// WithConcurrency(1) serialises the RPCs, reproducing the sequential
// engine for comparison benchmarks. The same limit also caps how many
// per-stripe repairs a node-wide repair sweep keeps in flight.
func WithConcurrency(limit int) Option {
	return func(c *config) {
		if limit < 0 {
			c.errs = append(c.errs, fmt.Errorf("trapquorum: WithConcurrency(%d): need >= 0", limit))
			return
		}
		c.concurrency = limit
	}
}

// WithCodingParallelism bounds the worker set the erasure data plane
// fans block segments across: large blocks are split into cache-sized
// segments and encoded/rebuilt by up to `workers` goroutines, the
// stripe-parallel sibling of the quorum engine's WithConcurrency knob.
// The default (1) keeps all coding on the calling goroutine, which is
// right for small blocks and for servers running many operations
// concurrently; use >1 (or 0 for GOMAXPROCS) to accelerate individual
// large-block operations — a virtual-disk or large-object workload —
// on multi-core hardware.
func WithCodingParallelism(workers int) Option {
	return func(c *config) {
		if workers < 0 {
			c.errs = append(c.errs, fmt.Errorf("trapquorum: WithCodingParallelism(%d): need >= 0", workers))
			return
		}
		if workers == 0 {
			// Resolve the auto value here so every layer below sees an
			// explicit worker count (the zero value stays "serial" for
			// raw internal configs).
			workers = runtime.GOMAXPROCS(0)
		}
		c.codingParallel = workers
	}
}

// WithHedging enables tail-latency hedging of read-path RPCs (version
// probes and chunk reads): an RPC that has not settled after the hedge
// delay is re-issued once and the first result wins, so one slow node
// does not drag a read to its tail latency. Hedging costs duplicate
// RPCs on the hedged fraction of requests and never touches mutating
// RPCs, so it is safe with any backend honouring the client contract.
//
// delay is the fixed hedge delay (and the floor under the adaptive
// delay). quantile, when in (0, 1), adapts the delay to that quantile
// of recently observed read-RPC latencies — e.g. 0.95 hedges only the
// slowest ~5% of RPCs once enough samples exist. Set quantile to 0
// for a purely fixed delay.
func WithHedging(delay time.Duration, quantile float64) Option {
	return func(c *config) {
		if delay < 0 || quantile < 0 || quantile >= 1 {
			c.errs = append(c.errs, fmt.Errorf(
				"trapquorum: WithHedging(%v, %v): need delay >= 0 and 0 <= quantile < 1", delay, quantile))
			return
		}
		if delay == 0 && quantile == 0 {
			c.errs = append(c.errs, errors.New("trapquorum: WithHedging(0, 0) enables nothing; omit the option instead"))
			return
		}
		c.hedge = core.HedgeConfig{Delay: delay, Quantile: quantile}
	}
}
