package trapquorum

import (
	"errors"
	"fmt"

	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// Option configures Open and OpenStore. Options validate eagerly
// where they can; all collected problems are reported together by the
// constructor.
type Option func(*config)

// config is the resolved option set. The zero values of unset fields
// are filled by defaults() before validation.
type config struct {
	n, k            int
	shape           trapezoid.Shape
	w               int
	blockSize       int
	place           placement.Strategy
	backend         Backend
	disableRollback bool
	errs            []error
}

// newConfig applies the options over the paper's Figure-3 defaults:
// a (15,8) MDS code under an a=2 b=3 h=1 trapezoid with w=3, 4 KiB
// blocks, round-robin placement over exactly n nodes, and the
// in-process simulated cluster as backend.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{
		n: 15, k: 8,
		shape:     trapezoid.Shape{A: 2, B: 3, H: 1},
		w:         3,
		blockSize: 4096,
	}
	for _, opt := range opts {
		if opt == nil {
			cfg.errs = append(cfg.errs, errors.New("trapquorum: nil Option"))
			continue
		}
		opt(cfg)
	}
	if cfg.k < 1 || cfg.n < cfg.k {
		cfg.errs = append(cfg.errs, fmt.Errorf("trapquorum: need 1 <= k <= n, got (n=%d, k=%d)", cfg.n, cfg.k))
	}
	if cfg.blockSize < 1 {
		cfg.errs = append(cfg.errs, fmt.Errorf("trapquorum: block size %d invalid", cfg.blockSize))
	}
	if got, want := cfg.shape.NbNodes(), cfg.n-cfg.k+1; len(cfg.errs) == 0 && got != want {
		cfg.errs = append(cfg.errs, fmt.Errorf(
			"trapquorum: trapezoid (a=%d b=%d h=%d) holds %d nodes; need n-k+1 = %d",
			cfg.shape.A, cfg.shape.B, cfg.shape.H, got, want))
	}
	if cfg.place == nil {
		rr, err := placement.NewRoundRobin(max(cfg.n, 1))
		if err != nil {
			cfg.errs = append(cfg.errs, err)
		} else {
			cfg.place = rr
		}
	}
	if cfg.backend == nil {
		cfg.backend = NewSimBackend()
	}
	if len(cfg.errs) > 0 {
		return nil, errors.Join(cfg.errs...)
	}
	return cfg, nil
}

// trapezoidConfig validates and builds the quorum thresholds.
func (c *config) trapezoidConfig() (trapezoid.Config, error) {
	return trapezoid.NewConfig(c.shape, c.w)
}

// WithCode selects the (n,k) MDS erasure code: k data blocks and n−k
// parity blocks per stripe (1 ≤ k ≤ n ≤ 256).
func WithCode(n, k int) Option {
	return func(c *config) { c.n, c.k = n, k }
}

// WithTrapezoid selects the trapezoid quorum geometry: level l of
// levels 0..h holds a·l+b nodes, and Σ(a·l+b) must equal n−k+1; w is
// the write-quorum size at levels 1..h (ignored when h = 0).
func WithTrapezoid(a, b, h, w int) Option {
	return func(c *config) {
		c.shape = trapezoid.Shape{A: a, B: b, H: h}
		c.w = w
	}
}

// WithPlacement selects the strategy mapping stripes to cluster
// nodes; the strategy's node count defines the cluster size the
// backend is asked to provision. Only meaningful for Open (the
// object store); OpenStore always uses exactly n nodes.
func WithPlacement(p placement.Strategy) Option {
	return func(c *config) {
		if p == nil {
			c.errs = append(c.errs, errors.New("trapquorum: WithPlacement(nil)"))
			return
		}
		c.place = p
	}
}

// WithBlockSize sets the fixed data-block size in bytes for the
// object store's stripes (default 4096). Only meaningful for Open;
// OpenStore derives block sizes from the payloads it is given.
func WithBlockSize(bytes int) Option {
	return func(c *config) { c.blockSize = bytes }
}

// WithBackend selects the transport backend providing the cluster's
// node clients. The default is NewSimBackend(), the in-process
// simulated fail-stop cluster.
func WithBackend(b Backend) Option {
	return func(c *config) {
		if b == nil {
			c.errs = append(c.errs, errors.New("trapquorum: WithBackend(nil)"))
			return
		}
		c.backend = b
	}
}

// WithDisableRollback reproduces the paper's Algorithm 1 verbatim:
// failed writes leave their partial updates behind. Leave unset
// unless studying the failed-write residue hazard.
func WithDisableRollback() Option {
	return func(c *config) { c.disableRollback = true }
}
