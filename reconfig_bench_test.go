package trapquorum_test

// Reconfiguration benchmarks, exported to BENCH_reconfig.json by
// tools/benchjson: migration throughput of a (9,6)→(15,8) grow+recode
// drain, and the foreground read latency (p99) an application sees
// while that drain runs. Both run on the in-process simulated cluster,
// so the numbers isolate the reconfiguration machinery itself —
// locking, re-encoding, re-placement — from network and disk.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"trapquorum"
)

// benchPopulate opens a (9,6) fleet and fills it with count objects of
// size bytes each, returning the store and the keys.
func benchPopulate(b *testing.B, count, size, blockSize int) (*trapquorum.ObjectStore, []string) {
	b.Helper()
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(9, 6),
		trapquorum.WithTrapezoid(2, 1, 1, 2),
		trapquorum.WithBlockSize(blockSize))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	keys := make([]string, count)
	data := make([]byte, size)
	for i := range keys {
		rng.Read(data)
		keys[i] = fmt.Sprintf("bench-%d", i)
		if err := store.Put(ctx, keys[i], data); err != nil {
			store.Close()
			b.Fatal(err)
		}
	}
	return store, keys
}

// BenchmarkReconfigMigration measures migration throughput: one full
// grow+recode drain of a populated fleet, reported as MB/s of logical
// object bytes re-placed (read from the old epoch, re-encoded, seeded
// onto the new placement, cut over).
func BenchmarkReconfigMigration(b *testing.B) {
	const objects, size = 32, 16 << 10
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, _ := benchPopulate(b, objects, size, 4096)
		b.SetBytes(objects * size)
		b.StartTimer()
		if err := store.Reconfigure(ctx, growRecode); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if m := store.Health().Migration; m.Active || m.Retired != 1 {
			b.Fatalf("drain did not converge: %+v", m)
		}
		store.Close()
		b.StartTimer()
	}
}

// BenchmarkForegroundReadDuringRecode measures what a recode costs the
// application: whole-object read latency sampled while the drain runs,
// reported as the p99 in milliseconds alongside the usual ns/op. Reads
// that land after the drain completes still count — the tail of the
// distribution is dominated by reads racing a cutover, which is the
// number an operator planning a live recode needs.
func BenchmarkForegroundReadDuringRecode(b *testing.B) {
	const objects, size = 64, 4 << 10
	ctx := context.Background()
	store, keys := benchPopulate(b, objects, size, 1024)
	defer store.Close()

	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(ctx, growRecode) }()

	rng := rand.New(rand.NewSource(7))
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[rng.Intn(len(keys))]
		start := time.Now()
		if _, err := store.Get(ctx, key); err != nil {
			b.Fatalf("read during recode: %v", err)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	if err := <-errc; err != nil {
		b.Fatalf("Reconfigure: %v", err)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
}
