// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, one record per benchmark result line.
// It reads the benchmark output on stdin and writes JSON to the file
// named by -o (stdout by default):
//
//	go test -run=NONE -bench=. -benchmem ./internal/gf256/ ./internal/erasure/ |
//	    go run ./tools/benchjson -o BENCH_dataplane.json
//
// The four standard columns (ns/op, MB/s, B/op, allocs/op) map to
// named fields; any other unit — the custom metrics benchmarks emit
// via b.ReportMetric, like conns, req/s or p99-ms — lands in the
// extra map keyed by its unit string.
//
// Lines that are not benchmark results (headers, PASS/ok, logs) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iters       int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parse scans a `go test -bench` stream and returns one Result per
// benchmark line, attributing each to the most recent `pkg:` header.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Package: pkg, Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "MB/s":
				res.MBPerSec = val
			case "B/op":
				res.BytesPerOp = int64(val)
			case "allocs/op":
				res.AllocsPerOp = int64(val)
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		if res.NsPerOp == 0 {
			continue
		}
		results = append(results, res)
	}
	return results, sc.Err()
}
