// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, one record per benchmark result line.
// It reads the benchmark output on stdin and writes JSON to the file
// named by -o (stdout by default):
//
//	go test -run=NONE -bench=. -benchmem ./internal/gf256/ ./internal/erasure/ |
//	    go run ./tools/benchjson -o BENCH_dataplane.json
//
// Lines that are not benchmark results (headers, PASS/ok, logs) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iters       int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "MB/s":
				r.MBPerSec = val
			case "B/op":
				r.BytesPerOp = int64(val)
			case "allocs/op":
				r.AllocsPerOp = int64(val)
			}
		}
		if r.NsPerOp == 0 {
			continue
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
