package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestParse feeds a realistic mixed `go test -bench` stream — headers,
// noise, standard columns and custom ReportMetric units — and checks
// every field lands where the JSON consumers expect it.
func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: trapquorum/internal/gf256
cpu: Intel(R) Xeon(R)
BenchmarkMulSlice 	  500000	      2100 ns/op	19500.00 MB/s	       0 B/op	       0 allocs/op
some unrelated log line
pkg: trapquorum/internal/gateway
BenchmarkServePathAllocs 	   20000	      5613 ns/op	       0 B/op	       0 allocs/op
Benchmark10kConnections 	       3	 365779254 ns/op	     10000 conns	       360.9 p99-ms	     54676 req/s
BenchmarkBogusIters 	notanumber	      10 ns/op
PASS
ok  	trapquorum/internal/gateway	2.5s
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{
			Name: "BenchmarkMulSlice", Package: "trapquorum/internal/gf256",
			Iters: 500000, NsPerOp: 2100, MBPerSec: 19500,
		},
		{
			Name: "BenchmarkServePathAllocs", Package: "trapquorum/internal/gateway",
			Iters: 20000, NsPerOp: 5613,
		},
		{
			Name: "Benchmark10kConnections", Package: "trapquorum/internal/gateway",
			Iters: 3, NsPerOp: 365779254,
			Extra: map[string]float64{"conns": 10000, "p99-ms": 360.9, "req/s": 54676},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse =\n%+v\nwant\n%+v", got, want)
	}
}

// TestParseEmpty: a stream with no benchmark lines yields no results
// and no error.
func TestParseEmpty(t *testing.T) {
	got, err := parse(strings.NewReader("PASS\nok \tx\t0.1s\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("parse = %v, %v; want empty, nil", got, err)
	}
}
