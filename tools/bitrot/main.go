// Command bitrot injects media corruption into a trapnode's durable
// store by flipping bytes directly in on-disk chunk files — the
// operator-side half of the corruption fault-injection harness, for
// chaos-testing a live cluster end to end:
//
//	trapnode -addr :7420 -dir /var/lib/trapnode -scan-interval 30s &
//	bitrot -dir /var/lib/trapnode -list
//	bitrot -dir /var/lib/trapnode -stripe 7 -shard 3
//
// The damage goes to the file behind the daemon's back, exactly like
// real media rot: the node keeps serving its in-memory mirror until
// its next at-rest scan (trapnode -scan-interval, or a restart)
// re-reads the file, fails the CRC and quarantines the chunk. From
// then on the node answers ErrCorrupt for it, the cluster's verified
// reads decode around it, and the scrubber repairs it — zero manual
// intervention.
//
// The tool never touches the WAL or the directory lock, and -flips
// bytes rather than rewriting structure, so the damage is always the
// kind the CRC is there to catch.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	var (
		dir    = flag.String("dir", "", "trapnode storage directory (the daemon's -dir)")
		list   = flag.Bool("list", false, "list the chunk files and exit")
		stripe = flag.Uint64("stripe", 0, "stripe id of the chunk to damage")
		shard  = flag.Int("shard", -1, "shard index of the chunk to damage")
		offset = flag.Int64("offset", -1, "byte offset to flip (-1: middle of the file)")
		count  = flag.Int("count", 1, "number of consecutive bytes to flip")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("bitrot: -dir is required")
	}
	chunksDir := filepath.Join(*dir, "chunks")
	if *list {
		if err := listChunks(chunksDir); err != nil {
			log.Fatalf("bitrot: %v", err)
		}
		return
	}
	if *shard < 0 {
		log.Fatal("bitrot: -stripe and -shard select the chunk to damage (or use -list)")
	}
	if *count < 1 {
		log.Fatal("bitrot: -count must be at least 1")
	}
	path := filepath.Join(chunksDir, fmt.Sprintf("%016x-%08x.chunk", *stripe, uint32(*shard)))
	n, err := flipBytes(path, *offset, *count)
	if err != nil {
		log.Fatalf("bitrot: %v", err)
	}
	fmt.Printf("bitrot: flipped %d byte(s) in %s\n", n, path)
}

// listChunks prints every chunk file with its size, sorted by name
// (stripe-major, matching the id encoding).
func listChunks(chunksDir string) error {
	entries, err := os.ReadDir(chunksDir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".chunk") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		info, err := os.Stat(filepath.Join(chunksDir, name))
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%d bytes\n", name, info.Size())
	}
	if len(names) == 0 {
		fmt.Println("bitrot: no chunk files")
	}
	return nil
}

// flipBytes XORs 0xff into count bytes of the file at the given
// offset (-1 selects the middle, which lands in the chunk body rather
// than the header on any realistic block size). The write goes
// straight into the existing file — no temp file, no rename — because
// rot does not announce itself.
func flipBytes(path string, offset int64, count int) (int, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	if size == 0 {
		return 0, fmt.Errorf("%s is empty", path)
	}
	if offset < 0 {
		offset = size / 2
	}
	if offset >= size {
		return 0, fmt.Errorf("offset %d beyond file size %d", offset, size)
	}
	if max := size - offset; int64(count) > max {
		count = int(max)
	}
	buf := make([]byte, count)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return 0, err
	}
	for i := range buf {
		buf[i] ^= 0xff
	}
	if _, err := f.WriteAt(buf, offset); err != nil {
		return 0, err
	}
	return count, f.Sync()
}
