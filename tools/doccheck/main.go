// Command doccheck is the repository's documentation lint, with two
// modes CI runs both of:
//
// Godoc coverage (the default): it fails when any exported
// identifier of the public packages (the root trapquorum package,
// client, client/gateway, placement, transport/tcp) lacks a doc
// comment, keeping the
// public surface fully documented.
//
// Markdown link check (-md): it fails when any intra-repository
// markdown link — [text](relative/path), with an optional #fragment —
// points at a file that does not exist, keeping README/DESIGN/
// OPERATIONS/PERFORMANCE from referencing documents that moved or
// were renamed. External links (a scheme like https:) and pure
// in-page fragments (#section) are skipped: the lint is about repo
// files dangling, not the web or heading spelling.
//
// Usage:
//
//	go run ./tools/doccheck [package-dir ...]
//	go run ./tools/doccheck -md file.md [file.md ...]
//
// With no arguments it checks the default public packages relative to
// the current directory. Exit status 1 lists every undocumented
// exported symbol (or dangling link).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	mdMode := flag.Bool("md", false, "check intra-repo markdown links instead of godoc coverage")
	flag.Parse()
	if *mdMode {
		checkMarkdown(flag.Args())
		return
	}
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{".", "./client", "./client/gateway", "./placement", "./transport/tcp"}
	}
	var missing []string
	for _, dir := range dirs {
		found, err := check(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, found...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// mdLink matches inline markdown links and images: [text](target)
// with no whitespace in the target (titles are not used in this
// repository's docs).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown verifies every relative link of the given markdown
// files resolves, reporting dangling ones and exiting non-zero.
func checkMarkdown(files []string) {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: -md needs at least one markdown file")
		os.Exit(2)
	}
	dangling, err := findDangling(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(dangling) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d dangling markdown links:\n", len(dangling))
		for _, d := range dangling {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
}

// findDangling scans markdown files for intra-repo links whose target
// (resolved relative to the linking file's own directory, fragment
// stripped) does not exist, returning one "file:line: ..." string per
// dangling link.
func findDangling(files []string) ([]string, error) {
	var dangling []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLink(target) {
					continue
				}
				// A fragment on a file link: the file must exist; the
				// heading is not checked.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					dangling = append(dangling,
						fmt.Sprintf("%s:%d: link (%s) dangles: %s missing", file, lineNo+1, m[1], resolved))
				}
			}
		}
	}
	return dangling, nil
}

// skipLink reports whether a link target is outside this lint's
// scope: absolute URLs (any scheme), mail links, and pure in-page
// fragments.
func skipLink(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// check parses one package directory (tests excluded) and returns the
// undocumented exported symbols as "file:line: name" strings.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func", funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is itself
// exported (methods on unexported types are not public API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Name" for methods, "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(%s).%s", typeString(d.Recv.List[0].Type), d.Name.Name)
}

func typeString(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return "*" + typeString(v.X)
	case *ast.IndexExpr:
		return typeString(v.X)
	case *ast.Ident:
		return v.Name
	default:
		return "?"
	}
}

// checkGenDecl walks a const/var/type declaration. A doc comment on
// the declaration group covers every name in it (the standard godoc
// convention for grouped constants and variables); an individual spec
// is also covered by its own doc or trailing line comment.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, kind, name string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							report(n.Pos(), "field", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
			if it, ok := s.Type.(*ast.InterfaceType); ok && s.Name.IsExported() {
				for _, m := range it.Methods.List {
					for _, n := range m.Names {
						if n.IsExported() && m.Doc == nil && m.Comment == nil {
							report(n.Pos(), "method", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}
