// Command doccheck is the repository's godoc-coverage lint: it fails
// when any exported identifier of the public packages (the root
// trapquorum package, client, placement, transport/tcp) lacks a doc
// comment, keeping the public surface fully documented as CI
// enforces.
//
// Usage:
//
//	go run ./tools/doccheck [package-dir ...]
//
// With no arguments it checks the default public packages relative to
// the current directory. Exit status 1 lists every undocumented
// exported symbol.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{".", "./client", "./placement", "./transport/tcp"}
	}
	var missing []string
	for _, dir := range dirs {
		found, err := check(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, found...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// check parses one package directory (tests excluded) and returns the
// undocumented exported symbols as "file:line: name" strings.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func", funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is itself
// exported (methods on unexported types are not public API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Name" for methods, "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(%s).%s", typeString(d.Recv.List[0].Type), d.Name.Name)
}

func typeString(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return "*" + typeString(v.X)
	case *ast.IndexExpr:
		return typeString(v.X)
	case *ast.Ident:
		return v.Name
	default:
		return "?"
	}
}

// checkGenDecl walks a const/var/type declaration. A doc comment on
// the declaration group covers every name in it (the standard godoc
// convention for grouped constants and variables); an individual spec
// is also covered by its own doc or trailing line comment.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, kind, name string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							report(n.Pos(), "field", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
			if it, ok := s.Type.(*ast.InterfaceType); ok && s.Name.IsExported() {
				for _, m := range it.Methods.List {
					for _, n := range m.Names {
						if n.IsExported() && m.Doc == nil && m.Comment == nil {
							report(n.Pos(), "method", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}
