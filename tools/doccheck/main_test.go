package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFindDangling pins the link lint both ways: a dangling relative
// link is reported (the lint cannot vacuously pass), while existing
// files, fragments, subdirectory targets and external URLs are not.
func TestFindDangling(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(rel, content string) string {
		path := filepath.Join(dir, rel)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("exists.md", "target\n")
	write("docs/sub.md", "see [root](../exists.md)\n")
	main := write("main.md", strings.Join([]string{
		"[ok](exists.md) and [dir](docs/)",
		"[frag](exists.md#some-heading) [inpage](#local) [ext](https://example.com/x.md)",
		"[broken](missing.md) then [also broken](docs/nope.md#frag)",
	}, "\n"))

	got, err := findDangling([]string{main, filepath.Join(dir, "docs", "sub.md")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d dangling links %v, want 2", len(got), got)
	}
	if !strings.Contains(got[0], "missing.md") || !strings.Contains(got[0], ":3:") {
		t.Fatalf("first finding %q, want missing.md at line 3", got[0])
	}
	if !strings.Contains(got[1], "docs/nope.md") {
		t.Fatalf("second finding %q, want docs/nope.md", got[1])
	}
}

// TestFindDanglingReadError: unreadable inputs are an error, not a
// silent pass.
func TestFindDanglingReadError(t *testing.T) {
	if _, err := findDangling([]string{filepath.Join(t.TempDir(), "absent.md")}); err == nil {
		t.Fatal("want error for unreadable file")
	}
}
