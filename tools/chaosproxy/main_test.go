package main

import (
	"strings"
	"testing"
	"time"

	"trapquorum/internal/chaosnet"
)

// run feeds one command line through the dispatcher.
func run(t *testing.T, link *chaosnet.Link, up, down *chaosnet.Faults, line string) {
	t.Helper()
	if err := command(link, up, down, strings.Fields(line)); err != nil {
		t.Fatalf("command %q: %v", line, err)
	}
}

func TestCommandsEditFaults(t *testing.T) {
	link := chaosnet.NewLink(1)
	var up, down chaosnet.Faults

	run(t, link, &up, &down, "drop 0.3")
	if up.DropProb != 0.3 || down.DropProb != 0.3 {
		t.Fatalf("unscoped drop: up=%v down=%v", up, down)
	}

	run(t, link, &up, &down, "up delay 60ms 20ms")
	if up.Delay != 60*time.Millisecond || up.Jitter != 20*time.Millisecond {
		t.Fatalf("scoped delay: up=%v", up)
	}
	if down.Delay != 0 {
		t.Fatalf("scoped edit leaked into down: %v", down)
	}

	run(t, link, &up, &down, "down blackhole")
	if !down.Blackhole || up.Blackhole {
		t.Fatalf("scoped blackhole: up=%v down=%v", up, down)
	}

	run(t, link, &up, &down, "heal")
	if up != (chaosnet.Faults{}) || down != (chaosnet.Faults{}) {
		t.Fatalf("heal left faults: up=%v down=%v", up, down)
	}

	run(t, link, &up, &down, "stats")
	run(t, link, &up, &down, "") // blank line is a no-op

	if err := command(link, &up, &down, []string{"explode"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := command(link, &up, &down, []string{"drop", "1.5"}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if err := command(link, &up, &down, []string{"up"}); err == nil {
		t.Fatal("bare direction accepted")
	}
}
