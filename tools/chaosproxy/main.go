// Command chaosproxy puts the wire-level chaos engine
// (internal/chaosnet) between a client and one live trapnode as a
// standalone TCP proxy — the operator-side half of the network
// fault-injection harness, for fire-drilling a real fleet:
//
//	trapnode -addr :7420 -dir /var/lib/trapnode &
//	chaosproxy -listen :7520 -target 127.0.0.1:7420 -drop 0.3
//	# point the client's NetBackend at :7520 instead of :7420
//
// Flags set the initial fault set; once running, the proxy reads
// commands from stdin so an operator can script a drill live:
//
//	drop 0.3          # 30% chance per burst the stream dies silently
//	delay 60ms 20ms   # latency (+ optional jitter) per burst
//	bandwidth 512     # cap the link to 512 B/s (slow-loris territory)
//	partition         # refuse new dials, reset open connections
//	blackhole         # swallow everything silently instead
//	cut               # reset open connections once, keep faults
//	heal              # restore the link completely
//	up drop 1         # fault one direction only (asymmetric partition)
//	stats             # connection/drop/reset counters
//
// Every random decision derives from -seed, so a drill replays
// identically. One chaosproxy fronts one node; run one per node link
// you want to damage.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trapquorum/internal/chaosnet"
)

func main() {
	var (
		listen     = flag.String("listen", "", "address to accept client connections on (required)")
		target     = flag.String("target", "", "the real node's address to forward to (required)")
		seed       = flag.Int64("seed", 1, "seed for every random fault decision (same seed, same drill)")
		delay      = flag.Duration("delay", 0, "initial per-burst delay, both directions")
		jitter     = flag.Duration("jitter", 0, "initial uniform extra delay in [0, jitter), both directions")
		bandwidth  = flag.Int("bandwidth", 0, "initial bandwidth cap in bytes/second, both directions (0 = unlimited)")
		drop       = flag.Float64("drop", 0, "initial per-burst probability the stream dies silently, both directions")
		reset      = flag.Float64("reset", 0, "initial per-burst probability the connection is reset, both directions")
		resetAfter = flag.Int64("reset-after", 0, "reset each connection after exactly N bytes per direction (0 = never)")
		blackhole  = flag.Bool("blackhole", false, "start with the link blackholed (everything vanishes silently)")
		partition  = flag.Bool("partition", false, "start with the link partitioned (dials refused)")
	)
	flag.Parse()
	if *listen == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -listen and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	link := chaosnet.NewLink(*seed)
	initial := chaosnet.Faults{
		Delay:      *delay,
		Jitter:     *jitter,
		Bandwidth:  *bandwidth,
		DropProb:   *drop,
		ResetProb:  *reset,
		ResetAfter: *resetAfter,
		Blackhole:  *blackhole,
	}
	link.SetFaults(initial, initial)
	if *partition {
		link.Partition()
	}

	proxy, err := chaosnet.NewProxy(*listen, *target, link)
	if err != nil {
		log.Fatalf("chaosproxy: %v", err)
	}
	defer proxy.Close()
	log.Printf("chaosproxy: %s -> %s (seed %d, up/down %v)", proxy.Addr(), *target, *seed, initial)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// The tool remembers the fault sets it installed (the link has no
	// getter — tests don't need one) so single-direction edits compose.
	up, down := initial, initial
	for {
		select {
		case s := <-sig:
			log.Printf("chaosproxy: %v, shutting down", s)
			return
		case line, ok := <-lines:
			if !ok {
				return // stdin closed: piped drill script finished
			}
			if err := command(link, &up, &down, strings.Fields(line)); err != nil {
				log.Printf("chaosproxy: %v", err)
			}
		}
	}
}

// command applies one drill command, updating the remembered per-
// direction fault sets alongside the link.
func command(link *chaosnet.Link, up, down *chaosnet.Faults, args []string) error {
	if len(args) == 0 {
		return nil
	}
	// An optional leading direction scopes a fault edit.
	both := true
	target := up // overwritten below when scoped
	switch args[0] {
	case "up":
		both, target, args = false, up, args[1:]
	case "down":
		both, target, args = false, down, args[1:]
	}
	if len(args) == 0 {
		return fmt.Errorf("missing command after direction")
	}

	apply := func() {
		if both {
			*down = *up
		}
		link.SetFaults(*up, *down)
		log.Printf("chaosproxy: up: %v", *up)
		log.Printf("chaosproxy: down: %v", *down)
	}
	if both {
		target = up
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "heal":
		*up, *down = chaosnet.Faults{}, chaosnet.Faults{}
		link.Heal()
		log.Printf("chaosproxy: link healed")
	case "partition":
		link.Partition()
		log.Printf("chaosproxy: link partitioned (dials refused, open connections reset)")
	case "cut":
		link.CutConns()
		log.Printf("chaosproxy: open connections reset")
	case "blackhole":
		target.Blackhole = true
		apply()
	case "delay":
		if len(rest) < 1 {
			return fmt.Errorf("usage: [up|down] delay <duration> [jitter]")
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil {
			return err
		}
		target.Delay = d
		if len(rest) > 1 {
			if target.Jitter, err = time.ParseDuration(rest[1]); err != nil {
				return err
			}
		}
		apply()
	case "bandwidth":
		n, err := intArg(rest, "bandwidth <bytes/s>")
		if err != nil {
			return err
		}
		target.Bandwidth = n
		apply()
	case "drop":
		p, err := probArg(rest, "drop <prob>")
		if err != nil {
			return err
		}
		target.DropProb = p
		apply()
	case "reset":
		p, err := probArg(rest, "reset <prob>")
		if err != nil {
			return err
		}
		target.ResetProb = p
		apply()
	case "reset-after":
		n, err := intArg(rest, "reset-after <bytes>")
		if err != nil {
			return err
		}
		target.ResetAfter = int64(n)
		apply()
	case "stats":
		s := link.Stats()
		log.Printf("chaosproxy: conns=%d refusedDials=%d droppedBursts=%d resets=%d",
			s.Conns, s.RefusedDials, s.DroppedBursts, s.Resets)
	default:
		return fmt.Errorf("unknown command %q (heal, partition, cut, blackhole, delay, bandwidth, drop, reset, reset-after, stats)", cmd)
	}
	return nil
}

func intArg(rest []string, usage string) (int, error) {
	if len(rest) < 1 {
		return 0, fmt.Errorf("usage: [up|down] %s", usage)
	}
	return strconv.Atoi(rest[0])
}

func probArg(rest []string, usage string) (float64, error) {
	if len(rest) < 1 {
		return 0, fmt.Errorf("usage: [up|down] %s", usage)
	}
	p, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}
