// Package trapquorum is a storage library implementing the Trapezoid
// Quorum Protocol for erasure-coded data (TRAP-ERC) from Relaza, Jorda
// and M'zoughi, "Trapezoid Quorum Protocol Dedicated to Erasure
// Resilient Coding Based Schemes", IPDPSW 2015.
//
// # The v1 surface
//
// The headline type is ObjectStore: a keyed erasure-coded object store
// spreading stripes across a cluster by a placement strategy, with
// strict per-block consistency through the trapezoid quorum protocol.
// Every operation takes a context.Context and can be bounded or
// cancelled mid-quorum:
//
//	store, err := trapquorum.Open(ctx,
//	        trapquorum.WithCode(15, 8),
//	        trapquorum.WithTrapezoid(2, 3, 1, 3),
//	        trapquorum.WithBlockSize(4096),
//	        trapquorum.WithPlacement(ring))
//	if err != nil { ... }
//	defer store.Close()
//	err  = store.Put(ctx, "vm-alpha.img", image)
//	data, err := store.Get(ctx, "vm-alpha.img")
//	err  = store.WriteAt(ctx, "vm-alpha.img", 512, patch)
//
// The low-level single-stripe Store (via OpenStore) exposes the
// protocol directly — SeedStripe, WriteBlock, ReadBlock — for
// callers managing stripes themselves and for protocol experiments.
//
// Both run on any backend implementing the client.NodeClient transport
// contract; the built-in SimBackend provides the in-process simulated
// fail-stop cluster the paper's evaluation assumes.
//
// # Protocol
//
// A stripe keeps k original data blocks plus n−k parity blocks of a
// systematic (n,k) MDS erasure code, spread over n storage nodes.
// Strict consistency is maintained by the trapezoid quorum protocol:
// writes must reach w_l nodes on every level of a logical trapezoid
// laid over the block's data node and the parity nodes; reads collect
// versions from s_l−w_l+1 nodes of some level — guaranteed to overlap
// every write — then either read the data node directly or decode
// from k consistent shards.
//
// Compared to keeping n−k+1 full replicas, the erasure-coded layout
// stores n/k block-sizes instead of n−k+1 (a 4–8× saving at practical
// parameters) at the same write availability and a read availability
// that is indistinguishable for node availabilities above 0.8.
package trapquorum

import (
	"errors"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/service"
	"trapquorum/internal/trapezoid"
)

// Re-exported protocol errors; test with errors.Is. Context aborts
// surface as context.Canceled / context.DeadlineExceeded, reachable
// through errors.Is as well.
var (
	// ErrWriteFailed reports that some trapezoid level could not reach
	// its write threshold w_l.
	ErrWriteFailed = core.ErrWriteFailed
	// ErrNotReadable reports that no level reached its version-check
	// threshold, or no k consistent shards were available to decode.
	ErrNotReadable = core.ErrNotReadable
	// ErrUnknownStripe reports an operation on a stripe id that was
	// never written.
	ErrUnknownStripe = core.ErrUnknownStripe
	// ErrUnknownKey reports an ObjectStore operation on a key that
	// does not exist.
	ErrUnknownKey = service.ErrUnknownKey
	// ErrBadRange reports an ObjectStore range operation outside the
	// object's extent.
	ErrBadRange = service.ErrBadRange
	// ErrExists reports a Put on a key that already exists.
	ErrExists = service.ErrExists
	// ErrOverloaded is explicit backpressure from a bounded queue: the
	// serving side (typically the gateway tier's worker pool or a
	// connection's in-flight window) refused to queue the request
	// instead of letting queues grow without bound. The request was
	// not executed — back off and retry. Carried by both wire codecs
	// as a dedicated status, so errors.Is works across the network.
	ErrOverloaded = client.ErrOverloaded
	// ErrQuotaExceeded reports a mutation that would push a tenant's
	// namespace past its configured object-count or byte quota (see
	// the gateway tier's per-tenant quotas). The mutation was not
	// applied. Carried by both wire codecs as a dedicated status.
	ErrQuotaExceeded = client.ErrQuotaExceeded
	// ErrCorrupt reports shard content that failed cross-checksum
	// verification. Reads never return it while k clean shards remain
	// — corrupt shards are discarded and the block re-decoded from
	// survivors — so seeing it from a read means corruption exceeded
	// the code's tolerance. Node engines also return it for chunks
	// whose on-disk CRC failed (quarantined files). Carried by both
	// wire codecs as a dedicated status.
	ErrCorrupt = client.ErrCorrupt
)

// ErrNotSupported reports an operation the configured backend cannot
// perform — fault injection (CrashNode, RestartNode, AliveNodes,
// WipeNode) on a backend that does not implement FaultInjector, such
// as NetBackend. Test with errors.Is.
var ErrNotSupported = errors.New("trapquorum: operation not supported by backend")

// OpError is the typed error every failed quorum operation returns:
// it carries the operation name and the stripe/block/level/node where
// the failure occurred, and unwraps to the sentinel cause —
// ErrWriteFailed, ErrNotReadable, context.Canceled,
// context.DeadlineExceeded — so errors.Is and errors.As both work:
//
//	var op *trapquorum.OpError
//	if errors.As(err, &op) { log.Printf("stripe %d level %d", op.Stripe, op.Level) }
//	if errors.Is(err, context.DeadlineExceeded) { retryLater() }
type OpError = core.OpError

// Metrics is a snapshot of store-level counters: the protocol
// counters (DirectReads and DecodeReads mirror the P1/P2
// decomposition of the paper's equation 13) plus, when WithSelfHeal
// is enabled, the failure detector's and repair orchestrator's
// counters. Every counter is cumulative and monotone over the
// store's lifetime; self-heal counters stay zero on stores opened
// without WithSelfHeal.
type Metrics struct {
	// Writes counts committed quorum writes.
	Writes int64
	// FailedWrites counts writes that could not reach their quorum.
	FailedWrites int64
	// DirectReads counts reads served by the block's data node (the
	// paper's P1 path).
	DirectReads int64
	// DecodeReads counts reads decoded from k consistent shards (the
	// paper's P2 path).
	DecodeReads int64
	// FailedReads counts reads no level could serve.
	FailedReads int64
	// Rollbacks counts failed writes whose partial updates were
	// rolled back.
	Rollbacks int64
	// Repairs counts chunk rebuilds that succeeded, whoever asked for
	// them (manual RepairNode calls and the self-heal orchestrator
	// both land here).
	Repairs int64
	// HedgedRPCs counts read-path RPCs re-issued by hedging.
	HedgedRPCs int64
	// CorruptShards counts shard-level corruption observations made by
	// the verified read, repair and scrub paths: chunks whose bytes
	// disagree with the cross-checksum record majority, and nodes
	// answering ErrCorrupt. One shard caught by several paths counts
	// once per observation.
	CorruptShards int64

	// Probes counts liveness probes issued by the health monitor.
	Probes int64
	// ProbeFailures counts probes that returned an error.
	ProbeFailures int64
	// Suspicions counts up→suspect transitions.
	Suspicions int64
	// DownEvents counts transitions into the down state.
	DownEvents int64
	// Recoveries counts repairing→up transitions — nodes restored to
	// full redundancy by the orchestrator.
	Recoveries int64
	// CorruptReports counts corruption observations delivered to the
	// health monitor (per-node counts are in NodeHealth).
	CorruptReports int64
	// CorruptEvents counts transitions into the corrupt state,
	// re-arms of a still-corrupt node included.
	CorruptEvents int64

	// AutoRepairs counts chunk repairs executed by the self-heal
	// orchestrator that succeeded.
	AutoRepairs int64
	// AutoRepairFailures counts orchestrator repairs that failed (they
	// are retried).
	AutoRepairFailures int64
	// ScrubPasses counts completed anti-entropy scrub passes.
	ScrubPasses int64
	// ScrubStripes counts stripes audited across all scrub passes.
	ScrubStripes int64
	// ScrubDegraded counts repair tasks the scrubber found.
	ScrubDegraded int64
	// Brownouts counts transitions into the brownout state (node
	// degraded — answering, but slowly; see SelfHeal.BrownoutLatency).
	Brownouts int64

	// The transport resilience counters below are populated when the
	// backend implements ResilienceReporter (NetBackend with a
	// Resilience policy does; the simulator does not — fault injection
	// there is in-process and needs no breakers).

	// BreakerOpens counts closed→open transitions of per-node circuit
	// breakers, across all node links.
	BreakerOpens int64
	// BreakerFastFails counts operations failed locally because the
	// node's breaker was open — load the fleet was spared.
	BreakerFastFails int64
	// TransportRetries counts replay-safe operations re-sent by the
	// transport after a transient failure.
	TransportRetries int64
	// RetryBudgetSpent counts retry-budget tokens consumed; compare
	// with TransportRetries (equal unless budgets were swapped
	// mid-run).
	RetryBudgetSpent int64
	// RetryBudgetDenied counts retries refused because the budget was
	// exhausted — the backstop against retry storms. A nonzero value
	// under steady load means the fleet is failing faster than the
	// budget refills; fix the network, not the budget.
	RetryBudgetDenied int64
}

// ScrubReport is the stripe audit result of a scrub: the freshest
// consistent version vector plus the stale/ahead/unreachable shard
// classification and byte-level parity verification.
type ScrubReport = core.ScrubReport

// Shapes lists every valid trapezoid shape (a, b, h triple with
// h ≤ maxH) for an (n,k) code, to explore the design space.
func Shapes(n, k, maxH int) ([][3]int, error) {
	if k < 1 || n < k {
		return nil, errors.New("trapquorum: need 1 <= k <= n")
	}
	var out [][3]int
	for _, s := range trapezoid.EnumerateShapes(n-k+1, maxH) {
		out = append(out, [3]int{s.A, s.B, s.H})
	}
	return out, nil
}
