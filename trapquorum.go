// Package trapquorum is a storage library implementing the Trapezoid
// Quorum Protocol for erasure-coded data (TRAP-ERC) from Relaza, Jorda
// and M'zoughi, "Trapezoid Quorum Protocol Dedicated to Erasure
// Resilient Coding Based Schemes", IPDPSW 2015.
//
// A Store keeps each stripe as k original data blocks plus n−k parity
// blocks of a systematic (n,k) MDS erasure code, spread over n
// simulated fail-stop storage nodes. Strict consistency is maintained
// by the trapezoid quorum protocol: writes must reach w_l nodes on
// every level of a logical trapezoid laid over the block's data node
// and the parity nodes; reads collect versions from s_l−w_l+1 nodes of
// some level — guaranteed to overlap every write — then either read
// the data node directly or decode from k consistent shards.
//
// Compared to keeping n−k+1 full replicas, the erasure-coded layout
// stores n/k block-sizes instead of n−k+1 (a 4–8× saving at practical
// parameters) at the same write availability and a read availability
// that is indistinguishable for node availabilities above 0.8.
//
//	store, err := trapquorum.Open(trapquorum.Config{
//	        N: 15, K: 8,
//	        A: 2, B: 3, H: 1, W: 3,
//	})
//	if err != nil { ... }
//	defer store.Close()
//	err = store.WriteObject(1, payload)
//	data, err := store.ReadObject(1)
package trapquorum

import (
	"errors"
	"fmt"

	"trapquorum/internal/availability"
	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// Re-exported protocol errors; test with errors.Is.
var (
	// ErrWriteFailed reports that some trapezoid level could not reach
	// its write threshold w_l.
	ErrWriteFailed = core.ErrWriteFailed
	// ErrNotReadable reports that no level reached its version-check
	// threshold, or no k consistent shards were available to decode.
	ErrNotReadable = core.ErrNotReadable
	// ErrUnknownStripe reports an operation on an id that was never
	// written.
	ErrUnknownStripe = core.ErrUnknownStripe
)

// Config selects the erasure code and the trapezoid quorum geometry.
//
// The (n,k) MDS code stores k data blocks and n−k parity blocks per
// stripe. The trapezoid has H+1 levels; level l holds A·l+B nodes, and
// the total must equal n−k+1 (the data node plus the parity nodes).
// Writes need ⌊B/2⌋+1 nodes at level 0 and W nodes at each level
// above.
type Config struct {
	// N and K are the MDS code parameters (1 ≤ K ≤ N ≤ 256).
	N, K int
	// A, B, H are the trapezoid shape: level l holds A·l+B nodes,
	// levels 0..H. Σ(A·l+B) must equal N−K+1.
	A, B, H int
	// W is the write-quorum size at levels 1..H (1 ≤ W ≤ level size).
	// Ignored when H = 0.
	W int
	// DisableRollback reproduces the paper's Algorithm 1 verbatim:
	// failed writes leave their partial updates behind. Leave false
	// unless studying the failed-write residue hazard.
	DisableRollback bool
}

// Metrics is a snapshot of protocol counters. DirectReads and
// DecodeReads mirror the P1/P2 decomposition of the paper's
// equation (13).
type Metrics = core.MetricsSnapshot

// Store is an erasure-coded quorum-replicated block store backed by an
// in-process simulated cluster of N fail-stop nodes. It is safe for
// concurrent use.
type Store struct {
	cfg     Config
	code    *erasure.Code
	tcfg    trapezoid.Config
	cluster *sim.Cluster
	sys     *core.System
}

// Open validates the configuration, starts the N simulated nodes and
// assembles the protocol on top. Close must be called when done.
func Open(cfg Config) (*Store, error) {
	code, err := erasure.New(cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	shape := trapezoid.Shape{A: cfg.A, B: cfg.B, H: cfg.H}
	tcfg, err := trapezoid.NewConfig(shape, cfg.W)
	if err != nil {
		return nil, err
	}
	if got, want := shape.NbNodes(), cfg.N-cfg.K+1; got != want {
		return nil, fmt.Errorf("trapquorum: trapezoid (a=%d b=%d h=%d) holds %d nodes; need n-k+1 = %d",
			cfg.A, cfg.B, cfg.H, got, want)
	}
	cluster, err := sim.NewCluster(cfg.N)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeClient, cfg.N)
	for j := 0; j < cfg.N; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := core.NewSystem(code, tcfg, nodes, core.Options{DisableRollback: cfg.DisableRollback})
	if err != nil {
		cluster.Close()
		return nil, err
	}
	return &Store{cfg: cfg, code: code, tcfg: tcfg, cluster: cluster, sys: sys}, nil
}

// Close stops the simulated nodes. The store is unusable afterwards.
func (s *Store) Close() { s.cluster.Close() }

// Config returns the configuration the store was opened with.
func (s *Store) Config() Config { return s.cfg }

// WriteObject stores a payload of arbitrary size under the given id,
// splitting it into the stripe's k data blocks. All N nodes must be up
// (initial placement is allocation, not a quorum operation).
func (s *Store) WriteObject(id uint64, payload []byte) error {
	return s.sys.WriteObject(id, payload)
}

// ReadObject reads a payload back through one quorum read per block.
func (s *Store) ReadObject(id uint64) ([]byte, error) {
	return s.sys.ReadObject(id)
}

// SeedStripe installs k explicit equally-sized data blocks as stripe
// id, for callers managing blocks directly.
func (s *Store) SeedStripe(id uint64, blocks [][]byte) error {
	return s.sys.SeedStripe(id, blocks)
}

// WriteBlock updates data block index (0 ≤ index < K) of a stripe via
// Algorithm 1: the quorum write with in-place parity deltas.
func (s *Store) WriteBlock(id uint64, index int, data []byte) error {
	return s.sys.WriteBlock(id, index, data)
}

// ReadBlock reads one data block via Algorithm 2 and reports the
// version served.
func (s *Store) ReadBlock(id uint64, index int) ([]byte, uint64, error) {
	return s.sys.ReadBlock(id, index)
}

// NodeCount returns N, the number of storage nodes.
func (s *Store) NodeCount() int { return s.cfg.N }

// CrashNode fail-stops node j (0 ≤ j < N). Data survives; operations
// against the node fail until RestartNode.
func (s *Store) CrashNode(j int) { s.cluster.Crash(j) }

// RestartNode revives node j with its chunks intact.
func (s *Store) RestartNode(j int) { s.cluster.Restart(j) }

// WipeNode erases node j's storage (media replacement). The node must
// be up. Follow with RepairNode.
func (s *Store) WipeNode(j int) error { return s.cluster.Node(j).Wipe() }

// RepairNode rebuilds every stripe shard assigned to node j from the
// surviving nodes (exact repair). It returns how many chunks were
// rebuilt.
func (s *Store) RepairNode(j int) (int, error) { return s.sys.RepairNode(j) }

// RepairStripeShard rebuilds a single shard of a single stripe.
func (s *Store) RepairStripeShard(id uint64, shard int) error {
	return s.sys.RepairShard(id, shard)
}

// RepairStripe repairs every stale shard of a stripe, iterating to a
// fixpoint (stale parity needs fresh data shards and vice versa; see
// the core package's ordering discussion). It returns how many repair
// calls succeeded and which shards were left untouched because they
// are ahead of every rebuildable state.
func (s *Store) RepairStripe(id uint64) (repaired int, ahead []int, err error) {
	return s.sys.RepairStripe(id)
}

// AliveNodes returns how many nodes are currently up.
func (s *Store) AliveNodes() int { return s.cluster.AliveCount() }

// ScrubReport re-exports the stripe audit result of the core package.
type ScrubReport = core.ScrubReport

// ScrubStripe audits a stripe read-only: it reports the freshest
// consistent version vector, stale/ahead/unreachable shards, and
// byte-level parity mismatches (silent corruption). Pair with
// RepairStripe when it reports degradation.
func (s *Store) ScrubStripe(id uint64) (ScrubReport, error) {
	return s.sys.ScrubStripe(id)
}

// Metrics returns a snapshot of the protocol counters.
func (s *Store) Metrics() Metrics { return s.sys.Metrics() }

// WriteAvailability evaluates the paper's equation (8)/(9): the
// probability a block write succeeds when every node is independently
// up with probability p. Identical for the erasure-coded and
// full-replication variants.
func (s *Store) WriteAvailability(p float64) float64 {
	return availability.Write(s.tcfg, p)
}

// ReadAvailability evaluates the paper's equation (13): the
// probability a block read succeeds at node availability p.
func (s *Store) ReadAvailability(p float64) (float64, error) {
	return availability.ReadERC(availability.ERCParams{Config: s.tcfg, N: s.cfg.N, K: s.cfg.K}, p)
}

// ReadAvailabilityFullReplication evaluates equation (10): what the
// same trapezoid would deliver with full replicas instead of parity.
func (s *Store) ReadAvailabilityFullReplication(p float64) float64 {
	return availability.ReadFR(s.tcfg, p)
}

// StorageOverhead returns the disk used per data block in units of
// block size: n/k for this store (equation 15), versus n−k+1 under
// full replication (equation 14).
func (s *Store) StorageOverhead() float64 {
	return availability.StorageERC(s.cfg.N, s.cfg.K)
}

// FullReplicationOverhead returns equation (14)'s n−k+1 for
// comparison.
func (s *Store) FullReplicationOverhead() float64 {
	return availability.StorageFR(s.cfg.N, s.cfg.K)
}

// Shapes lists every valid trapezoid shape (a, b, h triple with
// h ≤ maxH) for an (n,k) code, to explore the design space.
func Shapes(n, k, maxH int) ([][3]int, error) {
	if k < 1 || n < k {
		return nil, errors.New("trapquorum: need 1 <= k <= n")
	}
	var out [][3]int
	for _, s := range trapezoid.EnumerateShapes(n-k+1, maxH) {
		out = append(out, [3]int{s.A, s.B, s.H})
	}
	return out, nil
}
