package trapquorum

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/health"
	"trapquorum/internal/repairsched"
)

// NodeProber is the optional Backend extension the self-healing
// monitor probes liveness through: ProbeNode answers nil when cluster
// node `node` is reachable and an error (conventionally wrapping
// client.ErrNodeDown) when it is not. The probe must be cheap — it is
// issued for every node on every probe interval — and must honour the
// context, which carries the per-probe timeout.
//
// SimBackend implements it from the simulator's fail-stop flags;
// NetBackend implements it as a per-node TCP ping. WithSelfHeal
// requires the configured backend to implement this interface and
// Open fails with an ErrNotSupported wrap otherwise.
type NodeProber interface {
	// ProbeNode checks that cluster node `node` is reachable.
	ProbeNode(ctx context.Context, node int) error
}

// NodeState is a position of the per-node liveness state machine the
// self-healing monitor maintains: NodeUp → NodeSuspect → NodeDown →
// NodeRepairing → NodeUp. See DESIGN.md "Self-healing" for the full
// transition diagram.
type NodeState = health.State

// The liveness states of a monitored node.
const (
	// NodeUp: the node answers probes; no background work is needed.
	NodeUp NodeState = health.Up
	// NodeSuspect: recent probes failed but fewer than the suspicion
	// threshold in a row; the protocol still talks to the node.
	NodeSuspect NodeState = health.Suspect
	// NodeDown: the suspicion threshold was reached; the node is
	// considered failed until it answers again.
	NodeDown NodeState = health.Down
	// NodeRepairing: the node answers again after being down and the
	// orchestrator is rebuilding the chunks placed on it.
	NodeRepairing NodeState = health.Repairing
	// NodeCorrupt: the node is alive but was observed serving bytes
	// its peers' cross-checksum records disavow (bit-rot or a lying
	// node). Probe success never clears it; the orchestrator rebuilds
	// the node's chunks and the pin lifts only when no further
	// corruption is observed during the rebuild — a persistently
	// corrupt node stays pinned here. See DESIGN.md "Verified reads".
	NodeCorrupt NodeState = health.Corrupt
	// NodeBrownout: the node answers probes, but slowly — its smoothed
	// link latency exceeds SelfHeal.BrownoutLatency. Degraded, not
	// down: the node stays a full quorum member and no repair is
	// planned; the state clears itself (with hysteresis) once latency
	// recovers, and a browned-out node that stops answering falls
	// through Suspect to Down like any other.
	NodeBrownout NodeState = health.Brownout
)

// NodeTransition is one state-machine edge of one node, delivered to
// the SelfHeal.OnTransition observer.
type NodeTransition = health.Transition

// NodeHealth is the externally visible liveness status of one node,
// as reported by Health().
type NodeHealth = health.NodeStatus

// SelfHeal configures the self-healing subsystem enabled by
// WithSelfHeal: a failure-detecting monitor probing every cluster
// node, and a repair orchestrator that rebuilds the chunks of
// returned nodes and runs periodic anti-entropy scrubs. Zero fields
// take the documented defaults, so WithSelfHeal(trapquorum.SelfHeal{})
// enables the subsystem fully tuned for a LAN fleet.
type SelfHeal struct {
	// ProbeInterval is the pause between liveness probe rounds
	// (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each individual probe (default:
	// ProbeInterval).
	ProbeTimeout time.Duration
	// SuspicionThreshold is how many consecutive probes must fail
	// before a node is declared down (default 3). Raise it on flaky
	// networks to trade detection latency for fewer false alarms.
	SuspicionThreshold int
	// RepairConcurrency bounds the in-flight background chunk repairs
	// (default 2), keeping reconvergence I/O off the foreground path.
	RepairConcurrency int
	// RepairRetry is the pause before retrying a node whose repair
	// plan had failures (default 2s).
	RepairRetry time.Duration
	// ScrubInterval is the pause between anti-entropy scrub passes
	// (default 1m). Negative disables scrubbing; the monitor and
	// node-repair orchestration keep running.
	ScrubInterval time.Duration
	// ScrubJitter randomises each scrub pause by ±Jitter·Interval
	// (default 0.2) so stores sharing a fleet do not scrub in
	// lockstep.
	ScrubJitter float64
	// ScrubPace is the minimum gap between consecutive stripe audits
	// within a pass (default 2ms) — the rate limit on scrub reads.
	ScrubPace time.Duration
	// BrownoutLatency, when positive, enables brownout detection: a
	// node whose smoothed link latency exceeds it is reported
	// NodeBrownout (degraded, not down — no repair is planned), and
	// returns to NodeUp once latency drops below half the threshold.
	// The latency source is the backend's per-node EWMA over real
	// operations when the backend implements LatencyReporter
	// (NetBackend does); otherwise the monitor's own probe durations.
	// Zero disables brownout detection (the default).
	BrownoutLatency time.Duration
	// OnTransition, when non-nil, observes every liveness transition
	// in application order (logging, tests). It is invoked from one
	// dedicated goroutine — never concurrently with itself — and may
	// call back into the store (Health, Metrics). Keep it fast.
	OnTransition func(NodeTransition)
}

// WithSelfHeal enables the self-healing subsystem: liveness
// monitoring of every cluster node, automatic repair of nodes that
// return after a failure (fresh disk included), and periodic
// anti-entropy scrubs that find and heal degradation probes cannot
// see. Requires a backend implementing NodeProber (SimBackend and
// NetBackend both do); Open fails with an ErrNotSupported wrap
// otherwise. Inspect the subsystem at runtime through Health() and
// the self-heal counters folded into Metrics().
func WithSelfHeal(sh SelfHeal) Option {
	return func(c *config) {
		if sh.ProbeInterval < 0 || sh.ProbeTimeout < 0 || sh.RepairRetry < 0 || sh.ScrubPace < 0 || sh.BrownoutLatency < 0 {
			c.errs = append(c.errs, fmt.Errorf(
				"trapquorum: WithSelfHeal: negative durations (probe %v/%v, retry %v, pace %v, brownout %v)",
				sh.ProbeInterval, sh.ProbeTimeout, sh.RepairRetry, sh.ScrubPace, sh.BrownoutLatency))
			return
		}
		if sh.SuspicionThreshold < 0 || sh.RepairConcurrency < 0 {
			c.errs = append(c.errs, fmt.Errorf(
				"trapquorum: WithSelfHeal: negative threshold (%d) or concurrency (%d)",
				sh.SuspicionThreshold, sh.RepairConcurrency))
			return
		}
		if sh.ScrubJitter < 0 || sh.ScrubJitter >= 1 {
			c.errs = append(c.errs, fmt.Errorf(
				"trapquorum: WithSelfHeal: scrub jitter %v outside [0, 1)", sh.ScrubJitter))
			return
		}
		c.selfHeal = &sh
	}
}

// ScrubProgress reports the anti-entropy scrubber's position, inside
// a Health() snapshot.
type ScrubProgress struct {
	// Passes counts completed anti-entropy passes.
	Passes int64
	// Audited is the number of stripes audited so far in the
	// in-progress pass (0 when no pass is running).
	Audited int
	// Total is the stripe count of the in-progress pass (0 when no
	// pass is running).
	Total int
	// DegradedFound counts repair tasks found by scrubbing, across
	// all passes.
	DegradedFound int64
}

// HealthReport is the Health() snapshot of the self-healing
// subsystem: per-node liveness, the repair backlog and the scrub
// position. The zero value (Enabled false) is returned when the store
// was opened without WithSelfHeal.
type HealthReport struct {
	// Enabled reports whether WithSelfHeal was configured.
	Enabled bool
	// Nodes is the per-node liveness status, indexed by cluster node.
	Nodes []NodeHealth
	// RepairBacklog is the number of repair tasks queued or
	// executing.
	RepairBacklog int
	// Scrub is the anti-entropy scrubber's position.
	Scrub ScrubProgress
	// Links is the per-node-link resilience snapshot (breaker state,
	// latency EWMA, retry counters), in cluster-node order, when the
	// backend implements LinkReporter (NetBackend does); nil
	// otherwise. Unlike the fields above, Links is populated even on a
	// store opened without WithSelfHeal — breakers live in the
	// transport and need no monitor.
	Links []client.LinkHealth
	// Migration is the reconfiguration snapshot: the fleet's placement
	// epochs and, while a migration drains, its progress. Like Links it
	// is populated with or without WithSelfHeal, on Open (not OpenStore)
	// stores.
	Migration MigrationReport
}

// Degraded lists the nodes currently not NodeUp — the one-line answer
// to "is the fleet healthy".
func (r HealthReport) Degraded() []int {
	var out []int
	for _, n := range r.Nodes {
		if n.State != NodeUp {
			out = append(out, n.Node)
		}
	}
	return out
}

// healer bundles the monitor and orchestrator a self-healing store
// runs; nil when self-healing is disabled.
type healer struct {
	mon *health.Monitor
	orc *repairsched.Orchestrator
}

// startSelfHeal assembles and starts the subsystem for a store whose
// cluster has clusterSize nodes, repairing through target.
func startSelfHeal(cfg *config, clusterSize int, target repairsched.Target) (*healer, error) {
	prober, ok := cfg.backend.(NodeProber)
	if !ok {
		return nil, fmt.Errorf(
			"%w: WithSelfHeal needs a backend implementing NodeProber; %T is not one",
			ErrNotSupported, cfg.backend)
	}
	sh := cfg.selfHeal
	hcfg := health.Config{
		Interval:        sh.ProbeInterval,
		Timeout:         sh.ProbeTimeout,
		Threshold:       sh.SuspicionThreshold,
		BrownoutLatency: sh.BrownoutLatency,
		OnTransition:    sh.OnTransition,
	}
	// Brownout detection prefers the transport's per-node latency EWMA
	// over real operations; the monitor falls back to its own probe
	// durations when the backend has none to offer.
	if lr, ok := cfg.backend.(LatencyReporter); ok {
		hcfg.Latency = lr.NodeLatency
	}
	mon, err := health.New(clusterSize, prober.ProbeNode, hcfg)
	if err != nil {
		return nil, err
	}
	orc := repairsched.New(target, mon, repairsched.Config{
		RepairConcurrency: sh.RepairConcurrency,
		RetryInterval:     sh.RepairRetry,
		ScrubInterval:     sh.ScrubInterval,
		ScrubJitter:       sh.ScrubJitter,
		ScrubPace:         sh.ScrubPace,
	})
	orc.Start()
	mon.Start()
	return &healer{mon: mon, orc: orc}, nil
}

// Close stops the orchestrator (no new repairs, in-flight ones
// settle) and then the monitor. Nil-safe.
func (h *healer) Close() {
	if h == nil {
		return
	}
	h.orc.Close()
	h.mon.Close()
}

// report builds the public Health snapshot. Nil-safe.
func (h *healer) report() HealthReport {
	if h == nil {
		return HealthReport{}
	}
	st := h.orc.Status()
	return HealthReport{
		Enabled:       true,
		Nodes:         h.mon.Snapshot(),
		RepairBacklog: st.Backlog + st.InFlight,
		Scrub: ScrubProgress{
			Passes:        st.ScrubPasses,
			Audited:       st.ScrubAudited,
			Total:         st.ScrubTotal,
			DegradedFound: st.ScrubDegraded,
		},
	}
}

// fold adds the self-heal counters into a Metrics snapshot. Nil-safe.
func (h *healer) fold(m *Metrics) {
	if h == nil {
		return
	}
	mc := h.mon.Counters()
	m.Probes = mc.Probes
	m.ProbeFailures = mc.ProbeFailures
	m.Suspicions = mc.Suspicions
	m.DownEvents = mc.DownEvents
	m.Recoveries = mc.Recoveries
	m.CorruptReports = mc.CorruptReports
	m.CorruptEvents = mc.CorruptEvents
	m.Brownouts = mc.Brownouts
	oc := h.orc.Counters()
	m.AutoRepairs = oc.Repairs
	m.AutoRepairFailures = oc.RepairFailures
	m.ScrubPasses = oc.ScrubPasses
	m.ScrubStripes = oc.ScrubStripes
	m.ScrubDegraded = oc.ScrubDegraded
}

// metricsFromCore copies the protocol counters into the public
// Metrics shape (the self-heal counters are folded in separately).
func metricsFromCore(m core.MetricsSnapshot) Metrics {
	return Metrics{
		Writes:        m.Writes,
		FailedWrites:  m.FailedWrites,
		DirectReads:   m.DirectReads,
		DecodeReads:   m.DecodeReads,
		FailedReads:   m.FailedReads,
		Rollbacks:     m.Rollbacks,
		Repairs:       m.Repairs,
		HedgedRPCs:    m.HedgedRPCs,
		CorruptShards: m.CorruptShards,
	}
}

// coreTarget adapts the single-stripe-set core.System behind
// OpenStore to the repair orchestrator: the placement is the
// identity, stripe shard j lives on cluster node j.
type coreTarget struct{ sys *core.System }

var _ repairsched.Target = coreTarget{}

// identityNode maps a shard index to itself — the low-level store's
// placement, where stripe shard j always lives on cluster node j.
func identityNode(shard int) int { return shard }

// PlanNodeRepairs implements repairsched.Target.
func (t coreTarget) PlanNodeRepairs(node int, down func(int) bool) []repairsched.Task {
	stripes := t.Stripes()
	lost := repairsched.LostCount(t.sys.Code().N(), identityNode, down)
	tasks := make([]repairsched.Task, 0, len(stripes))
	for _, stripe := range stripes {
		tasks = append(tasks, repairsched.Task{Stripe: stripe, Shard: node, Node: node, Priority: lost})
	}
	return tasks
}

// Repair implements repairsched.Target.
func (t coreTarget) Repair(ctx context.Context, task repairsched.Task) error {
	err := t.sys.RepairShard(ctx, task.Stripe, task.Shard)
	if errors.Is(err, core.ErrUnknownStripe) {
		return nil
	}
	return err
}

// Stripes implements repairsched.Target.
func (t coreTarget) Stripes() []uint64 {
	out := t.sys.Stripes()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScrubStripe implements repairsched.Target through the shared
// repairable-degradation policy (repairsched.DegradationTasks).
func (t coreTarget) ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]repairsched.Task, error) {
	rep, err := t.sys.ScrubStripe(ctx, stripe)
	if err != nil {
		if errors.Is(err, core.ErrUnknownStripe) {
			return nil, nil
		}
		return nil, err
	}
	return repairsched.DegradationTasks(stripe, t.sys.Code().N(),
		rep.StaleShards, rep.UnreachableShards, rep.CorruptShards, identityNode, down), nil
}
