package trapquorum_test

// This file is the acceptance check that the v1 surface is
// implementable outside internal/: it builds a complete in-memory
// storage backend from the public client contract alone and runs the
// protocol end to end on it. It compiles only against trapquorum,
// trapquorum/client and trapquorum/placement.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"trapquorum"
	"trapquorum/client"
)

// stubNode is a minimal external client.NodeClient: a mutex-guarded
// chunk map with the version semantics the contract describes.
type stubNode struct {
	mu     sync.Mutex
	chunks map[client.ChunkID]client.Chunk
	// onOp, when set, runs before every operation — the fault/cancel
	// injection hook used by the context tests.
	onOp func(op string) error
}

// Compile-time check: the public contract is implementable outside
// internal/.
var _ client.NodeClient = (*stubNode)(nil)

func newStubNode() *stubNode {
	return &stubNode{chunks: make(map[client.ChunkID]client.Chunk)}
}

func (n *stubNode) begin(ctx context.Context, op string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n.onOp != nil {
		if err := n.onOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (n *stubNode) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	if err := n.begin(ctx, "read"); err != nil {
		return client.Chunk{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.chunks[id]
	if !ok {
		return client.Chunk{}, fmt.Errorf("%w: %s", client.ErrNotFound, id)
	}
	return c.Clone(), nil
}

func (n *stubNode) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, []client.BlockSum, error) {
	if err := n.begin(ctx, "version"); err != nil {
		return nil, nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.chunks[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", client.ErrNotFound, id)
	}
	return append([]uint64(nil), c.Versions...), append([]client.BlockSum(nil), c.Sums...), nil
}

func (n *stubNode) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.begin(ctx, "write"); err != nil {
		return err
	}
	if len(versions) == 0 {
		return fmt.Errorf("%w: empty version vector", client.ErrBadRequest)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chunks[id] = client.Chunk{
		Data:     append([]byte(nil), data...),
		Versions: append([]uint64(nil), versions...),
		Sums:     append([]client.BlockSum(nil), sums...),
	}
	return nil
}

func (n *stubNode) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.begin(ctx, "write"); err != nil {
		return err
	}
	if len(versions) == 0 {
		return fmt.Errorf("%w: empty version vector", client.ErrBadRequest)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.chunks[id]; ok {
		if len(c.Versions) != len(versions) {
			return fmt.Errorf("%w: vector length %d vs %d", client.ErrBadRequest, len(versions), len(c.Versions))
		}
		for slot, v := range c.Versions {
			if versions[slot] < v {
				return fmt.Errorf("%w: slot %d regresses", client.ErrVersionMismatch, slot)
			}
		}
	}
	n.chunks[id] = client.Chunk{
		Data:     append([]byte(nil), data...),
		Versions: append([]uint64(nil), versions...),
		Sums:     append([]client.BlockSum(nil), sums...),
	}
	return nil
}

// setSum updates one record slot, growing the record to the version
// vector's width on first use (the contract's record-merge rule for
// the compare-and-* operations).
func setSum(c *client.Chunk, slot int, sum []client.BlockSum) {
	if len(sum) == 0 {
		return
	}
	if len(c.Sums) < len(c.Versions) {
		grown := make([]client.BlockSum, len(c.Versions))
		copy(grown, c.Sums)
		c.Sums = grown
	}
	c.Sums[slot] = sum[0]
}

func (n *stubNode) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	if err := n.begin(ctx, "write"); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.chunks[id]
	if !ok {
		return fmt.Errorf("%w: %s", client.ErrNotFound, id)
	}
	if slot < 0 || slot >= len(c.Versions) {
		return fmt.Errorf("%w: slot %d", client.ErrBadRequest, slot)
	}
	if c.Versions[slot] != expect {
		return fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, c.Versions[slot], expect)
	}
	c.Data = append([]byte(nil), data...)
	c.Versions[slot] = next
	setSum(&c, slot, sum)
	n.chunks[id] = c
	return nil
}

func (n *stubNode) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	if err := n.begin(ctx, "add"); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.chunks[id]
	if !ok {
		return fmt.Errorf("%w: %s", client.ErrNotFound, id)
	}
	if slot < 0 || slot >= len(c.Versions) {
		return fmt.Errorf("%w: slot %d", client.ErrBadRequest, slot)
	}
	if len(delta) != len(c.Data) {
		return fmt.Errorf("%w: delta size %d vs %d", client.ErrBadRequest, len(delta), len(c.Data))
	}
	if c.Versions[slot] != expect {
		return fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, c.Versions[slot], expect)
	}
	for i := range c.Data {
		c.Data[i] ^= delta[i]
	}
	c.Versions[slot] = next
	setSum(&c, slot, sum)
	n.chunks[id] = c
	return nil
}

func (n *stubNode) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	if err := n.begin(ctx, "delete"); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.chunks, id)
	return nil
}

// stubBackend provisions stubNodes.
type stubBackend struct {
	nodes []*stubNode
}

var _ trapquorum.Backend = (*stubBackend)(nil)

func (b *stubBackend) Open(ctx context.Context, n int) ([]client.NodeClient, error) {
	b.nodes = make([]*stubNode, n)
	out := make([]client.NodeClient, n)
	for i := range out {
		b.nodes[i] = newStubNode()
		out[i] = b.nodes[i]
	}
	return out, nil
}

func (b *stubBackend) Close() error { return nil }

// TestExternalBackendStore runs the low-level protocol end to end on
// the external backend: seed, quorum write, quorum read, decode after
// chunk loss, repair.
func TestExternalBackendStore(t *testing.T) {
	ctx := context.Background()
	backend := &stubBackend{}
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBackend(backend),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("external backend "), 64)
	if err := store.WriteObject(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	x := bytes.Repeat([]byte{0xAB}, 136)
	if err := store.WriteBlock(ctx, 1, 2, x); err != nil {
		t.Fatal(err)
	}
	got, version, err := store.ReadBlock(ctx, 1, 2)
	if err != nil || !bytes.Equal(got, x) || version != 2 {
		t.Fatalf("read back v%d (%v)", version, err)
	}

	// Lose block 2's data chunk entirely: the read must decode.
	if err := backend.nodes[2].DeleteChunk(ctx, client.ChunkID{Stripe: 1, Shard: 2}); err != nil {
		t.Fatal(err)
	}
	got, _, err = store.ReadBlock(ctx, 1, 2)
	if err != nil || !bytes.Equal(got, x) {
		t.Fatalf("decode read failed (%v)", err)
	}
	if m := store.Metrics(); m.DecodeReads == 0 {
		t.Fatal("expected a decode read")
	}

	// Exact repair puts the chunk back.
	if err := store.RepairStripeShard(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.nodes[2].ReadChunk(ctx, client.ChunkID{Stripe: 1, Shard: 2}); err != nil {
		t.Fatalf("repaired chunk missing: %v", err)
	}

	// Fault injection is a sim-backend feature: the stub must refuse
	// with the typed ErrNotSupported, not panic.
	if err := store.WipeNode(ctx, 0); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("WipeNode on a non-sim backend: %v, want ErrNotSupported", err)
	}
	if err := store.CrashNode(0); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("CrashNode on a non-sim backend: %v, want ErrNotSupported", err)
	}
	if err := store.RestartNode(0); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("RestartNode on a non-sim backend: %v, want ErrNotSupported", err)
	}
	if _, err := store.AliveNodes(); !errors.Is(err, trapquorum.ErrNotSupported) {
		t.Fatalf("AliveNodes on a non-sim backend: %v, want ErrNotSupported", err)
	}
}

// TestExternalBackendObjectStore runs the keyed object store on the
// external backend.
func TestExternalBackendObjectStore(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(128),
		trapquorum.WithBackend(&stubBackend{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("keyed object over a custom transport. "), 80)
	if err := store.Put(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	patch := []byte("PATCH")
	if err := store.WriteAt(ctx, "obj", 1000, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[1000:], patch)
	got, err := store.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip (%v)", err)
	}
}

// TestExternalBackendCancelMidWrite cancels the context from inside a
// node operation once the write has already applied part of its
// footprint. The write must abort with context.Canceled, and the
// rollback must restore the previous block state — nothing commits.
func TestExternalBackendCancelMidWrite(t *testing.T) {
	ctx := context.Background()
	backend := &stubBackend{}
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBackend(backend),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	old := bytes.Repeat([]byte{0x11}, 136)
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = old
	}
	if err := store.SeedStripe(ctx, 7, blocks); err != nil {
		t.Fatal(err)
	}

	// Cancel from inside the third parity add of the write: some
	// subset of the nodes has applied the update by then (the fan-out
	// runs the adds concurrently, so exactly which subset varies), and
	// the rollback must undo whatever landed. The counter is atomic
	// because the hooks now run from parallel RPCs.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var adds atomic.Int64
	for _, node := range backend.nodes[8:] {
		node.onOp = func(op string) error {
			if op == "add" && adds.Add(1) == 3 {
				cancel()
				return wctx.Err()
			}
			return nil
		}
	}
	werr := store.WriteBlock(wctx, 7, 0, bytes.Repeat([]byte{0x22}, 136))
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", werr)
	}
	var op *trapquorum.OpError
	if !errors.As(werr, &op) || op.Op != "write" || op.Stripe != 7 {
		t.Fatalf("cancel not wrapped in OpError detail: %v", werr)
	}
	for _, node := range backend.nodes {
		node.onOp = nil
	}

	// The rollback must have restored version 1 with the old bytes on
	// a fresh context.
	got, version, err := store.ReadBlock(ctx, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(got, old) {
		t.Fatalf("cancelled write committed: v%d", version)
	}
	rep, err := store.ScrubStripe(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("stripe degraded after rollback: %v", rep)
	}
}
