package trapquorum_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trapquorum"
	"trapquorum/client"
)

// corruptionModes cycles the harness's stored-rot flavours.
var corruptionModes = []trapquorum.CorruptionMode{
	trapquorum.CorruptBitFlip,
	trapquorum.CorruptTruncate,
	trapquorum.CorruptWrongData,
}

// TestChaosBitRotHealsUnderLoadSim is the sim half of the corruption
// acceptance e2e: bit-rot lands on k different nodes across k distinct
// stripes while foreground reads run, and the store returns to clean
// scrubs with zero manual repair calls — detection by verified reads
// and the scrubber, healing by the orchestrator.
func TestChaosBitRotHealsUnderLoadSim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const k, objects = 8, 8
	rng := rand.New(rand.NewSource(23))
	payloads := make(map[uint64][]byte, objects)
	for id := uint64(1); id <= objects; id++ {
		data := make([]byte, 512*k)
		rng.Read(data)
		if err := store.WriteObject(ctx, id, data); err != nil {
			t.Fatal(err)
		}
		payloads[id] = data
	}

	// Foreground load: whole-object reads must return true bytes
	// through every stage of the rot-and-repair cycle.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(1 + (i+g)%objects)
				got, rerr := store.ReadObject(ctx, id)
				if rerr == nil && !bytes.Equal(got, payloads[id]) {
					rerr = errors.New("read returned corrupt bytes")
				}
				if rerr != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("load read of object %d: %w", id, rerr)
					}
					loadMu.Unlock()
					return
				}
			}
		}(g)
	}

	// Rot on k distinct nodes, each hitting a different stripe: node j
	// loses shard j of stripe j+1, with the damage flavour cycling.
	for j := 0; j < k; j++ {
		id := client.ChunkID{Stripe: uint64(j + 1), Shard: j}
		mode := corruptionModes[j%len(corruptionModes)]
		if err := backend.CorruptShard(ctx, j, id, mode); err != nil {
			t.Fatalf("corrupt node %d (%s): %v", j, mode, err)
		}
	}

	waitHealthy(t, "every stripe scrubs clean with zero manual repairs", 60*time.Second, func() bool {
		for id := uint64(1); id <= objects; id++ {
			rep, err := store.ScrubStripe(ctx, id)
			if err != nil || !rep.Healthy {
				return false
			}
		}
		return true
	})
	waitHealthy(t, "every node released from the corruption pin", 30*time.Second, func() bool {
		h := store.Health()
		for _, n := range h.Nodes {
			if n.State != trapquorum.NodeUp {
				return false
			}
		}
		return h.RepairBacklog == 0
	})

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("foreground traffic failed during the rot: %v", loadErr)
	}
	m := store.Metrics()
	if m.CorruptShards == 0 {
		t.Fatal("no corruption observations recorded; the injection exercised nothing")
	}
	if m.CorruptReports == 0 || m.CorruptEvents == 0 {
		t.Fatalf("metrics %+v: corruption never reached the health plane", m)
	}
	if m.AutoRepairs == 0 {
		t.Fatal("no automatic repairs; the store cannot have healed itself")
	}
}

// TestLyingNodePinnedUnderChaos: a persistently Byzantine node — every
// byte it serves is silently wrong, every ping immaculate — must be
// convicted and held in NodeCorrupt across repair plans (each plan's
// completion meets fresh lying and re-arms the pin), while reads keep
// returning true bytes. When it reforms, the next quiet plan releases
// it with no operator involved.
func TestLyingNodePinnedUnderChaos(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithBlockSize(512),
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(29))
	keys := []string{"a", "b", "c"}
	content := make(map[string][]byte, len(keys))
	for _, key := range keys {
		data := make([]byte, 2*512*8)
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
		content[key] = data
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := keys[i%len(keys)]
			got, rerr := store.Get(ctx, key)
			if rerr == nil && !bytes.Equal(got, content[key]) {
				rerr = errors.New("get returned the liar's bytes")
			}
			if rerr != nil {
				loadMu.Lock()
				if loadErr == nil {
					loadErr = fmt.Errorf("load get %q: %w", key, rerr)
				}
				loadMu.Unlock()
				return
			}
		}
	}()

	const liar = 5
	backend.SetNodeLying(liar, true)

	waitHealthy(t, "liar pinned NodeCorrupt", 30*time.Second, func() bool {
		return store.Health().Nodes[liar].State == trapquorum.NodeCorrupt
	})
	// The pin must survive completed repair plans: wait until at least
	// one plan finished into fresh lying (a corrupt re-arm event beyond
	// the first) and confirm the node is still never paraded as Up.
	waitHealthy(t, "repair completion re-armed the pin", 30*time.Second, func() bool {
		return store.Metrics().CorruptEvents >= 2
	})
	if st := store.Health().Nodes[liar].State; st != trapquorum.NodeCorrupt && st != trapquorum.NodeDown {
		t.Fatalf("persistent liar surfaced as %v", st)
	}
	if reports := store.Health().Nodes[liar].CorruptReports; reports == 0 {
		t.Fatal("no corruption reports against the liar in the health snapshot")
	}

	// Reform: the stored bytes were always honest, so the node needs no
	// data movement — the next quiet plan releases the pin.
	backend.SetNodeLying(liar, false)
	waitHealthy(t, "reformed node released to NodeUp", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[liar].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "stripes scrub clean after reform", 30*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, keys)
	})

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("a read surfaced the liar's bytes: %v", loadErr)
	}
}

// TestCorruptShardHarnessSurface pins the fault-injection API itself:
// stale-replay needs a prior snapshot, unknown modes and missing
// chunks are typed errors, and a replayed shard reads as stale — old
// honest bytes, never corruption.
func TestCorruptShardHarnessSurface(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.OpenStore(ctx, trapquorum.WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("replay me "), 400)
	if err := store.WriteObject(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	const victim = 2
	id := client.ChunkID{Stripe: 1, Shard: victim}

	// Stale replay without a snapshot is a usage error, not a panic.
	err = backend.CorruptShard(ctx, victim, id, trapquorum.CorruptStaleReplay)
	if err == nil || !strings.Contains(err.Error(), "SnapshotShard") {
		t.Fatalf("stale-replay without snapshot: %v, want a snapshot-first error", err)
	}
	if err := backend.CorruptShard(ctx, victim, id, trapquorum.CorruptionMode(99)); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("unknown mode: %v, want ErrBadRequest", err)
	}
	missing := client.ChunkID{Stripe: 77, Shard: victim}
	if err := backend.CorruptShard(ctx, victim, missing, trapquorum.CorruptBitFlip); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("corrupting a missing chunk: %v, want ErrNotFound", err)
	}

	// Snapshot, advance the block, replay the old state.
	if err := backend.SnapshotShard(ctx, victim, id); err != nil {
		t.Fatal(err)
	}
	blk, _, err := store.ReadBlock(ctx, 1, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteBlock(ctx, 1, victim, bytes.Repeat([]byte{0xee}, len(blk))); err != nil {
		t.Fatal(err)
	}
	want, _, err := store.ReadBlock(ctx, 1, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.CorruptShard(ctx, victim, id, trapquorum.CorruptStaleReplay); err != nil {
		t.Fatal(err)
	}

	// The read quorum routes around the regressed shard.
	got, _, err := store.ReadBlock(ctx, 1, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stale replay surfaced old bytes through a quorum read")
	}
	rep, err := store.ScrubStripe(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CorruptShards) != 0 {
		t.Fatalf("stale replay misclassified as corruption: %v", rep)
	}
	if len(rep.StaleShards) != 1 || rep.StaleShards[0] != victim {
		t.Fatalf("scrub %v, want exactly shard %d stale", rep, victim)
	}
	if _, _, err := store.RepairStripe(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if rep, err = store.ScrubStripe(ctx, 1); err != nil || !rep.Healthy {
		t.Fatalf("after repair: %v, %v", rep, err)
	}

	// Mode names, for harness logs.
	for _, mode := range append(append([]trapquorum.CorruptionMode(nil), corruptionModes...), trapquorum.CorruptStaleReplay) {
		if s := mode.String(); s == "" || strings.Contains(s, "CorruptionMode") {
			t.Fatalf("mode %d renders as %q", int(mode), s)
		}
	}
}

// TestChaosColdBitRotTCPDiskstore is the network half of the
// corruption acceptance e2e: real bytes flipped in a chunk file on
// disk behind a live TCP daemon — rot on a chunk nobody is reading.
// The node's at-rest scan (the -scan-interval path) quarantines it,
// the cluster scrub finds the quarantined shard and the orchestrator
// heals it, all under foreground load with zero manual intervention.
func TestChaosColdBitRotTCPDiskstore(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fleet e2e in -short mode")
	}
	ctx := context.Background()
	nodes := startFleet(t, 15)
	cfg := healCfg(nil)
	cfg.ProbeInterval = 10 * time.Millisecond
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(fleetAddrs(nodes))),
		trapquorum.WithBlockSize(512),
		trapquorum.WithSelfHeal(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(31))
	keys := []string{"cold-a", "cold-b"}
	content := make(map[string][]byte, len(keys))
	for _, key := range keys {
		data := make([]byte, 2*512*8)
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
		content[key] = data
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := keys[i%len(keys)]
			got, rerr := store.Get(ctx, key)
			if rerr == nil && !bytes.Equal(got, content[key]) {
				rerr = errors.New("get returned rotten bytes")
			}
			if rerr != nil {
				loadMu.Lock()
				if loadErr == nil {
					loadErr = fmt.Errorf("load get %q: %w", key, rerr)
				}
				loadMu.Unlock()
				return
			}
		}
	}()

	// Flip bytes inside one chunk file behind the live daemon — the
	// operator-tool (tools/bitrot) failure, injected directly.
	const victim = 7
	chunkFiles, err := filepath.Glob(filepath.Join(nodes[victim].dir, "chunks", "*.chunk"))
	if err != nil || len(chunkFiles) == 0 {
		t.Fatalf("no chunk files on node %d (err %v)", victim, err)
	}
	target := chunkFiles[0]
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(target, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The daemon still serves its clean in-memory mirror; only the
	// at-rest scan re-reads the disk. Run one scan tick by hand (the
	// trapnode daemon runs this on -scan-interval).
	quarantined, err := nodes[victim].engine.VerifyStore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 {
		t.Fatalf("at-rest scan quarantined %v, want exactly the rotten chunk", quarantined)
	}

	// From here on the cluster owns it: scrub classifies the
	// quarantined shard corrupt, the orchestrator rebuilds it (the
	// repair write replaces the file and lifts the quarantine).
	waitHealthy(t, "rot scrubbed out with zero manual repairs", 60*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, keys)
	})
	waitHealthy(t, "victim node released", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	requarantined, err := nodes[victim].engine.VerifyStore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(requarantined) != 0 {
		t.Fatalf("chunks still quarantined after healing: %v", requarantined)
	}

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("foreground traffic failed during cold rot: %v", loadErr)
	}
	if m := store.Metrics(); m.CorruptShards == 0 || m.AutoRepairs == 0 {
		t.Fatalf("metrics %+v: want corruption observed and auto-repaired over TCP", m)
	}
}
