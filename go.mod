module trapquorum

go 1.22
