package trapquorum_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"trapquorum"
	"trapquorum/internal/chaosnet"
	"trapquorum/internal/sim"
	"trapquorum/transport/tcp"
)

// This file is the partition chaos suite: network faults — not node
// faults — driven through the two halves of the shared link-fault
// vocabulary (SimBackend's SetLinkFault/PartitionNodes in-memory,
// internal/chaosnet proxies in front of real TCP daemons) against the
// paper's Figure-3 configuration (n=15, k=8, shape (2,3,1), w=3).
//
// Partition sets, for the low-level Store's identity placement:
//   minority {3, 13}:         reads AND writes still reach quorum.
//   majority {8,9,12,13,14}:  no level reaches its version threshold —
//                             reads fail loud with ErrNotReadable.

// minorityNodes and majorityLossNodes are those sets.
var (
	minorityNodes     = []int{3, 13}
	majorityLossNodes = []int{8, 9, 12, 13, 14}
)

// chaosSeed pins every chaos run in this suite (CI replays the same
// fault sequences).
const chaosSeed int64 = 42

// openSimStore opens a low-level Store on a simulated Figure-3
// cluster and seeds stripe 1 with deterministic blocks.
func openSimStore(t *testing.T, backend *trapquorum.SimBackend) (*trapquorum.Store, [][]byte) {
	t.Helper()
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store, seedStripe(t, store, 1)
}

// seedStripe installs 8 deterministic 64-byte data blocks as the given
// stripe.
func seedStripe(t *testing.T, store *trapquorum.Store, stripe uint64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(stripe)))
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = make([]byte, 64)
		rng.Read(blocks[i])
	}
	if err := store.SeedStripe(context.Background(), stripe, blocks); err != nil {
		t.Fatal(err)
	}
	return blocks
}

// readAllBlocks reads every data block of stripe 1 and checks it
// against want, bounding each read so a hang fails fast instead of
// stalling the suite.
func readAllBlocks(t *testing.T, store *trapquorum.Store, want [][]byte, within time.Duration) {
	t.Helper()
	for i := range want {
		ctx, cancel := context.WithTimeout(context.Background(), within)
		got, _, err := store.ReadBlock(ctx, 1, i)
		cancel()
		if err != nil {
			t.Fatalf("read block %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("block %d: wrong bytes", i)
		}
	}
}

// TestPartitionMinoritySim: with the minority set cut off, reads and
// writes proceed; after the heal, repair reconverges the stale shards
// and a scrub comes back clean.
func TestPartitionMinoritySim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend(trapquorum.WithChaosSeed(chaosSeed))
	store, blocks := openSimStore(t, backend)

	backend.PartitionNodes(minorityNodes...)
	readAllBlocks(t, store, blocks, 10*time.Second)

	patch := bytes.Repeat([]byte{0xAB}, 64)
	if err := store.WriteBlock(ctx, 1, 2, patch); err != nil {
		t.Fatalf("write during minority partition: %v", err)
	}
	blocks[2] = patch
	readAllBlocks(t, store, blocks, 10*time.Second)

	backend.HealLinks()
	if _, _, err := store.RepairStripe(ctx, 1); err != nil {
		t.Fatalf("repair after heal: %v", err)
	}
	rep, err := store.ScrubStripe(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("scrub after partition-heal-repair: %+v", rep)
	}
	readAllBlocks(t, store, blocks, 10*time.Second)
}

// TestPartitionMajorityLossSim: with the majority-loss set cut off
// the loud way (connection refused), reads fail immediately with
// ErrNotReadable and writes with ErrWriteFailed — no hang. The same
// partition injected as a silent blackhole hangs callers instead, and
// must be bounded by their deadline.
func TestPartitionMajorityLossSim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend(trapquorum.WithChaosSeed(chaosSeed))
	store, blocks := openSimStore(t, backend)

	backend.PartitionNodes(majorityLossNodes...)
	start := time.Now()
	_, _, err := store.ReadBlock(ctx, 1, 0)
	if !errors.Is(err, trapquorum.ErrNotReadable) {
		t.Fatalf("read under majority loss: %v, want ErrNotReadable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("loud partition took %v to fail; refusal must be immediate", elapsed)
	}
	if err := store.WriteBlock(ctx, 1, 0, bytes.Repeat([]byte{1}, 64)); !errors.Is(err, trapquorum.ErrWriteFailed) {
		t.Fatalf("write under majority loss: %v, want ErrWriteFailed", err)
	}

	// Same partition, silent flavour: requests vanish in transit. The
	// caller's deadline is the only way out — verify it actually is,
	// promptly after expiry.
	backend.HealLinks()
	for _, n := range majorityLossNodes {
		backend.SetLinkLoss(n, 1)
	}
	start = time.Now()
	rctx, cancel := context.WithTimeout(ctx, time.Second)
	_, _, err = store.ReadBlock(rctx, 1, 0)
	cancel()
	if err == nil {
		t.Fatal("read through a blackholed majority succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("blackholed read returned after %v; must be bounded by its 1s deadline", elapsed)
	}

	backend.HealLinks()
	readAllBlocks(t, store, blocks, 10*time.Second)
}

// TestPartitionAsymmetricSim: node 3 receives every request but its
// answers are lost (an asymmetric link: one direction works, the
// other does not). Reads and writes still complete promptly — the
// engine treats the mute node like a straggler — and because the node
// really applied the writes it received, the post-heal scrub is clean
// without any repair.
func TestPartitionAsymmetricSim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend(trapquorum.WithChaosSeed(chaosSeed))
	store, blocks := openSimStore(t, backend)

	backend.SetLinkFault(3, sim.LinkFault{RespLoss: 1})
	readAllBlocks(t, store, blocks, 10*time.Second)
	patch := bytes.Repeat([]byte{0xCD}, 64)
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err := store.WriteBlock(wctx, 1, 5, patch)
	cancel()
	if err != nil {
		t.Fatalf("write during asymmetric partition: %v", err)
	}
	blocks[5] = patch
	readAllBlocks(t, store, blocks, 10*time.Second)

	backend.HealLinks()
	rep, err := store.ScrubStripe(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("scrub after asymmetric partition: %+v — the mute node applied its writes, nothing should be stale", rep)
	}
}

// readAllBlocksRetry reads every block like readAllBlocks, but treats
// a deadline expiry as retryable: over a silently lossy link (no
// transport resilience in the simulator) a request that vanished
// hangs the caller to its deadline, and the realistic caller response
// is deadline + retry. Wrong bytes still fail immediately.
func readAllBlocksRetry(t *testing.T, store *trapquorum.Store, want [][]byte, per time.Duration, tries int) {
	t.Helper()
	for i := range want {
		var lastErr error
		ok := false
		for a := 0; a < tries && !ok; a++ {
			ctx, cancel := context.WithTimeout(context.Background(), per)
			got, _, err := store.ReadBlock(ctx, 1, i)
			cancel()
			if err != nil {
				lastErr = err
				continue
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("block %d: wrong bytes", i)
			}
			ok = true
		}
		if !ok {
			t.Fatalf("read block %d failed all %d tries: %v", i, tries, lastErr)
		}
	}
}

// TestPartitionFlappingLinksSim: the minority set flaps — cut,
// healed, lossy, healed — while reads and writes keep flowing. After
// the last heal a repair pass reconverges and the stripe scrubs
// clean.
func TestPartitionFlappingLinksSim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend(trapquorum.WithChaosSeed(chaosSeed))
	store, blocks := openSimStore(t, backend)

	for cycle := 0; cycle < 4; cycle++ {
		switch cycle % 2 {
		case 0:
			backend.PartitionNodes(minorityNodes...)
		case 1:
			for _, n := range minorityNodes {
				backend.SetLinkLoss(n, 0.5)
			}
		}
		patch := bytes.Repeat([]byte{byte(cycle + 1)}, 64)
		var err error
		for a := 0; a < 5; a++ {
			wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err = store.WriteBlock(wctx, 1, cycle, patch)
			cancel()
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("cycle %d write: %v", cycle, err)
		}
		blocks[cycle] = patch
		readAllBlocksRetry(t, store, blocks, 2*time.Second, 10)
		backend.HealLinks()
		readAllBlocks(t, store, blocks, 10*time.Second)
	}

	if _, _, err := store.RepairStripe(ctx, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := store.ScrubStripe(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("scrub after flapping links: %+v", rep)
	}
}

// TestPartitionHealSelfHealsSim: the full partition lifecycle on the
// object store with self-healing on — a node's link (not the node) is
// cut under foreground load, the monitor marks it down, the heal
// brings it back, and the orchestrator reconverges every stripe to a
// clean scrub with zero manual repair calls.
func TestPartitionHealSelfHealsSim(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend(trapquorum.WithChaosSeed(chaosSeed))
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(backend),
		trapquorum.WithBlockSize(512),
		trapquorum.WithSelfHeal(healCfg(nil)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(11))
	var keys []string
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("part-%d", i)
		data := make([]byte, 2*512*8)
		rng.Read(data)
		if err := store.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	// Foreground load throughout: a single cut link must never cost a
	// caller an error.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr error
	var loadMu sync.Mutex
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			patch := make([]byte, 512)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				var opErr error
				if i%2 == 0 {
					_, opErr = store.Get(ctx, key)
				} else {
					r.Read(patch)
					opErr = store.WriteAt(ctx, key, (i%2)*512*8, patch)
				}
				if opErr != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("load op %d on %s: %w", i, key, opErr)
					}
					loadMu.Unlock()
					return
				}
			}
		}(g)
	}

	const victim = 4
	backend.PartitionNodes(victim)
	waitHealthy(t, "monitor marks the partitioned node down", 10*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})

	backend.HealLinks()
	waitHealthy(t, "monitor and orchestrator bring the node back", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "every stripe fully redundant again", 30*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, keys)
	})

	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("foreground traffic failed during the partition: %v", loadErr)
	}
	m := store.Metrics()
	if m.DownEvents < 1 || m.Recoveries < 1 {
		t.Fatalf("metrics %+v: want a down event and a recovery", m)
	}
}

// --- TCP half: real daemons, diskstores, and chaosnet proxies ---

// chaosFleet is a loopback TCP fleet with one fault-injecting proxy
// per node link: clients dial the proxies, the daemons never know.
type chaosFleet struct {
	nodes   []*tcpNode
	proxies []*chaosnet.Proxy
}

// startChaosFleet boots n durable TCP nodes, each behind a chaos
// proxy seeded deterministically from the suite seed.
func startChaosFleet(t *testing.T, n int) *chaosFleet {
	t.Helper()
	f := &chaosFleet{nodes: startFleet(t, n)}
	f.proxies = make([]*chaosnet.Proxy, n)
	for i, nd := range f.nodes {
		p, err := chaosnet.NewProxy("127.0.0.1:0", nd.addr, chaosnet.NewLink(chaosSeed+int64(i)*101))
		if err != nil {
			t.Fatal(err)
		}
		f.proxies[i] = p
	}
	t.Cleanup(func() {
		for _, p := range f.proxies {
			p.Close()
		}
	})
	return f
}

// addrs returns the proxy addresses, in cluster-node order.
func (f *chaosFleet) addrs() []string {
	addrs := make([]string, len(f.proxies))
	for i, p := range f.proxies {
		addrs[i] = p.Addr()
	}
	return addrs
}

// link returns node i's fault injector.
func (f *chaosFleet) link(i int) *chaosnet.Link { return f.proxies[i].Link() }

// heal removes every link fault.
func (f *chaosFleet) heal() {
	for _, p := range f.proxies {
		p.Link().Heal()
	}
}

// testResilience is the aggressive policy the TCP chaos tests run
// with: fast breakers and short attempt timeouts so fault → open →
// half-open → recovery cycles fit a test budget.
func testResilience() tcp.Resilience {
	return tcp.Resilience{
		FailureThreshold: 2,
		OpenTimeout:      100 * time.Millisecond,
		OpenTimeoutMax:   time.Second,
		RetryAttempts:    2,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         50 * time.Millisecond,
		AttemptTimeout:   500 * time.Millisecond,
		Budget:           tcp.NewRetryBudget(50, 0.5),
		Seed:             chaosSeed,
	}
}

// openChaosStore opens a low-level Store over the chaos fleet with
// the given client options and seeds stripe 1.
func openChaosStore(t *testing.T, f *chaosFleet, opts ...tcp.ClientOption) (*trapquorum.Store, [][]byte) {
	t.Helper()
	store, err := trapquorum.OpenStore(context.Background(),
		trapquorum.WithBackend(trapquorum.NewNetBackend(f.addrs(), opts...)),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store, seedStripe(t, store, 1)
}

// TestPartitionMinorityTCP: the minority set's links are cut in front
// of live daemons. Reads and writes proceed, the cut nodes' breakers
// open (visible through Health().Links and Metrics), and after the
// heal the breakers' half-open probes readmit the nodes so repair
// reconverges to a clean scrub.
func TestPartitionMinorityTCP(t *testing.T) {
	ctx := context.Background()
	f := startChaosFleet(t, 15)
	store, blocks := openChaosStore(t, f,
		tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience()))

	for _, n := range minorityNodes {
		f.link(n).Partition()
	}
	readAllBlocks(t, store, blocks, 15*time.Second)
	patch := bytes.Repeat([]byte{0xEE}, 64)
	if err := store.WriteBlock(ctx, 1, 2, patch); err != nil {
		t.Fatalf("write during minority partition: %v", err)
	}
	blocks[2] = patch
	// Keep traffic flowing until every cut node's breaker has tripped:
	// fast local failures instead of repeated dial attempts.
	waitHealthy(t, "breakers open on the partitioned nodes", 15*time.Second, func() bool {
		readAllBlocks(t, store, blocks, 15*time.Second)
		links := store.Health().Links
		for _, n := range minorityNodes {
			if links[n].BreakerOpens == 0 {
				return false
			}
		}
		return true
	})
	m := store.Metrics()
	if m.BreakerOpens < int64(len(minorityNodes)) {
		t.Fatalf("BreakerOpens = %d, want >= %d", m.BreakerOpens, len(minorityNodes))
	}
	if m.BreakerFastFails == 0 {
		t.Fatal("no fast-fails recorded while two links were cut under traffic")
	}

	f.heal()
	// The breakers re-admit traffic after their cooldown; repair until
	// the stripe scrubs clean.
	waitHealthy(t, "post-heal repair reconverges", 30*time.Second, func() bool {
		if _, _, err := store.RepairStripe(ctx, 1); err != nil {
			return false
		}
		rep, err := store.ScrubStripe(ctx, 1)
		return err == nil && rep.Healthy
	})
	readAllBlocks(t, store, blocks, 15*time.Second)
}

// TestPartitionMajorityLossTCP: cutting the majority-loss set's links
// makes reads fail loud with ErrNotReadable and writes with
// ErrWriteFailed, promptly — refused links and open breakers, not
// hangs.
func TestPartitionMajorityLossTCP(t *testing.T) {
	ctx := context.Background()
	f := startChaosFleet(t, 15)
	store, blocks := openChaosStore(t, f,
		tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience()))

	for _, n := range majorityLossNodes {
		f.link(n).Partition()
	}
	start := time.Now()
	rctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	_, _, err := store.ReadBlock(rctx, 1, 0)
	cancel()
	if !errors.Is(err, trapquorum.ErrNotReadable) {
		t.Fatalf("read under majority loss: %v, want ErrNotReadable", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("read took %v to fail; cut links must fail loud, not hang", elapsed)
	}
	wctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	err = store.WriteBlock(wctx, 1, 0, bytes.Repeat([]byte{1}, 64))
	cancel()
	if !errors.Is(err, trapquorum.ErrWriteFailed) {
		t.Fatalf("write under majority loss: %v, want ErrWriteFailed", err)
	}

	f.heal()
	waitHealthy(t, "fleet serves reads again after the heal", 30*time.Second, func() bool {
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		got, _, err := store.ReadBlock(rctx, 1, 0)
		cancel()
		return err == nil && bytes.Equal(got, blocks[0])
	})
}

// TestPartitionAsymmetricTCP: node 3's link delivers requests but
// blackholes every answer. Foreground reads route around the mute
// node without errors — the engine's early termination cancels the
// stalled RPC, and a cancellation deliberately does not count against
// the breaker. What does see the stall is the prober: its pings hit
// the attempt timeout, the breaker opens, and the monitor walks the
// node down; the heal walks it back up.
func TestPartitionAsymmetricTCP(t *testing.T) {
	ctx := context.Background()
	f := startChaosFleet(t, 15)
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(f.addrs(),
			tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience()))),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithSelfHeal(trapquorum.SelfHeal{
			ProbeInterval:      25 * time.Millisecond,
			ProbeTimeout:       2 * time.Second,
			SuspicionThreshold: 3,
			ScrubInterval:      -1,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	blocks := seedStripe(t, store, 1)

	f.link(3).SetFaults(chaosnet.Faults{}, chaosnet.Faults{Blackhole: true})
	waitHealthy(t, "prober walks the mute node down", 30*time.Second, func() bool {
		readAllBlocks(t, store, blocks, 20*time.Second) // reads stay error-free throughout
		return store.Health().Nodes[3].State == trapquorum.NodeDown
	})
	if store.Health().Links[3].BreakerOpens == 0 {
		t.Fatal("mute node went down without its breaker ever opening")
	}

	f.heal()
	waitHealthy(t, "healed link brings the node back up", 30*time.Second, func() bool {
		readAllBlocks(t, store, blocks, 20*time.Second)
		h := store.Health()
		return h.Nodes[3].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
}

// TestLossyLinkResilienceTCP is the acceptance scenario: a 30% random
// drop on the link to one node (each drop stalls the stream — the
// nastiest flavour, invisible without timeouts). With the resilience
// policy on, a read workload completes with ZERO caller-visible
// errors while Metrics shows the machinery working: breakers opening
// and retry budget being spent. The bare-client comparison lives in
// TestLossyLinkBareVsResilient below, with measured numbers recorded
// in docs/BENCH_resilience.md: without breakers the same scenario
// degrades to deadline-length stalls and caller-visible errors.
func TestLossyLinkResilienceTCP(t *testing.T) {
	f := startChaosFleet(t, 15)
	store, blocks := openChaosStore(t, f,
		tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience()))

	lossy := chaosnet.Faults{DropProb: 0.30}
	f.link(3).SetFaults(lossy, lossy)

	reads := 0
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		readAllBlocks(t, store, blocks, 20*time.Second) // fails the test on any error
		reads += len(blocks)
		m := store.Metrics()
		if m.BreakerOpens >= 1 && m.RetryBudgetSpent >= 1 {
			t.Logf("after %d reads: opens=%d fastFails=%d retries=%d budgetSpent=%d",
				reads, m.BreakerOpens, m.BreakerFastFails, m.TransportRetries, m.RetryBudgetSpent)
			return
		}
	}
	m := store.Metrics()
	t.Fatalf("after %d error-free reads through a 30%%-drop link: opens=%d budgetSpent=%d — resilience machinery never engaged",
		reads, m.BreakerOpens, m.RetryBudgetSpent)
}

// TestPartitionHealSelfHealsTCP walks the full triage ladder on a
// real fleet: a delayed link browns the node out (degraded, not
// down), a cut link takes it down, and the heal brings it back to up
// with clean scrubs — the monitor reading the transport's latency
// EWMA and breaker-aware pings throughout.
func TestPartitionHealSelfHealsTCP(t *testing.T) {
	ctx := context.Background()
	f := startChaosFleet(t, 15)

	store, err := trapquorum.Open(ctx,
		trapquorum.WithBackend(trapquorum.NewNetBackend(f.addrs(),
			tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience()))),
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(128),
		trapquorum.WithSelfHeal(trapquorum.SelfHeal{
			ProbeInterval:      25 * time.Millisecond,
			ProbeTimeout:       2 * time.Second,
			SuspicionThreshold: 3,
			RepairConcurrency:  4,
			RepairRetry:        50 * time.Millisecond,
			ScrubInterval:      -1, // repairs only; scrub on demand below
			BrownoutLatency:    40 * time.Millisecond,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("chaos"), 512) // 2560 B → 3 stripes
	if err := store.Put(ctx, "disk.img", payload); err != nil {
		t.Fatal(err)
	}

	const victim = 4
	// Degrade: +60ms each way. Pings succeed but slowly; the EWMA
	// crosses the brownout threshold and the monitor reports the node
	// degraded — a quorum member still.
	slow := chaosnet.Faults{Delay: 60 * time.Millisecond}
	f.link(victim).SetFaults(slow, slow)
	waitHealthy(t, "delayed link browns the node out", 20*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeBrownout
	})
	if got, err := store.Get(ctx, "disk.img"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read during brownout: %v", err)
	}

	// Down: cut the link. Pings fail fast; brownout falls through
	// suspect to down.
	f.link(victim).Partition()
	waitHealthy(t, "cut link takes the node down", 20*time.Second, func() bool {
		return store.Health().Nodes[victim].State == trapquorum.NodeDown
	})
	if got, err := store.Get(ctx, "disk.img"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read during partition: %v", err)
	}

	// Heal: the breaker's half-open probe readmits the node, pings
	// succeed, the EWMA decays below the brownout floor, and the
	// orchestrator reconverges.
	f.heal()
	waitHealthy(t, "healed link brings the node back up", 30*time.Second, func() bool {
		h := store.Health()
		return h.Nodes[victim].State == trapquorum.NodeUp && h.RepairBacklog == 0
	})
	waitHealthy(t, "post-heal scrub comes back clean", 30*time.Second, func() bool {
		return allStripesHealthy(ctx, t, store, []string{"disk.img"})
	})

	m := store.Metrics()
	if m.Brownouts < 1 {
		t.Fatalf("metrics %+v: want at least one brownout", m)
	}
	if m.DownEvents < 1 {
		t.Fatalf("metrics %+v: want at least one down event", m)
	}
}

// TestLossyLinkBareVsResilient is the measurement harness behind
// docs/BENCH_resilience.md: the same 30%-drop scenario as
// TestLossyLinkResilienceTCP, run once with the resilience policy and
// once with a bare client, comparing caller-visible errors and op
// latency. It takes tens of seconds in the bare leg (that slowness IS
// the result), so it only runs when asked:
//
//	TRAPQUORUM_RESILIENCE_BENCH=1 go test -run TestLossyLinkBareVsResilient -v .
func TestLossyLinkBareVsResilient(t *testing.T) {
	if os.Getenv("TRAPQUORUM_RESILIENCE_BENCH") == "" {
		t.Skip("set TRAPQUORUM_RESILIENCE_BENCH=1 to run the bare-vs-resilient comparison")
	}
	for _, leg := range []struct {
		name string
		opts []tcp.ClientOption
	}{
		{"resilient", []tcp.ClientOption{tcp.WithDialTimeout(time.Second), tcp.WithResilience(testResilience())}},
		{"bare", []tcp.ClientOption{tcp.WithDialTimeout(time.Second)}},
	} {
		t.Run(leg.name, func(t *testing.T) {
			ctx := context.Background()
			f := startChaosFleet(t, 15)
			store, blocks := openChaosStore(t, f, leg.opts...)
			lossy := chaosnet.Faults{DropProb: 0.30}
			f.link(3).SetFaults(lossy, lossy)

			// The workload: read every block, then write block 3 — the one
			// whose data shard lives behind the lossy link, so the write
			// cannot avoid the damaged path. 2s deadline per op, like a
			// latency-conscious caller.
			const (
				passes     = 20
				opDeadline = 2 * time.Second
			)
			var lat []time.Duration
			readErrs, writeErrs := 0, 0
			start := time.Now()
			for p := 0; p < passes; p++ {
				for i := range blocks {
					opStart := time.Now()
					rctx, cancel := context.WithTimeout(ctx, opDeadline)
					got, _, err := store.ReadBlock(rctx, 1, i)
					cancel()
					lat = append(lat, time.Since(opStart))
					if err != nil {
						readErrs++
					} else if !bytes.Equal(got, blocks[i]) {
						t.Fatalf("block %d: wrong bytes", i)
					}
				}
				patch := bytes.Repeat([]byte{byte(p)}, 64)
				opStart := time.Now()
				wctx, cancel := context.WithTimeout(ctx, opDeadline)
				err := store.WriteBlock(wctx, 1, 3, patch)
				cancel()
				lat = append(lat, time.Since(opStart))
				if err != nil {
					writeErrs++
				} else {
					blocks[3] = patch
				}
			}
			wall := time.Since(start)

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
			slow := 0
			for _, d := range lat {
				if d > 500*time.Millisecond {
					slow++
				}
			}
			m := store.Metrics()
			t.Logf("%s: %d ops in %v — errors: %d read / %d write; latency p50=%v p99=%v max=%v; ops>500ms: %d; opens=%d fastFails=%d retries=%d budgetSpent=%d",
				leg.name, len(lat), wall.Round(time.Millisecond), readErrs, writeErrs,
				pct(0.50).Round(time.Millisecond), pct(0.99).Round(time.Millisecond),
				lat[len(lat)-1].Round(time.Millisecond), slow,
				m.BreakerOpens, m.BreakerFastFails, m.TransportRetries, m.RetryBudgetSpent)
		})
	}
}
