package trapquorum_test

// Differential property suite for online reconfiguration: randomized
// reconfiguration schedules (grow, recode, no-op revisits) interleaved
// with a concurrent foreground workload, checked round by round
// against an in-memory oracle. The property: every write the store
// acked — before, during or after any migration — reads back exactly,
// in every epoch the schedule passes through. Seeds are pinned
// in-source so a failure replays deterministically; the suite runs
// under -race in CI.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"trapquorum"
)

// propGeom is one reconfiguration target of the randomized schedule.
// Every entry satisfies Shape.NbNodes == n-k+1, so any pair of rounds
// is a legal recode.
type propGeom struct{ n, k, a, b, h, w int }

var propGeoms = []propGeom{
	{n: 9, k: 6, a: 2, b: 1, h: 1, w: 2},  // the suite's seed geometry
	{n: 11, k: 8, a: 2, b: 1, h: 1, w: 2}, // same shape, wider code
	{n: 12, k: 8, a: 1, b: 2, h: 1, w: 2}, // n-k+1 = 5 over two levels
	{n: 15, k: 8, a: 2, b: 3, h: 1, w: 3}, // the paper's Figure 3
}

func TestReconfigDifferentialProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReconfigSchedule(t, seed)
		})
	}
}

// runReconfigSchedule drives one randomized schedule: four rounds,
// each picking a target geometry from the pool (growing the cluster
// when the target needs more nodes than exist) and reconfiguring while
// a full foreground workload — puts, in-place patches, deletes,
// verified reads — runs against the store. After every round the whole
// oracle is read back and the epoch arithmetic is checked: a round
// whose target differs from the live configuration advances the epoch
// by exactly one; a no-op round leaves it alone.
func runReconfigSchedule(t *testing.T, seed int64) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	cur := propGeoms[0]
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(cur.n, cur.k),
		trapquorum.WithTrapezoid(cur.a, cur.b, cur.h, cur.w),
		trapquorum.WithBlockSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	oracle := preloadObjects(t, store, fmt.Sprintf("prop%d", seed), 12, seed)
	epoch := uint64(1)
	nodes := cur.n

	for round := 0; round < 4; round++ {
		g := propGeoms[rng.Intn(len(propGeoms))]
		grow := 0
		if g.n > nodes {
			grow = g.n - nodes
		}
		// The target differs when the geometry changes or the roster
		// grows; otherwise the round must be a converged no-op.
		if g != cur || grow > 0 {
			epoch++
		}

		fg := startForeground(store, fmt.Sprintf("prop%d-r%d", seed, round), rng.Int63(),
			oracle, fgReads|fgWrites|fgPuts|fgDeletes)
		rerr := store.Reconfigure(ctx, trapquorum.Reconfig{
			N: g.n, K: g.k, TrapezoidA: g.a, TrapezoidB: g.b, TrapezoidH: g.h, W: g.w,
			AddNodes: grow,
		})
		oracle = fg.finish(t)
		if rerr != nil {
			t.Fatalf("round %d: reconfigure to (%d,%d) grow %d: %v", round, g.n, g.k, grow, rerr)
		}
		nodes += grow
		cur = g

		// Every acked write is readable in the epoch this round landed
		// on, and the fleet converged exactly there.
		verifyAll(t, store, oracle)
		requireConverged(t, store, epoch)
		if n, k := store.CodeParams(); n != g.n || k != g.k {
			t.Fatalf("round %d: CodeParams = (%d,%d), want (%d,%d)", round, n, k, g.n, g.k)
		}
		if got := store.NodeCount(); got != nodes {
			t.Fatalf("round %d: NodeCount = %d, want %d", round, got, nodes)
		}
	}
	if len(oracle) == 0 {
		t.Fatal("schedule deleted every object; the property checked nothing")
	}
}
