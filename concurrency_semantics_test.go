package trapquorum_test

// Public-surface acceptance tests for the concurrent quorum engine:
// the WithConcurrency / WithHedging knobs validate, a straggling node
// never gates a first-k read, and the sequential (concurrency=1)
// engine remains a working protocol — the property the A8 benchmarks
// compare against.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"trapquorum"
)

func TestEngineOptionValidation(t *testing.T) {
	ctx := context.Background()
	for name, opts := range map[string][]trapquorum.Option{
		"negative concurrency": {trapquorum.WithConcurrency(-1)},
		"no-op hedging":        {trapquorum.WithHedging(0, 0)},
		"negative hedge delay": {trapquorum.WithHedging(-time.Second, 0)},
		"quantile out of range": {
			trapquorum.WithHedging(time.Millisecond, 1.0)},
	} {
		if _, err := trapquorum.OpenStore(ctx, opts...); err == nil {
			t.Errorf("%s: OpenStore accepted invalid option", name)
		}
		if _, err := trapquorum.Open(ctx, opts...); err == nil {
			t.Errorf("%s: Open accepted invalid option", name)
		}
	}
}

// TestReadIgnoresStragglerThroughPublicAPI turns one parity node into
// a 30s straggler through the SimBackend knob: quorum reads must keep
// serving at full speed from the prompt nodes, with the straggler's
// RPCs cancelled by the first-k termination.
func TestReadIgnoresStragglerThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	payload := bytes.Repeat([]byte("straggler-proof "), 64)
	if err := store.WriteObject(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	backend.SetNodeDelay(14, 30*time.Second)
	start := time.Now()
	got, err := store.ReadObject(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read blocked on straggler: %v", elapsed)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read returned wrong data")
	}
	backend.SetNodeDelay(14, 0) // restore for Close
}

// TestObjectStoreOnSequentialEngine drives the keyed object store with
// concurrency 1 and hedging enabled together — the full option
// surface on one store — through a write/patch/degraded-read cycle.
func TestObjectStoreOnSequentialEngine(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBlockSize(256),
		trapquorum.WithConcurrency(1),
		trapquorum.WithHedging(50*time.Millisecond, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	payload := bytes.Repeat([]byte("sequential engine check "), 100)
	if err := store.Put(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	patch := []byte("PATCHED")
	if err := store.WriteAt(ctx, "obj", 300, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[300:], patch)
	store.CrashNode(0)
	store.CrashNode(7)
	got, err := store.Get(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sequential-engine store returned wrong data")
	}
}
