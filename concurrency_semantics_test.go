package trapquorum_test

// Public-surface acceptance tests for the concurrent quorum engine:
// the WithConcurrency / WithHedging knobs validate, a straggling node
// never gates a first-k read, and the sequential (concurrency=1)
// engine remains a working protocol — the property the A8 benchmarks
// compare against.

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"trapquorum"
)

func TestEngineOptionValidation(t *testing.T) {
	ctx := context.Background()
	for name, opts := range map[string][]trapquorum.Option{
		"negative concurrency": {trapquorum.WithConcurrency(-1)},
		"no-op hedging":        {trapquorum.WithHedging(0, 0)},
		"negative hedge delay": {trapquorum.WithHedging(-time.Second, 0)},
		"quantile out of range": {
			trapquorum.WithHedging(time.Millisecond, 1.0)},
	} {
		if _, err := trapquorum.OpenStore(ctx, opts...); err == nil {
			t.Errorf("%s: OpenStore accepted invalid option", name)
		}
		if _, err := trapquorum.Open(ctx, opts...); err == nil {
			t.Errorf("%s: Open accepted invalid option", name)
		}
	}
}

// TestReadIgnoresStragglerThroughPublicAPI turns one parity node into
// a 30s straggler through the SimBackend knob: quorum reads must keep
// serving at full speed from the prompt nodes, with the straggler's
// RPCs cancelled by the first-k termination.
func TestReadIgnoresStragglerThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	payload := bytes.Repeat([]byte("straggler-proof "), 64)
	if err := store.WriteObject(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	backend.SetNodeDelay(14, 30*time.Second)
	start := time.Now()
	got, err := store.ReadObject(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read blocked on straggler: %v", elapsed)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read returned wrong data")
	}
	backend.SetNodeDelay(14, 0) // restore for Close
}

// TestEpochOverlapReadsDuringRecode pins the epoch-overlap read
// semantics: while a live recode drains, the directory is split across
// two epochs — some objects still on the old (9,6) stripes, some
// already cut over to (15,8) — and every read must serve its object
// from whichever epoch it is in, exact to the byte, even with a
// straggler node slowing the old quorum. No read may block on, or
// leak results across, the other epoch.
func TestEpochOverlapReadsDuringRecode(t *testing.T) {
	ctx := context.Background()
	backend := trapquorum.NewSimBackend()
	store := openNineSix(t, backend)
	oracle := preloadObjects(t, store, "overlap", 60, 21)

	// One old-quorum node straggles mildly: overlap reads must keep
	// their first-k fast path in both epochs.
	backend.SetNodeDelay(3, 20*time.Millisecond)
	defer backend.SetNodeDelay(3, 0)

	errc := make(chan error, 1)
	go func() { errc <- store.Reconfigure(ctx, growRecode) }()
	waitFor(t, 10*time.Second, "the drain to start", func() bool {
		m := store.Health().Migration
		return m.Active || m.Retired == 1
	})

	// Hammer verified reads for as long as both epochs serve, sampling
	// the drain position between individual reads; require that we
	// actually observed the overlap window (some objects cut over,
	// some not).
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(22))
	sawOverlap := false
	for store.Health().Migration.Active {
		m := store.Health().Migration
		if m.DoneObjects > 0 && m.PendingObjects > 0 {
			sawOverlap = true
		}
		key := keys[rng.Intn(len(keys))]
		got, err := store.Get(ctx, key)
		if err != nil {
			t.Fatalf("overlap read of %q: %v", key, err)
		}
		if !bytes.Equal(got, oracle[key]) {
			t.Fatalf("overlap read of %q diverged from the oracle", key)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if !sawOverlap {
		t.Skip("migration drained before an overlap window was observed")
	}
	requireConverged(t, store, 2)
	verifyAll(t, store, oracle)
}

// TestEpochOverlapWritesDuringRecode pins the epoch-overlap write
// semantics: WriteAt racing an object's cutover must never lose the
// patch — the migration holds the object lock exclusively while
// re-placing it, writers hold it shared, so an acked patch lands
// either on the old stripes (and is carried over by the copy) or on
// the new ones. The foreground workload patches continuously through
// the whole drain and the final contents must match the oracle.
func TestEpochOverlapWritesDuringRecode(t *testing.T) {
	ctx := context.Background()
	store := openNineSix(t, trapquorum.NewSimBackend())
	oracle := preloadObjects(t, store, "overlapw", 30, 23)

	fg := startForeground(store, "overlapw", 24, oracle, fgReads|fgWrites)
	if err := store.Reconfigure(ctx, growRecode); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	// Keep patching after the cutover too: the new epoch's quorums
	// must accept the same write traffic the old ones did.
	time.Sleep(20 * time.Millisecond)
	final := fg.finish(t)
	requireConverged(t, store, 2)
	verifyAll(t, store, final)
}

// TestObjectStoreOnSequentialEngine drives the keyed object store with
// concurrency 1 and hedging enabled together — the full option
// surface on one store — through a write/patch/degraded-read cycle.
func TestObjectStoreOnSequentialEngine(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithBlockSize(256),
		trapquorum.WithConcurrency(1),
		trapquorum.WithHedging(50*time.Millisecond, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	payload := bytes.Repeat([]byte("sequential engine check "), 100)
	if err := store.Put(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	patch := []byte("PATCHED")
	if err := store.WriteAt(ctx, "obj", 300, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[300:], patch)
	store.CrashNode(0)
	store.CrashNode(7)
	got, err := store.Get(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sequential-engine store returned wrong data")
	}
}
