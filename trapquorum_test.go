package trapquorum

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

func fig3Store(t testing.TB) *Store {
	t.Helper()
	s, err := OpenStore(context.Background(), WithCode(15, 8), WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fig3ObjectStore(t testing.TB, opts ...Option) *ObjectStore {
	t.Helper()
	s, err := Open(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenValidation(t *testing.T) {
	ctx := context.Background()
	cases := [][]Option{
		{WithCode(15, 8), WithTrapezoid(2, 3, 2, 3)}, // trapezoid holds 15, need 8
		{WithCode(15, 0), WithTrapezoid(2, 3, 1, 3)},
		{WithCode(4, 8), WithTrapezoid(2, 3, 1, 3)},
		{WithCode(15, 8), WithTrapezoid(2, 3, 1, 9)}, // w > s_1
		{WithCode(15, 8), WithTrapezoid(-1, 3, 1, 3)},
		{WithBlockSize(0)},
		{WithPlacement(nil)},
		{WithBackend(nil)},
		{nil},
	}
	for i, opts := range cases {
		if _, err := Open(ctx, opts...); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
		if _, err := OpenStore(ctx, opts...); err == nil && i < 5 {
			t.Errorf("case %d: OpenStore accepted invalid options", i)
		}
	}
}

func TestOpenDefaultsAreFig3(t *testing.T) {
	s := fig3ObjectStore(t)
	if n, k := s.CodeParams(); n != 15 || k != 8 {
		t.Fatalf("default code (%d,%d)", n, k)
	}
	if s.NodeCount() != 15 {
		t.Fatalf("default cluster size %d", s.NodeCount())
	}
}

func TestObjectLifecycle(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	payload := []byte("strict consistency over erasure-coded virtual disks")
	if err := s.WriteObject(ctx, 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadObject(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	if _, err := s.ReadObject(ctx, 2); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockLifecycle(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 32)
	}
	if err := s.SeedStripe(ctx, 5, blocks); err != nil {
		t.Fatal(err)
	}
	x := bytes.Repeat([]byte{0xEE}, 32)
	if err := s.WriteBlock(ctx, 5, 3, x); err != nil {
		t.Fatal(err)
	}
	got, version, err := s.ReadBlock(ctx, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x) || version != 2 {
		t.Fatalf("got v%d", version)
	}
}

func TestFailureToleranceEndToEnd(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	payload := bytes.Repeat([]byte("virtualdisk!"), 100)
	if err := s.WriteObject(ctx, 9, payload); err != nil {
		t.Fatal(err)
	}
	// Crash nodes but keep the level-0 version check (shards 8, 9) up.
	s.CrashNode(0)
	s.CrashNode(5)
	s.CrashNode(12)
	if alive, err := s.AliveNodes(); err != nil || alive != 12 {
		t.Fatalf("alive = %d, %v", alive, err)
	}
	got, err := s.ReadObject(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read corrupted data")
	}
	if m := s.Metrics(); m.DecodeReads == 0 {
		t.Fatal("expected decode reads with data nodes down")
	}
}

func TestRepairLifecycle(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	if err := s.WriteObject(ctx, 3, bytes.Repeat([]byte{7}, 500)); err != nil {
		t.Fatal(err)
	}
	s.CrashNode(10)
	s.RestartNode(10)
	if err := s.WipeNode(ctx, 10); err != nil {
		t.Fatal(err)
	}
	n, err := s.RepairNode(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d chunks", n)
	}
	if err := s.RepairStripeShard(ctx, 3, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRepairStripePublicAPI(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	if err := s.WriteObject(ctx, 4, bytes.Repeat([]byte{3}, 800)); err != nil {
		t.Fatal(err)
	}
	// Degrade a write so two parity shards go stale, then heal.
	s.CrashNode(10)
	s.CrashNode(11)
	blockData, _, err := s.ReadBlock(ctx, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockData[0] ^= 0xFF
	if err := s.WriteBlock(ctx, 4, 0, blockData); err != nil {
		t.Fatal(err)
	}
	s.RestartNode(10)
	s.RestartNode(11)
	repaired, ahead, err := s.RepairStripe(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 || len(ahead) != 0 {
		t.Fatalf("repaired=%d ahead=%v", repaired, ahead)
	}
	got, _, err := s.ReadBlock(ctx, 4, 0)
	if err != nil || !bytes.Equal(got, blockData) {
		t.Fatalf("post-repair read wrong (%v)", err)
	}
}

func TestScrubPublicAPI(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	if err := s.WriteObject(ctx, 6, bytes.Repeat([]byte{9}, 300)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubStripe(ctx, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("fresh object unhealthy: %v", rep)
	}
	s.CrashNode(13)
	rep, err = s.ScrubStripe(ctx, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || len(rep.UnreachableShards) != 1 {
		t.Fatalf("scrub with a node down: %v", rep)
	}
}

func TestAvailabilityAnalytics(t *testing.T) {
	s := fig3Store(t)
	// Paper-quoted values for this configuration.
	fr := s.ReadAvailabilityFullReplication(0.5)
	if math.Abs(fr-0.75) > 1e-12 {
		t.Fatalf("FR read at 0.5 = %v", fr)
	}
	erc, err := s.ReadAvailability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if erc < 0.63 || erc > 0.64 {
		t.Fatalf("ERC read at 0.5 = %v", erc)
	}
	if w := s.WriteAvailability(1); math.Abs(w-1) > 1e-12 {
		t.Fatalf("write at p=1 = %v", w)
	}
	if got := s.StorageOverhead(); math.Abs(got-1.875) > 1e-12 {
		t.Fatalf("overhead = %v", got)
	}
	if got := s.FullReplicationOverhead(); got != 8 {
		t.Fatalf("FR overhead = %v", got)
	}
}

func TestShapes(t *testing.T) {
	shapes, err := Shapes(15, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range shapes {
		if s == [3]int{2, 3, 1} {
			found = true
		}
	}
	if !found {
		t.Fatalf("shapes %v missing the Figure-3 shape", shapes)
	}
	if _, err := Shapes(3, 9, 2); err == nil {
		t.Fatal("invalid n/k accepted")
	}
}

func TestConfigAccessors(t *testing.T) {
	s := fig3Store(t)
	n, k := s.CodeParams()
	if s.NodeCount() != 15 || n != 15 || k != 8 {
		t.Fatal("accessors wrong")
	}
}

func TestWriteFailsWithoutQuorumPublicAPI(t *testing.T) {
	ctx := context.Background()
	s := fig3Store(t)
	if err := s.WriteObject(ctx, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Starve level 1: parity shards 10..14, w=3.
	s.CrashNode(12)
	s.CrashNode(13)
	s.CrashNode(14)
	err := s.WriteBlock(ctx, 1, 0, bytes.Repeat([]byte{1}, 1))
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
	var op *OpError
	if !errors.As(err, &op) {
		t.Fatalf("quorum failure not an OpError: %v", err)
	}
	if op.Op != "write" || op.Stripe != 1 || op.Block != 0 || op.Level != 1 {
		t.Fatalf("OpError detail wrong: %+v", op)
	}
}

func TestObjectStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	s := fig3ObjectStore(t, WithBlockSize(256))
	payload := bytes.Repeat([]byte("the paper's target context is storage virtualization. "), 100)
	if err := s.Put(ctx, "disk.img", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "disk.img", payload); !errors.Is(err, ErrExists) {
		t.Fatalf("double put: %v", err)
	}
	got, err := s.Get(ctx, "disk.img")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get mismatch (%v)", err)
	}
	// In-place patch plus range read.
	patch := []byte("QUORUM-PATCHED")
	if err := s.WriteAt(ctx, "disk.img", 300, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[300:], patch)
	mid, err := s.ReadAt(ctx, "disk.img", 290, 40)
	if err != nil || !bytes.Equal(mid, payload[290:330]) {
		t.Fatalf("ReadAt mismatch (%v)", err)
	}
	if sz, err := s.Size("disk.img"); err != nil || sz != len(payload) {
		t.Fatalf("size %d (%v)", sz, err)
	}
	// Survive node loss, repair a wiped disk, scrub.
	s.CrashNode(2)
	s.CrashNode(7)
	if got, err := s.Get(ctx, "disk.img"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("degraded get (%v)", err)
	}
	s.RestartNode(2)
	if err := s.WipeNode(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RepairNode(ctx, 2); err != nil {
		t.Fatal(err)
	}
	reports, err := s.Scrub(ctx, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	stripes, _ := s.StripesOf("disk.img")
	if len(reports) != len(stripes) || len(stripes) < 2 {
		t.Fatalf("%d reports for %d stripes", len(reports), len(stripes))
	}
	// Delete and verify gone.
	if err := s.Delete(ctx, "disk.img"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "disk.img"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("get after delete: %v", err)
	}
	if keys := s.Keys(); len(keys) != 0 {
		t.Fatalf("keys after delete: %v", keys)
	}
}

// ExampleOpen demonstrates the quickstart flow: open an object store
// with the paper's Figure-3 configuration, store an object, lose
// nodes, and read it back intact.
func ExampleOpen() {
	ctx := context.Background()
	store, err := Open(ctx, WithCode(15, 8), WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		panic(err)
	}
	defer store.Close()

	if err := store.Put(ctx, "greeting", []byte("hello, trapezoid")); err != nil {
		panic(err)
	}
	store.CrashNode(0) // lose a data node
	store.CrashNode(9) // and a parity node

	data, err := store.Get(ctx, "greeting")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (overhead %.3fx vs %.0fx replicated)\n",
		data, store.StorageOverhead(), store.FullReplicationOverhead())
	// Output: hello, trapezoid (overhead 1.875x vs 8x replicated)
}

func TestCodingParallelismOption(t *testing.T) {
	ctx := context.Background()
	// Negative worker counts are a configuration error.
	if _, err := Open(ctx, WithCodingParallelism(-1)); err == nil {
		t.Fatal("WithCodingParallelism(-1) accepted")
	}
	// A parallel-coding store must behave identically through the full
	// object lifecycle (the differential tests pin the kernels; this
	// pins the public plumbing).
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for _, workers := range []int{0, 1, 3} {
		s := fig3ObjectStore(t, WithCodingParallelism(workers))
		if err := s.Put(ctx, "obj", payload); err != nil {
			t.Fatalf("workers=%d: Put: %v", workers, err)
		}
		got, err := s.Get(ctx, "obj")
		if err != nil {
			t.Fatalf("workers=%d: Get: %v", workers, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("workers=%d: payload mismatch", workers)
		}
		patch := []byte("parallel-coding-patch")
		if err := s.WriteAt(ctx, "obj", 12345, patch); err != nil {
			t.Fatalf("workers=%d: WriteAt: %v", workers, err)
		}
		back, err := s.ReadAt(ctx, "obj", 12345, len(patch))
		if err != nil {
			t.Fatalf("workers=%d: ReadAt: %v", workers, err)
		}
		if !bytes.Equal(back, patch) {
			t.Fatalf("workers=%d: patch mismatch", workers)
		}
	}
	// The low-level store takes the knob too.
	s, err := OpenStore(ctx, WithCode(9, 6), WithTrapezoid(2, 1, 1, 2), WithCodingParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteObject(ctx, 1, payload[:8192]); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadObject(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:8192]) {
		t.Fatal("store payload mismatch")
	}
}
