package trapquorum

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
)

func fig3Store(t testing.TB) *Store {
	t.Helper()
	s, err := Open(Config{N: 15, K: 8, A: 2, B: 3, H: 1, W: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestOpenValidation(t *testing.T) {
	cases := []Config{
		{N: 15, K: 8, A: 2, B: 3, H: 2, W: 3}, // trapezoid holds 15, need 8
		{N: 15, K: 0, A: 2, B: 3, H: 1, W: 3},
		{N: 4, K: 8, A: 2, B: 3, H: 1, W: 3},
		{N: 15, K: 8, A: 2, B: 3, H: 1, W: 9}, // w > s_1
		{N: 15, K: 8, A: -1, B: 3, H: 1, W: 3},
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestObjectLifecycle(t *testing.T) {
	s := fig3Store(t)
	payload := []byte("strict consistency over erasure-coded virtual disks")
	if err := s.WriteObject(1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadObject(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	if _, err := s.ReadObject(2); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockLifecycle(t *testing.T) {
	s := fig3Store(t)
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 32)
	}
	if err := s.SeedStripe(5, blocks); err != nil {
		t.Fatal(err)
	}
	x := bytes.Repeat([]byte{0xEE}, 32)
	if err := s.WriteBlock(5, 3, x); err != nil {
		t.Fatal(err)
	}
	got, version, err := s.ReadBlock(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x) || version != 2 {
		t.Fatalf("got v%d", version)
	}
}

func TestFailureToleranceEndToEnd(t *testing.T) {
	s := fig3Store(t)
	payload := bytes.Repeat([]byte("virtualdisk!"), 100)
	if err := s.WriteObject(9, payload); err != nil {
		t.Fatal(err)
	}
	// Crash nodes but keep the level-0 version check (shards 8, 9) up.
	s.CrashNode(0)
	s.CrashNode(5)
	s.CrashNode(12)
	if s.AliveNodes() != 12 {
		t.Fatalf("alive = %d", s.AliveNodes())
	}
	got, err := s.ReadObject(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read corrupted data")
	}
	if m := s.Metrics(); m.DecodeReads == 0 {
		t.Fatal("expected decode reads with data nodes down")
	}
}

func TestRepairLifecycle(t *testing.T) {
	s := fig3Store(t)
	if err := s.WriteObject(3, bytes.Repeat([]byte{7}, 500)); err != nil {
		t.Fatal(err)
	}
	s.CrashNode(10)
	s.RestartNode(10)
	if err := s.WipeNode(10); err != nil {
		t.Fatal(err)
	}
	n, err := s.RepairNode(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d chunks", n)
	}
	if err := s.RepairStripeShard(3, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRepairStripePublicAPI(t *testing.T) {
	s := fig3Store(t)
	if err := s.WriteObject(4, bytes.Repeat([]byte{3}, 800)); err != nil {
		t.Fatal(err)
	}
	// Degrade a write so two parity shards go stale, then heal.
	s.CrashNode(10)
	s.CrashNode(11)
	blockData, _, err := s.ReadBlock(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockData[0] ^= 0xFF
	if err := s.WriteBlock(4, 0, blockData); err != nil {
		t.Fatal(err)
	}
	s.RestartNode(10)
	s.RestartNode(11)
	repaired, ahead, err := s.RepairStripe(4)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 || len(ahead) != 0 {
		t.Fatalf("repaired=%d ahead=%v", repaired, ahead)
	}
	got, _, err := s.ReadBlock(4, 0)
	if err != nil || !bytes.Equal(got, blockData) {
		t.Fatalf("post-repair read wrong (%v)", err)
	}
}

func TestScrubPublicAPI(t *testing.T) {
	s := fig3Store(t)
	if err := s.WriteObject(6, bytes.Repeat([]byte{9}, 300)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubStripe(6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("fresh object unhealthy: %v", rep)
	}
	s.CrashNode(13)
	rep, err = s.ScrubStripe(6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || len(rep.UnreachableShards) != 1 {
		t.Fatalf("scrub with a node down: %v", rep)
	}
}

func TestAvailabilityAnalytics(t *testing.T) {
	s := fig3Store(t)
	// Paper-quoted values for this configuration.
	fr := s.ReadAvailabilityFullReplication(0.5)
	if math.Abs(fr-0.75) > 1e-12 {
		t.Fatalf("FR read at 0.5 = %v", fr)
	}
	erc, err := s.ReadAvailability(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if erc < 0.63 || erc > 0.64 {
		t.Fatalf("ERC read at 0.5 = %v", erc)
	}
	if w := s.WriteAvailability(1); math.Abs(w-1) > 1e-12 {
		t.Fatalf("write at p=1 = %v", w)
	}
	if got := s.StorageOverhead(); math.Abs(got-1.875) > 1e-12 {
		t.Fatalf("overhead = %v", got)
	}
	if got := s.FullReplicationOverhead(); got != 8 {
		t.Fatalf("FR overhead = %v", got)
	}
}

func TestShapes(t *testing.T) {
	shapes, err := Shapes(15, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range shapes {
		if s == [3]int{2, 3, 1} {
			found = true
		}
	}
	if !found {
		t.Fatalf("shapes %v missing the Figure-3 shape", shapes)
	}
	if _, err := Shapes(3, 9, 2); err == nil {
		t.Fatal("invalid n/k accepted")
	}
}

func TestConfigAccessors(t *testing.T) {
	s := fig3Store(t)
	if s.NodeCount() != 15 || s.Config().K != 8 {
		t.Fatal("accessors wrong")
	}
}

func TestWriteFailsWithoutQuorumPublicAPI(t *testing.T) {
	s := fig3Store(t)
	if err := s.WriteObject(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Starve level 1: parity shards 10..14, w=3.
	s.CrashNode(12)
	s.CrashNode(13)
	s.CrashNode(14)
	err := s.WriteBlock(1, 0, bytes.Repeat([]byte{1}, 1))
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
}

// ExampleOpen demonstrates the quickstart flow: open a (15,8) store
// with the paper's Figure-3 trapezoid, store an object, lose nodes,
// and read it back intact.
func ExampleOpen() {
	store, err := Open(Config{N: 15, K: 8, A: 2, B: 3, H: 1, W: 3})
	if err != nil {
		panic(err)
	}
	defer store.Close()

	if err := store.WriteObject(1, []byte("hello, trapezoid")); err != nil {
		panic(err)
	}
	store.CrashNode(0) // lose a data node
	store.CrashNode(9) // and a parity node

	data, err := store.ReadObject(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (overhead %.3fx vs %.0fx replicated)\n",
		data, store.StorageOverhead(), store.FullReplicationOverhead())
	// Output: hello, trapezoid (overhead 1.875x vs 8x replicated)
}
