package trapquorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/internal/sim"
)

// Backend provisions the transport clients a store runs on. Implement
// it (together with client.NodeClient) to put the protocol on any
// storage fleet — network RPC nodes, local disks, cloud volumes. The
// built-in SimBackend is the in-process reference implementation.
type Backend interface {
	// Open provisions clients for cluster nodes 0..n-1. It is called
	// exactly once per store.
	Open(ctx context.Context, n int) ([]client.NodeClient, error)
	// Close releases every provisioned node. Called by the store's
	// Close.
	Close() error
}

// FaultInjector is the optional backend extension for failure
// testing. The sim backend implements it; store-level CrashNode /
// RestartNode / WipeNode / AliveNodes delegate to it and return an
// error wrapping ErrNotSupported when the configured backend (for
// example NetBackend) does not support fault injection.
type FaultInjector interface {
	// Crash fail-stops node j; its data survives.
	Crash(node int)
	// Restart revives node j with its chunks intact.
	Restart(node int)
	// AliveNodes returns how many nodes are currently up.
	AliveNodes() int
	// Wipe erases node j's storage (media replacement). The node must
	// be up.
	Wipe(ctx context.Context, node int) error
}

// SimBackend runs the cluster as in-process simulated fail-stop nodes
// — one goroutine actor each — with optional injected per-operation
// latency. It is the default backend and implements FaultInjector.
type SimBackend struct {
	delay sim.DelayFunc

	mu      sync.Mutex
	cluster *sim.Cluster
}

// SimOption customises the simulated cluster.
type SimOption func(*SimBackend)

// WithFixedNodeDelay imposes the same latency on every node
// operation (e.g. 200µs to emulate a LAN RPC).
func WithFixedNodeDelay(d time.Duration) SimOption {
	return func(b *SimBackend) { b.delay = sim.FixedDelay(d) }
}

// WithUniformNodeDelay draws per-operation latency uniformly from
// [min, max).
func WithUniformNodeDelay(min, max time.Duration, seed int64) SimOption {
	return func(b *SimBackend) { b.delay = sim.UniformDelay(min, max, seed) }
}

// NewSimBackend builds the in-process simulated cluster backend. The
// cluster itself is started by Open with the node count the store
// derives from its configuration.
func NewSimBackend(opts ...SimOption) *SimBackend {
	b := &SimBackend{}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Open implements Backend.
func (b *SimBackend) Open(ctx context.Context, n int) ([]client.NodeClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster != nil {
		return nil, errors.New("trapquorum: sim backend already opened; use one backend per store")
	}
	var copts []sim.Option
	if b.delay != nil {
		copts = append(copts, sim.WithDelay(b.delay))
	}
	cluster, err := sim.NewCluster(n, copts...)
	if err != nil {
		return nil, err
	}
	b.cluster = cluster
	clients := make([]client.NodeClient, n)
	for j := 0; j < n; j++ {
		clients[j] = cluster.Node(j)
	}
	return clients, nil
}

// Close implements Backend: it stops every node actor.
func (b *SimBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster != nil {
		b.cluster.Close()
	}
	return nil
}

// live returns the running cluster or panics — fault injection before
// Open is a programming error.
func (b *SimBackend) live() *sim.Cluster {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster == nil {
		panic("trapquorum: sim backend not opened yet")
	}
	return b.cluster
}

// Crash fail-stops node j. Data survives; operations against the node
// fail until Restart.
func (b *SimBackend) Crash(node int) { b.live().Crash(node) }

// Restart revives node j with its chunks intact.
func (b *SimBackend) Restart(node int) { b.live().Restart(node) }

// AliveNodes returns how many nodes are currently up.
func (b *SimBackend) AliveNodes() int { return b.live().AliveCount() }

// Wipe erases node j's storage (media replacement). The node must be
// up. Follow with a repair.
func (b *SimBackend) Wipe(ctx context.Context, node int) error {
	return b.live().Node(node).Wipe(ctx)
}

// ProbeNode implements NodeProber for the self-healing monitor: a
// crashed node reports client.ErrNodeDown, an up node reports nil —
// the simulator's equivalent of the network plane's per-node ping.
func (b *SimBackend) ProbeNode(ctx context.Context, node int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	cluster := b.cluster
	b.mu.Unlock()
	if cluster == nil {
		return errors.New("trapquorum: sim backend not open")
	}
	if node < 0 || node >= cluster.Size() {
		return fmt.Errorf("trapquorum: probe of node %d outside [0,%d)", node, cluster.Size())
	}
	if cluster.Node(node).Down() {
		return fmt.Errorf("node %d: %w", node, sim.ErrNodeDown)
	}
	return nil
}

// SetNodeDelay turns node j into a straggler: every operation on it
// takes the given fixed latency instead of the cluster-wide model
// (d = 0 restores zero latency). Operations already in their delay
// window keep the old latency. Used to demonstrate first-k early
// termination and hedging against slow nodes.
func (b *SimBackend) SetNodeDelay(node int, d time.Duration) {
	if d <= 0 {
		b.live().SetNodeDelay(node, nil)
		return
	}
	b.live().SetNodeDelay(node, sim.FixedDelay(d))
}

// faultInjector asserts the backend supports fault injection.
func faultInjector(b Backend, op string) (FaultInjector, error) {
	fi, ok := b.(FaultInjector)
	if !ok {
		return nil, fmt.Errorf("%w: %s needs a fault-injecting backend (the sim backend); %T is not one", ErrNotSupported, op, b)
	}
	return fi, nil
}
