package trapquorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/internal/nodeengine"
	"trapquorum/internal/sim"
)

// Backend provisions the transport clients a store runs on. Implement
// it (together with client.NodeClient) to put the protocol on any
// storage fleet — network RPC nodes, local disks, cloud volumes. The
// built-in SimBackend is the in-process reference implementation.
type Backend interface {
	// Open provisions clients for cluster nodes 0..n-1. It is called
	// exactly once per store.
	Open(ctx context.Context, n int) ([]client.NodeClient, error)
	// Close releases every provisioned node. Called by the store's
	// Close.
	Close() error
}

// FaultInjector is the optional backend extension for failure
// testing. The sim backend implements it; store-level CrashNode /
// RestartNode / WipeNode / AliveNodes delegate to it and return an
// error wrapping ErrNotSupported when the configured backend (for
// example NetBackend) does not support fault injection.
type FaultInjector interface {
	// Crash fail-stops node j; its data survives.
	Crash(node int)
	// Restart revives node j with its chunks intact.
	Restart(node int)
	// AliveNodes returns how many nodes are currently up.
	AliveNodes() int
	// Wipe erases node j's storage (media replacement). The node must
	// be up.
	Wipe(ctx context.Context, node int) error
}

// CorruptionMode selects how CorruptShard damages a stored chunk —
// the corruption half of the fault-injection harness (Crash/Wipe
// model fail-stop; these model wrong bytes behind a live node).
type CorruptionMode int

const (
	// CorruptBitFlip flips one bit of the stored data, metadata
	// untouched: classic silent bit-rot. The node's own self-checksum
	// catches it on the next content read.
	CorruptBitFlip CorruptionMode = iota + 1
	// CorruptTruncate drops the second half of the stored data,
	// metadata untouched: a torn or shortened chunk file.
	CorruptTruncate
	// CorruptWrongData replaces the content with different bytes of
	// the same length and forges the node's own metadata to match — a
	// node that lies consistently. Only the cross-checksum records its
	// peers hold can convict it.
	CorruptWrongData
	// CorruptStaleReplay regresses the chunk to a state previously
	// captured with SnapshotShard — a restored backup serving
	// valid-but-old data. Requires a prior SnapshotShard of the same
	// (node, chunk); CorruptShard errors otherwise.
	CorruptStaleReplay
)

// String names the mode for test output.
func (m CorruptionMode) String() string {
	switch m {
	case CorruptBitFlip:
		return "bit-flip"
	case CorruptTruncate:
		return "truncate"
	case CorruptWrongData:
		return "wrong-data"
	case CorruptStaleReplay:
		return "stale-replay"
	default:
		return fmt.Sprintf("CorruptionMode(%d)", int(m))
	}
}

// SimBackend runs the cluster as in-process simulated fail-stop nodes
// — one goroutine actor each — with optional injected per-operation
// latency. It is the default backend and implements FaultInjector.
type SimBackend struct {
	delay     sim.DelayFunc
	chaosSeed int64

	mu      sync.Mutex
	cluster *sim.Cluster
	snaps   map[snapKey]nodeengine.ChunkSnapshot
}

// snapKey identifies one snapshotted chunk on one node.
type snapKey struct {
	node int
	id   client.ChunkID
}

// SimOption customises the simulated cluster.
type SimOption func(*SimBackend)

// WithFixedNodeDelay imposes the same latency on every node
// operation (e.g. 200µs to emulate a LAN RPC).
func WithFixedNodeDelay(d time.Duration) SimOption {
	return func(b *SimBackend) { b.delay = sim.FixedDelay(d) }
}

// WithUniformNodeDelay draws per-operation latency uniformly from
// [min, max).
func WithUniformNodeDelay(min, max time.Duration, seed int64) SimOption {
	return func(b *SimBackend) { b.delay = sim.UniformDelay(min, max, seed) }
}

// WithChaosSeed sets the seed behind the probabilistic link faults
// (SetLinkLoss and friends) so chaos runs replay identically. The
// default is 1.
func WithChaosSeed(seed int64) SimOption {
	return func(b *SimBackend) { b.chaosSeed = seed }
}

// NewSimBackend builds the in-process simulated cluster backend. The
// cluster itself is started by Open with the node count the store
// derives from its configuration.
func NewSimBackend(opts ...SimOption) *SimBackend {
	b := &SimBackend{chaosSeed: 1}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Open implements Backend.
func (b *SimBackend) Open(ctx context.Context, n int) ([]client.NodeClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster != nil {
		return nil, errors.New("trapquorum: sim backend already opened; use one backend per store")
	}
	var copts []sim.Option
	if b.delay != nil {
		copts = append(copts, sim.WithDelay(b.delay))
	}
	cluster, err := sim.NewCluster(n, copts...)
	if err != nil {
		return nil, err
	}
	b.cluster = cluster
	clients := make([]client.NodeClient, n)
	for j := 0; j < n; j++ {
		clients[j] = cluster.Node(j)
	}
	return clients, nil
}

// Grow implements GrowableBackend: it provisions count fresh, empty
// simulated nodes after the current roster and returns their clients,
// live immediately. The new nodes inherit the cluster's latency model
// and participate in fault injection (Crash, link faults, corruption)
// like any Open-time node. Used by ObjectStore.Reconfigure to grow the
// fleet online.
func (b *SimBackend) Grow(ctx context.Context, count int) ([]client.NodeClient, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster == nil {
		return nil, errors.New("trapquorum: sim backend not open")
	}
	nodes, err := b.cluster.AddNodes(count)
	if err != nil {
		return nil, err
	}
	clients := make([]client.NodeClient, len(nodes))
	for i, n := range nodes {
		clients[i] = n
	}
	return clients, nil
}

// Close implements Backend: it stops every node actor.
func (b *SimBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster != nil {
		b.cluster.Close()
	}
	return nil
}

// live returns the running cluster or panics — fault injection before
// Open is a programming error.
func (b *SimBackend) live() *sim.Cluster {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cluster == nil {
		panic("trapquorum: sim backend not opened yet")
	}
	return b.cluster
}

// Crash fail-stops node j. Data survives; operations against the node
// fail until Restart.
func (b *SimBackend) Crash(node int) { b.live().Crash(node) }

// Restart revives node j with its chunks intact.
func (b *SimBackend) Restart(node int) { b.live().Restart(node) }

// AliveNodes returns how many nodes are currently up.
func (b *SimBackend) AliveNodes() int { return b.live().AliveCount() }

// Wipe erases node j's storage (media replacement). The node must be
// up. Follow with a repair.
func (b *SimBackend) Wipe(ctx context.Context, node int) error {
	return b.live().Node(node).Wipe(ctx)
}

// ProbeNode implements NodeProber for the self-healing monitor: the
// simulator's equivalent of the network plane's per-node ping. The
// probe crosses the node's full admission gate — crash state, link
// faults, injected latency — so a partitioned or stalled link is as
// visible to the health monitor as a crashed node, and a straggler's
// probes take as long as its real operations.
func (b *SimBackend) ProbeNode(ctx context.Context, node int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	cluster := b.cluster
	b.mu.Unlock()
	if cluster == nil {
		return errors.New("trapquorum: sim backend not open")
	}
	if node < 0 || node >= cluster.Size() {
		return fmt.Errorf("trapquorum: probe of node %d outside [0,%d)", node, cluster.Size())
	}
	if err := cluster.Node(node).Probe(ctx); err != nil {
		return fmt.Errorf("node %d: %w", node, err)
	}
	return nil
}

// SetLinkFault installs the full link-fault model on the network path
// to cluster node `node` (the zero fault heals it) — the simulator's
// mirror of internal/chaosnet, so in-memory and TCP chaos suites share
// one fault vocabulary. Deterministic under WithChaosSeed.
func (b *SimBackend) SetLinkFault(node int, f sim.LinkFault) {
	b.live().SetLinkFault(node, f, b.chaosSeed+int64(node)*7919)
}

// SetLinkLoss makes the link to node `node` lose the given fraction of
// requests in transit (0 heals): lost requests hang the caller until
// its deadline and never reach the node — a lossy path, not a crashed
// node. The node itself stays perfectly healthy.
func (b *SimBackend) SetLinkLoss(node int, p float64) {
	b.SetLinkFault(node, sim.LinkFault{ReqLoss: p})
}

// PartitionNodes cuts the links to the given nodes the loud way:
// every operation and probe against them fails immediately with
// client.ErrNodeDown (connection refused) while the nodes themselves
// keep their data and never notice. Heal with HealLinks. For the
// silent partition that hangs callers instead, use
// SetLinkFault(node, sim.LinkFault{ReqLoss: 1}).
func (b *SimBackend) PartitionNodes(nodes ...int) {
	for _, n := range nodes {
		b.SetLinkFault(n, sim.LinkFault{Refuse: true})
	}
}

// HealLinks removes every link fault; nodes are reachable again with
// whatever state they accumulated while cut off.
func (b *SimBackend) HealLinks() { b.live().HealAllLinks() }

// CorruptShard damages the stored chunk id on cluster node `node`
// according to mode, through the node engine's fault-injection hooks:
// on a durable store the damage would survive restarts exactly like
// real media rot. It returns client.ErrNotFound when the node does
// not store the chunk, and an error when mode is CorruptStaleReplay
// without a prior SnapshotShard. Fault-injection surface for
// corruption chaos tests; requires the sim backend.
func (b *SimBackend) CorruptShard(ctx context.Context, node int, id client.ChunkID, mode CorruptionMode) error {
	engine := b.live().Node(node).Engine()
	switch mode {
	case CorruptBitFlip:
		return engine.CorruptChunk(ctx, id, nodeengine.CorruptBitFlip)
	case CorruptTruncate:
		return engine.CorruptChunk(ctx, id, nodeengine.CorruptTruncate)
	case CorruptWrongData:
		return engine.CorruptChunk(ctx, id, nodeengine.CorruptWrongData)
	case CorruptStaleReplay:
		b.mu.Lock()
		snap, ok := b.snaps[snapKey{node: node, id: id}]
		b.mu.Unlock()
		if !ok {
			return fmt.Errorf("trapquorum: CorruptShard(%s): stale-replay needs a prior SnapshotShard of chunk %s on node %d", mode, id, node)
		}
		return engine.RestoreChunk(ctx, snap)
	default:
		return fmt.Errorf("%w: unknown corruption mode %d", client.ErrBadRequest, int(mode))
	}
}

// SnapshotShard captures chunk id's full stored state on cluster node
// `node` — data, versions, checksums — for a later
// CorruptShard(CorruptStaleReplay), which regresses the chunk to the
// captured state. Re-snapshotting the same (node, chunk) replaces the
// previous capture.
func (b *SimBackend) SnapshotShard(ctx context.Context, node int, id client.ChunkID) error {
	snap, err := b.live().Node(node).Engine().SnapshotChunk(ctx, id)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.snaps == nil {
		b.snaps = make(map[snapKey]nodeengine.ChunkSnapshot)
	}
	b.snaps[snapKey{node: node, id: id}] = snap
	b.mu.Unlock()
	return nil
}

// SetNodeLying turns cluster node `node` into a persistent Byzantine
// liar (true) or back into an honest node (false): while lying, every
// chunk it serves has its content silently altered after the engine's
// own integrity checks passed, so the node's own metadata never
// betrays it — only the cross-checksum records its peers hold can.
// Fault-injection surface for Byzantine chaos tests.
func (b *SimBackend) SetNodeLying(node int, lying bool) {
	b.live().Node(node).SetReadCorrupt(lying)
}

// SetNodeDelay turns node j into a straggler: every operation on it
// takes the given fixed latency instead of the cluster-wide model
// (d = 0 restores zero latency). Operations already in their delay
// window keep the old latency. Used to demonstrate first-k early
// termination and hedging against slow nodes.
func (b *SimBackend) SetNodeDelay(node int, d time.Duration) {
	if d <= 0 {
		b.live().SetNodeDelay(node, nil)
		return
	}
	b.live().SetNodeDelay(node, sim.FixedDelay(d))
}

// faultInjector asserts the backend supports fault injection.
func faultInjector(b Backend, op string) (FaultInjector, error) {
	fi, ok := b.(FaultInjector)
	if !ok {
		return nil, fmt.Errorf("%w: %s needs a fault-injecting backend (the sim backend); %T is not one", ErrNotSupported, op, b)
	}
	return fi, nil
}
