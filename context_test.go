package trapquorum_test

// Context-semantics acceptance tests: cancelled or expired contexts
// abort quorum writes without committing, abort reads, and surface
// context.Canceled / context.DeadlineExceeded through the error
// taxonomy (errors.Is through OpError).

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"trapquorum"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	t.Cleanup(cancel)
	<-ctx.Done()
	return ctx
}

func TestCancelledContextAbortsWriteWithoutCommitting(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx, trapquorum.WithCode(15, 8), trapquorum.WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	old := []byte("the committed state before cancellation")
	if err := store.WriteObject(ctx, 1, old); err != nil {
		t.Fatal(err)
	}
	before, version, err := store.ReadBlock(ctx, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	werr := store.WriteBlock(cancelledCtx(), 1, 0, bytes.Repeat([]byte{0xFF}, len(before)))
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", werr)
	}
	var op *trapquorum.OpError
	if !errors.As(werr, &op) {
		t.Fatalf("context abort not wrapped in OpError: %v", werr)
	}

	after, v2, err := store.ReadBlock(ctx, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != version || !bytes.Equal(after, before) {
		t.Fatalf("cancelled write committed: v%d -> v%d", version, v2)
	}
	if m := store.Metrics(); m.Writes != 0 {
		t.Fatalf("metrics count a committed write after cancellation: %+v", m)
	}
}

func TestCancelledContextAbortsRead(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx, trapquorum.WithCode(15, 8), trapquorum.WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.WriteObject(ctx, 1, []byte("readable")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.ReadBlock(cancelledCtx(), 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := store.ReadObject(cancelledCtx(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadObject: want context.Canceled, got %v", err)
	}
}

func TestExpiredDeadlineSurfacesDeadlineExceeded(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx, trapquorum.WithCode(15, 8), trapquorum.WithTrapezoid(2, 3, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.WriteObject(ctx, 1, []byte("deadline")); err != nil {
		t.Fatal(err)
	}
	dead := expiredCtx(t)
	if _, _, err := store.ReadBlock(dead, 1, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read: want DeadlineExceeded, got %v", err)
	}
	if err := store.WriteBlock(dead, 1, 0, bytes.Repeat([]byte{1}, 1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("write: want DeadlineExceeded, got %v", err)
	}
	if _, err := store.RepairNode(dead, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("repair: want DeadlineExceeded, got %v", err)
	}
	if _, _, err := store.RepairStripe(dead, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("repair stripe: want DeadlineExceeded, got %v", err)
	}
}

func TestDeadlineDuringInjectedLatency(t *testing.T) {
	// Per-node operations take 20ms; the context expires after 5ms, so
	// the very first node RPC of the quorum round aborts mid-delay and
	// nothing reaches any node.
	ctx := context.Background()
	store, err := trapquorum.OpenStore(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBackend(trapquorum.NewSimBackend(
			trapquorum.WithFixedNodeDelay(20*time.Millisecond))),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	old := bytes.Repeat([]byte("slow-node cluster state "), 10)
	if err := store.WriteObject(ctx, 1, old); err != nil {
		t.Fatal(err)
	}

	short, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	werr := store.WriteBlock(short, 1, 0, bytes.Repeat([]byte{0xEE}, 30))
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", werr)
	}
	// A full healthy write touches ≥ 9 nodes at 20ms each; aborting
	// during latency must come back far sooner.
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation did not interrupt injected latency: took %v", elapsed)
	}

	got, err := store.ReadObject(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("deadline-aborted write committed")
	}
}

func TestObjectStoreContextSemantics(t *testing.T) {
	ctx := context.Background()
	store, err := trapquorum.Open(ctx,
		trapquorum.WithCode(15, 8),
		trapquorum.WithTrapezoid(2, 3, 1, 3),
		trapquorum.WithBlockSize(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	payload := bytes.Repeat([]byte("object store context semantics "), 20)
	if err := store.Put(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cancelledCtx(), "other", payload); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put: want context.Canceled, got %v", err)
	}
	if _, err := store.Get(cancelledCtx(), "obj"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get: want context.Canceled, got %v", err)
	}
	if err := store.WriteAt(expiredCtx(t), "obj", 0, []byte("zz")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WriteAt: want DeadlineExceeded, got %v", err)
	}
	// The aborted Put must not have installed the key; the aborted
	// WriteAt must not have changed the object.
	if _, err := store.Get(ctx, "other"); !errors.Is(err, trapquorum.ErrUnknownKey) {
		t.Fatalf("aborted Put left key behind: %v", err)
	}
	got, err := store.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("aborted WriteAt changed object (%v)", err)
	}
}
