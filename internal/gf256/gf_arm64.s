//go:build arm64 && !purego

#include "textflag.h"

// NEON bodies of the GF(256) slice kernels. n is a positive multiple
// of 32; each loop iteration handles 32 bytes (two 16-byte vectors).

// func xorNEON(dst, src *byte, n int)
TEXT ·xorNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

xorloop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VLD1   (R0), [V2.B16, V3.B16]
	VEOR   V0.B16, V2.B16, V2.B16
	VEOR   V1.B16, V3.B16, V3.B16
	VST1.P [V2.B16, V3.B16], 32(R0)
	SUBS   $32, R2, R2
	BNE    xorloop
	RET

// func mulAddNEON(tbl *[32]byte, dst, src *byte, n int)
//
// Nibble-split TBL multiply: V6 holds the low-nibble product table
// (c·v), V7 the high-nibble table (c·(v<<4)), V8 the 0x0f mask.
TEXT ·mulAddNEON(SB), NOSPLIT, $0-32
	MOVD  tbl+0(FP), R3
	MOVD  dst+8(FP), R0
	MOVD  src+16(FP), R1
	MOVD  n+24(FP), R2
	VLD1  (R3), [V6.B16, V7.B16]
	VMOVI $15, V8.B16

maddloop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VUSHR  $4, V0.B16, V10.B16
	VUSHR  $4, V1.B16, V11.B16
	VAND   V8.B16, V0.B16, V0.B16
	VAND   V8.B16, V1.B16, V1.B16
	VTBL   V0.B16, [V6.B16], V4.B16
	VTBL   V1.B16, [V6.B16], V5.B16
	VTBL   V10.B16, [V7.B16], V10.B16
	VTBL   V11.B16, [V7.B16], V11.B16
	VEOR   V10.B16, V4.B16, V4.B16
	VEOR   V11.B16, V5.B16, V5.B16
	VLD1   (R0), [V2.B16, V3.B16]
	VEOR   V2.B16, V4.B16, V4.B16
	VEOR   V3.B16, V5.B16, V5.B16
	VST1.P [V4.B16, V5.B16], 32(R0)
	SUBS   $32, R2, R2
	BNE    maddloop
	RET

// func mulNEON(tbl *[32]byte, dst, src *byte, n int)
TEXT ·mulNEON(SB), NOSPLIT, $0-32
	MOVD  tbl+0(FP), R3
	MOVD  dst+8(FP), R0
	MOVD  src+16(FP), R1
	MOVD  n+24(FP), R2
	VLD1  (R3), [V6.B16, V7.B16]
	VMOVI $15, V8.B16

mulloop:
	VLD1.P 32(R1), [V0.B16, V1.B16]
	VUSHR  $4, V0.B16, V10.B16
	VUSHR  $4, V1.B16, V11.B16
	VAND   V8.B16, V0.B16, V0.B16
	VAND   V8.B16, V1.B16, V1.B16
	VTBL   V0.B16, [V6.B16], V4.B16
	VTBL   V1.B16, [V6.B16], V5.B16
	VTBL   V10.B16, [V7.B16], V10.B16
	VTBL   V11.B16, [V7.B16], V11.B16
	VEOR   V10.B16, V4.B16, V4.B16
	VEOR   V11.B16, V5.B16, V5.B16
	VST1.P [V4.B16, V5.B16], 32(R0)
	SUBS   $32, R2, R2
	BNE    mulloop
	RET
