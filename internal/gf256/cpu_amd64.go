//go:build amd64 && !purego

package gf256

// Runtime CPU-feature detection for the amd64 vector kernels, with no
// dependency beyond two instructions the assembler wraps (CPUID and
// XGETBV). AVX2 requires the OS to save YMM state (OSXSAVE set and
// XCR0 bits 1..2), not just the CPU flag; VEX-encoded GFNI additionally
// requires the GFNI CPUID bit.

var (
	hasAVX2 bool
	hasGFNI bool
)

func detectCPU() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return
	}
	xcr0, _ := xgetbv()
	// XMM (bit 1) and YMM (bit 2) state must both be OS-managed.
	if xcr0&0x6 != 0x6 {
		return
	}
	_, ebx7, ecx7, _ := cpuid(7, 0)
	hasAVX2 = ebx7&(1<<5) != 0
	hasGFNI = hasAVX2 && ecx7&(1<<8) != 0
}

// disableAccel turns the vector kernels off (tests only: it lets one
// binary exercise both the accelerated and portable paths).
func disableAccel() (restore func()) {
	avx2, gfni := hasAVX2, hasGFNI
	hasAVX2, hasGFNI = false, false
	return func() { hasAVX2, hasGFNI = avx2, gfni }
}

// cpuid executes the CPUID instruction.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)
