package gf256

// Packed-lane kernels: the throughput core of the word-wise data plane.
//
// Row-wise stripe encoding performs, per parity row j, a full pass
// dst_j[m] ^= α_{j,i}·src_i[m] over every (row, column) pair — for an
// (n,k) code that is (n−k)·k table lookups and (n−k)·k block passes.
// The lane layout transposes the work: a LaneTable packs, for one data
// column i, the products α_{j,i}·v of up to 8 parity rows j into the 8
// byte lanes of a uint64, so ONE lookup per source byte feeds all
// (n−k ≤ 8 of the bank's) destination rows at once, and the
// accumulator is touched word-wise. Parity rows beyond 8 are handled
// by banking (the erasure layer groups rows into banks of 8).
//
// The tables themselves are built split by nibble: lane-packed
// low/high 4-bit tables lo[v] = Σ_j α_j·v<<lane(j) (v in 0..15) and
// hi[v] = Σ_j α_j·(v<<4)<<lane(j). The split build costs 32 packed
// entries instead of 256, which is what makes per-call construction
// affordable for small blocks; for large blocks the split tables are
// expanded once into a byte-indexed table (lo[v&15]^hi[v>>4] for all
// 256 v), halving the per-byte lookups. Accumulate selects between the
// two per call by length, and the expansion is cached — a LaneTable
// retained by an erasure code amortises it across every stripe.
//
// Everything here is plain Go over uint64 words: no assembly, no
// unsafe, byte order fixed by encoding/binary on the extract side.

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// MaxLanes is the number of destination rows one LaneTable packs — the
// byte lanes of a uint64.
const MaxLanes = 8

// LaneTable maps one source byte to the packed products of up to
// MaxLanes coefficients. Safe for concurrent use once built.
type LaneTable struct {
	lanes int
	// Split 4-bit tables: lo indexes the low nibble of a source byte,
	// hi the high nibble; their XOR is the packed product.
	lo, hi [16]uint64

	// full is the byte-indexed expansion, built lazily on the first
	// long-enough Accumulate (expandOnce) so tables used only for
	// small blocks never pay for it.
	expandOnce sync.Once
	full       *[256]uint64
}

// NewLaneTable builds the packed product table of the given
// coefficients: lane j of every entry carries products of coeffs[j].
// Between 1 and MaxLanes coefficients are accepted. Construction cost
// is 32 packed entries (the 4-bit split build); the byte-indexed
// expansion happens lazily when a large block first needs it.
func NewLaneTable(coeffs []byte) *LaneTable {
	if len(coeffs) == 0 || len(coeffs) > MaxLanes {
		panic(fmt.Sprintf("gf256: NewLaneTable with %d coefficients (need 1..%d)", len(coeffs), MaxLanes))
	}
	t := &LaneTable{lanes: len(coeffs)}
	for j, c := range coeffs {
		row := &mulTable[c]
		sh := uint(8 * j)
		for v := 0; v < 16; v++ {
			t.lo[v] |= uint64(row[v]) << sh
			t.hi[v] |= uint64(row[v<<4]) << sh
		}
	}
	return t
}

// Lanes returns the number of packed destination rows.
func (t *LaneTable) Lanes() int { return t.lanes }

// laneExpandCutover is the source length at which Accumulate expands
// (and caches) the byte-indexed table: below it the 256-entry
// expansion costs more than the second nibble lookup it saves.
const laneExpandCutover = 1024

// expand builds the byte-indexed table from the split tables, once.
func (t *LaneTable) expand() *[256]uint64 {
	t.expandOnce.Do(func() {
		var full [256]uint64
		for v := 0; v < 256; v++ {
			full[v] = t.lo[v&15] ^ t.hi[v>>4]
		}
		t.full = &full
	})
	return t.full
}

// Mul sets acc[m] = products(src[m]) for every position: lane j of
// acc[m] becomes coeffs[j]·src[m]. len(acc) must equal len(src).
func (t *LaneTable) Mul(acc []uint64, src []byte) {
	if len(acc) != len(src) {
		panic("gf256: LaneTable.Mul length mismatch")
	}
	if len(src) >= laneExpandCutover {
		t.mulFull(t.expand(), acc, src)
		return
	}
	t.mulSplit(acc, src)
}

// MulAdd sets acc[m] ^= products(src[m]) for every position,
// accumulating into the packed lanes. len(acc) must equal len(src).
func (t *LaneTable) MulAdd(acc []uint64, src []byte) {
	if len(acc) != len(src) {
		panic("gf256: LaneTable.MulAdd length mismatch")
	}
	if len(src) >= laneExpandCutover {
		t.mulAddFull(t.expand(), acc, src)
		return
	}
	t.mulAddSplit(acc, src)
}

func (t *LaneTable) mulFull(full *[256]uint64, acc []uint64, src []byte) {
	n := len(acc)
	m := 0
	for ; m+4 <= n; m += 4 {
		s := src[m : m+4 : m+4]
		a := acc[m : m+4 : m+4]
		a[0] = full[s[0]]
		a[1] = full[s[1]]
		a[2] = full[s[2]]
		a[3] = full[s[3]]
	}
	for ; m < n; m++ {
		acc[m] = full[src[m]]
	}
}

func (t *LaneTable) mulAddFull(full *[256]uint64, acc []uint64, src []byte) {
	n := len(acc)
	m := 0
	for ; m+4 <= n; m += 4 {
		s := src[m : m+4 : m+4]
		a := acc[m : m+4 : m+4]
		a[0] ^= full[s[0]]
		a[1] ^= full[s[1]]
		a[2] ^= full[s[2]]
		a[3] ^= full[s[3]]
	}
	for ; m < n; m++ {
		acc[m] ^= full[src[m]]
	}
}

func (t *LaneTable) mulSplit(acc []uint64, src []byte) {
	lo, hi := &t.lo, &t.hi
	n := len(acc)
	m := 0
	for ; m+4 <= n; m += 4 {
		s := src[m : m+4 : m+4]
		a := acc[m : m+4 : m+4]
		a[0] = lo[s[0]&15] ^ hi[s[0]>>4]
		a[1] = lo[s[1]&15] ^ hi[s[1]>>4]
		a[2] = lo[s[2]&15] ^ hi[s[2]>>4]
		a[3] = lo[s[3]&15] ^ hi[s[3]>>4]
	}
	for ; m < n; m++ {
		acc[m] = lo[src[m]&15] ^ hi[src[m]>>4]
	}
}

func (t *LaneTable) mulAddSplit(acc []uint64, src []byte) {
	lo, hi := &t.lo, &t.hi
	n := len(acc)
	m := 0
	for ; m+4 <= n; m += 4 {
		s := src[m : m+4 : m+4]
		a := acc[m : m+4 : m+4]
		a[0] ^= lo[s[0]&15] ^ hi[s[0]>>4]
		a[1] ^= lo[s[1]&15] ^ hi[s[1]>>4]
		a[2] ^= lo[s[2]&15] ^ hi[s[2]>>4]
		a[3] ^= lo[s[3]&15] ^ hi[s[3]>>4]
	}
	for ; m < n; m++ {
		acc[m] ^= lo[src[m]&15] ^ hi[src[m]>>4]
	}
}

// ExtractLane writes byte lane `lane` of every accumulator word into
// dst, 8 output bytes per step. len(dst) must equal len(acc).
func ExtractLane(dst []byte, acc []uint64, lane int) {
	if len(dst) != len(acc) {
		panic("gf256: ExtractLane length mismatch")
	}
	if lane < 0 || lane >= MaxLanes {
		panic(fmt.Sprintf("gf256: ExtractLane lane %d out of [0,%d)", lane, MaxLanes))
	}
	sh := uint(8 * lane)
	n := len(dst)
	m := 0
	for ; m+8 <= n; m += 8 {
		a := acc[m : m+8 : m+8]
		w := ((a[0] >> sh) & 0xff) |
			((a[1]>>sh)&0xff)<<8 |
			((a[2]>>sh)&0xff)<<16 |
			((a[3]>>sh)&0xff)<<24 |
			((a[4]>>sh)&0xff)<<32 |
			((a[5]>>sh)&0xff)<<40 |
			((a[6]>>sh)&0xff)<<48 |
			((a[7]>>sh)&0xff)<<56
		binary.LittleEndian.PutUint64(dst[m:], w)
	}
	for ; m < n; m++ {
		dst[m] = byte(acc[m] >> sh)
	}
}

// transpose8 transposes an 8×8 byte matrix held in 8 uint64 rows, in
// place, by three rounds of masked delta-swaps (the byte-granular
// analogue of Hacker's Delight transpose8): 4-byte blocks, then
// 2-byte, then single bytes. ~1 op per byte instead of the 8 shifts a
// per-lane walk costs, and — the real win — each accumulator word is
// loaded once for all 8 lanes instead of once per lane.
func transpose8(a *[8]uint64) {
	const (
		m4 = 0x00000000ffffffff
		m2 = 0x0000ffff0000ffff
		m1 = 0x00ff00ff00ff00ff
	)
	for i := 0; i < 4; i++ {
		t := ((a[i] >> 32) ^ a[i+4]) & m4
		a[i+4] ^= t
		a[i] ^= t << 32
	}
	for _, i := range [4]int{0, 1, 4, 5} {
		t := ((a[i] >> 16) ^ a[i+2]) & m2
		a[i+2] ^= t
		a[i] ^= t << 16
	}
	for _, i := range [4]int{0, 2, 4, 6} {
		t := ((a[i] >> 8) ^ a[i+1]) & m1
		a[i+1] ^= t
		a[i] ^= t << 8
	}
}

// ExtractLanes writes every byte lane of the accumulator into its
// destination in one pass: dsts[j] receives lane j. Destinations may
// be nil to skip a lane; non-nil ones must have len(acc) bytes. One
// 8×8 transpose per 8 accumulator words replaces len(dsts) separate
// ExtractLane walks, so the accumulator is loaded once instead of once
// per lane — the difference between the extraction dominating a
// multi-parity encode and it costing a fraction of the accumulation.
func ExtractLanes(dsts [][]byte, acc []uint64) {
	if len(dsts) == 0 || len(dsts) > MaxLanes {
		panic(fmt.Sprintf("gf256: ExtractLanes with %d destinations (need 1..%d)", len(dsts), MaxLanes))
	}
	n := len(acc)
	for _, d := range dsts {
		if d != nil && len(d) != n {
			panic("gf256: ExtractLanes length mismatch")
		}
	}
	var blk [8]uint64
	m := 0
	for ; m+8 <= n; m += 8 {
		copy(blk[:], acc[m:m+8])
		transpose8(&blk)
		for j, d := range dsts {
			if d != nil {
				binary.LittleEndian.PutUint64(d[m:], blk[j])
			}
		}
	}
	for j, d := range dsts {
		if d == nil {
			continue
		}
		sh := uint(8 * j)
		for i := m; i < n; i++ {
			d[i] = byte(acc[i] >> sh)
		}
	}
}

// LanesEqual reports whether every byte lane of the accumulator equals
// its expected block: wants[j] against lane j, nil entries skipped.
// The transpose-per-8-words walk of ExtractLanes, fused with the
// compare so the parity verifier touches the accumulator once for all
// lanes and materialises nothing.
func LanesEqual(wants [][]byte, acc []uint64) bool {
	if len(wants) == 0 || len(wants) > MaxLanes {
		panic(fmt.Sprintf("gf256: LanesEqual with %d blocks (need 1..%d)", len(wants), MaxLanes))
	}
	n := len(acc)
	for _, w := range wants {
		if w != nil && len(w) != n {
			panic("gf256: LanesEqual length mismatch")
		}
	}
	var blk [8]uint64
	m := 0
	for ; m+8 <= n; m += 8 {
		copy(blk[:], acc[m:m+8])
		transpose8(&blk)
		for j, w := range wants {
			if w != nil && binary.LittleEndian.Uint64(w[m:]) != blk[j] {
				return false
			}
		}
	}
	for j, w := range wants {
		if w == nil {
			continue
		}
		sh := uint(8 * j)
		for i := m; i < n; i++ {
			if byte(acc[i]>>sh) != w[i] {
				return false
			}
		}
	}
	return true
}

// LaneEqual reports whether byte lane `lane` of every accumulator word
// equals want, without materialising the lane — the scratch-free
// compare the parity verifier runs on.
func LaneEqual(want []byte, acc []uint64, lane int) bool {
	if len(want) != len(acc) {
		panic("gf256: LaneEqual length mismatch")
	}
	if lane < 0 || lane >= MaxLanes {
		panic(fmt.Sprintf("gf256: LaneEqual lane %d out of [0,%d)", lane, MaxLanes))
	}
	sh := uint(8 * lane)
	for m, a := range acc {
		if byte(a>>sh) != want[m] {
			return false
		}
	}
	return true
}
