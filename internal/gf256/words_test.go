package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// The word-wise kernels must be byte-for-byte identical to the scalar
// references for every length (covering word tails) and for unaligned
// slice offsets (uint64 loads through encoding/binary must not care
// about alignment). Lengths 0..257 cross every cutover — wordCutover,
// the 4/8/32-byte unroll boundaries — and the offsets shift the slices
// off 8-byte alignment.

func TestMulSliceMatchesRefAllLengths(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	backing := make([]byte, 300)
	r.Read(backing)
	for n := 0; n <= 257; n++ {
		for _, off := range []int{0, 1, 3, 7} {
			src := backing[off : off+n]
			for _, c := range []byte{0, 1, 2, 0x1d, 0x80, 0xff} {
				want := make([]byte, n)
				MulSliceRef(c, want, src)
				got := make([]byte, n)
				MulSlice(c, got, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulSlice(c=%#x, n=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

func TestMulAddSliceMatchesRefAllLengths(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	backing := make([]byte, 300)
	r.Read(backing)
	seed := make([]byte, 300)
	r.Read(seed)
	for n := 0; n <= 257; n++ {
		for _, off := range []int{0, 1, 3, 7} {
			src := backing[off : off+n]
			for _, c := range []byte{0, 1, 2, 0x1d, 0x80, 0xff} {
				want := append([]byte(nil), seed[:n]...)
				MulAddSliceRef(c, want, src)
				got := append([]byte(nil), seed[:n]...)
				MulAddSlice(c, got, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulAddSlice(c=%#x, n=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

func TestXorSliceMatchesRefAllLengths(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	backing := make([]byte, 300)
	r.Read(backing)
	seed := make([]byte, 300)
	r.Read(seed)
	for n := 0; n <= 257; n++ {
		for _, off := range []int{0, 1, 3, 7} {
			src := backing[off : off+n]
			want := append([]byte(nil), seed[:n]...)
			XorSliceRef(want, src)
			got := append([]byte(nil), seed[:n]...)
			XorSlice(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("XorSlice(n=%d, off=%d) diverges from reference", n, off)
			}
		}
	}
}

func TestLaneTableMatchesRefAllLengths(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	backing := make([]byte, 1300)
	r.Read(backing)
	coeffSets := [][]byte{
		{5},
		{0, 1},
		{3, 9, 0x55, 0xd1},
		{3, 9, 0x55, 0xd1, 7, 2, 0xfe, 0x80},
	}
	// Lengths straddle laneExpandCutover so both the split and the
	// expanded body are exercised.
	for _, n := range []int{0, 1, 7, 8, 9, 31, 63, 64, 65, 255, 256, 257, 1023, 1024, 1057} {
		for _, off := range []int{0, 3} {
			src := backing[off : off+n]
			for _, coeffs := range coeffSets {
				tab := NewLaneTable(coeffs)
				acc := make([]uint64, n)
				for m := range acc {
					acc[m] = r.Uint64() // Mul must overwrite garbage
				}
				tab.Mul(acc, src)
				for lane, c := range coeffs {
					want := make([]byte, n)
					MulSliceRef(c, want, src)
					got := make([]byte, n)
					ExtractLane(got, acc, lane)
					if !bytes.Equal(got, want) {
						t.Fatalf("LaneTable.Mul lane %d (coeffs %v, n=%d, off=%d) diverges", lane, coeffs, n, off)
					}
					if !LaneEqual(want, acc, lane) {
						t.Fatalf("LaneEqual rejects correct lane %d (n=%d)", lane, n)
					}
					if n > 0 {
						bad := append([]byte(nil), want...)
						bad[n/2] ^= 1
						if LaneEqual(bad, acc, lane) {
							t.Fatalf("LaneEqual accepts corrupted lane %d (n=%d)", lane, n)
						}
					}
				}
				// MulAdd over a second source must equal ref accumulation.
				src2 := backing[off+1 : off+1+n]
				tab.MulAdd(acc, src2)
				for lane, c := range coeffs {
					want := make([]byte, n)
					MulSliceRef(c, want, src)
					MulAddSliceRef(c, want, src2)
					got := make([]byte, n)
					ExtractLane(got, acc, lane)
					if !bytes.Equal(got, want) {
						t.Fatalf("LaneTable.MulAdd lane %d (n=%d, off=%d) diverges", lane, n, off)
					}
				}
			}
		}
	}
}

func TestLaneTableSplitAndFullAgree(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	src := make([]byte, 257)
	r.Read(src)
	coeffs := []byte{3, 9, 0x55, 0xd1, 7, 2, 0xfe, 0x80}
	tab := NewLaneTable(coeffs)
	split := make([]uint64, len(src))
	tab.mulSplit(split, src)
	full := make([]uint64, len(src))
	tab.mulFull(tab.expand(), full, src)
	for m := range split {
		if split[m] != full[m] {
			t.Fatalf("split/full tables disagree at %d: %#x vs %#x", m, split[m], full[m])
		}
	}
}

func TestNewLaneTableValidation(t *testing.T) {
	for _, bad := range [][]byte{nil, {}, make([]byte, 9)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLaneTable(%d coeffs) did not panic", len(bad))
				}
			}()
			NewLaneTable(bad)
		}()
	}
	if got := NewLaneTable([]byte{1, 2, 3}).Lanes(); got != 3 {
		t.Fatalf("Lanes() = %d, want 3", got)
	}
}

func TestLaneKernelMismatchPanics(t *testing.T) {
	tab := NewLaneTable([]byte{5})
	for name, f := range map[string]func(){
		"Mul":         func() { tab.Mul(make([]uint64, 2), make([]byte, 3)) },
		"MulAdd":      func() { tab.MulAdd(make([]uint64, 2), make([]byte, 3)) },
		"ExtractLane": func() { ExtractLane(make([]byte, 2), make([]uint64, 3), 0) },
		"LaneEqual":   func() { LaneEqual(make([]byte, 2), make([]uint64, 3), 0) },
		"ExtractOOB":  func() { ExtractLane(make([]byte, 2), make([]uint64, 2), 8) },
		"EqualOOB":    func() { LaneEqual(make([]byte, 2), make([]uint64, 2), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExtractLanesMatchesExtractLane(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 63, 64, 65, 257} {
		acc := make([]uint64, n)
		for i := range acc {
			acc[i] = r.Uint64()
		}
		for lanes := 1; lanes <= MaxLanes; lanes++ {
			dsts := make([][]byte, lanes)
			for j := range dsts {
				if lanes > 2 && j == 1 {
					continue // nil lanes must be skipped
				}
				dsts[j] = make([]byte, n)
			}
			ExtractLanes(dsts, acc)
			want := make([]byte, n)
			for j, d := range dsts {
				if d == nil {
					continue
				}
				ExtractLane(want, acc, j)
				if !bytes.Equal(d, want) {
					t.Fatalf("n=%d lanes=%d: lane %d differs from ExtractLane", n, lanes, j)
				}
			}
			if !LanesEqual(dsts, acc) {
				t.Fatalf("n=%d lanes=%d: LanesEqual rejects correct lanes", n, lanes)
			}
			for j, d := range dsts {
				if d == nil || n == 0 {
					continue
				}
				d[n-1] ^= 1
				if LanesEqual(dsts, acc) {
					t.Fatalf("n=%d lanes=%d: LanesEqual accepted corrupt lane %d", n, lanes, j)
				}
				d[n-1] ^= 1
			}
		}
	}
}

func TestExtractLanesValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"none":     func() { ExtractLanes(nil, make([]uint64, 4)) },
		"toomany":  func() { ExtractLanes(make([][]byte, 9), make([]uint64, 4)) },
		"mismatch": func() { ExtractLanes([][]byte{make([]byte, 3)}, make([]uint64, 4)) },
		"eqnone":   func() { LanesEqual(nil, make([]uint64, 4)) },
		"eqshort":  func() { LanesEqual([][]byte{make([]byte, 3)}, make([]uint64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
