package gf256

// Word-wise kernels: the data-plane hot loops, processing 8 bytes per
// step through uint64 loads and stores (encoding/binary only — no
// assembly, no unsafe). Two ideas carry all of them:
//
//  1. Pack 8 independent byte-table lookups into one uint64 and touch
//     dst once per word instead of once per byte. The per-byte table
//     lookup cannot be avoided in portable Go, but halving the memory
//     traffic on dst and letting the 8 loads pipeline still beats the
//     byte loop.
//
//  2. Word-wise XOR with a 32-byte unrolled body. XOR is the single
//     most common operation of the stripe math (additions, deltas,
//     parity adjustments), is bytewise-independent, and vectorises
//     perfectly onto uint64 lanes: measured ~9× over the byte loop.
//
// The scalar kernels are kept (slices_ref.go) both as the differential
// reference the fuzz tests pin these kernels against and as the
// short-input path: below wordCutover bytes the word setup costs more
// than it saves, so the public kernels select per call by length.
//
// The biggest win — one lookup feeding up to 8 destination rows at
// once — needs a different data layout and lives in lanes.go.

import "encoding/binary"

// wordCutover is the slice length at which the word-wise kernels take
// over from the scalar reference kernels. Below it the word packing's
// setup and tail handling dominate.
const wordCutover = 32

// mulWords is the word-wise body of MulSlice: dst[m] = row[src[m]],
// 8 bytes per step. len(dst) == len(src), length >= 8.
func mulWords(row *[256]byte, dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		w := uint64(row[s[0]]) |
			uint64(row[s[1]])<<8 |
			uint64(row[s[2]])<<16 |
			uint64(row[s[3]])<<24 |
			uint64(row[s[4]])<<32 |
			uint64(row[s[5]])<<40 |
			uint64(row[s[6]])<<48 |
			uint64(row[s[7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for ; i < n; i++ {
		dst[i] = row[src[i]]
	}
}

// mulAddWords is the word-wise body of MulAddSlice: dst[m] ^=
// row[src[m]], 8 bytes per step with a single read-modify-write of dst
// per word.
func mulAddWords(row *[256]byte, dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		w := uint64(row[s[0]]) |
			uint64(row[s[1]])<<8 |
			uint64(row[s[2]])<<16 |
			uint64(row[s[3]])<<24 |
			uint64(row[s[4]])<<32 |
			uint64(row[s[5]])<<40 |
			uint64(row[s[6]])<<48 |
			uint64(row[s[7]])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^w)
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// xorWords is the word-wise body of XorSlice: 32 bytes per iteration,
// four independent uint64 lanes so the loads, xors and stores pipeline.
func xorWords(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+32 <= n; i += 32 {
		d := dst[i : i+32 : i+32]
		s := src[i : i+32 : i+32]
		w0 := binary.LittleEndian.Uint64(d[0:8]) ^ binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(d[8:16]) ^ binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(d[16:24]) ^ binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(d[24:32]) ^ binary.LittleEndian.Uint64(s[24:32])
		binary.LittleEndian.PutUint64(d[0:8], w0)
		binary.LittleEndian.PutUint64(d[8:16], w1)
		binary.LittleEndian.PutUint64(d[16:24], w2)
		binary.LittleEndian.PutUint64(d[24:32], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
