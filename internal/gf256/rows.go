package gf256

// Row fan-out kernels: apply one source block to several destination
// rows, each with its own coefficient. This is the row-wise counterpart
// of the packed-lane tables — on SIMD builds each MulSlice/MulAddSlice
// call below runs the 32-byte vector kernels, and with destinations
// segment-sized the repeated src pass stays in L1, so fan-out reaches
// memory speed without the lane transpose. The erasure coder selects
// between this and the lane path via Accelerated().

// MulRows sets dsts[j][m] = coeffs[j] * src[m] for every row j and
// position m. Every destination must have len(src) bytes and must not
// alias src or another destination.
func MulRows(coeffs []byte, dsts [][]byte, src []byte) {
	if len(coeffs) != len(dsts) {
		panic("gf256: MulRows coefficient/row count mismatch")
	}
	for j, dst := range dsts {
		MulSlice(coeffs[j], dst, src)
	}
}

// MulAddRows sets dsts[j][m] ^= coeffs[j] * src[m] for every row j and
// position m, accumulating into each destination. Every destination
// must have len(src) bytes and must not alias src or another
// destination.
func MulAddRows(coeffs []byte, dsts [][]byte, src []byte) {
	if len(coeffs) != len(dsts) {
		panic("gf256: MulAddRows coefficient/row count mismatch")
	}
	for j, dst := range dsts {
		MulAddSlice(coeffs[j], dst, src)
	}
}
