package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// The row fan-out helpers must agree with the packed-lane tables and
// the scalar references: they are the SIMD-era replacement for the lane
// path in the erasure coder, so any divergence is silent data
// corruption in encoded stripes.

func TestRowsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 31, 32, 64, 100, 4096, 4097} {
		for _, rows := range []int{1, 3, 8} {
			src := make([]byte, n)
			rng.Read(src)
			coeffs := make([]byte, rows)
			rng.Read(coeffs)
			coeffs[0] = 0 // exercise the zero fast path too

			dsts := make([][]byte, rows)
			want := make([][]byte, rows)
			for j := range dsts {
				dsts[j] = make([]byte, n)
				want[j] = make([]byte, n)
				for m := range dsts[j] {
					dsts[j][m] = byte(j*41 + m*13)
					want[j][m] = dsts[j][m]
				}
			}

			MulRows(coeffs, dsts, src)
			for j := range want {
				MulSliceRef(coeffs[j], want[j], src)
				if !bytes.Equal(dsts[j], want[j]) {
					t.Fatalf("MulRows row %d (n=%d, rows=%d) diverges", j, n, rows)
				}
			}

			MulAddRows(coeffs, dsts, src)
			for j := range want {
				MulAddSliceRef(coeffs[j], want[j], src)
				if !bytes.Equal(dsts[j], want[j]) {
					t.Fatalf("MulAddRows row %d (n=%d, rows=%d) diverges", j, n, rows)
				}
			}
		}
	}
}

func TestRowsCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulRows with mismatched counts did not panic")
		}
	}()
	MulRows([]byte{1, 2}, [][]byte{make([]byte, 4)}, make([]byte, 4))
}

// BenchmarkGFRows8 is the row fan-out twin of BenchmarkGFLane8: 8
// coefficients applied to one source block, 8·size bytes accounted.
func BenchmarkGFRows8(b *testing.B) {
	for _, size := range gfBenchSizes {
		b.Run(gfBenchName(size), func(b *testing.B) {
			src := make([]byte, size)
			rand.New(rand.NewSource(43)).Read(src)
			dsts := make([][]byte, 8)
			for j := range dsts {
				dsts[j] = make([]byte, size)
			}
			b.SetBytes(int64(8 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAddRows(gfBenchCoeffs, dsts, src)
			}
		})
	}
}
