// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed from the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for
// Reed-Solomon style erasure codes. Addition and subtraction are both
// XOR; multiplication and division are table-driven.
//
// The package is the arithmetic substrate for the (n,k) MDS erasure code
// used by the TRAP-ERC protocol: parity blocks are linear combinations
// b_j = Σ α_{j,i}·b_i with coefficients α in GF(2^8), and the in-place
// parity updates of Algorithm 1 rely on the commutativity of this field.
package gf256

import "fmt"

// Poly is the primitive polynomial that defines the field, with the x^8
// term included (0x11d = x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

// generator is a primitive element of the field; powers of it enumerate
// all 255 non-zero elements.
const generator = 0x02

var (
	// expTable[i] = generator^i. Doubled to 512 entries so that
	// Mul can index exp[log[a]+log[b]] without a modular reduction.
	expTable [512]byte
	// logTable[x] = i such that generator^i = x, for x != 0.
	logTable [256]int
	// mulTable[a][b] = a*b. 64 KiB; makes the slice kernels a single
	// table row lookup per element.
	mulTable [256][256]byte
	// invTable[x] = x^-1 for x != 0; invTable[0] = 0 (unused).
	invTable [256]byte
)

func init() { initBaseTables() }

// baseTablesReady guards initBaseTables: the per-arch SIMD init
// functions derive their product tables from mulTable, and package init
// order is file-name order, so they must be able to force base-table
// construction first.
var baseTablesReady bool

func initBaseTables() {
	if baseTablesReady {
		return
	}
	baseTablesReady = true
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	if x != 1 {
		panic("gf256: 0x11d is not primitive (internal error)")
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			mulTable[a][b] = mulSlow(byte(a), byte(b))
		}
	}
	for x := 1; x < 256; x++ {
		invTable[x] = expTable[255-logTable[x]]
	}
}

// mulSlow multiplies two field elements by shift-and-add ("Russian
// peasant") reduction. It is used only to build the tables and as a
// cross-check in tests.
func mulSlow(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= byte(Poly & 0xff)
		}
		b >>= 1
	}
	return p
}

// Add returns a + b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). In characteristic 2 subtraction equals
// addition, so this is also XOR.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a / b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[logTable[a]+255-logTable[b]]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return invTable[a]
}

// Exp returns generator^e for e >= 0.
func Exp(e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", e))
	}
	return expTable[e%255]
}

// Log returns the discrete logarithm of a with respect to the field
// generator. It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return logTable[a]
}

// Pow returns a^e for e >= 0, with 0^0 = 1.
func Pow(a byte, e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", e))
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(logTable[a]*e)%255]
}
