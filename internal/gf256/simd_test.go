package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// The SIMD kernels never see aligned-only input in production: pooled
// blocks land at arbitrary addresses and the erasure coder slices into
// them at arbitrary offsets. These tests drive the public kernels
// through every combination of start misalignment, odd length, and
// special coefficient, against the scalar references — on a purego
// build they still run and pin the word kernels instead.

var simdLens = []int{
	0, 1, 7, 8, 31, 32, 33, 63, 64, 65, 95, 96, 127, 128, 129,
	255, 256, 257, 1023, 1024, 1025, 4096, 4097, 65536,
}

var simdOffsets = []int{0, 1, 3, 7, 8, 15, 31}

var simdCoeffs = []byte{0, 1, 2, 3, 0x1d, 0x80, 0xa5, 0xff}

func TestSIMDDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	buf := make([]byte, 65536+64)
	rng.Read(buf)
	for _, n := range simdLens {
		for _, off := range simdOffsets {
			src := buf[off : off+n]
			base := make([]byte, n)
			for i := range base {
				base[i] = byte(i*37 + 5)
			}
			for _, c := range simdCoeffs {
				want := make([]byte, n)
				MulSliceRef(c, want, src)
				got := append(make([]byte, 0, n+off), base...)
				MulSlice(c, got, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulSlice(c=%#x, n=%d, off=%d) diverges", c, n, off)
				}
				want = append(want[:0], base...)
				MulAddSliceRef(c, want, src)
				got = append(got[:0], base...)
				MulAddSlice(c, got, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulAddSlice(c=%#x, n=%d, off=%d) diverges", c, n, off)
				}
			}
			want := append([]byte(nil), base...)
			XorSliceRef(want, src)
			got := append([]byte(nil), base...)
			XorSlice(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("XorSlice(n=%d, off=%d) diverges", n, off)
			}
		}
	}
}

func TestSIMDInPlace(t *testing.T) {
	// Full aliasing (dst == src) is the one overlap the kernels allow.
	rng := rand.New(rand.NewSource(11))
	for _, n := range simdLens {
		src := make([]byte, n)
		rng.Read(src)
		for _, c := range simdCoeffs {
			want := make([]byte, n)
			MulSliceRef(c, want, src)
			got := append([]byte(nil), src...)
			MulSlice(c, got, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice(c=%#x, n=%d) in-place diverges", c, n)
			}
		}
		// dst ^= dst must zero; c·dst accumulated into dst is (c+1)·dst.
		got := append([]byte(nil), src...)
		XorSlice(got, got)
		if !bytes.Equal(got, make([]byte, n)) {
			t.Fatalf("XorSlice in-place (n=%d) is not zero", n)
		}
		got = append(got[:0], src...)
		MulAddSlice(2, got, got)
		want := make([]byte, n)
		MulSliceRef(3, want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulAddSlice(2, x, x) (n=%d) != 3·x", n)
		}
	}
}

func TestSIMDDisabledMatchesEnabled(t *testing.T) {
	if !Accelerated() {
		t.Skip("no SIMD kernels on this build")
	}
	src := make([]byte, 4099)
	rand.New(rand.NewSource(13)).Read(src)
	fast := make([]byte, len(src))
	MulAddSlice(0x53, fast, src)
	restore := disableAccel()
	if Accelerated() {
		restore()
		t.Fatal("disableAccel did not disable")
	}
	slow := make([]byte, len(src))
	MulAddSlice(0x53, slow, src)
	restore()
	if !bytes.Equal(fast, slow) {
		t.Fatal("SIMD and portable MulAddSlice diverge")
	}
	if !Accelerated() {
		t.Fatal("restore did not re-enable")
	}
}

// TestKernelZeroAlloc pins the hot kernels at zero allocations on
// every build: SIMD paths, word-wise bodies and scalar tails all work
// in place over caller buffers. The erasure coder leans on this — its
// steady-state zero-alloc guarantee is only as good as the kernels'.
func TestKernelZeroAlloc(t *testing.T) {
	src := make([]byte, 65536)
	dst := make([]byte, 65536)
	dsts := make([][]byte, 8)
	for j := range dsts {
		dsts[j] = make([]byte, len(src))
	}
	coeffs := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(0xa5, dst, src) },
		"MulAddSlice": func() { MulAddSlice(0xa5, dst, src) },
		"XorSlice":    func() { XorSlice(dst, src) },
		"MulAddRows":  func() { MulAddRows(coeffs, dsts, src) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

func TestKernelName(t *testing.T) {
	name := KernelName()
	if name == "" {
		t.Fatal("empty kernel name")
	}
	t.Logf("kernel: %s (accelerated=%v)", name, Accelerated())
}

// FuzzSIMDUnaligned feeds the kernels sub-slices at fuzzed offsets and
// lengths so the 32-byte main loops, the scalar tails, and the cutover
// boundaries all get hit at misaligned starts.
func FuzzSIMDUnaligned(f *testing.F) {
	f.Add([]byte{1, 2, 3}, byte(2), uint8(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 97), byte(0x1d), uint8(31))
	f.Add(bytes.Repeat([]byte{7}, 200), byte(0xff), uint8(13))
	f.Fuzz(func(t *testing.T, data []byte, c byte, off uint8) {
		skip := int(off) % (len(data) + 1)
		src := data[skip:]
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i*29 + 3)
		}
		want := append([]byte(nil), dst...)
		MulAddSliceRef(c, want, src)
		MulAddSlice(c, dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice(c=%#x, n=%d, skip=%d) diverges", c, len(src), skip)
		}
		got := make([]byte, len(src))
		MulSlice(c, got, src)
		ref := make([]byte, len(src))
		MulSliceRef(c, ref, src)
		if !bytes.Equal(got, ref) {
			t.Fatalf("MulSlice(c=%#x, n=%d, skip=%d) diverges", c, len(src), skip)
		}
	})
}
