package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestMulSliceMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(300)
		src := randBytes(r, n)
		c := byte(r.Intn(256))
		dst := make([]byte, n)
		MulSlice(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("c=%d i=%d: got %d want %d", c, i, dst[i], Mul(c, src[i]))
			}
		}
	}
}

func TestMulSliceZeroAndOne(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7}
	dst := []byte{9, 9, 9, 9, 9, 9, 9}
	MulSlice(0, dst, src)
	if !bytes.Equal(dst, make([]byte, 7)) {
		t.Fatalf("MulSlice(0) = %v, want zeros", dst)
	}
	MulSlice(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatalf("MulSlice(1) = %v, want %v", dst, src)
	}
}

func TestMulSliceAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := randBytes(r, 97)
	want := make([]byte, 97)
	MulSlice(0x57, want, src)
	inPlace := append([]byte(nil), src...)
	MulSlice(0x57, inPlace, inPlace)
	if !bytes.Equal(inPlace, want) {
		t.Fatal("in-place MulSlice differs from out-of-place")
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulSlice(3, make([]byte, 2), make([]byte, 3))
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(300)
		src := randBytes(r, n)
		dst := randBytes(r, n)
		orig := append([]byte(nil), dst...)
		c := byte(r.Intn(256))
		MulAddSlice(c, dst, src)
		for i := range src {
			want := orig[i] ^ Mul(c, src[i])
			if dst[i] != want {
				t.Fatalf("c=%d i=%d: got %d want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestMulAddSliceZeroIsNoop(t *testing.T) {
	dst := []byte{1, 2, 3}
	src := []byte{4, 5, 6}
	MulAddSlice(0, dst, src)
	if !bytes.Equal(dst, []byte{1, 2, 3}) {
		t.Fatalf("MulAddSlice(0) modified dst: %v", dst)
	}
}

func TestMulAddSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulAddSlice(3, make([]byte, 4), make([]byte, 3))
}

func TestXorSliceIsSelfInverse(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		dst := append([]byte(nil), a...)
		XorSlice(dst, b)
		XorSlice(dst, b)
		return bytes.Equal(dst, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	XorSlice(make([]byte, 9), make([]byte, 8))
}

func TestDotProduct(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n = 64
	vecs := [][]byte{randBytes(r, n), randBytes(r, n), randBytes(r, n)}
	coeffs := []byte{7, 0, 0xd1}
	dst := randBytes(r, n) // pre-filled garbage must be overwritten
	DotProduct(dst, coeffs, vecs)
	for i := 0; i < n; i++ {
		want := Mul(7, vecs[0][i]) ^ Mul(0, vecs[1][i]) ^ Mul(0xd1, vecs[2][i])
		if dst[i] != want {
			t.Fatalf("i=%d: got %d want %d", i, dst[i], want)
		}
	}
}

func TestDotProductMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	DotProduct(make([]byte, 4), []byte{1, 2}, [][]byte{make([]byte, 4)})
}

func BenchmarkMulSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(0x9c, dst, src)
	}
}

func BenchmarkMulAddSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(6)).Read(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x9c, dst, src)
	}
}

func BenchmarkXorSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(dst, src)
	}
}
