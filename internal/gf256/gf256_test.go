package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	f := func(a, b byte) bool { return Add(a, b) == a^b && Sub(a, b) == a^b }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSelfIsZero(t *testing.T) {
	f := func(a byte) bool { return Add(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesSlow(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("Mul(%d, 1) != %d", a, a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("Mul(%d, 0) != 0", a)
		}
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a=%d: a * Inv(a) = %d, want 1", a, Mul(byte(a), inv))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestDivZeroNumerator(t *testing.T) {
	for b := 1; b < 256; b++ {
		if Div(0, byte(b)) != 0 {
			t.Fatalf("Div(0, %d) != 0", b)
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpPeriod255(t *testing.T) {
	for e := 0; e < 255; e++ {
		if Exp(e) != Exp(e+255) {
			t.Fatalf("Exp(%d) != Exp(%d)", e, e+255)
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// The powers of the generator must enumerate every non-zero element
	// exactly once: that is what makes Vandermonde rows distinct.
	seen := make(map[byte]bool)
	for e := 0; e < 255; e++ {
		seen[Exp(e)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator powers cover %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("generator power produced zero")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for e := 0; e <= 9; e++ {
			if got := Pow(byte(a), e); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestPowZeroZero(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Fatal("Pow(0,0) != 1")
	}
	if Pow(0, 3) != 0 {
		t.Fatal("Pow(0,3) != 0")
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(2,-1) did not panic")
		}
	}()
	Pow(2, -1)
}

func TestExpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	Exp(-1)
}

func TestKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11d.
	cases := []struct{ a, b, want byte }{
		{2, 2, 4},
		{0x80, 2, 0x1d}, // overflow wraps through the polynomial
		{2, 0x8e, 1},    // x * (x^7+x^3+x^2+x) = x^8+x^4+x^3+x^2 = 1 mod 0x11d
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestNoZeroDivisors(t *testing.T) {
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if Mul(byte(a), byte(b)) == 0 {
				t.Fatalf("zero divisor: %d * %d = 0", a, b)
			}
		}
	}
}
