//go:build arm64 && !purego

package gf256

// SIMD kernel selection for arm64. NEON (ASIMD) is part of the base
// armv8-a profile Go requires, so there is no runtime feature probe:
// the vector kernels are always available unless the purego tag asks
// for the portable build. The scheme is the same nibble-split table
// lookup as the amd64 AVX2 path, using TBL on 16-byte product tables.
//
// The assembly bodies process 32-byte multiples only; the wrappers
// hand the tail to the scalar reference kernels so every length
// matches the scalar baseline byte for byte.

// asmMin is the slice length at which the vector kernels take over:
// below it the table-load setup beats the gain.
const asmMin = 64

// nibTables[c] packs the two 16-entry nibble product tables of
// coefficient c: bytes 0..15 hold c·v, bytes 16..31 hold c·(v<<4).
var nibTables *[256][32]byte

func init() {
	initBaseTables()
	var nt [256][32]byte
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		for v := 0; v < 16; v++ {
			nt[c][v] = row[v]
			nt[c][16+v] = row[v<<4]
		}
	}
	nibTables = &nt
}

// accelEnabled gates the vector kernels; tests flip it to exercise the
// portable path in the same binary.
var accelEnabled = true

// Accelerated reports whether SIMD kernels are active for large slices.
func Accelerated() bool { return accelEnabled }

// KernelName names the active large-slice kernel implementation, for
// diagnostics and benchmark labels.
func KernelName() string {
	if accelEnabled {
		return "arm64-neon"
	}
	return "words"
}

// disableAccel turns the vector kernels off (tests only).
func disableAccel() (restore func()) {
	was := accelEnabled
	accelEnabled = false
	return func() { accelEnabled = was }
}

// accelXor runs dst ^= src through the vector kernel when profitable.
// It reports false when the caller should use the portable path.
func accelXor(dst, src []byte) bool {
	if !accelEnabled || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	xorNEON(&dst[0], &src[0], n)
	if n < len(src) {
		XorSliceRef(dst[n:], src[n:])
	}
	return true
}

// accelMulAdd runs dst ^= c·src through the vector kernel when
// profitable. c must not be 0 or 1 (the callers' fast paths).
func accelMulAdd(c byte, dst, src []byte) bool {
	if !accelEnabled || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	mulAddNEON(&nibTables[c], &dst[0], &src[0], n)
	if n < len(src) {
		mulAddRef(&mulTable[c], dst[n:], src[n:])
	}
	return true
}

// accelMul runs dst = c·src through the vector kernel when profitable.
// c must not be 0 or 1 (the callers' fast paths).
func accelMul(c byte, dst, src []byte) bool {
	if !accelEnabled || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	mulNEON(&nibTables[c], &dst[0], &src[0], n)
	if n < len(src) {
		mulRef(&mulTable[c], dst[n:], src[n:])
	}
	return true
}

// The assembly bodies. n is a positive multiple of 32; dst and src must
// hold n bytes and may be equal (full aliasing) but not partially
// overlap.

//go:noescape
func xorNEON(dst, src *byte, n int)

//go:noescape
func mulAddNEON(tbl *[32]byte, dst, src *byte, n int)

//go:noescape
func mulNEON(tbl *[32]byte, dst, src *byte, n int)
