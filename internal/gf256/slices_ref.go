package gf256

// Scalar reference kernels: the original byte-at-a-time slice loops.
// They serve three purposes — the short-input path of the public
// kernels (word packing costs more than it saves below wordCutover),
// the differential baseline the fuzz and property tests pin the
// word-wise kernels against byte for byte, and the "before" side of
// the data-plane throughput benchmarks.

// MulSliceRef is the scalar reference for MulSlice: dst[m] = c*src[m],
// one 256-byte table row, unrolled by 4.
func MulSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSliceRef length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	mulRef(&mulTable[c], dst, src)
}

// MulAddSliceRef is the scalar reference for MulAddSlice:
// dst[m] ^= c*src[m].
func MulAddSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSliceRef length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSliceRef(dst, src)
		return
	}
	mulAddRef(&mulTable[c], dst, src)
}

// XorSliceRef is the scalar reference for XorSlice: dst[m] ^= src[m],
// unrolled by 8 but byte at a time.
func XorSliceRef(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSliceRef length mismatch")
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// mulRef is the scalar body shared by MulSlice (short inputs) and
// MulSliceRef.
func mulRef(row *[256]byte, dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = row[src[i]]
		dst[i+1] = row[src[i+1]]
		dst[i+2] = row[src[i+2]]
		dst[i+3] = row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] = row[src[i]]
	}
}

// mulAddRef is the scalar body shared by MulAddSlice (short inputs) and
// MulAddSliceRef.
func mulAddRef(row *[256]byte, dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}
