//go:build amd64 && !purego

package gf256

// SIMD kernel selection for amd64. Two vector paths sit behind the
// same per-length selection as the word kernels:
//
//   - AVX2: the classical nibble-split VPSHUFB scheme. Per coefficient
//     c a 32-byte table packs the products of the low nibble
//     (c·v, v in 0..15) and the high nibble (c·(v<<4)); one shuffle per
//     nibble and a XOR yield 32 products per instruction pair.
//   - GFNI (VEX-encoded, requires AVX2 too): multiplication by c is an
//     8×8 bit-matrix affine transform, VGF2P8AFFINEQB, one instruction
//     per 32 products — about half the port pressure of the shuffle
//     pair and no table broadcast.
//
// Feature detection runs once at init (CPUID + XCR0, see cpu_amd64.go).
// The assembly bodies process 32-byte multiples only; the Go wrappers
// here hand the tail to the scalar reference kernels, so every length
// matches the scalar baseline byte for byte — the differential fuzz
// targets pin exactly that.

// asmMin is the slice length at which the vector kernels take over:
// below it the broadcast/setup overhead beats the gain.
const asmMin = 64

var (
	// nibTables[c] packs the two 16-entry nibble product tables of
	// coefficient c: bytes 0..15 hold c·v, bytes 16..31 hold c·(v<<4).
	nibTables *[256][32]byte
	// gfniMats[c] is the 8×8 GF(2) matrix of multiplication by c in the
	// VGF2P8AFFINEQB layout: matrix byte 7−i is output-bit i's row, row
	// bit j set iff bit i of c·x^j is set.
	gfniMats *[256]uint64
)

func init() {
	initBaseTables()
	detectCPU()
	if !hasAVX2 {
		return
	}
	var nt [256][32]byte
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		for v := 0; v < 16; v++ {
			nt[c][v] = row[v]
			nt[c][16+v] = row[v<<4]
		}
	}
	nibTables = &nt
	if hasGFNI {
		var gm [256]uint64
		for c := 0; c < 256; c++ {
			var m uint64
			for i := 0; i < 8; i++ {
				var row byte
				for j := 0; j < 8; j++ {
					if mulTable[c][1<<j]&(1<<i) != 0 {
						row |= 1 << j
					}
				}
				m |= uint64(row) << (8 * (7 - i))
			}
			gm[c] = m
		}
		gfniMats = &gm
	}
}

// Accelerated reports whether SIMD kernels are active for large slices.
func Accelerated() bool { return hasAVX2 }

// KernelName names the active large-slice kernel implementation, for
// diagnostics and benchmark labels.
func KernelName() string {
	switch {
	case hasGFNI:
		return "amd64-gfni"
	case hasAVX2:
		return "amd64-avx2"
	default:
		return "words"
	}
}

// accelXor runs dst ^= src through the vector kernel when profitable.
// It reports false when the caller should use the portable path.
func accelXor(dst, src []byte) bool {
	if !hasAVX2 || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	xorAVX2(&dst[0], &src[0], n)
	if n < len(src) {
		XorSliceRef(dst[n:], src[n:])
	}
	return true
}

// accelMulAdd runs dst ^= c·src through the vector kernel when
// profitable. c must not be 0 or 1 (the callers' fast paths).
func accelMulAdd(c byte, dst, src []byte) bool {
	if !hasAVX2 || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	if hasGFNI {
		mulAddGFNI(gfniMats[c], &dst[0], &src[0], n)
	} else {
		mulAddAVX2(&nibTables[c], &dst[0], &src[0], n)
	}
	if n < len(src) {
		mulAddRef(&mulTable[c], dst[n:], src[n:])
	}
	return true
}

// accelMul runs dst = c·src through the vector kernel when profitable.
// c must not be 0 or 1 (the callers' fast paths).
func accelMul(c byte, dst, src []byte) bool {
	if !hasAVX2 || len(src) < asmMin {
		return false
	}
	n := len(src) &^ 31
	if hasGFNI {
		mulGFNI(gfniMats[c], &dst[0], &src[0], n)
	} else {
		mulAVX2(&nibTables[c], &dst[0], &src[0], n)
	}
	if n < len(src) {
		mulRef(&mulTable[c], dst[n:], src[n:])
	}
	return true
}

// The assembly bodies. n is a multiple of 32; dst and src must hold n
// bytes and may be equal (full aliasing) but not partially overlap.

//go:noescape
func xorAVX2(dst, src *byte, n int)

//go:noescape
func mulAddAVX2(tbl *[32]byte, dst, src *byte, n int)

//go:noescape
func mulAVX2(tbl *[32]byte, dst, src *byte, n int)

//go:noescape
func mulAddGFNI(mat uint64, dst, src *byte, n int)

//go:noescape
func mulGFNI(mat uint64, dst, src *byte, n int)
