package gf256

import (
	"fmt"
	"math/rand"
	"testing"
)

// Data-plane kernel benchmarks. Every benchmark here carries the GF
// prefix so the CI bench-smoke step (-bench=BenchmarkGF -benchtime=1x)
// compiles and runs each one; the *Ref variants are the scalar
// baselines the word-wise speedup claims in docs/PERFORMANCE.md are
// measured against, at identical SetBytes accounting.

var gfBenchSizes = []int{1 << 10, 64 << 10, 1 << 20}

func gfBenchName(size int) string {
	switch {
	case size >= 1<<20:
		return fmt.Sprintf("%dM", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("%dK", size>>10)
	default:
		return fmt.Sprintf("%dB", size)
	}
}

func benchPair(b *testing.B, f func(c byte, dst, src []byte)) {
	for _, size := range gfBenchSizes {
		b.Run(gfBenchName(size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			rand.New(rand.NewSource(42)).Read(src)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f(0x9c, dst, src)
			}
		})
	}
}

func BenchmarkGFMulSlice(b *testing.B)    { benchPair(b, MulSlice) }
func BenchmarkGFMulSliceRef(b *testing.B) { benchPair(b, MulSliceRef) }

func BenchmarkGFMulAddSlice(b *testing.B)    { benchPair(b, MulAddSlice) }
func BenchmarkGFMulAddSliceRef(b *testing.B) { benchPair(b, MulAddSliceRef) }

func BenchmarkGFXorSlice(b *testing.B) {
	benchPair(b, func(_ byte, dst, src []byte) { XorSlice(dst, src) })
}
func BenchmarkGFXorSliceRef(b *testing.B) {
	benchPair(b, func(_ byte, dst, src []byte) { XorSliceRef(dst, src) })
}

// The 8-lane fan-out pair: produce the products of 8 coefficients for
// one source block. The packed-lane kernel does it in one pass with one
// lookup per source byte; the scalar reference is the row-wise
// equivalent — 8 MulAddSliceRef passes. Both account 8·size processed
// bytes, so the MB/s figures compare directly.
var gfBenchCoeffs = []byte{3, 9, 0x55, 0xd1, 7, 2, 0xfe, 0x80}

func BenchmarkGFLane8(b *testing.B) {
	for _, size := range gfBenchSizes {
		b.Run(gfBenchName(size), func(b *testing.B) {
			src := make([]byte, size)
			rand.New(rand.NewSource(43)).Read(src)
			tab := NewLaneTable(gfBenchCoeffs)
			acc := make([]uint64, size)
			b.SetBytes(int64(8 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.MulAdd(acc, src)
			}
		})
	}
}

func BenchmarkGFLane8Ref(b *testing.B) {
	for _, size := range gfBenchSizes {
		b.Run(gfBenchName(size), func(b *testing.B) {
			src := make([]byte, size)
			rand.New(rand.NewSource(43)).Read(src)
			dsts := make([][]byte, 8)
			for j := range dsts {
				dsts[j] = make([]byte, size)
			}
			b.SetBytes(int64(8 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range gfBenchCoeffs {
					MulAddSliceRef(c, dsts[j], src)
				}
			}
		})
	}
}

func BenchmarkGFExtractLane(b *testing.B) {
	for _, size := range gfBenchSizes {
		b.Run(gfBenchName(size), func(b *testing.B) {
			acc := make([]uint64, size)
			for i := range acc {
				acc[i] = uint64(i) * 0x9e3779b97f4a7c15
			}
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ExtractLane(dst, acc, 3)
			}
		})
	}
}
