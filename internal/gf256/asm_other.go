//go:build (!amd64 && !arm64) || purego

package gf256

// Portable build: no vector kernels. The purego tag forces this file on
// amd64/arm64 too, which is how CI pins the fallback path against rot.

// Accelerated reports whether SIMD kernels are active for large slices.
func Accelerated() bool { return false }

// KernelName names the active large-slice kernel implementation, for
// diagnostics and benchmark labels.
func KernelName() string { return "words" }

func accelXor(dst, src []byte) bool            { return false }
func accelMulAdd(c byte, dst, src []byte) bool { return false }
func accelMul(c byte, dst, src []byte) bool    { return false }

// disableAccel is a no-op on the portable build (tests only).
func disableAccel() (restore func()) { return func() {} }
