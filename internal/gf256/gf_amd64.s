//go:build amd64 && !purego

#include "textflag.h"

// The vector bodies of the GF(256) slice kernels. Every function takes
// a byte count n that is a multiple of 32 (the Go wrappers in
// asm_amd64.go split off the tail); the main loops run 64 bytes per
// iteration with a 32-byte cleanup step. Loads and stores are
// unaligned (VMOVDQU) — pooled blocks carry no alignment guarantee.

// func xorAVX2(dst, src *byte, n int)
TEXT ·xorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	CMPQ CX, $64
	JL   xor32

xor64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     xor64

xor32:
	TESTQ CX, CX
	JZ    xordone
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

xordone:
	VZEROUPPER
	RET

// The nibble-split VPSHUFB multiply. Each function body broadcasts the
// coefficient's 32-byte table pair into Y10 (low-nibble products) and
// Y11 (high-nibble products) and builds the 0x0f mask in Y12; NIBMUL
// then computes the 32 products of source register ysrc into ydst
// (clobbering ytmp).
#define NIBMUL(ysrc, ydst, ytmp)      \
	VPSRLW  $4, ysrc, ytmp            \
	VPAND   Y12, ytmp, ytmp           \
	VPAND   Y12, ysrc, ydst           \
	VPSHUFB ydst, Y10, ydst           \
	VPSHUFB ytmp, Y11, ytmp           \
	VPXOR   ytmp, ydst, ydst

// func mulAddAVX2(tbl *[32]byte, dst, src *byte, n int)
TEXT ·mulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ tbl+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y10
	VBROADCASTI128 16(AX), Y11
	VPCMPEQB Y12, Y12, Y12
	VPSRLW   $4, Y12, Y12
	CMPQ CX, $64
	JL   madd32

madd64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	NIBMUL(Y0, Y2, Y3)
	NIBMUL(Y1, Y4, Y5)
	VPXOR   (DI), Y2, Y2
	VPXOR   32(DI), Y4, Y4
	VMOVDQU Y2, (DI)
	VMOVDQU Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     madd64

madd32:
	TESTQ CX, CX
	JZ    madddone
	VMOVDQU (SI), Y0
	NIBMUL(Y0, Y2, Y3)
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)

madddone:
	VZEROUPPER
	RET

// func mulAVX2(tbl *[32]byte, dst, src *byte, n int)
TEXT ·mulAVX2(SB), NOSPLIT, $0-32
	MOVQ tbl+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y10
	VBROADCASTI128 16(AX), Y11
	VPCMPEQB Y12, Y12, Y12
	VPSRLW   $4, Y12, Y12
	CMPQ CX, $64
	JL   mul32

mul64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	NIBMUL(Y0, Y2, Y3)
	NIBMUL(Y1, Y4, Y5)
	VMOVDQU Y2, (DI)
	VMOVDQU Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     mul64

mul32:
	TESTQ CX, CX
	JZ    muldone
	VMOVDQU (SI), Y0
	NIBMUL(Y0, Y2, Y3)
	VMOVDQU Y2, (DI)

muldone:
	VZEROUPPER
	RET

// func mulAddGFNI(mat uint64, dst, src *byte, n int)
TEXT ·mulAddGFNI(SB), NOSPLIT, $0-32
	MOVQ mat+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ AX, X10
	VPBROADCASTQ X10, Y10
	CMPQ CX, $64
	JL   gmadd32

gmadd64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VGF2P8AFFINEQB $0, Y10, Y0, Y2
	VGF2P8AFFINEQB $0, Y10, Y1, Y3
	VPXOR   (DI), Y2, Y2
	VPXOR   32(DI), Y3, Y3
	VMOVDQU Y2, (DI)
	VMOVDQU Y3, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     gmadd64

gmadd32:
	TESTQ CX, CX
	JZ    gmadddone
	VMOVDQU (SI), Y0
	VGF2P8AFFINEQB $0, Y10, Y0, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)

gmadddone:
	VZEROUPPER
	RET

// func mulGFNI(mat uint64, dst, src *byte, n int)
TEXT ·mulGFNI(SB), NOSPLIT, $0-32
	MOVQ mat+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ AX, X10
	VPBROADCASTQ X10, Y10
	CMPQ CX, $64
	JL   gmul32

gmul64:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VGF2P8AFFINEQB $0, Y10, Y0, Y2
	VGF2P8AFFINEQB $0, Y10, Y1, Y3
	VMOVDQU Y2, (DI)
	VMOVDQU Y3, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     gmul64

gmul32:
	TESTQ CX, CX
	JZ    gmuldone
	VMOVDQU (SI), Y0
	VGF2P8AFFINEQB $0, Y10, Y0, Y2
	VMOVDQU Y2, (DI)

gmuldone:
	VZEROUPPER
	RET
