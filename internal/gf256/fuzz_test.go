package gf256

import (
	"bytes"
	"testing"
)

// Differential fuzzing: the word-wise kernels and the packed-lane
// tables must match the scalar references on arbitrary inputs. The
// seed corpus covers the structural boundaries — empty input, word
// tails, the wordCutover and laneExpandCutover thresholds, and the
// special coefficients 0/1/generator/0xff.

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1}, byte(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, byte(2))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0}, byte(0xff))
	f.Add(bytes.Repeat([]byte{0xa5}, wordCutover-1), byte(0x1d))
	f.Add(bytes.Repeat([]byte{0x5a}, wordCutover), byte(0x1d))
	f.Add(bytes.Repeat([]byte{7}, 257), byte(0x80))
	f.Add(bytes.Repeat([]byte{0xee}, laneExpandCutover+1), byte(3))
}

func FuzzMulSlice(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		want := make([]byte, len(src))
		MulSliceRef(c, want, src)
		got := make([]byte, len(src))
		MulSlice(c, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice(c=%#x, n=%d) diverges from scalar reference", c, len(src))
		}
		// In-place application must match the out-of-place result.
		inPlace := append([]byte(nil), src...)
		MulSlice(c, inPlace, inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Fatalf("MulSlice(c=%#x, n=%d) in-place diverges", c, len(src))
		}
	})
}

func FuzzMulAddSlice(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i*37 + 11)
		}
		want := append([]byte(nil), dst...)
		MulAddSliceRef(c, want, src)
		got := append([]byte(nil), dst...)
		MulAddSlice(c, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulAddSlice(c=%#x, n=%d) diverges from scalar reference", c, len(src))
		}
	})
}

func FuzzXorSlice(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src []byte, fill byte) {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = fill ^ byte(i)
		}
		want := append([]byte(nil), dst...)
		XorSliceRef(want, src)
		got := append([]byte(nil), dst...)
		XorSlice(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("XorSlice(n=%d) diverges from scalar reference", len(src))
		}
	})
}

func FuzzLaneTable(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		// Derive a deterministic 8-coefficient column from the fuzzed
		// byte so the whole coefficient space gets explored.
		coeffs := make([]byte, MaxLanes)
		for j := range coeffs {
			coeffs[j] = c + byte(j*29)
		}
		tab := NewLaneTable(coeffs)
		acc := make([]uint64, len(src))
		tab.Mul(acc, src)
		tab.MulAdd(acc, src) // self-cancel: lanes must come back zero...
		tab.MulAdd(acc, src) // ...and a third add restores the products
		lane := make([]byte, len(src))
		for j, cj := range coeffs {
			want := make([]byte, len(src))
			MulSliceRef(cj, want, src)
			ExtractLane(lane, acc, j)
			if !bytes.Equal(lane, want) {
				t.Fatalf("lane %d (coeff %#x, n=%d) diverges from scalar reference", j, cj, len(src))
			}
			if !LaneEqual(want, acc, j) {
				t.Fatalf("LaneEqual rejects correct lane %d (n=%d)", j, len(src))
			}
		}
	})
}
