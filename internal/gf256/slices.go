package gf256

// The slice kernels below are the hot path of stripe encoding, decoding
// and delta updates: every parity byte is a sum of products
// α_{j,i}·b_i[m] across the k data blocks. Each kernel processes one
// (coefficient, block) pair over a whole block with a single 256-byte
// table row, which keeps the inner loop branch-free.

// MulSlice sets dst[m] = c * src[m] for every m. dst and src must have
// the same length; they may alias. A zero coefficient zeroes dst, and a
// coefficient of one copies src.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	// Unroll by 4: blocks are large (KiB-scale) and this measurably
	// reduces loop overhead without the complexity of assembly.
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = row[src[i]]
		dst[i+1] = row[src[i+1]]
		dst[i+2] = row[src[i+2]]
		dst[i+3] = row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] = row[src[i]]
	}
}

// MulAddSlice sets dst[m] ^= c * src[m] for every m, accumulating the
// product into dst. dst and src must have the same length.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(dst, src)
		return
	}
	row := &mulTable[c]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// XorSlice sets dst[m] ^= src[m] for every m. In GF(2^8) this is both
// vector addition and vector subtraction.
func XorSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSlice length mismatch")
	}
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// DotProduct returns Σ coeffs[t]·vecs[t][m] for every position m,
// writing the result into dst. Every vector must have len(dst) bytes.
// It is the stripe-level primitive: one parity block is the dot product
// of a generator-matrix row with the k data blocks.
func DotProduct(dst []byte, coeffs []byte, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic("gf256: DotProduct coefficient/vector count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for t, v := range vecs {
		MulAddSlice(coeffs[t], dst, v)
	}
}
