package gf256

// The slice kernels below are the hot path of stripe encoding, decoding
// and delta updates: every parity byte is a sum of products
// α_{j,i}·b_i[m] across the k data blocks. Each kernel selects per call
// by length between a scalar reference body (short slices, and the
// differential baseline the tests pin against — see slices_ref.go), a
// word-wise body processing 8 bytes per uint64 step (words.go), and —
// on amd64/arm64 without the purego tag — a SIMD body processing 32
// bytes per step (asm_amd64.go / asm_arm64.go).

// MulSlice sets dst[m] = c * src[m] for every m. dst and src must have
// the same length; they may alias. A zero coefficient zeroes dst, and a
// coefficient of one copies src.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	if accelMul(c, dst, src) {
		return
	}
	row := &mulTable[c]
	if len(src) < wordCutover {
		mulRef(row, dst, src)
		return
	}
	mulWords(row, dst, src)
}

// MulAddSlice sets dst[m] ^= c * src[m] for every m, accumulating the
// product into dst. dst and src must have the same length.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(dst, src)
		return
	}
	if accelMulAdd(c, dst, src) {
		return
	}
	row := &mulTable[c]
	if len(src) < wordCutover {
		mulAddRef(row, dst, src)
		return
	}
	mulAddWords(row, dst, src)
}

// XorSlice sets dst[m] ^= src[m] for every m. In GF(2^8) this is both
// vector addition and vector subtraction.
func XorSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSlice length mismatch")
	}
	if accelXor(dst, src) {
		return
	}
	if len(src) < wordCutover {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	xorWords(dst, src)
}

// DotProduct returns Σ coeffs[t]·vecs[t][m] for every position m,
// writing the result into dst. Every vector must have len(dst) bytes.
// It is the stripe-level primitive: one parity block is the dot product
// of a generator-matrix row with the k data blocks.
func DotProduct(dst []byte, coeffs []byte, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic("gf256: DotProduct coefficient/vector count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for t, v := range vecs {
		MulAddSlice(coeffs[t], dst, v)
	}
}
