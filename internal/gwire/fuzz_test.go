package gwire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder: it
// must never panic, and whatever it accepts must re-encode to the
// exact same payload (canonical encoding).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range requestFixtures() {
		f.Add(AppendRequest(nil, &req))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		again := AppendRequest(nil, &req)
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", payload, again)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
// An accepted StatusEvent response additionally exercises the event
// decoder, which must never panic on its Data.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range responseFixtures() {
		f.Add(AppendResponse(nil, &resp))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 32))
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		again := AppendResponse(nil, &resp)
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", payload, again)
		}
		if resp.Status == StatusEvent {
			if ev, err := DecodeEvent(resp.Data); err == nil {
				evAgain := AppendEvent(nil, &ev)
				if !bytes.Equal(evAgain, resp.Data) {
					t.Fatalf("accepted event is not canonical:\n in: %x\nout: %x", resp.Data, evAgain)
				}
			}
		}
	})
}
