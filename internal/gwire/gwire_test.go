package gwire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/service"
)

func requestFixtures() []Request {
	return []Request{
		{Seq: 1, Op: OpHello, Key: []byte("tenant-a")},
		{Seq: 2, Op: OpPut, Key: []byte("vm.img"), Data: bytes.Repeat([]byte{0xaa}, 4096)},
		{Seq: 1 << 60, Op: OpGet, Key: []byte("vm.img")},
		{Seq: 4, Op: OpReadAt, Key: []byte("vm.img"), Offset: 512, Length: 1024},
		{Seq: 5, Op: OpWriteAt, Key: []byte("vm.img"), Offset: 4096, Data: []byte{1, 2, 3}},
		{Seq: 6, Op: OpDelete, Key: []byte("vm.img")},
		{Seq: 7, Op: OpScrub, Key: []byte("vm.img")},
		{Seq: 8, Op: OpHealth},
		{Seq: 9, Op: OpWatch},
	}
}

func responseFixtures() []Response {
	return []Response{
		{Seq: 1, Status: StatusOK},
		{Seq: 2, Status: StatusOK, Flag: true},
		{Seq: 3, Status: StatusOK, Data: bytes.Repeat([]byte{7}, 4096)},
		{Seq: 4, Status: StatusUnknownKey, Detail: `key "gone"`},
		{Seq: 5, Status: StatusOverloaded, Detail: "worker queue full"},
		{Seq: 6, Status: StatusQuotaExceeded, Detail: "tenant a: 10 of 10 objects"},
		{Seq: 7, Status: StatusDraining, Detail: "gateway shutting down"},
		{Seq: 9, Status: StatusEvent, Data: AppendEvent(nil, &Event{Kind: EventPut, Key: []byte("vm.img")})},
		{Seq: 10, Status: StatusCorrupt, Detail: "stripe 3 block 1: no honest basis of 8 shards"},
		{Seq: 11, Status: StatusEpochStale, Detail: "placement epoch 2 retired (fleet at 3)"},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range requestFixtures() {
		payload := AppendRequest(nil, &req)
		if got, want := len(payload), EncodedRequestSize(&req); got != want {
			t.Fatalf("%s: encoded %d bytes, EncodedRequestSize says %d", req.Op, got, want)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		// Normalise the nil-vs-empty distinction the codec does not
		// preserve.
		if len(got.Data) == 0 {
			got.Data = nil
		}
		if len(got.Key) == 0 {
			got.Key = nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("%s round trip:\n in: %+v\nout: %+v", req.Op, req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range responseFixtures() {
		payload := AppendResponse(nil, &resp)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if len(got.Data) == 0 {
			got.Data = nil
		}
		if len(resp.Data) == 0 {
			resp.Data = nil
		}
		if !reflect.DeepEqual(resp, got) {
			t.Fatalf("fixture %d round trip:\n in: %+v\nout: %+v", i, resp, got)
		}
	}
}

// TestBeginFinishResponse pins the zero-copy path: append object
// bytes directly after the header, patch the length, and the result
// decodes identically to the one-shot encoder.
func TestBeginFinishResponse(t *testing.T) {
	data := bytes.Repeat([]byte{0x5a}, 1000)
	buf, dlenOff := BeginResponse(nil, 42, StatusOK, false, "")
	buf = append(buf, data...)
	FinishResponse(buf, dlenOff)
	want := AppendResponse(nil, &Response{Seq: 42, Status: StatusOK, Data: data})
	if !bytes.Equal(buf, want) {
		t.Fatal("BeginResponse/FinishResponse diverges from AppendResponse")
	}
	got, err := DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || !bytes.Equal(got.Data, data) {
		t.Fatalf("decoded %+v", got)
	}
	// With a frame-header prefix in the same buffer (the serve loop's
	// layout), the offset bookkeeping must still hold.
	buf2, off2 := BeginResponse(make([]byte, 4), 7, StatusOK, true, "d")
	buf2 = append(buf2, 1, 2, 3)
	FinishResponse(buf2, off2)
	got2, err := DecodeResponse(buf2[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got2.Seq != 7 || !got2.Flag || got2.Detail != "d" || !bytes.Equal(got2.Data, []byte{1, 2, 3}) {
		t.Fatalf("decoded %+v", got2)
	}
}

func TestTruncatedRequestsRejected(t *testing.T) {
	for _, req := range requestFixtures() {
		payload := AppendRequest(nil, &req)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeRequest(payload[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes accepted", req.Op, cut, len(payload))
			}
		}
	}
}

func TestTruncatedResponsesRejected(t *testing.T) {
	for i, resp := range responseFixtures() {
		payload := AppendResponse(nil, &resp)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeResponse(payload[:cut]); err == nil {
				t.Fatalf("fixture %d: truncation to %d/%d bytes accepted", i, cut, len(payload))
			}
		}
	}
}

func TestUnknownOpStatusAndEventRejected(t *testing.T) {
	req := Request{Seq: 1, Op: OpHealth}
	payload := AppendRequest(nil, &req)
	payload[8] = byte(opMax)
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	payload[8] = 0
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	resp := Response{Seq: 1, Status: StatusOK}
	rp := AppendResponse(nil, &resp)
	rp[8] = byte(statusMax)
	if _, err := DecodeResponse(rp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	ev := AppendEvent(nil, &Event{Kind: EventDrain})
	ev[0] = byte(eventMax)
	if _, err := DecodeEvent(ev); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	for _, ev := range []Event{
		{Kind: EventPut, Key: []byte("a/b/c")},
		{Kind: EventWrite, Key: []byte("x")},
		{Kind: EventDelete, Key: bytes.Repeat([]byte{'k'}, 300)},
		{Kind: EventDrain},
	} {
		p := AppendEvent(nil, &ev)
		got, err := DecodeEvent(p)
		if err != nil {
			t.Fatalf("%s: %v", ev.Kind, err)
		}
		if got.Kind != ev.Kind || !bytes.Equal(got.Key, ev.Key) {
			t.Fatalf("%s round trip: %+v", ev.Kind, got)
		}
		for cut := 0; cut < len(p); cut++ {
			if _, err := DecodeEvent(p[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d accepted", ev.Kind, cut, len(p))
			}
		}
	}
}

// TestStatusErrTaxonomy pins the status ↔ sentinel mapping in both
// directions: an error classified for the wire decodes back to
// something errors.Is-equal.
func TestStatusErrTaxonomy(t *testing.T) {
	cases := []struct {
		status Status
		want   error
	}{
		{StatusUnknownKey, service.ErrUnknownKey},
		{StatusExists, service.ErrExists},
		{StatusBadRange, service.ErrBadRange},
		{StatusBadRequest, client.ErrBadRequest},
		{StatusQuotaExceeded, client.ErrQuotaExceeded},
		{StatusOverloaded, client.ErrOverloaded},
		{StatusWriteFailed, core.ErrWriteFailed},
		{StatusNotReadable, core.ErrNotReadable},
		{StatusCorrupt, client.ErrCorrupt},
		{StatusEpochStale, client.ErrEpochStale},
		{StatusDraining, ErrDraining},
	}
	for _, c := range cases {
		if err := c.status.Err("detail"); !errors.Is(err, c.want) {
			t.Fatalf("status %d → %v, want %v", c.status, err, c.want)
		}
		if got := StatusOf(c.want); got != c.status {
			t.Fatalf("StatusOf(%v) = %d, want %d", c.want, got, c.status)
		}
	}
	if err := StatusOK.Err(""); err != nil {
		t.Fatalf("StatusOK err = %v", err)
	}
	if StatusOf(nil) != StatusOK {
		t.Fatal("StatusOf(nil) != StatusOK")
	}
	if err := StatusInternal.Err("store on fire"); err == nil || !strings.Contains(err.Error(), "store on fire") {
		t.Fatalf("internal err = %v", err)
	}
	if StatusOf(errors.New("weird")) != StatusInternal {
		t.Fatal("unclassified error must map to StatusInternal")
	}
	if err := StatusEvent.Err(""); !errors.Is(err, ErrMalformed) {
		t.Fatalf("StatusEvent.Err = %v, want malformed-stream error", err)
	}
	// A verified read that found no honest basis wraps BOTH sentinels;
	// the corruption verdict is the actionable one and must win.
	doubleWrapped := fmt.Errorf("%w: no survivor set decodes: %w", core.ErrNotReadable, client.ErrCorrupt)
	if got := StatusOf(doubleWrapped); got != StatusCorrupt {
		t.Fatalf("StatusOf(not-readable ∧ corrupt) = %d, want StatusCorrupt", got)
	}
}

func TestMutatingClassification(t *testing.T) {
	mutating := map[Op]bool{OpPut: true, OpWriteAt: true, OpDelete: true, OpPutFinish: true}
	for op := Op(1); op < opMax; op++ {
		if got, want := op.Mutating(), mutating[op]; got != want {
			t.Fatalf("%s.Mutating() = %v, want %v", op, got, want)
		}
	}
}

// TestHugeDeclaredKeyRejected feeds a header declaring a key longer
// than the payload: the decoder must fail on the bounds check, not
// read out of range.
func TestHugeDeclaredKeyRejected(t *testing.T) {
	req := Request{Seq: 1, Op: OpGet, Key: []byte("k")}
	payload := AppendRequest(nil, &req)
	payload[9] = 0xff // klen high byte: declare a 65281-byte key
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}
