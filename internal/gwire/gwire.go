// Package gwire is the binary codec of the gateway protocol: the
// framing and message formats a client connection uses to talk to a
// gateway (cmd/trapgate) in front of a storage fleet. It is the
// object-level sibling of the node codec (internal/wire): where wire
// carries chunk operations between the quorum engine and one storage
// node, gwire carries whole-object operations — Put, Get, ranged
// read/write, Delete, Scrub, Watch — between many clients and the
// gateway tier.
//
// # Framing
//
// Frames are the same length-prefixed shape as the node protocol
// (uint32 big-endian payload length, then the payload) and reuse its
// reader/writer: the size limit is enforced before any allocation, so
// a hostile peer cannot trigger an allocation blow-up.
//
// # Pipelining
//
// Every request carries a client-chosen sequence number and every
// response echoes it, so a client may keep many requests in flight on
// one connection and match answers out of order. Watch subscriptions
// use the same channel: an event frame is a response with StatusEvent
// whose Seq is the originating Watch request's, letting one reader
// goroutine demultiplex answers and notifications alike.
//
// # Messages
//
// A request payload is:
//
//	seq(8) op(1) klen(2) key(klen) offset(8) length(8) dlen(4) data(dlen)
//
// Fields an operation does not use are zero; every request uses the
// same layout so the decoder is a single bounds-checked pass. A
// response payload is:
//
//	seq(8) status(1) flag(1) detail(len16-prefixed string) dlen(4) data(dlen)
//
// Status carries the public error taxonomy across the wire — Err and
// StatusOf convert in both directions, so a gateway-side quota
// rejection still satisfies errors.Is(err, trapquorum.ErrQuotaExceeded)
// at the dialing client.
//
// Decoded requests and responses alias the frame buffer for their Key
// and Data fields; callers that retain the bytes past the next read
// must copy.
package gwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/service"
	"trapquorum/internal/wire"
)

// Op identifies one gateway operation on the wire.
type Op uint8

// The gateway protocol operations. OpHello must be the first request
// on a connection: it binds the connection to a tenant namespace.
// OpHealth is answered without touching the store.
const (
	OpHello Op = iota + 1
	OpPut
	OpGet
	OpReadAt
	OpWriteAt
	OpDelete
	OpScrub
	OpHealth
	OpWatch
	// The streaming upload ops, appended after OpWatch so every earlier
	// op keeps its wire encoding. An upload is a bracketed sequence on
	// one connection — OpPutStart (key + declared size in Length), then
	// OpPutPart frames carrying consecutive byte ranges (running byte
	// offset in Offset, bytes in Data), closed by OpPutFinish (publish)
	// or OpPutAbort (unwind). One upload per connection at a time; parts
	// must arrive in offset order. OpStat answers an object's size (an
	// 8-byte big-endian integer in Data) — the prelude of a streaming
	// download, which is chunked OpReadAt.
	OpStat
	OpPutStart
	OpPutPart
	OpPutFinish
	OpPutAbort
	opMax
)

// String names the operation for diagnostics.
func (op Op) String() string {
	switch op {
	case OpHello:
		return "hello"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpReadAt:
		return "read-at"
	case OpWriteAt:
		return "write-at"
	case OpDelete:
		return "delete"
	case OpScrub:
		return "scrub"
	case OpHealth:
		return "health"
	case OpWatch:
		return "watch"
	case OpStat:
		return "stat"
	case OpPutStart:
		return "put-start"
	case OpPutPart:
		return "put-part"
	case OpPutFinish:
		return "put-finish"
	case OpPutAbort:
		return "put-abort"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Mutating reports whether the operation changes tenant state — the
// ops a Watch subscription reports and a draining gateway refuses
// first. Of the upload bracket only OpPutFinish mutates: until the
// finish, an upload is invisible staging that an abort (or a dropped
// connection) unwinds without a trace.
func (op Op) Mutating() bool {
	switch op {
	case OpPut, OpWriteAt, OpDelete, OpPutFinish:
		return true
	default:
		return false
	}
}

// Status is the result class of a response, carrying the public error
// taxonomy across the wire.
type Status uint8

// Response statuses. StatusEvent marks a Watch notification rather
// than a request's answer; StatusInternal covers gateway-side
// failures outside the taxonomy.
const (
	StatusOK Status = iota + 1
	StatusUnknownKey
	StatusExists
	StatusBadRange
	StatusBadRequest
	StatusQuotaExceeded
	StatusOverloaded
	StatusWriteFailed
	StatusNotReadable
	StatusDraining
	StatusInternal
	StatusEvent
	// StatusCorrupt reports shard content that failed cross-checksum
	// verification beyond the code's tolerance (client.ErrCorrupt).
	// Appended after StatusEvent so every earlier value keeps its wire
	// encoding.
	StatusCorrupt
	// StatusEpochStale reports an operation tagged with a placement
	// epoch the fleet has reconfigured past (client.ErrEpochStale).
	// Appended after StatusCorrupt so every earlier value keeps its
	// wire encoding.
	StatusEpochStale
	statusMax
)

// ErrDraining reports a request refused because the gateway is
// shutting down: it has stopped accepting connections and is
// finishing in-flight work. Reconnect to another gateway. Test with
// errors.Is; the dial-in client re-exports this sentinel.
var ErrDraining = errors.New("gwire: gateway is draining")

// Framing and decoding errors, shared with the node codec.
var (
	// ErrFrameTooLarge reports a frame whose declared payload exceeds
	// the reader's limit; it is returned before any allocation.
	ErrFrameTooLarge = wire.ErrFrameTooLarge
	// ErrMalformed reports a payload that does not parse.
	ErrMalformed = errors.New("gwire: malformed message")
)

// DefaultMaxFrame bounds a frame's payload unless the caller chooses
// otherwise — large enough for a 16 MiB object plus headers.
const DefaultMaxFrame = 16<<20 + 4096

// MaxKeyLen bounds an object key (and a tenant name, which travels in
// the key field of OpHello).
const MaxKeyLen = 0xffff

// Request is one decoded gateway operation.
type Request struct {
	// Seq is the client-chosen sequence number the response echoes.
	Seq uint64
	Op  Op
	// Key is the object key (the tenant name for OpHello). Decoding
	// aliases the frame buffer; copy before the next read if retained.
	Key []byte
	// Offset, Length parameterise the ranged operations (OpReadAt,
	// OpWriteAt).
	Offset int64
	Length int64
	// Data is the object payload of OpPut / OpWriteAt. Decoding
	// aliases the frame buffer; copy before the next read if retained.
	Data []byte
}

// Response is one decoded gateway answer (or, with StatusEvent, a
// Watch notification).
type Response struct {
	// Seq echoes the request's sequence number (the Watch request's,
	// for events).
	Seq    uint64
	Status Status
	// Detail is the gateway's human-readable error detail (empty on
	// OK).
	Detail string
	// Flag answers boolean queries (OpHealth: true when serving, false
	// when draining).
	Flag bool
	// Data carries object bytes (OpGet, OpReadAt), free-form report
	// text (OpScrub, OpHealth) or an encoded Event (StatusEvent).
	// Decoding aliases the frame buffer; copy before the next read if
	// retained.
	Data []byte
}

const requestFixedLen = 8 + 1 + 2 // through klen
const requestTailLen = 8 + 8 + 4  // offset, length, dlen

// EncodedRequestSize returns the exact payload length AppendRequest
// produces for req, letting a sender validate against its frame limit
// before touching the wire.
func EncodedRequestSize(req *Request) int {
	return requestFixedLen + len(req.Key) + requestTailLen + len(req.Data)
}

// AppendRequest encodes req after dst and returns the extended slice.
// Keys longer than MaxKeyLen are truncated; validate before encoding.
func AppendRequest(dst []byte, req *Request) []byte {
	key := req.Key
	if len(key) > MaxKeyLen {
		key = key[:MaxKeyLen]
	}
	dst = binary.BigEndian.AppendUint64(dst, req.Seq)
	dst = append(dst, byte(req.Op))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(req.Offset))
	dst = binary.BigEndian.AppendUint64(dst, uint64(req.Length))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Data)))
	return append(dst, req.Data...)
}

// DecodeRequest parses a request payload. The returned request's Key
// and Data alias p.
func DecodeRequest(p []byte) (Request, error) {
	var req Request
	if len(p) < requestFixedLen {
		return req, fmt.Errorf("%w: request header truncated (%d bytes)", ErrMalformed, len(p))
	}
	req.Seq = binary.BigEndian.Uint64(p[0:8])
	op := Op(p[8])
	if op == 0 || op >= opMax {
		return req, fmt.Errorf("%w: unknown op %d", ErrMalformed, p[8])
	}
	req.Op = op
	klen := binary.BigEndian.Uint16(p[9:11])
	p = p[requestFixedLen:]
	if int(klen) > len(p) {
		return req, fmt.Errorf("%w: key truncated (%d declared, %d bytes left)", ErrMalformed, klen, len(p))
	}
	if klen > 0 {
		req.Key = p[:klen]
	}
	p = p[klen:]
	if len(p) < requestTailLen {
		return req, fmt.Errorf("%w: request tail truncated", ErrMalformed)
	}
	req.Offset = int64(binary.BigEndian.Uint64(p[0:8]))
	req.Length = int64(binary.BigEndian.Uint64(p[8:16]))
	dlen := binary.BigEndian.Uint32(p[16:20])
	p = p[requestTailLen:]
	if uint64(dlen) != uint64(len(p)) {
		return req, fmt.Errorf("%w: data length %d, %d bytes left", ErrMalformed, dlen, len(p))
	}
	if dlen > 0 {
		req.Data = p
	}
	return req, nil
}

// AppendResponse encodes resp after dst and returns the extended
// slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst, dlenOff := BeginResponse(dst, resp.Seq, resp.Status, resp.Flag, resp.Detail)
	dst = append(dst, resp.Data...)
	FinishResponse(dst, dlenOff)
	return dst
}

// BeginResponse appends the response header — with a zero data
// length — after dst and returns the extended slice plus the offset
// of the data-length field. The caller appends the data bytes
// directly (for example via service.GetAppend into the same buffer)
// and then patches the length in with FinishResponse. This is the
// zero-copy path of the gateway's serve loop: object bytes are
// appended straight into the pooled frame buffer, never staged in an
// intermediate slice.
func BeginResponse(dst []byte, seq uint64, status Status, flag bool, detail string) ([]byte, int) {
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = append(dst, byte(status))
	var f byte
	if flag {
		f = 1
	}
	dst = append(dst, f)
	if len(detail) > 0xffff {
		detail = detail[:0xffff]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(detail)))
	dst = append(dst, detail...)
	dlenOff := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0)
	return dst, dlenOff
}

// FinishResponse patches the data length of a header built by
// BeginResponse, after the data bytes have been appended: everything
// past the length field is the data.
func FinishResponse(p []byte, dlenOff int) {
	binary.BigEndian.PutUint32(p[dlenOff:], uint32(len(p)-dlenOff-4))
}

// DecodeResponse parses a response payload. The returned response's
// Data aliases p.
func DecodeResponse(p []byte) (Response, error) {
	var resp Response
	if len(p) < 12 {
		return resp, fmt.Errorf("%w: response header truncated", ErrMalformed)
	}
	resp.Seq = binary.BigEndian.Uint64(p[0:8])
	status := Status(p[8])
	if status == 0 || status >= statusMax {
		return resp, fmt.Errorf("%w: unknown status %d", ErrMalformed, p[8])
	}
	resp.Status = status
	switch p[9] {
	case 0:
	case 1:
		resp.Flag = true
	default:
		return resp, fmt.Errorf("%w: flag byte %d", ErrMalformed, p[9])
	}
	detailLen := binary.BigEndian.Uint16(p[10:12])
	p = p[12:]
	if int(detailLen) > len(p) {
		return resp, fmt.Errorf("%w: detail truncated", ErrMalformed)
	}
	resp.Detail = string(p[:detailLen])
	p = p[detailLen:]
	if len(p) < 4 {
		return resp, fmt.Errorf("%w: data length truncated", ErrMalformed)
	}
	dlen := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(dlen) != uint64(len(p)) {
		return resp, fmt.Errorf("%w: data length %d, %d bytes left", ErrMalformed, dlen, len(p))
	}
	if dlen > 0 {
		resp.Data = p
	}
	return resp, nil
}

// EventKind classifies a Watch notification.
type EventKind uint8

// Watch event kinds. EventDrain is the gateway's goodbye: the
// connection's gateway is shutting down and no further events will
// arrive on this subscription.
const (
	EventPut EventKind = iota + 1
	EventWrite
	EventDelete
	EventDrain
	eventMax
)

// String names the event kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EventPut:
		return "put"
	case EventWrite:
		return "write"
	case EventDelete:
		return "delete"
	case EventDrain:
		return "drain"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one object-change notification delivered to a Watch
// subscription: which key changed and how. EventDrain carries no key.
type Event struct {
	Kind EventKind
	// Key is the changed object's key. Decoding aliases the buffer;
	// copy before the next read if retained.
	Key []byte
}

// AppendEvent encodes ev after dst and returns the extended slice —
// the payload travels in the Data field of a StatusEvent response.
func AppendEvent(dst []byte, ev *Event) []byte {
	key := ev.Key
	if len(key) > MaxKeyLen {
		key = key[:MaxKeyLen]
	}
	dst = append(dst, byte(ev.Kind))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(key)))
	return append(dst, key...)
}

// DecodeEvent parses an event payload. The returned event's Key
// aliases p.
func DecodeEvent(p []byte) (Event, error) {
	var ev Event
	if len(p) < 3 {
		return ev, fmt.Errorf("%w: event truncated (%d bytes)", ErrMalformed, len(p))
	}
	kind := EventKind(p[0])
	if kind == 0 || kind >= eventMax {
		return ev, fmt.Errorf("%w: unknown event kind %d", ErrMalformed, p[0])
	}
	ev.Kind = kind
	klen := binary.BigEndian.Uint16(p[1:3])
	p = p[3:]
	if int(klen) != len(p) {
		return ev, fmt.Errorf("%w: event key length %d, %d bytes left", ErrMalformed, klen, len(p))
	}
	if klen > 0 {
		ev.Key = p
	}
	return ev, nil
}

// WriteFrame writes one length-prefixed frame (the node codec's
// framing, reused).
func WriteFrame(w io.Writer, payload []byte) error {
	return wire.WriteFrame(w, payload)
}

// ReadFrame reads one frame, reusing buf when it is large enough. A
// declared length above max fails with ErrFrameTooLarge before any
// allocation. io.EOF is returned unwrapped when the stream ends
// cleanly between frames.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	return wire.ReadFrame(r, buf, max)
}

// Err converts a response status (plus its detail) back into the
// library's public error taxonomy. StatusOK yields nil; StatusEvent
// never answers a request and decodes as a malformed-stream error.
func (s Status) Err(detail string) error {
	var base error
	switch s {
	case StatusOK:
		return nil
	case StatusUnknownKey:
		base = service.ErrUnknownKey
	case StatusExists:
		base = service.ErrExists
	case StatusBadRange:
		base = service.ErrBadRange
	case StatusBadRequest:
		base = client.ErrBadRequest
	case StatusQuotaExceeded:
		base = client.ErrQuotaExceeded
	case StatusOverloaded:
		base = client.ErrOverloaded
	case StatusWriteFailed:
		base = core.ErrWriteFailed
	case StatusNotReadable:
		base = core.ErrNotReadable
	case StatusDraining:
		base = ErrDraining
	case StatusCorrupt:
		base = client.ErrCorrupt
	case StatusEpochStale:
		base = client.ErrEpochStale
	case StatusEvent:
		return fmt.Errorf("%w: event frame where an answer was expected", ErrMalformed)
	default:
		if detail == "" {
			detail = "internal gateway error"
		}
		return fmt.Errorf("gwire: remote gateway: %s", detail)
	}
	// The detail a gateway sends is usually the full server-side error
	// string, which already starts with the sentinel's own message —
	// strip that prefix so the reconstructed error reads it once.
	detail = strings.TrimPrefix(detail, base.Error()+": ")
	if detail == "" || detail == base.Error() {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// StatusOf classifies a gateway-side error for the wire. A nil error
// is StatusOK.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, service.ErrUnknownKey):
		return StatusUnknownKey
	case errors.Is(err, service.ErrExists):
		return StatusExists
	case errors.Is(err, service.ErrBadRange):
		return StatusBadRange
	case errors.Is(err, client.ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, client.ErrQuotaExceeded):
		return StatusQuotaExceeded
	case errors.Is(err, client.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, core.ErrWriteFailed):
		return StatusWriteFailed
	case errors.Is(err, client.ErrCorrupt):
		// Before ErrNotReadable: a read that failed because corruption
		// exceeded the code's tolerance wraps both sentinels, and the
		// corruption verdict is the actionable one.
		return StatusCorrupt
	case errors.Is(err, core.ErrNotReadable):
		return StatusNotReadable
	case errors.Is(err, client.ErrEpochStale):
		return StatusEpochStale
	case errors.Is(err, ErrDraining):
		return StatusDraining
	default:
		return StatusInternal
	}
}
