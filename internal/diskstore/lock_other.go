//go:build !unix

package diskstore

import (
	"fmt"
	"os"
)

// acquireDirLock on platforms without flock only keeps the lock file
// open: single-process exclusion is not enforced there.
func acquireDirLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return f, nil
}
