//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"syscall"
)

// acquireDirLock takes an exclusive flock on the node directory's
// lock file, failing fast with ErrLocked when another live process
// holds it (two daemons on one -dir would corrupt each other's WAL).
// The kernel releases the lock on process death, so a SIGKILLed
// daemon never wedges its directory.
func acquireDirLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	return f, nil
}
