// Package diskstore is the durable ChunkStore: one directory per
// storage node, one file per chunk with the version vector persisted
// alongside the data, and a write-ahead log that makes every mutation
// atomic across crashes.
//
// # Durability protocol
//
// Every mutation follows the same two-phase discipline:
//
//  1. Intent: the full mutation (operation, chunk id, version vector,
//     data) is appended to the write-ahead log and fsynced. From this
//     moment the mutation survives a crash.
//  2. Apply: the chunk file is rewritten via write-to-temp + fsync +
//     atomic rename (+ directory fsync), or removed for deletes. Then
//     the WAL is reset.
//
// Open replays the WAL tail: a complete record whose apply may have
// been lost is re-applied (idempotent), while a torn record — the
// crash hit mid-append, so the mutation was never acknowledged — is
// discarded. Chunk files themselves are self-describing (magic,
// chunk id, version vector, data, CRC), so recovery is a directory
// scan; file names are only a lookup convenience.
//
// The store keeps an in-memory mirror of the durable state, making
// reads memory-speed; the disk is only touched on mutations and at
// startup.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"trapquorum/client"
	"trapquorum/internal/chunkmeta"
	"trapquorum/internal/memstore"
)

const (
	// chunkMagic heads legacy (pre-metadata) chunk files and WAL put
	// records; still readable, loaded with empty integrity metadata.
	chunkMagic = 0x54514331 // "TQC1"
	// chunkMagic2 heads current chunk files: same layout plus the
	// chunkmeta.Meta block between the id and the version vector.
	chunkMagic2 = 0x54514332 // "TQC2"
	// maxRecord bounds a WAL record or chunk file payload; anything
	// larger is treated as corruption rather than allocated.
	maxRecord = 1 << 28

	opPut    = 1
	opDelete = 2
	opWipe   = 3
	// opPut2 is a put record carrying the metadata block (TQC2 body);
	// opPut remains decodable so a WAL written by an older binary
	// replays cleanly.
	opPut2 = 4

	// metaHasSelf flags an encoded Meta whose self-sum is present.
	metaHasSelf = 1 << 0
)

// ErrCorrupt reports an unreadable chunk file — torn WAL tails are
// silently discarded (the mutation was never acknowledged), but a
// chunk file that fails its checksum is real media corruption and is
// surfaced rather than dropped. It wraps client.ErrCorrupt so the
// condition keeps its identity through the node engine and transports.
var ErrCorrupt = fmt.Errorf("diskstore: corrupt chunk file: %w", client.ErrCorrupt)

// ErrLocked reports a node directory already held by another live
// store (for example a second daemon started on the same -dir).
var ErrLocked = errors.New("diskstore: directory locked by another process")

// Store implements nodeengine.ChunkStore over a per-node directory.
// It is not safe for concurrent use on its own; the node engine
// serialises all access.
type Store struct {
	dir       string
	chunksDir string
	wal       *os.File
	lock      *os.File        // flock'd while open; auto-released on process death
	mem       *memstore.Store // in-memory mirror of the durable state
	// quar holds the ids of quarantined chunks: files whose on-disk
	// image failed its CRC at Open or during a Scan. A quarantined
	// chunk still *exists* (repair decides what to do with it), but
	// every Get fails with ErrCorrupt until a Put or Delete replaces
	// it. Values describe what was found, for error messages.
	quar     map[client.ChunkID]string
	sync     bool
	scratch  []byte // WAL record staging
	fscratch []byte // chunk-file image staging
	// failed poisons the store after a mutation error of unknown
	// durability: the disk and the in-memory mirror may disagree, so
	// every further operation refuses until a reopen reconverges them
	// through recovery. In group-commit mode it is guarded by gcMu
	// (the committer can poison concurrently); otherwise the engine's
	// serialisation suffices.
	failed error
	// crashAfterWAL, when set (tests only), aborts the next mutation
	// with this error after the WAL intent is durable but before it is
	// applied — the "power cut between append and apply" window.
	crashAfterWAL error

	// Group commit (see groupcommit.go). All gc* fields are inert
	// unless gcOn; gcMu guards the batch state, pending/durable epochs
	// and failed. gcDirty and gcWalBytes are committer-owned.
	gcOn        bool
	gcLinger    time.Duration
	gcMaxBatch  int
	gcMu        sync.Mutex
	gcSpace     sync.Cond // batch has room (stager back-pressure)
	gcRead      sync.Cond // durable epoch advanced (read gating)
	gcWork      chan struct{}
	gcCur       *gcBatch
	gcEpoch     uint64 // epoch of gcCur
	gcDurable   uint64 // highest epoch whose WAL append is durable
	gcWipeEpoch uint64 // epoch of the most recent staged wipe
	gcPending   map[client.ChunkID]uint64
	gcClosed    bool
	gcDone      chan struct{}
	// gcDirty is the committer's write-back cache: the latest WAL
	// record per chunk mutated since the last checkpoint (len 0 =
	// delete pending). The checkpoint turns it into chunk files — one
	// write per id however many times it was overwritten.
	gcDirty    map[client.ChunkID][]byte
	gcWalBytes int64
}

// Option customises a Store.
type Option func(*Store)

// WithSyncWrites controls whether every mutation fsyncs the WAL and
// chunk files (the default). Disabling trades crash durability for
// speed; the write ordering and atomic renames are kept, so a clean
// process exit still leaves a consistent directory.
func WithSyncWrites(sync bool) Option {
	return func(s *Store) { s.sync = sync }
}

// Open loads (or initialises) the per-node directory: it scans the
// chunk files, replays any complete write-ahead intent whose apply was
// lost, and discards a torn WAL tail.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:       dir,
		chunksDir: filepath.Join(dir, "chunks"),
		mem:       memstore.New(),
		quar:      make(map[client.ChunkID]string),
		sync:      true,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(s.chunksDir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	lock, err := acquireDirLock(filepath.Join(dir, "lock"))
	if err != nil {
		return nil, err
	}
	s.lock = lock
	wal, err := os.OpenFile(filepath.Join(dir, "wal"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s.wal = wal
	// Make the directory skeleton itself durable: without this, a
	// power cut after the first acknowledged mutation on a fresh
	// directory could drop the just-created chunks/ and wal entries
	// along with everything in them.
	if err := s.syncDir(dir); err != nil {
		wal.Close()
		lock.Close()
		return nil, err
	}
	if err := s.recover(); err != nil {
		wal.Close()
		lock.Close()
		return nil, err
	}
	if s.gcOn {
		s.startGroupCommit()
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Get implements nodeengine.ChunkStore from the in-memory mirror. A
// quarantined chunk (its file failed the CRC at Open or during a Scan)
// fails with ErrCorrupt until a mutation replaces it.
func (s *Store) Get(id client.ChunkID) (data []byte, versions []uint64, meta chunkmeta.Meta, ok bool, err error) {
	if s.gcOn {
		// Durability gate: a staged-but-uncommitted mutation of this id
		// must reach the WAL before a reader may observe it.
		if err := s.gateRead(id); err != nil {
			return nil, nil, chunkmeta.Meta{}, false, err
		}
	} else if s.failed != nil {
		return nil, nil, chunkmeta.Meta{}, false, s.failed
	}
	if why, bad := s.quar[id]; bad {
		return nil, nil, chunkmeta.Meta{}, false, fmt.Errorf("%w: chunk %s quarantined: %s", ErrCorrupt, id, why)
	}
	return s.mem.Get(id)
}

// poison marks the store unusable after a mutation error of unknown
// durability (a torn WAL append, an apply that stopped half way): the
// disk and the mirror may now disagree, and only a reopen's recovery
// scan can reconverge them. It returns err for the caller to surface.
func (s *Store) poison(err error) error {
	if s.gcOn {
		s.gcMu.Lock()
		defer s.gcMu.Unlock()
		return s.poisonLocked(err)
	}
	if s.failed == nil {
		s.failed = fmt.Errorf("diskstore: unusable after failed mutation (reopen to recover): %w", err)
	}
	return err
}

// Put implements nodeengine.ChunkStore: WAL intent first, then the
// chunk file via atomic rename, then the in-memory mirror. A put also
// clears any quarantine on the id — the new image replaces the rot.
// In group-commit mode it stages and waits, so concurrent callers of
// the engine share one WAL fsync.
func (s *Store) Put(id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) error {
	if s.gcOn {
		wait, err := s.PutBatched(id, data, versions, meta)
		if err != nil {
			return err
		}
		return wait()
	}
	if s.failed != nil {
		return s.failed
	}
	payload := appendPutRecord(s.scratch[:0], id, data, versions, meta)
	s.scratch = payload[:0]
	if err := s.walAppend(payload); err != nil {
		return s.poison(err)
	}
	if s.crashAfterWAL != nil {
		return s.poison(s.crashAfterWAL)
	}
	if err := s.applyPut(id, data, versions, meta); err != nil {
		return s.poison(err)
	}
	return s.walResetOrPoison()
}

// Delete implements nodeengine.ChunkStore.
func (s *Store) Delete(id client.ChunkID) error {
	if s.gcOn {
		wait, err := s.DeleteBatched(id)
		if err != nil {
			return err
		}
		return wait()
	}
	if s.failed != nil {
		return s.failed
	}
	payload := appendDeleteRecord(s.scratch[:0], id)
	s.scratch = payload[:0]
	if err := s.walAppend(payload); err != nil {
		return s.poison(err)
	}
	if s.crashAfterWAL != nil {
		return s.poison(s.crashAfterWAL)
	}
	if err := s.applyDelete(id); err != nil {
		return s.poison(err)
	}
	return s.walResetOrPoison()
}

// Wipe implements nodeengine.ChunkStore: media replacement, every
// chunk file removed.
func (s *Store) Wipe() error {
	if s.gcOn {
		wait, err := s.WipeBatched()
		if err != nil {
			return err
		}
		return wait()
	}
	if s.failed != nil {
		return s.failed
	}
	if err := s.walAppend([]byte{opWipe}); err != nil {
		return s.poison(err)
	}
	if s.crashAfterWAL != nil {
		return s.poison(s.crashAfterWAL)
	}
	if err := s.applyWipe(); err != nil {
		return s.poison(err)
	}
	return s.walResetOrPoison()
}

func (s *Store) walResetOrPoison() error {
	if err := s.walReset(); err != nil {
		return s.poison(err)
	}
	return nil
}

// Len implements nodeengine.ChunkStore. Quarantined chunks still
// count: they exist, they are just unreadable.
func (s *Store) Len() (int, error) {
	if err := s.failedErr(); err != nil {
		return 0, err
	}
	n, err := s.mem.Len()
	return n + len(s.quar), err
}

// Scan implements nodeengine.Scanner: it re-reads every chunk file
// from disk — not the in-memory mirror — and quarantines the ones that
// fail their CRC, so cold bit-rot surfaces through the probe/health
// path without waiting for a client read. It returns the ids of all
// currently quarantined chunks (newly found plus still unhealed).
func (s *Store) Scan() ([]client.ChunkID, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.chunksDir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".chunk") {
			continue
		}
		id, ok := parseChunkFileName(name)
		if !ok {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.chunksDir, name))
		if err != nil {
			return nil, fmt.Errorf("diskstore: %w", err)
		}
		if _, _, _, _, derr := decodeChunkFile(raw); derr != nil {
			s.quar[id] = derr.Error()
			s.mem.Delete(id)
		}
	}
	if len(s.quar) == 0 {
		return nil, nil
	}
	ids := make([]client.ChunkID, 0, len(s.quar))
	for id := range s.quar {
		ids = append(ids, id)
	}
	return ids, nil
}

// Close implements nodeengine.ChunkStore: it closes the WAL handle
// and releases the directory lock. All acknowledged mutations are
// already durable; in group-commit mode the committer is drained and
// a final checkpoint truncates the WAL first.
func (s *Store) Close() error {
	if s.gcOn {
		s.stopGroupCommit()
	}
	err := s.wal.Close()
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- apply phase -------------------------------------------------

// applyPutFile rewrites the chunk file (temp + rename). With durable
// set, the file and then the directory are fsynced — the per-mutation
// protocol. The group committer passes durable=false and defers both
// syncs to its checkpoint, the WAL intent covering the gap.
func (s *Store) applyPutFile(id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta, durable bool) error {
	final := filepath.Join(s.chunksDir, chunkFileName(id))
	tmp := final + ".tmp"
	payload := appendChunkFile(s.fscratch[:0], id, data, versions, meta)
	s.fscratch = payload[:0]
	if err := writeFileDurable(tmp, payload, durable && s.sync); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if !durable {
		return nil
	}
	return s.syncDir(s.chunksDir)
}

func (s *Store) applyPut(id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) error {
	if err := s.applyPutFile(id, data, versions, meta, true); err != nil {
		return err
	}
	delete(s.quar, id)
	return s.mem.Put(id, data, versions, meta)
}

// applyDeleteFile removes the chunk file without the directory sync;
// deleting a missing chunk is a no-op.
func (s *Store) applyDeleteFile(id client.ChunkID) error {
	if err := os.Remove(filepath.Join(s.chunksDir, chunkFileName(id))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

func (s *Store) applyDelete(id client.ChunkID) error {
	if err := s.applyDeleteFile(id); err != nil {
		return err
	}
	if err := s.syncDir(s.chunksDir); err != nil {
		return err
	}
	delete(s.quar, id)
	return s.mem.Delete(id)
}

// applyWipeFiles removes every chunk file without the directory sync.
func (s *Store) applyWipeFiles() error {
	entries, err := os.ReadDir(s.chunksDir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	for _, ent := range entries {
		if err := os.Remove(filepath.Join(s.chunksDir, ent.Name())); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
	}
	return nil
}

func (s *Store) applyWipe() error {
	if err := s.applyWipeFiles(); err != nil {
		return err
	}
	if err := s.syncDir(s.chunksDir); err != nil {
		return err
	}
	for id := range s.quar {
		delete(s.quar, id)
	}
	return s.mem.Wipe()
}

// ---- write-ahead log ---------------------------------------------

// appendWALFrame appends one framed record — length, CRC, payload —
// to dst.
func appendWALFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// nextWALFrame decodes the leading frame of raw, returning its payload
// and the remaining bytes. An incomplete or checksum-failing frame is
// an error; replay treats that as the torn tail.
func nextWALFrame(raw []byte) (payload, rest []byte, err error) {
	if len(raw) < 8 {
		return nil, nil, fmt.Errorf("torn header")
	}
	size := binary.BigEndian.Uint32(raw[0:4])
	sum := binary.BigEndian.Uint32(raw[4:8])
	if size > maxRecord || uint64(len(raw)) < 8+uint64(size) {
		return nil, nil, fmt.Errorf("torn or garbage tail")
	}
	payload = raw[8 : 8+size]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("torn payload")
	}
	return payload, raw[8+size:], nil
}

// walAppendRaw appends pre-framed bytes (one or many records) with a
// single write and, when configured, a single fsync — the group
// committer's durability point.
func (s *Store) walAppendRaw(buf []byte) error {
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("diskstore: wal append: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("diskstore: wal sync: %w", err)
		}
	}
	return nil
}

// walAppend frames and appends one record: length, CRC, payload.
func (s *Store) walAppend(payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.wal.Write(hdr[:]); err != nil {
		return fmt.Errorf("diskstore: wal append: %w", err)
	}
	if _, err := s.wal.Write(payload); err != nil {
		return fmt.Errorf("diskstore: wal append: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("diskstore: wal sync: %w", err)
		}
	}
	return nil
}

// walReset empties the log once its intents are applied.
func (s *Store) walReset() error {
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("diskstore: wal reset: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("diskstore: wal reset: %w", err)
	}
	// No sync needed: replaying an already-applied record is
	// idempotent, so a stale-but-valid WAL after a crash is harmless.
	return nil
}

// ---- recovery ----------------------------------------------------

func (s *Store) recover() error {
	if err := s.loadChunkFiles(); err != nil {
		return err
	}
	if err := s.replayWAL(); err != nil {
		return err
	}
	return s.walReset()
}

// loadChunkFiles scans the chunks directory, removing orphaned temp
// files (a crash mid-apply) and loading every committed chunk. A chunk
// file that fails its checksum is quarantined under the id parsed from
// its name — the node keeps serving everything else, the quarantined
// id fails reads with ErrCorrupt, and repair eventually rewrites it —
// rather than refusing to open the whole store for one rotten file.
func (s *Store) loadChunkFiles() error {
	entries, err := os.ReadDir(s.chunksDir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(s.chunksDir, name)
		if strings.HasSuffix(name, ".tmp") {
			// Incomplete apply: the WAL intent (if fully appended)
			// will redo it.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("diskstore: %w", err)
			}
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		id, data, versions, meta, err := decodeChunkFile(raw)
		if err != nil {
			if qid, ok := parseChunkFileName(name); ok {
				s.quar[qid] = err.Error()
				continue
			}
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		if err := s.mem.Put(id, data, versions, meta); err != nil {
			return err
		}
	}
	return nil
}

// replayWAL re-applies every complete record in order and stops at the
// first torn one (short frame or checksum mismatch): everything after
// a torn record was never acknowledged.
func (s *Store) replayWAL() error {
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	raw, err := io.ReadAll(s.wal)
	if err != nil {
		return fmt.Errorf("diskstore: wal read: %w", err)
	}
	for len(raw) > 0 {
		if len(raw) < 8 {
			return nil // torn header
		}
		size := binary.BigEndian.Uint32(raw[0:4])
		sum := binary.BigEndian.Uint32(raw[4:8])
		if size > maxRecord || len(raw) < 8+int(size) {
			return nil // torn or garbage tail
		}
		payload := raw[8 : 8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // torn payload
		}
		if err := s.replayRecord(payload); err != nil {
			return err
		}
		raw = raw[8+size:]
	}
	return nil
}

func (s *Store) replayRecord(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty wal record", ErrCorrupt)
	}
	switch payload[0] {
	case opPut, opPut2:
		id, data, versions, meta, err := decodePutRecord(payload)
		if err != nil {
			return fmt.Errorf("%w: wal put record: %v", ErrCorrupt, err)
		}
		return s.applyPut(id, data, versions, meta)
	case opDelete:
		id, err := decodeDeleteRecord(payload)
		if err != nil {
			return fmt.Errorf("%w: wal delete record: %v", ErrCorrupt, err)
		}
		return s.applyDelete(id)
	case opWipe:
		return s.applyWipe()
	default:
		return fmt.Errorf("%w: wal op %d", ErrCorrupt, payload[0])
	}
}

// ---- encoding ----------------------------------------------------

func chunkFileName(id client.ChunkID) string {
	return fmt.Sprintf("%016x-%08x.chunk", id.Stripe, uint32(id.Shard))
}

// parseChunkFileName inverts chunkFileName, recovering the id of a
// chunk file whose content is unreadable (so it can be quarantined by
// id rather than failing the whole directory).
func parseChunkFileName(name string) (client.ChunkID, bool) {
	var stripe uint64
	var shard uint32
	n, err := fmt.Sscanf(name, "%16x-%8x.chunk", &stripe, &shard)
	if err != nil || n != 2 || name != chunkFileName(client.ChunkID{Stripe: stripe, Shard: int(int32(shard))}) {
		return client.ChunkID{}, false
	}
	return client.ChunkID{Stripe: stripe, Shard: int(int32(shard))}, true
}

// appendChunkBody encodes id + meta + versions + data (shared by chunk
// files and WAL put records; the TQC2 body).
func appendChunkBody(dst []byte, id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) []byte {
	dst = binary.BigEndian.AppendUint64(dst, id.Stripe)
	dst = binary.BigEndian.AppendUint32(dst, uint32(id.Shard))
	var flags byte
	if meta.HasSelf {
		flags |= metaHasSelf
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint64(dst, meta.Self)
	dst = binary.BigEndian.AppendUint64(dst, meta.RecSum)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(meta.Rec)))
	for _, e := range meta.Rec {
		dst = binary.BigEndian.AppendUint64(dst, e.Version)
		dst = binary.BigEndian.AppendUint64(dst, e.Sum)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(versions)))
	for _, v := range versions {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(data)))
	return append(dst, data...)
}

func decodeChunkBody(p []byte, withMeta bool) (id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta, err error) {
	if len(p) < 12 {
		return id, nil, nil, meta, fmt.Errorf("short body")
	}
	id.Stripe = binary.BigEndian.Uint64(p[0:8])
	id.Shard = int(int32(binary.BigEndian.Uint32(p[8:12])))
	p = p[12:]
	if withMeta {
		if len(p) < 21 {
			return id, nil, nil, meta, fmt.Errorf("short metadata block")
		}
		flags := p[0]
		meta.HasSelf = flags&metaHasSelf != 0
		meta.Self = binary.BigEndian.Uint64(p[1:9])
		meta.RecSum = binary.BigEndian.Uint64(p[9:17])
		nrec := binary.BigEndian.Uint32(p[17:21])
		p = p[21:]
		if uint64(nrec)*16 > uint64(len(p)) {
			return id, nil, nil, meta, fmt.Errorf("truncated checksum record")
		}
		if nrec > 0 {
			meta.Rec = make([]client.BlockSum, nrec)
			for i := range meta.Rec {
				meta.Rec[i].Version = binary.BigEndian.Uint64(p[16*i:])
				meta.Rec[i].Sum = binary.BigEndian.Uint64(p[16*i+8:])
			}
			p = p[16*nrec:]
		}
	}
	if len(p) < 4 {
		return id, nil, nil, meta, fmt.Errorf("missing version count")
	}
	nver := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(nver)*8 > uint64(len(p)) {
		return id, nil, nil, meta, fmt.Errorf("truncated versions")
	}
	versions = make([]uint64, nver)
	for i := range versions {
		versions[i] = binary.BigEndian.Uint64(p[8*i:])
	}
	p = p[8*nver:]
	if len(p) < 4 {
		return id, nil, nil, meta, fmt.Errorf("missing data length")
	}
	dlen := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(dlen) != uint64(len(p)) {
		return id, nil, nil, meta, fmt.Errorf("data length %d, have %d bytes", dlen, len(p))
	}
	return id, append([]byte(nil), p...), versions, meta, nil
}

func appendPutRecord(dst []byte, id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) []byte {
	dst = append(dst, opPut2)
	return appendChunkBody(dst, id, data, versions, meta)
}

func decodePutRecord(p []byte) (id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta, err error) {
	if len(p) < 1 || (p[0] != opPut && p[0] != opPut2) {
		return id, nil, nil, meta, fmt.Errorf("not a put record")
	}
	return decodeChunkBody(p[1:], p[0] == opPut2)
}

func appendDeleteRecord(dst []byte, id client.ChunkID) []byte {
	dst = append(dst, opDelete)
	dst = binary.BigEndian.AppendUint64(dst, id.Stripe)
	return binary.BigEndian.AppendUint32(dst, uint32(id.Shard))
}

func decodeDeleteRecord(p []byte) (id client.ChunkID, err error) {
	if len(p) != 13 || p[0] != opDelete {
		return id, fmt.Errorf("malformed delete record")
	}
	id.Stripe = binary.BigEndian.Uint64(p[1:9])
	id.Shard = int(int32(binary.BigEndian.Uint32(p[9:13])))
	return id, nil
}

// appendChunkFile encodes a self-describing chunk file: magic, body,
// CRC over the body.
func appendChunkFile(dst []byte, id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, chunkMagic2)
	dst = appendChunkBody(dst, id, data, versions, meta)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start+4:]))
}

func decodeChunkFile(raw []byte) (id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta, err error) {
	if len(raw) < 8 {
		return id, nil, nil, meta, fmt.Errorf("short file")
	}
	magic := binary.BigEndian.Uint32(raw[0:4])
	if magic != chunkMagic && magic != chunkMagic2 {
		return id, nil, nil, meta, fmt.Errorf("bad magic")
	}
	body := raw[4 : len(raw)-4]
	sum := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return id, nil, nil, meta, fmt.Errorf("checksum mismatch")
	}
	return decodeChunkBody(body, magic == chunkMagic2)
}

// ---- filesystem helpers ------------------------------------------

func writeFileDurable(path string, payload []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry
// survives power loss.
func (s *Store) syncDir(dir string) error {
	if !s.sync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("diskstore: dir sync: %w", err)
	}
	if cerr != nil {
		return fmt.Errorf("diskstore: %w", cerr)
	}
	return nil
}
