package diskstore

// SetCrashAfterWAL arms the crash fault point: the next mutations
// append and fsync their WAL intent, then fail with err instead of
// applying — the on-disk state a power cut between the two phases
// leaves behind. Passing nil disarms it.
func (s *Store) SetCrashAfterWAL(err error) { s.crashAfterWAL = err }
