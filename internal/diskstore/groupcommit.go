package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"trapquorum/client"
	"trapquorum/internal/chunkmeta"
)

// Group commit: batch concurrent mutations into one WAL append + fsync.
//
// The per-mutation durability protocol pays three fsyncs per mutation
// (WAL, chunk file, directory). In group-commit mode the store instead
// runs a single committer goroutine in a leader-commits-followers
// pattern:
//
//   - Stagers (serialised by the node engine) frame their mutation into
//     the current batch, update the in-memory mirror, and receive a
//     wait function. Staging never touches the disk; a full batch
//     (maxBatch) applies back-pressure instead of growing unboundedly.
//   - The committer lingers briefly so concurrent stagers can pile into
//     the batch, then writes the whole batch to the WAL with one append
//     and one fsync. That fsync is the durability point: every waiter
//     of the batch is acknowledged right after it.
//   - Applies (chunk-file rewrite via temp + rename) happen after the
//     acknowledgement and skip the per-file and per-directory fsyncs:
//     the WAL intent is durable, so a crash at any point replays the
//     batch. The WAL is therefore not reset per batch — it grows until
//     a checkpoint fsyncs every dirty chunk file plus the directory,
//     after which the log is truncated.
//
// Crash-point semantics are preserved exactly: the intent is durable
// before the mutation is acknowledged, torn WAL tails discard only
// unacknowledged mutations, and any committer error of unknown
// durability poisons the store until a reopen reconverges state through
// recovery. A chunk file torn because its deferred fsync was lost in a
// crash fails its CRC at the next Open, is quarantined — and is then
// made whole by the WAL replay that follows, exactly the
// quarantine-then-replay order recover already runs.
//
// Read visibility: the mirror is updated at stage time so the engine's
// serialised reads observe staged state, but Get gates on the staging
// batch's durability — a reader never observes a mutation that a crash
// could still revoke. See docs/OPERATIONS.md §"Group commit".

const (
	// gcDefaultLinger is how long the committer waits for followers to
	// join a batch. Roughly one fsync on commodity SSDs: long enough to
	// merge concurrent writers, short enough that a lone writer's
	// latency stays below the per-mutation path (which pays three
	// fsyncs where group commit pays one).
	gcDefaultLinger = 200 * time.Microsecond
	// gcDefaultMaxBatch bounds mutations per batch; stagers beyond it
	// block until the committer drains.
	gcDefaultMaxBatch = 256
	// gcCheckpointBytes triggers a checkpoint once the WAL grows past
	// it: every dirty chunk file is fsynced and the log truncated.
	gcCheckpointBytes = 8 << 20
	// gcCheckpointDirty bounds the dirty-file set between checkpoints,
	// so one checkpoint never fsyncs an unbounded number of files.
	gcCheckpointDirty = 512
)

// WithGroupCommit batches concurrent mutations into one WAL append +
// fsync. linger is how long the committer waits for additional
// mutations to join a batch (0 commits as soon as the committer
// observes work; negative selects the default), maxBatch bounds the
// mutations per batch (≤ 0 selects the default). Staging calls
// (PutBatched, DeleteBatched, WipeBatched — and Put/Delete/Wipe, which
// stage and wait) must be serialised by the caller, as the node engine
// already does; the returned wait functions may be called from any
// goroutine.
func WithGroupCommit(linger time.Duration, maxBatch int) Option {
	if linger < 0 {
		linger = gcDefaultLinger
	}
	if maxBatch <= 0 {
		maxBatch = gcDefaultMaxBatch
	}
	return func(s *Store) {
		s.gcOn = true
		s.gcLinger = linger
		s.gcMaxBatch = maxBatch
	}
}

// Batching reports whether group commit is active (the
// nodeengine.BatchStore gate).
func (s *Store) Batching() bool { return s.gcOn }

// gcBatch is one commit unit: the framed WAL records of its mutations
// and the shared acknowledgement every waiter blocks on.
type gcBatch struct {
	buf   []byte           // framed WAL records, in staging order
	ids   []client.ChunkID // put/delete ids, for pending-map cleanup
	count int
	err   error         // set before done is closed
	done  chan struct{} // closed once the batch's durability is known
}

func newGCBatch() *gcBatch {
	return &gcBatch{done: make(chan struct{})}
}

// finish resolves the batch for its waiters. Must be called exactly
// once per batch.
func (b *gcBatch) finish(err error) {
	b.err = err
	close(b.done)
}

// wait blocks until the batch's durability is known.
func (b *gcBatch) wait() error {
	<-b.done
	return b.err
}

// startGroupCommit initialises the committer state and starts the
// committer goroutine. Called at the end of Open when the option is
// set, after recovery has drained the WAL.
func (s *Store) startGroupCommit() {
	s.gcWork = make(chan struct{}, 1)
	s.gcSpace.L = &s.gcMu
	s.gcRead.L = &s.gcMu
	s.gcCur = newGCBatch()
	s.gcEpoch = 1
	s.gcPending = make(map[client.ChunkID]uint64)
	s.gcDirty = make(map[client.ChunkID][]byte)
	s.gcDone = make(chan struct{})
	go s.commitLoop()
}

// gcSignal nudges the committer without blocking.
func (s *Store) gcSignal() {
	select {
	case s.gcWork <- struct{}{}:
	default:
	}
}

// failedErr returns the poison error, if any. The lock matters in
// group mode, where the committer can poison concurrently with
// engine-serialised calls.
func (s *Store) failedErr() error {
	if !s.gcOn {
		return s.failed
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	return s.failed
}

// poisonLocked is poison for group-mode callers holding gcMu: it marks
// the store unusable, fails the current batch's waiters, and wakes
// every blocked stager, reader, and the committer.
func (s *Store) poisonLocked(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("diskstore: unusable after failed mutation (reopen to recover): %w", err)
		cur := s.gcCur
		// Staging after poison fails fast; the fresh batch keeps the
		// non-nil invariant and never gains waiters.
		s.gcCur = newGCBatch()
		cur.finish(s.failed)
		s.gcSpace.Broadcast()
		s.gcRead.Broadcast()
		s.gcSignal()
	}
	return err
}

// stageRecord frames payload into the current batch and returns that
// batch. It applies the maxBatch back-pressure and fails fast on a
// poisoned store. ids lists the chunk ids the record mutates; an empty
// list means a wipe, which gates every subsequent read. Caller must be
// the serialised mutation path.
func (s *Store) stageRecord(payload []byte, ids ...client.ChunkID) (*gcBatch, error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	for s.failed == nil && s.gcCur.count >= s.gcMaxBatch {
		s.gcSpace.Wait()
	}
	if s.failed != nil {
		return nil, s.failed
	}
	b := s.gcCur
	b.buf = appendWALFrame(b.buf, payload)
	b.ids = append(b.ids, ids...)
	b.count++
	for _, id := range ids {
		s.gcPending[id] = s.gcEpoch
	}
	if len(ids) == 0 {
		s.gcWipeEpoch = s.gcEpoch
	}
	s.gcSignal()
	return b, nil
}

// PutBatched stages a put into the current batch: the mutation is
// immediately visible to (durability-gated) reads, and the returned
// wait reports once it is durable. Part of nodeengine.BatchStore.
func (s *Store) PutBatched(id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) (func() error, error) {
	payload := appendPutRecord(s.scratch[:0], id, data, versions, meta)
	s.scratch = payload[:0]
	b, err := s.stageRecord(payload, id)
	if err != nil {
		return nil, err
	}
	delete(s.quar, id)
	if err := s.mem.Put(id, data, versions, meta); err != nil {
		return nil, s.poison(err)
	}
	return b.wait, nil
}

// DeleteBatched stages a delete. Part of nodeengine.BatchStore.
func (s *Store) DeleteBatched(id client.ChunkID) (func() error, error) {
	payload := appendDeleteRecord(s.scratch[:0], id)
	s.scratch = payload[:0]
	b, err := s.stageRecord(payload, id)
	if err != nil {
		return nil, err
	}
	delete(s.quar, id)
	if err := s.mem.Delete(id); err != nil {
		return nil, s.poison(err)
	}
	return b.wait, nil
}

// WipeBatched stages a wipe. Part of nodeengine.BatchStore.
func (s *Store) WipeBatched() (func() error, error) {
	b, err := s.stageRecord([]byte{opWipe})
	if err != nil {
		return nil, err
	}
	for id := range s.quar {
		delete(s.quar, id)
	}
	if err := s.mem.Wipe(); err != nil {
		return nil, s.poison(err)
	}
	return b.wait, nil
}

// gateRead blocks until every staged mutation of id (and any staged
// wipe) is durable, so a reader never observes state a crash could
// still revoke. Returns immediately when nothing is pending on id.
func (s *Store) gateRead(id client.ChunkID) error {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	for s.failed == nil {
		target := s.gcWipeEpoch
		if ep, ok := s.gcPending[id]; ok && ep > target {
			target = ep
		}
		if target <= s.gcDurable {
			return nil
		}
		s.gcRead.Wait()
	}
	return s.failed
}

// commitLoop is the committer: it lingers, swaps the batch out, makes
// it durable with one WAL append + fsync, acknowledges the waiters,
// applies the chunk files with deferred durability, and checkpoints
// when the WAL grows past its bound (and finally at shutdown).
func (s *Store) commitLoop() {
	defer close(s.gcDone)
	for {
		s.gcMu.Lock()
		for s.gcCur.count == 0 && !s.gcClosed && s.failed == nil {
			s.gcMu.Unlock()
			<-s.gcWork
			s.gcMu.Lock()
		}
		if s.failed != nil {
			s.gcMu.Unlock()
			return
		}
		if s.gcClosed && s.gcCur.count == 0 {
			s.gcMu.Unlock()
			// Clean shutdown: leave the directory fully durable and
			// the WAL empty.
			if s.gcWalBytes > 0 {
				if err := s.checkpoint(); err != nil {
					s.gcMu.Lock()
					s.poisonLocked(err)
					s.gcMu.Unlock()
				}
			}
			return
		}
		if s.gcLinger > 0 && !s.gcClosed && s.gcCur.count < s.gcMaxBatch {
			s.gcMu.Unlock()
			time.Sleep(s.gcLinger)
			s.gcMu.Lock()
		}
		batch := s.gcCur
		epoch := s.gcEpoch
		s.gcCur = newGCBatch()
		s.gcEpoch++
		s.gcSpace.Broadcast()
		crash := s.crashAfterWAL
		s.gcMu.Unlock()

		// Durability point: one append, one fsync for the whole batch.
		if err := s.walAppendRaw(batch.buf); err != nil {
			s.gcMu.Lock()
			s.poisonLocked(err)
			failed := s.failed
			s.gcMu.Unlock()
			batch.finish(failed)
			return
		}
		s.gcWalBytes += int64(len(batch.buf))

		s.gcMu.Lock()
		s.gcDurable = epoch
		for _, id := range batch.ids {
			if s.gcPending[id] == epoch {
				delete(s.gcPending, id)
			}
		}
		s.gcRead.Broadcast()
		if crash != nil {
			// Test hook: the power cut between append and apply. The
			// intent is durable, but — exactly like the per-mutation
			// path — the batch is reported failed with unknown
			// durability and the store poisons until reopen.
			s.poisonLocked(crash)
			failed := s.failed
			s.gcMu.Unlock()
			batch.finish(failed)
			return
		}
		s.gcMu.Unlock()
		batch.finish(nil)

		if err := s.applyBatch(batch); err != nil {
			s.gcMu.Lock()
			s.poisonLocked(err)
			s.gcMu.Unlock()
			return
		}
		if s.gcWalBytes >= gcCheckpointBytes || len(s.gcDirty) >= gcCheckpointDirty {
			if err := s.checkpoint(); err != nil {
				s.gcMu.Lock()
				s.poisonLocked(err)
				s.gcMu.Unlock()
				return
			}
		}
	}
}

// applyBatch folds the batch's framed records into the committer's
// write-back cache: only the latest record per chunk is kept, so the
// file writes the checkpoint eventually performs are coalesced across
// however many batches overwrote the same chunk. No file is touched
// here (a wipe is the exception — it clears the directory on the
// spot), which keeps the commit cycle at one WAL append + fsync. The
// in-memory mirror was already updated at stage time and is not
// touched either — the committer must not race engine-serialised
// reads.
func (s *Store) applyBatch(b *gcBatch) error {
	raw := b.buf
	for len(raw) > 0 {
		payload, rest, err := nextWALFrame(raw)
		if err != nil {
			return fmt.Errorf("diskstore: group batch corrupt in memory: %w", err)
		}
		if err := s.applyRecordCache(payload); err != nil {
			return err
		}
		raw = rest
	}
	return nil
}

// applyRecordCache folds one record into the write-back cache — the
// group-commit twin of replayRecord. Put records are copied (the batch
// buffer dies with the batch); a delete leaves a len-0 tombstone so
// the checkpoint removes the file.
func (s *Store) applyRecordCache(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty wal record", ErrCorrupt)
	}
	switch payload[0] {
	case opPut, opPut2:
		id, _, _, _, err := decodePutRecord(payload)
		if err != nil {
			return fmt.Errorf("%w: wal put record: %v", ErrCorrupt, err)
		}
		s.gcDirty[id] = append(s.gcDirty[id][:0], payload...)
		return nil
	case opDelete:
		id, err := decodeDeleteRecord(payload)
		if err != nil {
			return fmt.Errorf("%w: wal delete record: %v", ErrCorrupt, err)
		}
		s.gcDirty[id] = s.gcDirty[id][:0]
		return nil
	case opWipe:
		if err := s.applyWipeFiles(); err != nil {
			return err
		}
		// Everything dirtied before the wipe is gone; the removals are
		// made durable by the wipe's own directory sync.
		for id := range s.gcDirty {
			delete(s.gcDirty, id)
		}
		return s.syncDir(s.chunksDir)
	default:
		return fmt.Errorf("%w: wal op %d", ErrCorrupt, payload[0])
	}
}

// checkpoint drains the write-back cache — write each dirty chunk file
// (temp + rename) or remove tombstoned ones, fsync the writes and the
// directory — and truncates the WAL, whose cover the files no longer
// need.
func (s *Store) checkpoint() error {
	for id, rec := range s.gcDirty {
		if len(rec) == 0 {
			if err := s.applyDeleteFile(id); err != nil {
				return err
			}
			continue
		}
		_, data, versions, meta, err := decodePutRecord(rec)
		if err != nil {
			return fmt.Errorf("%w: checkpoint record: %v", ErrCorrupt, err)
		}
		if err := s.applyPutFile(id, data, versions, meta, false); err != nil {
			return err
		}
	}
	if s.sync {
		for id, rec := range s.gcDirty {
			if len(rec) == 0 {
				continue // removal: the directory sync below covers it
			}
			f, err := os.Open(filepath.Join(s.chunksDir, chunkFileName(id)))
			if err != nil {
				return fmt.Errorf("diskstore: checkpoint: %w", err)
			}
			serr := f.Sync()
			cerr := f.Close()
			if serr != nil {
				return fmt.Errorf("diskstore: checkpoint sync: %w", serr)
			}
			if cerr != nil {
				return fmt.Errorf("diskstore: checkpoint: %w", cerr)
			}
		}
		if err := s.syncDir(s.chunksDir); err != nil {
			return err
		}
	}
	if err := s.walReset(); err != nil {
		return err
	}
	s.gcWalBytes = 0
	for id := range s.gcDirty {
		delete(s.gcDirty, id)
	}
	return nil
}

// stopGroupCommit drains and stops the committer: the final batch is
// committed and applied, a last checkpoint truncates the WAL, and the
// goroutine exits. Called by Close.
func (s *Store) stopGroupCommit() {
	s.gcMu.Lock()
	s.gcClosed = true
	s.gcMu.Unlock()
	s.gcSignal()
	<-s.gcDone
}
