package diskstore_test

import (
	"context"
	"sync"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/nodeengine"
)

// Mutation IOPS benchmarks: the per-mutation fsync path versus group
// commit, at 1, 8 and 64 concurrent writers driving an engine over a
// durable store (WithSyncWrites(true) — these benchmarks pay real
// fsyncs; that is the quantity being measured). Each writer mutates
// its own chunk so the comparison isolates commit cost, not engine
// contention on one id. Results feed tools/benchjson →
// BENCH_diskstore.json; see docs/PERFORMANCE.md §"Group commit".

const benchChunkSize = 4096

func benchPutChunk(b *testing.B, writers int, group bool) {
	opts := []diskstore.Option{diskstore.WithSyncWrites(true)}
	if group {
		opts = append(opts, diskstore.WithGroupCommit(-1, 0))
	}
	s, err := diskstore.Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	e := nodeengine.New(s)
	defer e.Close()

	payload := make([]byte, benchChunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	ctx := context.Background()
	// Prime every writer's chunk outside the window so the steady state
	// measures overwrites, not first-touch file creation.
	for w := 0; w < writers; w++ {
		if err := e.PutChunk(ctx, client.ChunkID{Stripe: uint64(w)}, payload, []uint64{0}); err != nil {
			b.Fatal(err)
		}
	}

	b.SetBytes(benchChunkSize)
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := client.ChunkID{Stripe: uint64(w)}
			for i := w; i < b.N; i += writers {
				if err := e.PutChunk(ctx, id, payload, []uint64{uint64(i) + 1}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "mutations/s")
}

func BenchmarkPutChunkSync1Writers(b *testing.B)  { benchPutChunk(b, 1, false) }
func BenchmarkPutChunkSync8Writers(b *testing.B)  { benchPutChunk(b, 8, false) }
func BenchmarkPutChunkSync64Writers(b *testing.B) { benchPutChunk(b, 64, false) }

func BenchmarkPutChunkGroup1Writers(b *testing.B)  { benchPutChunk(b, 1, true) }
func BenchmarkPutChunkGroup8Writers(b *testing.B)  { benchPutChunk(b, 8, true) }
func BenchmarkPutChunkGroup64Writers(b *testing.B) { benchPutChunk(b, 64, true) }
