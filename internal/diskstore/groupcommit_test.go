package diskstore_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/nodeengine"
)

// Group commit must preserve every durability property of the
// per-mutation path: acknowledged mutations survive reopen, the crash
// window between WAL append and apply replays, unknown-durability
// failures poison the store, and reads never observe state a crash
// could still revoke.

// Interface conformance with the engine's batching contract.
var _ nodeengine.BatchStore = (*diskstore.Store)(nil)

func openGroupStore(t *testing.T, dir string, linger time.Duration) *diskstore.Store {
	t.Helper()
	s, err := diskstore.Open(dir,
		diskstore.WithSyncWrites(false),
		diskstore.WithGroupCommit(linger, 0))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGroupCommitRoundTrip(t *testing.T) {
	s := openGroupStore(t, t.TempDir(), 0)
	defer s.Close()
	id := client.ChunkID{Stripe: 7, Shard: 2}
	if err := s.Put(id, []byte{1, 2, 3}, []uint64{5, 6}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	data, versions, _, ok, err := s.Get(id)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if string(data) != "\x01\x02\x03" || versions[0] != 5 || versions[1] != 6 {
		t.Fatalf("got %v %v", data, versions)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok, _ := s.Get(id); ok {
		t.Fatal("chunk survived delete")
	}
	if err := s.Put(id, []byte{9}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wipe(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("len after wipe = %d", n)
	}
}

// TestGroupCommitReopenDurability closes a group-commit store and
// reopens it with the plain per-mutation configuration: everything the
// batched path acknowledged must be there, and the shutdown checkpoint
// must have left an empty WAL behind.
func TestGroupCommitReopenDurability(t *testing.T) {
	dir := t.TempDir()
	s := openGroupStore(t, dir, 0)
	for i := 0; i < 20; i++ {
		id := client.ChunkID{Stripe: uint64(i), Shard: 1}
		if err := s.Put(id, []byte{byte(i)}, []uint64{uint64(i)}, nodeengine.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(client.ChunkID{Stripe: 3, Shard: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir)
	defer r.Close()
	if n, _ := r.Len(); n != 19 {
		t.Fatalf("recovered %d chunks, want 19", n)
	}
	data, versions, _, ok, _ := r.Get(client.ChunkID{Stripe: 11, Shard: 1})
	if !ok || data[0] != 11 || versions[0] != 11 {
		t.Fatalf("chunk 11 = %v %v %v", data, versions, ok)
	}
	if _, _, _, ok, _ = r.Get(client.ChunkID{Stripe: 3, Shard: 1}); ok {
		t.Fatal("deleted chunk survived reopen")
	}
}

// TestGroupCommitCrashAfterWAL is the group twin of
// TestCrashBetweenWALAppendAndApply: the batch's WAL append is durable
// but the process dies before the deferred applies. The mutation is
// reported failed with unknown durability, the store poisons — and the
// reopen replays the WAL, finishing the mutation.
func TestGroupCommitCrashAfterWAL(t *testing.T) {
	dir := t.TempDir()
	s := openGroupStore(t, dir, 0)
	id := client.ChunkID{Stripe: 4, Shard: 1}
	if err := s.Put(id, []byte{1, 1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	crash := errors.New("power cut")
	s.SetCrashAfterWAL(crash)
	if err := s.Put(id, []byte{2, 2}, []uint64{2}, nodeengine.Meta{}); !errors.Is(err, crash) {
		t.Fatalf("err = %v", err)
	}
	// Poisoned until reopen: mutations and reads both refuse.
	if err := s.Put(id, []byte{3}, []uint64{3}, nodeengine.Meta{}); !errors.Is(err, crash) {
		t.Fatalf("post-poison put err = %v", err)
	}
	if _, _, _, _, err := s.Get(id); !errors.Is(err, crash) {
		t.Fatalf("post-poison get err = %v", err)
	}
	s.Close()

	r := openTestStore(t, dir)
	defer r.Close()
	data, versions, _, ok, _ := r.Get(id)
	if !ok || data[0] != 2 || versions[0] != 2 {
		t.Fatalf("recovered %v %v %v, want the WAL-committed v2", data, versions, ok)
	}
}

// TestGroupCommitReadGating: a read of a staged-but-not-yet-durable
// chunk blocks until the batch's fsync, so no client ever observes a
// mutation a crash could revoke. The linger window is what keeps the
// batch open; the Get must ride it out and then see the new value.
func TestGroupCommitReadGating(t *testing.T) {
	const linger = 30 * time.Millisecond
	s := openGroupStore(t, t.TempDir(), linger)
	defer s.Close()
	id := client.ChunkID{Stripe: 1, Shard: 1}
	wait, err := s.PutBatched(id, []byte{42}, []uint64{7}, nodeengine.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	data, _, _, ok, err := s.Get(id)
	if err != nil || !ok || data[0] != 42 {
		t.Fatalf("gated Get = %v %v %v", data, ok, err)
	}
	if el := time.Since(start); el < linger/2 {
		t.Fatalf("Get returned after %v, before the %v linger window closed", el, linger)
	}
	if err := wait(); err != nil {
		t.Fatalf("wait after gated read: %v", err)
	}
	// Untouched ids are never gated.
	if _, _, _, ok, err := s.Get(client.ChunkID{Stripe: 99}); ok || err != nil {
		t.Fatalf("miss = %v, %v", ok, err)
	}
}

// TestGroupCommitConcurrentWriters drives an engine (which serialises
// staging, as the contract requires) from many goroutines and checks
// every acknowledged write is present — both live and after reopen.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	e := nodeengine.New(openGroupStore(t, dir, time.Millisecond))
	const writers, rounds = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			id := client.ChunkID{Stripe: uint64(w), Shard: 0}
			for r := 1; r <= rounds; r++ {
				if err := e.PutChunk(ctx, id, []byte{byte(w), byte(r)}, []uint64{uint64(r)}); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx := context.Background()
	for w := 0; w < writers; w++ {
		got, err := e.ReadChunk(ctx, client.ChunkID{Stripe: uint64(w), Shard: 0})
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[1] != rounds || got.Versions[0] != rounds {
			t.Fatalf("writer %d final chunk %+v", w, got)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir)
	defer r.Close()
	if n, _ := r.Len(); n != writers {
		t.Fatalf("recovered %d chunks, want %d", n, writers)
	}
}

// TestGroupCommitWipeGatesReads: a staged wipe gates every read (there
// is no per-id pending entry to key on), and survives reopen.
func TestGroupCommitWipeGatesReads(t *testing.T) {
	dir := t.TempDir()
	s := openGroupStore(t, dir, 10*time.Millisecond)
	id := client.ChunkID{Stripe: 5}
	if err := s.Put(id, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	wait, err := s.WipeBatched()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok, err := s.Get(id); ok || err != nil {
		t.Fatalf("read across staged wipe = %v, %v", ok, err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openTestStore(t, dir)
	defer r.Close()
	if n, _ := r.Len(); n != 0 {
		t.Fatalf("wipe did not survive reopen: %d chunks", n)
	}
}
