package diskstore_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/diskstore"
	"trapquorum/internal/nodeengine"
)

// Interface conformance with the engine's store contract.
var _ nodeengine.ChunkStore = (*diskstore.Store)(nil)

func openTestStore(t *testing.T, dir string) *diskstore.Store {
	t.Helper()
	s, err := diskstore.Open(dir, diskstore.WithSyncWrites(false))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	id := client.ChunkID{Stripe: 7, Shard: 2}
	if err := s.Put(id, []byte{1, 2, 3}, []uint64{5, 6}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	data, versions, _, ok, err := s.Get(id)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if string(data) != "\x01\x02\x03" || versions[0] != 5 || versions[1] != 6 {
		t.Fatalf("got %v %v", data, versions)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("len = %d", n)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok, _ := s.Get(id); ok {
		t.Fatal("chunk survived delete")
	}
	// Idempotent delete.
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
}

func TestReopenRecoversChunks(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	a := client.ChunkID{Stripe: 1, Shard: 0}
	b := client.ChunkID{Stripe: 2, Shard: 9}
	if err := s.Put(a, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte{2, 2}, []uint64{3, 4, 5}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(a, []byte{9}, []uint64{2}, nodeengine.Meta{}); err != nil { // overwrite
		t.Fatal(err)
	}
	s.Close()

	r := openTestStore(t, dir)
	defer r.Close()
	if n, _ := r.Len(); n != 2 {
		t.Fatalf("recovered %d chunks", n)
	}
	data, versions, _, ok, _ := r.Get(a)
	if !ok || data[0] != 9 || versions[0] != 2 {
		t.Fatalf("chunk a = %v %v %v", data, versions, ok)
	}
	data, versions, _, ok, _ = r.Get(b)
	if !ok || len(data) != 2 || len(versions) != 3 || versions[2] != 5 {
		t.Fatalf("chunk b = %v %v %v", data, versions, ok)
	}
}

func TestWipeIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Put(client.ChunkID{Stripe: 1}, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wipe(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openTestStore(t, dir)
	defer r.Close()
	if n, _ := r.Len(); n != 0 {
		t.Fatalf("wipe did not survive reopen: %d chunks", n)
	}
}

// TestCrashBetweenWALAppendAndApply kills the store in the window
// where the intent is durable but not applied, reopens the directory,
// and asserts the engine serves the intended (consistent) chunk and
// version view: the WAL replay finishes the mutation.
func TestCrashBetweenWALAppendAndApply(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	id := client.ChunkID{Stripe: 4, Shard: 1}
	if err := s.Put(id, []byte{1, 1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	crash := errors.New("power cut")
	s.SetCrashAfterWAL(crash)
	if err := s.Put(id, []byte{2, 2}, []uint64{2}, nodeengine.Meta{}); !errors.Is(err, crash) {
		t.Fatalf("err = %v", err)
	}
	// The process dies here: no Close, no walReset. The old chunk file
	// still holds version 1; the WAL holds the durable intent for
	// version 2.
	s.Close() // only releases the fd; the WAL content remains

	e := nodeengine.New(openTestStore(t, dir))
	defer e.Close()
	got, err := e.ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 2 || got.Versions[0] != 2 {
		t.Fatalf("recovered chunk %+v, want the WAL-committed v2", got)
	}
}

// TestCrashBeforeWALCompletes models the other side of the window: a
// torn WAL tail (the append itself was cut short) is discarded, and
// the pre-crash state is served.
func TestCrashBeforeWALCompletes(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	id := client.ChunkID{Stripe: 4, Shard: 1}
	if err := s.Put(id, []byte{1, 1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a torn append: garbage that is not a complete record.
	wal := filepath.Join(dir, "wal")
	if err := os.WriteFile(wal, []byte{0, 0, 0, 99, 1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir)
	defer r.Close()
	data, versions, _, ok, _ := r.Get(id)
	if !ok || data[0] != 1 || versions[0] != 1 {
		t.Fatalf("pre-crash state lost: %v %v %v", data, versions, ok)
	}
}

func TestCrashedDeleteReplays(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	id := client.ChunkID{Stripe: 9, Shard: 3}
	if err := s.Put(id, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	crash := errors.New("power cut")
	s.SetCrashAfterWAL(crash)
	if err := s.Delete(id); !errors.Is(err, crash) {
		t.Fatalf("err = %v", err)
	}
	s.Close()
	r := openTestStore(t, dir)
	defer r.Close()
	if _, _, _, ok, _ := r.Get(id); ok {
		t.Fatal("WAL-committed delete not replayed")
	}
}

func TestOrphanTempFilesCleaned(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Put(client.ChunkID{Stripe: 1}, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	tmp := filepath.Join(dir, "chunks", "deadbeef.chunk.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir)
	defer r.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("orphan temp file survived recovery")
	}
	if n, _ := r.Len(); n != 1 {
		t.Fatalf("len = %d", n)
	}
}

func TestCorruptChunkFileSurfaces(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	id := client.ChunkID{Stripe: 1}
	if err := s.Put(id, []byte{1, 2, 3, 4}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Flip a data byte inside the single chunk file.
	entries, err := os.ReadDir(filepath.Join(dir, "chunks"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	path := filepath.Join(dir, "chunks", entries[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A rotten chunk file must not keep the node from starting: Open
	// quarantines the chunk, Get surfaces the typed corruption (so the
	// engine's probe/health path sees it), and a fresh Put clears it.
	r := openTestStore(t, dir)
	defer r.Close()
	if _, _, _, _, err := r.Get(id); !errors.Is(err, client.ErrCorrupt) {
		t.Fatalf("Get on quarantined chunk = %v, want client.ErrCorrupt", err)
	}
	if n, _ := r.Len(); n != 1 {
		t.Fatalf("quarantined chunk fell out of Len: %d", n)
	}
	ids, err := r.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("Scan = %v, want [%v]", ids, id)
	}
	if err := r.Put(id, []byte{9}, []uint64{2}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	data, _, _, ok, err := r.Get(id)
	if err != nil || !ok || data[0] != 9 {
		t.Fatalf("quarantine not cleared by Put: %v %v %v", data, ok, err)
	}
}

// TestEngineOverDiskStore runs the protocol-critical conditional ops
// through a real on-disk store, across a reopen.
func TestEngineOverDiskStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	e := nodeengine.New(openTestStore(t, dir))
	id := client.ChunkID{Stripe: 3, Shard: 8}
	if err := e.PutChunk(ctx, id, []byte{0xf0, 0x0f}, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompareAndAdd(ctx, id, 1, 1, 2, []byte{0x0f, 0x0f}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompareAndAdd(ctx, id, 1, 1, 3, []byte{1, 1}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r := nodeengine.New(openTestStore(t, dir))
	defer r.Close()
	got, err := r.ReadChunk(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 0xff || got.Data[1] != 0x00 || got.Versions[1] != 2 {
		t.Fatalf("reopened chunk %+v", got)
	}
	if err := r.CompareAndPut(ctx, id, 0, 1, 2, []byte{5, 5}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryLockExcludesSecondOpen: two stores on one directory
// would corrupt each other's WAL; the second Open must fail fast.
func TestDirectoryLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if _, err := diskstore.Open(dir, diskstore.WithSyncWrites(false)); !errors.Is(err, diskstore.ErrLocked) {
		t.Fatalf("second open = %v, want ErrLocked", err)
	}
	s.Close()
	// Released on close: reopening now succeeds.
	r := openTestStore(t, dir)
	r.Close()
}

// TestPoisonedAfterFailedMutation: once a mutation dies between its
// durable intent and its apply, the store's mirror is of unknown
// accuracy — every further operation must refuse until a reopen
// reconverges through recovery.
func TestPoisonedAfterFailedMutation(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	id := client.ChunkID{Stripe: 1}
	if err := s.Put(id, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	crash := errors.New("power cut")
	s.SetCrashAfterWAL(crash)
	if err := s.Put(id, []byte{2}, []uint64{2}, nodeengine.Meta{}); !errors.Is(err, crash) {
		t.Fatalf("err = %v", err)
	}
	s.SetCrashAfterWAL(nil)
	// Poisoned: reads and writes refuse rather than serve a mirror
	// that may disagree with disk.
	if _, _, _, _, err := s.Get(id); err == nil {
		t.Fatal("poisoned store served a read")
	}
	if err := s.Put(id, []byte{3}, []uint64{3}, nodeengine.Meta{}); err == nil {
		t.Fatal("poisoned store accepted a write")
	}
	if _, err := s.Len(); err == nil {
		t.Fatal("poisoned store answered Len")
	}
	s.Close()
	// Reopen reconverges (the WAL intent is replayed) and serves.
	r := openTestStore(t, dir)
	defer r.Close()
	data, versions, _, ok, err := r.Get(id)
	if err != nil || !ok || data[0] != 2 || versions[0] != 2 {
		t.Fatalf("recovered chunk = %v %v %v %v", data, versions, ok, err)
	}
}

func TestSyncWritesOn(t *testing.T) {
	// Smoke the default (sync) path once so fsync plumbing is covered.
	s, err := diskstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(client.ChunkID{Stripe: 1}, []byte{1}, []uint64{1}, nodeengine.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(client.ChunkID{Stripe: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wipe(); err != nil {
		t.Fatal(err)
	}
}
