package workload

import (
	"testing"
)

func TestUniformRange(t *testing.T) {
	u, err := NewUniform(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Blocks() != 10 {
		t.Fatalf("Blocks = %d", u.Blocks())
	}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		b := u.Next()
		if b < 0 || b >= 10 {
			t.Fatalf("out of range: %d", b)
		}
		seen[b] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d distinct blocks in 2000 draws", len(seen))
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 1); err == nil {
		t.Fatal("blocks=0 accepted")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, _ := NewUniform(100, 7)
	b, _ := NewUniform(100, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		b := z.Next()
		if b < 0 || b >= 100 {
			t.Fatalf("out of range: %d", b)
		}
		counts[b]++
	}
	// Block 0 must be much hotter than block 50.
	if counts[0] < 5*counts[50]+1 {
		t.Fatalf("no skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.5, 1); err == nil {
		t.Fatal("blocks=0 accepted")
	}
	if _, err := NewZipf(10, 1.0, 1); err == nil {
		t.Fatal("s=1 accepted")
	}
	if _, err := NewZipf(10, 0.5, 1); err == nil {
		t.Fatal("s<1 accepted")
	}
}

func TestSequentialWraps(t *testing.T) {
	s, err := NewSequential(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0); err == nil {
		t.Fatal("blocks=0 accepted")
	}
}

func TestMixRatio(t *testing.T) {
	u, _ := NewUniform(10, 3)
	m, err := NewMix(u, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := m.Next()
		if op.Kind == Read {
			reads++
		}
		if op.Block < 0 || op.Block >= 10 {
			t.Fatalf("block out of range: %d", op.Block)
		}
	}
	frac := float64(reads) / n
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("read fraction = %v, want ~0.7", frac)
	}
}

func TestMixValidation(t *testing.T) {
	u, _ := NewUniform(10, 3)
	if _, err := NewMix(nil, 0.5, 1); err == nil {
		t.Fatal("nil pattern accepted")
	}
	if _, err := NewMix(u, -0.1, 1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := NewMix(u, 1.1, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestMixExtremes(t *testing.T) {
	u, _ := NewUniform(5, 3)
	allReads, _ := NewMix(u, 1, 5)
	for i := 0; i < 100; i++ {
		if allReads.Next().Kind != Read {
			t.Fatal("readFraction=1 produced a write")
		}
	}
	u2, _ := NewUniform(5, 3)
	allWrites, _ := NewMix(u2, 0, 5)
	for i := 0; i < 100; i++ {
		if allWrites.Next().Kind != Write {
			t.Fatal("readFraction=0 produced a read")
		}
	}
}

func TestTrace(t *testing.T) {
	u, _ := NewUniform(10, 3)
	m, _ := NewMix(u, 0.5, 4)
	ops := m.Trace(250)
	if len(ops) != 250 {
		t.Fatalf("trace length %d", len(ops))
	}
}

func TestOpKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("OpKind strings wrong")
	}
}

func TestPayloadGenerator(t *testing.T) {
	g, err := NewPayloadGenerator(64, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := g.Next()
	b := g.Next()
	if len(a) != 64 || len(b) != 64 {
		t.Fatal("wrong payload size")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive payloads identical")
	}
	if _, err := NewPayloadGenerator(0, 1); err == nil {
		t.Fatal("size=0 accepted")
	}
}
