// Package workload generates the block-access patterns the benchmark
// harness and examples drive the storage system with: uniform, Zipf
// (hot-spot) and sequential address streams combined with a read/write
// operation mix. All generators are deterministic under a seed.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind discriminates read and write operations.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota
	Write
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Op is one storage operation against a data block.
type Op struct {
	Kind  OpKind
	Block int
}

// Pattern produces a stream of block indices.
type Pattern interface {
	// Next returns the next block index in [0, Blocks()).
	Next() int
	// Blocks returns the address-space size.
	Blocks() int
}

// Uniform picks blocks independently and uniformly.
type Uniform struct {
	blocks int
	r      *rand.Rand
}

// NewUniform builds a uniform pattern over `blocks` addresses.
func NewUniform(blocks int, seed int64) (*Uniform, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("workload: need blocks >= 1, got %d", blocks)
	}
	return &Uniform{blocks: blocks, r: rand.New(rand.NewSource(seed))}, nil
}

// Next implements Pattern.
func (u *Uniform) Next() int { return u.r.Intn(u.blocks) }

// Blocks implements Pattern.
func (u *Uniform) Blocks() int { return u.blocks }

// Zipf skews accesses toward low-numbered blocks with the classic
// Zipf(s) distribution — the hot-spot pattern virtual-disk workloads
// exhibit (FS metadata blocks run hot).
type Zipf struct {
	blocks int
	z      *rand.Zipf
}

// NewZipf builds a Zipf pattern with skew s > 1 over `blocks`
// addresses.
func NewZipf(blocks int, s float64, seed int64) (*Zipf, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("workload: need blocks >= 1, got %d", blocks)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf skew must exceed 1, got %v", s)
	}
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, uint64(blocks-1))
	if z == nil {
		return nil, fmt.Errorf("workload: invalid Zipf parameters (s=%v blocks=%d)", s, blocks)
	}
	return &Zipf{blocks: blocks, z: z}, nil
}

// Next implements Pattern.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Blocks implements Pattern.
func (z *Zipf) Blocks() int { return z.blocks }

// Sequential sweeps the address space in order, wrapping around — the
// scan/backup pattern.
type Sequential struct {
	blocks int
	next   int
}

// NewSequential builds a sequential pattern over `blocks` addresses.
func NewSequential(blocks int) (*Sequential, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("workload: need blocks >= 1, got %d", blocks)
	}
	return &Sequential{blocks: blocks}, nil
}

// Next implements Pattern.
func (s *Sequential) Next() int {
	b := s.next
	s.next = (s.next + 1) % s.blocks
	return b
}

// Blocks implements Pattern.
func (s *Sequential) Blocks() int { return s.blocks }

// Mix generates operations over a Pattern with a fixed read fraction.
type Mix struct {
	pattern      Pattern
	readFraction float64
	r            *rand.Rand
}

// NewMix couples a pattern with a read/write ratio.
// readFraction ∈ [0,1] is the probability an op is a read.
func NewMix(pattern Pattern, readFraction float64, seed int64) (*Mix, error) {
	if pattern == nil {
		return nil, fmt.Errorf("workload: nil pattern")
	}
	if readFraction < 0 || readFraction > 1 {
		return nil, fmt.Errorf("workload: read fraction %v outside [0,1]", readFraction)
	}
	return &Mix{pattern: pattern, readFraction: readFraction, r: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next operation.
func (m *Mix) Next() Op {
	kind := Write
	if m.r.Float64() < m.readFraction {
		kind = Read
	}
	return Op{Kind: kind, Block: m.pattern.Next()}
}

// Trace materialises n operations.
func (m *Mix) Trace(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = m.Next()
	}
	return ops
}

// PayloadGenerator produces deterministic pseudo-random block payloads
// for write operations.
type PayloadGenerator struct {
	size int
	r    *rand.Rand
}

// NewPayloadGenerator builds a generator of `size`-byte payloads.
func NewPayloadGenerator(size int, seed int64) (*PayloadGenerator, error) {
	if size < 1 {
		return nil, fmt.Errorf("workload: payload size must be positive, got %d", size)
	}
	return &PayloadGenerator{size: size, r: rand.New(rand.NewSource(seed))}, nil
}

// Next returns a fresh payload; the caller owns the slice.
func (g *PayloadGenerator) Next() []byte {
	b := make([]byte, g.size)
	g.r.Read(b)
	return b
}
