// Package dispatch is the shared bounded fan-out engine of the
// concurrent hot paths. It was carved out of internal/core so that
// leaf layers — the erasure data plane's stripe-parallel coder, the
// service store's bulk repair — can dispatch through the same engine
// without importing the protocol (core imports erasure; erasure
// importing core back would cycle).
package dispatch

import "context"

// outcome is one settled task, delivered to the fan-out collector.
type outcome[T any] struct {
	idx int
	val T
	err error
}

// Fanout issues calls 0..n-1 concurrently, keeping at most limit in
// flight (limit <= 0 issues all at once), and reports every call's
// final outcome to observe in completion order. observe runs in the
// collector goroutine only, so it may mutate shared state without
// locking. Returning false from observe stops the operation early:
// outstanding calls are cancelled (and calls not yet issued are settled
// immediately with the cancellation error, without running).
//
// Fanout returns only after all n outcomes have been observed. observe
// keeps being invoked for late-settling calls after an early stop —
// its return value is simply ignored from then on — so callers that
// track side effects (the write path's applied-update log) see every
// call that actually took effect, even ones that raced the
// cancellation.
func Fanout[T any](ctx context.Context, limit, n int, call func(context.Context, int) (T, error), observe func(idx int, val T, err error) bool) {
	if n <= 0 {
		return
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if limit <= 0 || limit > n {
		limit = n
	}
	// min(limit, n) workers drain a shared index stream, so a bounded
	// sweep over thousands of tasks costs `limit` goroutines, not n
	// parked ones. After an early stop, workers keep draining the
	// stream but settle the remaining indices with the cancellation
	// error without running them.
	results := make(chan outcome[T], n)
	indices := make(chan int)
	for w := 0; w < limit; w++ {
		go func() {
			for i := range indices {
				if err := cctx.Err(); err != nil {
					var zero T
					results <- outcome[T]{idx: i, val: zero, err: err}
					continue
				}
				v, err := call(cctx, i)
				results <- outcome[T]{idx: i, val: v, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			indices <- i
		}
		close(indices)
	}()
	stopped := false
	for done := 0; done < n; done++ {
		r := <-results
		if !observe(r.idx, r.val, r.err) && !stopped {
			stopped = true
			cancel()
		}
	}
}
