// Package nodeengine implements the storage-node side of the TRAP-ERC
// protocol once, independently of any transport: the chunk table with
// its version vectors and the atomic conditional operations of
// Algorithms 1–2 (CompareAndPut, CompareAndAdd, PutChunkIfFresher),
// plus the unconditional put/read/delete/wipe surface.
//
// An Engine implements the full client.NodeClient semantics over a
// pluggable ChunkStore, so every deployment shape shares the same
// protocol state machine and differs only in how requests arrive and
// where chunks rest:
//
//   - the in-process simulator (internal/sim) wraps an Engine with
//     injected latency and fail-stop fault injection;
//   - the TCP node server (transport/tcp) serves an Engine over real
//     sockets, as run by the cmd/trapnode daemon;
//   - memstore keeps chunks in memory, diskstore makes every mutation
//     durable on disk.
//
// The engine serialises all operations with an internal lock — that
// per-node atomicity is what the protocol's conditional parity updates
// rely on — so a ChunkStore never sees concurrent calls and needs no
// locking of its own.
//
// # Integrity metadata
//
// Every chunk carries a Meta block, stored separately from the data it
// covers (see DESIGN.md §6): a self-sum — the engine's own hash of the
// chunk bytes, recomputed on every mutation and verified on every
// content read, so bit-rot on an honest node surfaces as
// client.ErrCorrupt at the source — and the cross-checksum record the
// writers distribute (client.BlockSum entries, themselves guarded by a
// hash of the record vector so corrupt metadata is dropped rather than
// trusted). The record is what lets *readers* convict a node that lies
// consistently: such a node forges its own metadata, but not the
// copies its peers hold.
package nodeengine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/chunkmeta"
	"trapquorum/internal/erasure"
	"trapquorum/internal/gf256"
)

// Meta is the integrity metadata stored beside a chunk: the node's own
// content hash plus the writer-distributed cross-checksum record.
// Stores persist it opaquely; the type lives in internal/chunkmeta so
// stores can reference it without importing this package.
type Meta = chunkmeta.Meta

// ChunkStore is the persistence layer under an Engine: a mapping from
// chunk id to (data, version vector, integrity metadata). The engine
// serialises every call, so implementations need no internal locking;
// they decide only where the bytes live (memory, disk) and what
// "durable" means. A mutation (Put, Delete, Wipe) must be durable by
// the time it returns — the engine acknowledges the operation to the
// protocol immediately after.
type ChunkStore interface {
	// Get returns the chunk stored under id, or ok == false. The
	// returned slices are owned by the store: the caller must not
	// mutate them, and they are only valid until the next mutating
	// call for the same id. A store that detects its copy is damaged
	// (a quarantined on-disk chunk) returns an error wrapping
	// client.ErrCorrupt.
	Get(id client.ChunkID) (data []byte, versions []uint64, meta Meta, ok bool, err error)
	// Put stores the chunk, replacing any previous value (including a
	// corrupt one). The store copies all slices; the caller keeps
	// ownership of its buffers.
	Put(id client.ChunkID, data []byte, versions []uint64, meta Meta) error
	// Delete removes the chunk. Deleting a missing chunk is a no-op.
	Delete(id client.ChunkID) error
	// Wipe removes every chunk (media replacement).
	Wipe() error
	// Len reports how many chunks are stored.
	Len() (int, error)
	// Close releases the store's resources. Mutations are durable
	// when they return, so Close has nothing to flush.
	Close() error
}

// BatchStore is the optional group-commit surface of a ChunkStore.
// The staged variants record the mutation (immediately visible to the
// engine's serialised reads) and return a wait function that blocks
// until the mutation is durable. The engine stages under its lock and
// waits after releasing it, so concurrent mutations pile into one
// batch and share a single fsync instead of each paying their own.
// Batching reports whether the store is actually operating in that
// mode; a store that implements the interface but reports false is
// driven through the plain synchronous ChunkStore calls.
type BatchStore interface {
	ChunkStore
	Batching() bool
	PutBatched(id client.ChunkID, data []byte, versions []uint64, meta Meta) (wait func() error, err error)
	DeleteBatched(id client.ChunkID) (wait func() error, err error)
	WipeBatched() (wait func() error, err error)
}

// Scanner is the optional at-rest audit surface of a ChunkStore: Scan
// re-verifies the durable copies (not a cached mirror) and returns the
// ids found corrupt, quarantining them so subsequent reads fail with
// client.ErrCorrupt until a repair rewrites them. The diskstore
// implements it; a purely in-memory store has no colder copy to check
// and need not.
type Scanner interface {
	Scan() ([]client.ChunkID, error)
}

// Metrics counts the operations an engine served. The protocol
// counters (reads, writes, adds, version queries/rejects, corrupt
// rejects, served operations) are maintained by the engine itself; the
// transport counters DownRejects and CtxAborts are maintained by
// whatever wraps the engine (the simulator's fail-stop switch, a
// network server's admission path). All fields are safe for concurrent
// reads while the engine runs.
type Metrics struct {
	Reads            atomic.Int64
	Writes           atomic.Int64
	Adds             atomic.Int64
	VersionQueries   atomic.Int64
	VersionRejects   atomic.Int64
	CorruptRejects   atomic.Int64
	DownRejects      atomic.Int64
	CtxAborts        atomic.Int64
	ServedOperations atomic.Int64
}

// Engine is the transport-neutral node runtime. It is safe for
// concurrent use; operations serialise on an internal lock, giving the
// per-node atomicity the protocol's conditional updates require.
//
// Context handling follows the client contract's all-or-nothing rule
// the way a local call can: an engine operation whose context is
// already cancelled on entry fails with the context's error and leaves
// the store untouched; once an operation starts it runs to completion
// and reports its real outcome. Transports layer their own
// cancellation windows (latency injection, sockets) on top.
type Engine struct {
	name       string
	mu         sync.Mutex
	store      ChunkStore
	batch      BatchStore        // non-nil when store group-commits (see BatchStore)
	scratch    []uint64          // version-vector scratch, guarded by mu
	recScratch []client.BlockSum // record staging scratch, guarded by mu
	recBytes   []byte            // record hashing scratch, guarded by mu
	metrics    Metrics

	// Cached placement-epoch guard state (see epoch.go): the retired
	// watermark EpochGuard checks on every tagged operation, lazily
	// primed from the store's reserved epoch chunk.
	epochRetired atomic.Uint64
	epochLoaded  atomic.Bool
}

// Compile-time conformance with the public transport contract.
var _ client.NodeClient = (*Engine)(nil)

// Option customises an Engine.
type Option func(*Engine)

// WithName sets the label the engine uses in error messages (for
// example "node 3" or a listen address). The default is "node".
func WithName(name string) Option {
	return func(e *Engine) { e.name = name }
}

// New builds an engine over the given store. The caller hands the
// store to the engine; Close closes it.
func New(store ChunkStore, opts ...Option) *Engine {
	e := &Engine{name: "node", store: store}
	if bs, ok := store.(BatchStore); ok && bs.Batching() {
		e.batch = bs
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name returns the engine's error-message label.
func (e *Engine) Name() string { return e.name }

// Metrics exposes the engine's operation counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Close closes the underlying store. The engine is unusable
// afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Close()
}

// begin is the common entry gate: it rejects an already-expired
// context, then takes the engine lock and counts the operation.
func (e *Engine) begin(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		e.metrics.CtxAborts.Add(1)
		return err
	}
	e.mu.Lock()
	e.metrics.ServedOperations.Add(1)
	return nil
}

// mutate runs a staging body under the engine lock, releases the lock,
// and then blocks on the durability wait the body returned (if any).
// The caller must have passed begin already, so the lock is held on
// entry; it is always released before mutate returns. Bodies stage
// through stagePut/stageDelete/stageWipe — on a batching store the
// store call under the lock only stages (copying every input), so the
// fsync happens outside the engine lock and concurrent mutations share
// it; on a plain store the call is the synchronous durability point
// and wait comes back nil.
func (e *Engine) mutate(body func() (wait func() error, err error)) error {
	wait, err := body()
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// stagePut commits chunk state through the store's batching surface
// when it has one, else synchronously. Caller holds mu; all slices are
// copied before return.
func (e *Engine) stagePut(id client.ChunkID, data []byte, versions []uint64, meta Meta) (func() error, error) {
	if e.batch != nil {
		return e.batch.PutBatched(id, data, versions, meta)
	}
	return nil, e.store.Put(id, data, versions, meta)
}

// stageDelete is the delete twin of stagePut.
func (e *Engine) stageDelete(id client.ChunkID) (func() error, error) {
	if e.batch != nil {
		return e.batch.DeleteBatched(id)
	}
	return nil, e.store.Delete(id)
}

// stageWipe is the wipe twin of stagePut.
func (e *Engine) stageWipe() (func() error, error) {
	if e.batch != nil {
		return e.batch.WipeBatched()
	}
	return nil, e.store.Wipe()
}

// sumRecord hashes the encoded record entries; the separate hash is
// what makes the checksum vector self-verifying. Caller holds mu.
func (e *Engine) sumRecord(rec []client.BlockSum) uint64 {
	buf := e.recBytes[:0]
	for _, s := range rec {
		buf = binary.LittleEndian.AppendUint64(buf, s.Version)
		buf = binary.LittleEndian.AppendUint64(buf, s.Sum)
	}
	e.recBytes = buf[:0]
	return erasure.Sum64(buf)
}

// liveRec returns the record when its guard hash verifies, nil
// otherwise — corrupt metadata is dropped, never served. Caller holds
// mu.
func (e *Engine) liveRec(meta Meta) []client.BlockSum {
	if len(meta.Rec) == 0 || e.sumRecord(meta.Rec) != meta.RecSum {
		return nil
	}
	return meta.Rec
}

// checkSelf verifies the chunk's data against its self-sum; a mismatch
// is bit-rot caught at the source. Caller holds mu.
func (e *Engine) checkSelf(id client.ChunkID, data []byte, meta Meta) error {
	if meta.HasSelf && erasure.Sum64(data) != meta.Self {
		e.metrics.CorruptRejects.Add(1)
		return fmt.Errorf("%w: %s on %s fails self-checksum", client.ErrCorrupt, id, e.name)
	}
	return nil
}

// stageRec merges incoming checksum entries into the stored record and
// returns the record to persist (a scratch slice, valid until the next
// engine operation). nslots is the new version-vector length; slot
// addresses the entry a single-sum conditional update refers to, and is
// negative for the full-chunk puts (where a single entry is only
// meaningful when the chunk has one slot). Caller holds mu.
func (e *Engine) stageRec(old []client.BlockSum, nslots int, sums []client.BlockSum, slot int) ([]client.BlockSum, error) {
	if len(sums) == 0 && len(old) == 0 {
		return nil, nil
	}
	if len(sums) > 1 && len(sums) != nslots {
		return nil, fmt.Errorf("%w: %d checksum entries for %d version slots", client.ErrBadRequest, len(sums), nslots)
	}
	rec := e.recScratch[:0]
	for i := 0; i < nslots; i++ {
		var entry client.BlockSum
		if len(old) == nslots {
			entry = old[i]
		}
		rec = append(rec, entry)
	}
	e.recScratch = rec[:0]
	switch {
	case len(sums) == nslots:
		for i, s := range sums {
			if s.Version != 0 {
				rec[i] = s
			}
		}
	case len(sums) == 1:
		at := slot
		if at < 0 {
			return nil, fmt.Errorf("%w: single checksum entry for %d version slots", client.ErrBadRequest, nslots)
		}
		if sums[0].Version != 0 {
			rec[at] = sums[0]
		}
	}
	return rec, nil
}

// stageMeta assembles the metadata persisted with a mutation: a fresh
// self-sum over the new data plus the merged record. Caller holds mu.
func (e *Engine) stageMeta(data []byte, rec []client.BlockSum) Meta {
	m := Meta{Self: erasure.Sum64(data), HasSelf: true}
	if len(rec) > 0 {
		m.Rec = rec
		m.RecSum = e.sumRecord(rec)
	}
	return m
}

// ReadChunk returns a deep copy of the chunk, or client.ErrNotFound;
// content failing the self-checksum returns client.ErrCorrupt.
func (e *Engine) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	e.metrics.Reads.Add(1)
	if err := e.begin(ctx); err != nil {
		return client.Chunk{}, err
	}
	defer e.mu.Unlock()
	data, versions, meta, ok, err := e.store.Get(id)
	if err != nil {
		return client.Chunk{}, err
	}
	if !ok {
		return client.Chunk{}, e.notFound(id)
	}
	if err := e.checkSelf(id, data, meta); err != nil {
		return client.Chunk{}, err
	}
	return client.Chunk{
		Data:     append([]byte(nil), data...),
		Versions: append([]uint64(nil), versions...),
		Sums:     append([]client.BlockSum(nil), e.liveRec(meta)...),
	}, nil
}

// ReadVersions returns a copy of the chunk's version vector and
// cross-checksum record, or client.ErrNotFound. This is the
// "u.version(id)" probe of Algorithms 1–2; it stays a metadata-only
// operation — the data bytes are not hashed here, so probing cannot
// regress to content-read cost — but a store-level quarantine (cold
// bit-rot found by a disk scan) still surfaces as client.ErrCorrupt.
func (e *Engine) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, []client.BlockSum, error) {
	e.metrics.VersionQueries.Add(1)
	if err := e.begin(ctx); err != nil {
		return nil, nil, err
	}
	defer e.mu.Unlock()
	_, versions, meta, ok, err := e.store.Get(id)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, e.notFound(id)
	}
	var sums []client.BlockSum
	if rec := e.liveRec(meta); len(rec) > 0 {
		sums = append(sums, rec...)
	}
	return append([]uint64(nil), versions...), sums, nil
}

// PutChunk stores a full chunk (data plus version vector), replacing
// any previous value — including a corrupt one, which is how repair
// clears a quarantine. Used for data-block writes, bootstrap and
// repair. The inputs are copied.
func (e *Engine) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	e.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunk needs at least one version", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		var old []client.BlockSum
		if _, _, meta, ok, err := e.store.Get(id); err == nil && ok {
			old = e.liveRec(meta)
		}
		rec, err := e.stageRec(old, len(versions), sums, -1)
		if err != nil {
			return nil, err
		}
		return e.stagePut(id, data, versions, e.stageMeta(data, rec))
	})
}

// CompareAndPut overwrites the chunk's data only when version slot
// `slot` currently holds expect, then sets it to next. It returns
// client.ErrVersionMismatch otherwise. Used by data nodes so that a
// delayed stale writer cannot clobber a newer block. The check and the
// write are atomic under the engine lock.
func (e *Engine) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	e.metrics.Writes.Add(1)
	if len(sum) > 1 {
		return fmt.Errorf("%w: CompareAndPut takes at most one checksum entry", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		_, versions, meta, ok, err := e.store.Get(id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, e.notFound(id)
		}
		if slot < 0 || slot >= len(versions) {
			return nil, fmt.Errorf("%w: version slot %d of %d", client.ErrBadRequest, slot, len(versions))
		}
		if versions[slot] != expect {
			e.metrics.VersionRejects.Add(1)
			return nil, fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, versions[slot], expect)
		}
		rec, err := e.stageRec(e.liveRec(meta), len(versions), sum, slot)
		if err != nil {
			return nil, err
		}
		newMeta := e.stageMeta(data, rec)
		vers := e.stageVersions(versions)
		vers[slot] = next
		return e.stagePut(id, data, vers, newMeta)
	})
}

// CompareAndAdd XORs delta into the chunk's data when version slot
// `slot` currently holds expect, then advances the slot to next — the
// conditional "u.add(α_{i,j}·(x−chunk))" of Algorithm 1 lines 26–28.
// A mismatch (stale or too-new parity) yields
// client.ErrVersionMismatch and leaves the chunk untouched; content
// failing the self-checksum yields client.ErrCorrupt, because folding
// a delta into rotten parity would launder the corruption into a
// well-versioned chunk.
func (e *Engine) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	e.metrics.Adds.Add(1)
	if len(sum) > 1 {
		return fmt.Errorf("%w: CompareAndAdd takes at most one checksum entry", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		data, versions, meta, ok, err := e.store.Get(id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, e.notFound(id)
		}
		if slot < 0 || slot >= len(versions) {
			return nil, fmt.Errorf("%w: version slot %d of %d", client.ErrBadRequest, slot, len(versions))
		}
		if len(delta) != len(data) {
			return nil, fmt.Errorf("%w: delta size %d, chunk size %d", client.ErrBadRequest, len(delta), len(data))
		}
		if versions[slot] != expect {
			e.metrics.VersionRejects.Add(1)
			return nil, fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, versions[slot], expect)
		}
		if err := e.checkSelf(id, data, meta); err != nil {
			return nil, err
		}
		rec, err := e.stageRec(e.liveRec(meta), len(versions), sum, slot)
		if err != nil {
			return nil, err
		}
		// The summed bytes are staged in a pooled buffer so the store's
		// current data stays untouched until Put commits the mutation —
		// a durable store that fails mid-write must not have corrupted
		// its in-memory view. The store copies at stage time, so the
		// buffer goes back to the pool before the durability wait.
		acc := blockpool.GetBlock(len(data))
		copy(acc.B, data)
		gf256.XorSlice(acc.B, delta)
		newMeta := e.stageMeta(acc.B, rec)
		vers := e.stageVersions(versions)
		vers[slot] = next
		wait, err := e.stagePut(id, acc.B, vers, newMeta)
		acc.Release()
		return wait, err
	})
}

// PutChunkIfFresher installs a chunk only when it does not regress any
// version slot of an existing chunk: the proposed version vector must
// be componentwise ≥ the stored one (a missing chunk always accepts;
// an identical vector is an idempotent no-op). Repair uses this so
// that a rebuild gathered before a concurrent write cannot overwrite
// the write's newer state; the mismatch surfaces as
// client.ErrVersionMismatch and the repair is retried. A stored chunk
// the store reports corrupt accepts any install — the repair's rebuild
// is strictly better than quarantined rot.
func (e *Engine) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	e.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunkIfFresher needs at least one version", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		var old []client.BlockSum
		_, stored, meta, ok, err := e.store.Get(id)
		if err != nil {
			if !isCorrupt(err) {
				return nil, err
			}
			ok = false // quarantined: treat as absent so the rebuild lands
		}
		if ok {
			if len(stored) != len(versions) {
				return nil, fmt.Errorf("%w: version vector length %d vs stored %d", client.ErrBadRequest, len(versions), len(stored))
			}
			for slot, v := range stored {
				if versions[slot] < v {
					e.metrics.VersionRejects.Add(1)
					return nil, fmt.Errorf("%w: slot %d would regress %d -> %d", client.ErrVersionMismatch, slot, v, versions[slot])
				}
			}
			old = e.liveRec(meta)
		}
		rec, err := e.stageRec(old, len(versions), sums, -1)
		if err != nil {
			return nil, err
		}
		return e.stagePut(id, data, versions, e.stageMeta(data, rec))
	})
}

// DeleteChunk removes a chunk. Deleting a missing chunk is a no-op,
// mirroring idempotent deletion (used by garbage collection and by
// failure-injection tests).
func (e *Engine) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		return e.stageDelete(id)
	})
}

// HasChunk reports whether the node stores the chunk. A quarantined
// chunk exists (repair decides what to do with it), so it reports
// true.
func (e *Engine) HasChunk(ctx context.Context, id client.ChunkID) (bool, error) {
	if err := e.begin(ctx); err != nil {
		return false, err
	}
	defer e.mu.Unlock()
	_, _, _, ok, err := e.store.Get(id)
	if err != nil && isCorrupt(err) {
		return true, nil
	}
	return ok, err
}

// ChunkCount reports how many chunks the node stores.
func (e *Engine) ChunkCount(ctx context.Context) (int, error) {
	if err := e.begin(ctx); err != nil {
		return 0, err
	}
	defer e.mu.Unlock()
	return e.store.Len()
}

// Wipe erases the node's store, simulating media loss; typically
// followed by the repair protocol refilling the node. The persisted
// epoch state is wiped with everything else — a node returning on a
// fresh disk has forgotten the fence and waits for the coordinator's
// next SetEpoch broadcast, exactly like a brand-new node.
func (e *Engine) Wipe(ctx context.Context) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		e.epochRetired.Store(0)
		e.epochLoaded.Store(true)
		return e.stageWipe()
	})
}

// VerifyStore audits the store's at-rest state when the store supports
// it (see Scanner): corrupt chunks are quarantined and their ids
// returned, so a maintenance loop can run it periodically and scrub
// finds cold bit-rot without waiting for a client read. Stores without
// an at-rest audit return (nil, nil).
func (e *Engine) VerifyStore(ctx context.Context) ([]client.ChunkID, error) {
	if err := e.begin(ctx); err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	sc, ok := e.store.(Scanner)
	if !ok {
		return nil, nil
	}
	return sc.Scan()
}

// stageVersions copies a version vector into the engine's scratch
// slice (valid until the next engine operation — safe because the
// engine lock is held until the store call returns).
func (e *Engine) stageVersions(versions []uint64) []uint64 {
	e.scratch = append(e.scratch[:0], versions...)
	return e.scratch
}

func (e *Engine) notFound(id client.ChunkID) error {
	return fmt.Errorf("%w: %s on %s", client.ErrNotFound, id, e.name)
}
