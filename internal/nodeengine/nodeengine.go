// Package nodeengine implements the storage-node side of the TRAP-ERC
// protocol once, independently of any transport: the chunk table with
// its version vectors and the atomic conditional operations of
// Algorithms 1–2 (CompareAndPut, CompareAndAdd, PutChunkIfFresher),
// plus the unconditional put/read/delete/wipe surface.
//
// An Engine implements the full client.NodeClient semantics over a
// pluggable ChunkStore, so every deployment shape shares the same
// protocol state machine and differs only in how requests arrive and
// where chunks rest:
//
//   - the in-process simulator (internal/sim) wraps an Engine with
//     injected latency and fail-stop fault injection;
//   - the TCP node server (transport/tcp) serves an Engine over real
//     sockets, as run by the cmd/trapnode daemon;
//   - memstore keeps chunks in memory, diskstore makes every mutation
//     durable on disk.
//
// The engine serialises all operations with an internal lock — that
// per-node atomicity is what the protocol's conditional parity updates
// rely on — so a ChunkStore never sees concurrent calls and needs no
// locking of its own.
package nodeengine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/gf256"
)

// ChunkStore is the persistence layer under an Engine: a mapping from
// chunk id to (data, version vector). The engine serialises every call,
// so implementations need no internal locking; they decide only where
// the bytes live (memory, disk) and what "durable" means. A mutation
// (Put, Delete, Wipe) must be durable by the time it returns — the
// engine acknowledges the operation to the protocol immediately after.
type ChunkStore interface {
	// Get returns the chunk stored under id, or ok == false. The
	// returned slices are owned by the store: the caller must not
	// mutate them, and they are only valid until the next mutating
	// call for the same id.
	Get(id client.ChunkID) (data []byte, versions []uint64, ok bool, err error)
	// Put stores the chunk, replacing any previous value. The store
	// copies both slices; the caller keeps ownership of its buffers.
	Put(id client.ChunkID, data []byte, versions []uint64) error
	// Delete removes the chunk. Deleting a missing chunk is a no-op.
	Delete(id client.ChunkID) error
	// Wipe removes every chunk (media replacement).
	Wipe() error
	// Len reports how many chunks are stored.
	Len() (int, error)
	// Close releases the store's resources. Mutations are durable
	// when they return, so Close has nothing to flush.
	Close() error
}

// Metrics counts the operations an engine served. The protocol
// counters (reads, writes, adds, version queries/rejects, served
// operations) are maintained by the engine itself; the transport
// counters DownRejects and CtxAborts are maintained by whatever wraps
// the engine (the simulator's fail-stop switch, a network server's
// admission path). All fields are safe for concurrent reads while the
// engine runs.
type Metrics struct {
	Reads            atomic.Int64
	Writes           atomic.Int64
	Adds             atomic.Int64
	VersionQueries   atomic.Int64
	VersionRejects   atomic.Int64
	DownRejects      atomic.Int64
	CtxAborts        atomic.Int64
	ServedOperations atomic.Int64
}

// Engine is the transport-neutral node runtime. It is safe for
// concurrent use; operations serialise on an internal lock, giving the
// per-node atomicity the protocol's conditional updates require.
//
// Context handling follows the client contract's all-or-nothing rule
// the way a local call can: an engine operation whose context is
// already cancelled on entry fails with the context's error and leaves
// the store untouched; once an operation starts it runs to completion
// and reports its real outcome. Transports layer their own
// cancellation windows (latency injection, sockets) on top.
type Engine struct {
	name    string
	mu      sync.Mutex
	store   ChunkStore
	scratch []uint64 // version-vector scratch, guarded by mu
	metrics Metrics
}

// Compile-time conformance with the public transport contract.
var _ client.NodeClient = (*Engine)(nil)

// Option customises an Engine.
type Option func(*Engine)

// WithName sets the label the engine uses in error messages (for
// example "node 3" or a listen address). The default is "node".
func WithName(name string) Option {
	return func(e *Engine) { e.name = name }
}

// New builds an engine over the given store. The caller hands the
// store to the engine; Close closes it.
func New(store ChunkStore, opts ...Option) *Engine {
	e := &Engine{name: "node", store: store}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name returns the engine's error-message label.
func (e *Engine) Name() string { return e.name }

// Metrics exposes the engine's operation counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Close closes the underlying store. The engine is unusable
// afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Close()
}

// begin is the common entry gate: it rejects an already-expired
// context, then takes the engine lock and counts the operation.
func (e *Engine) begin(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		e.metrics.CtxAborts.Add(1)
		return err
	}
	e.mu.Lock()
	e.metrics.ServedOperations.Add(1)
	return nil
}

// ReadChunk returns a deep copy of the chunk, or client.ErrNotFound.
func (e *Engine) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	e.metrics.Reads.Add(1)
	if err := e.begin(ctx); err != nil {
		return client.Chunk{}, err
	}
	defer e.mu.Unlock()
	data, versions, ok, err := e.store.Get(id)
	if err != nil {
		return client.Chunk{}, err
	}
	if !ok {
		return client.Chunk{}, e.notFound(id)
	}
	return client.Chunk{
		Data:     append([]byte(nil), data...),
		Versions: append([]uint64(nil), versions...),
	}, nil
}

// ReadVersions returns a copy of the chunk's version vector, or
// client.ErrNotFound. This is the "u.version(id)" probe of
// Algorithms 1–2.
func (e *Engine) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, error) {
	e.metrics.VersionQueries.Add(1)
	if err := e.begin(ctx); err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	_, versions, ok, err := e.store.Get(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, e.notFound(id)
	}
	return append([]uint64(nil), versions...), nil
}

// PutChunk stores a full chunk (data plus version vector), replacing
// any previous value. Used for data-block writes, bootstrap and
// repair. The inputs are copied.
func (e *Engine) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64) error {
	e.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunk needs at least one version", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	return e.store.Put(id, data, versions)
}

// CompareAndPut overwrites the chunk's data only when version slot
// `slot` currently holds expect, then sets it to next. It returns
// client.ErrVersionMismatch otherwise. Used by data nodes so that a
// delayed stale writer cannot clobber a newer block. The check and the
// write are atomic under the engine lock.
func (e *Engine) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte) error {
	e.metrics.Writes.Add(1)
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	_, versions, ok, err := e.store.Get(id)
	if err != nil {
		return err
	}
	if !ok {
		return e.notFound(id)
	}
	if slot < 0 || slot >= len(versions) {
		return fmt.Errorf("%w: version slot %d of %d", client.ErrBadRequest, slot, len(versions))
	}
	if versions[slot] != expect {
		e.metrics.VersionRejects.Add(1)
		return fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, versions[slot], expect)
	}
	vers := e.stageVersions(versions)
	vers[slot] = next
	return e.store.Put(id, data, vers)
}

// CompareAndAdd XORs delta into the chunk's data when version slot
// `slot` currently holds expect, then advances the slot to next — the
// conditional "u.add(α_{i,j}·(x−chunk))" of Algorithm 1 lines 26–28.
// A mismatch (stale or too-new parity) yields
// client.ErrVersionMismatch and leaves the chunk untouched.
func (e *Engine) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte) error {
	e.metrics.Adds.Add(1)
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	data, versions, ok, err := e.store.Get(id)
	if err != nil {
		return err
	}
	if !ok {
		return e.notFound(id)
	}
	if slot < 0 || slot >= len(versions) {
		return fmt.Errorf("%w: version slot %d of %d", client.ErrBadRequest, slot, len(versions))
	}
	if len(delta) != len(data) {
		return fmt.Errorf("%w: delta size %d, chunk size %d", client.ErrBadRequest, len(delta), len(data))
	}
	if versions[slot] != expect {
		e.metrics.VersionRejects.Add(1)
		return fmt.Errorf("%w: slot %d holds %d, expected %d", client.ErrVersionMismatch, slot, versions[slot], expect)
	}
	// The summed bytes are staged in a pooled buffer so the store's
	// current data stays untouched until Put commits the mutation —
	// a durable store that fails mid-write must not have corrupted
	// its in-memory view.
	sum := blockpool.GetBlock(len(data))
	copy(sum.B, data)
	gf256.XorSlice(sum.B, delta)
	vers := e.stageVersions(versions)
	vers[slot] = next
	err = e.store.Put(id, sum.B, vers)
	sum.Release()
	return err
}

// PutChunkIfFresher installs a chunk only when it does not regress any
// version slot of an existing chunk: the proposed version vector must
// be componentwise ≥ the stored one (a missing chunk always accepts;
// an identical vector is an idempotent no-op). Repair uses this so
// that a rebuild gathered before a concurrent write cannot overwrite
// the write's newer state; the mismatch surfaces as
// client.ErrVersionMismatch and the repair is retried.
func (e *Engine) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64) error {
	e.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunkIfFresher needs at least one version", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	_, stored, ok, err := e.store.Get(id)
	if err != nil {
		return err
	}
	if ok {
		if len(stored) != len(versions) {
			return fmt.Errorf("%w: version vector length %d vs stored %d", client.ErrBadRequest, len(versions), len(stored))
		}
		for slot, v := range stored {
			if versions[slot] < v {
				e.metrics.VersionRejects.Add(1)
				return fmt.Errorf("%w: slot %d would regress %d -> %d", client.ErrVersionMismatch, slot, v, versions[slot])
			}
		}
	}
	return e.store.Put(id, data, versions)
}

// DeleteChunk removes a chunk. Deleting a missing chunk is a no-op,
// mirroring idempotent deletion (used by garbage collection and by
// failure-injection tests).
func (e *Engine) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	return e.store.Delete(id)
}

// HasChunk reports whether the node stores the chunk.
func (e *Engine) HasChunk(ctx context.Context, id client.ChunkID) (bool, error) {
	if err := e.begin(ctx); err != nil {
		return false, err
	}
	defer e.mu.Unlock()
	_, _, ok, err := e.store.Get(id)
	return ok, err
}

// ChunkCount reports how many chunks the node stores.
func (e *Engine) ChunkCount(ctx context.Context) (int, error) {
	if err := e.begin(ctx); err != nil {
		return 0, err
	}
	defer e.mu.Unlock()
	return e.store.Len()
}

// Wipe erases the node's store, simulating media loss; typically
// followed by the repair protocol refilling the node.
func (e *Engine) Wipe(ctx context.Context) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	return e.store.Wipe()
}

// stageVersions copies a version vector into the engine's scratch
// slice (valid until the next engine operation — safe because the
// engine lock is held until the store call returns).
func (e *Engine) stageVersions(versions []uint64) []uint64 {
	e.scratch = append(e.scratch[:0], versions...)
	return e.scratch
}

func (e *Engine) notFound(id client.ChunkID) error {
	return fmt.Errorf("%w: %s on %s", client.ErrNotFound, id, e.name)
}
