package nodeengine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/memstore"
)

func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	e := New(memstore.New(), WithName("test node"))
	t.Cleanup(func() { e.Close() })
	return e
}

func TestPutReadRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 7, Shard: 2}
	if err := e.PutChunk(context.Background(), id, []byte{1, 2, 3}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "\x01\x02\x03" || got.Versions[0] != 5 {
		t.Fatalf("got %+v", got)
	}
	vers, _, err := e.ReadVersions(context.Background(), id)
	if err != nil || len(vers) != 1 || vers[0] != 5 {
		t.Fatalf("versions = %v, %v", vers, err)
	}
}

func TestMissingChunkErrors(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 1}
	if _, err := e.ReadChunk(context.Background(), id); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("ReadChunk err = %v", err)
	}
	if _, _, err := e.ReadVersions(context.Background(), id); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("ReadVersions err = %v", err)
	}
	if err := e.CompareAndPut(context.Background(), id, 0, 0, 1, []byte{1}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("CompareAndPut err = %v", err)
	}
	if err := e.CompareAndAdd(context.Background(), id, 0, 0, 1, []byte{1}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("CompareAndAdd err = %v", err)
	}
}

func TestCompareAndPutSemantics(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 3}
	if err := e.PutChunk(context.Background(), id, []byte{1}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompareAndPut(context.Background(), id, 0, 4, 5, []byte{2}); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadChunk(context.Background(), id)
	if got.Data[0] != 2 || got.Versions[0] != 5 {
		t.Fatalf("after CAP: %+v", got)
	}
	// Wrong expectation: rejected, state unchanged.
	if err := e.CompareAndPut(context.Background(), id, 0, 4, 6, []byte{3}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	got, _ = e.ReadChunk(context.Background(), id)
	if got.Data[0] != 2 || got.Versions[0] != 5 {
		t.Fatalf("mismatch mutated chunk: %+v", got)
	}
	// Bad slot.
	if err := e.CompareAndPut(context.Background(), id, 3, 5, 6, []byte{1}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompareAndAddSemantics(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 3, Shard: 8}
	if err := e.PutChunk(context.Background(), id, []byte{0xf0, 0x0f}, []uint64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompareAndAdd(context.Background(), id, 1, 1, 2, []byte{0x0f, 0x0f}); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadChunk(context.Background(), id)
	if got.Data[0] != 0xff || got.Data[1] != 0x00 {
		t.Fatalf("XOR wrong: %v", got.Data)
	}
	if got.Versions[0] != 1 || got.Versions[1] != 2 || got.Versions[2] != 1 {
		t.Fatalf("versions wrong: %v", got.Versions)
	}
	// Stale expectation rejected without mutation.
	if err := e.CompareAndAdd(context.Background(), id, 1, 1, 3, []byte{1, 1}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	// Size mismatch.
	if err := e.CompareAndAdd(context.Background(), id, 1, 2, 3, []byte{1}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutChunkIfFresherSemantics(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 1}
	// Missing chunk: installs.
	if err := e.PutChunkIfFresher(context.Background(), id, []byte{1, 1}, []uint64{5, 2}); err != nil {
		t.Fatal(err)
	}
	// Regression in slot 0: rejected.
	if err := e.PutChunkIfFresher(context.Background(), id, []byte{9, 9}, []uint64{4, 3}); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	// Componentwise >=: accepted.
	if err := e.PutChunkIfFresher(context.Background(), id, []byte{7, 7}, []uint64{5, 3}); err != nil {
		t.Fatal(err)
	}
	// Shape mismatch.
	if err := e.PutChunkIfFresher(context.Background(), id, []byte{2}, []uint64{9}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	// Empty vector.
	if err := e.PutChunkIfFresher(context.Background(), id, []byte{2}, nil); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteHasWipeCount(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	a := client.ChunkID{Stripe: 1}
	b := client.ChunkID{Stripe: 2}
	for _, id := range []client.ChunkID{a, b} {
		if err := e.PutChunk(ctx, id, []byte{1}, []uint64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := e.ChunkCount(ctx); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if err := e.DeleteChunk(ctx, a); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.HasChunk(ctx, a); ok {
		t.Fatal("chunk survived delete")
	}
	// Idempotent delete.
	if err := e.DeleteChunk(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := e.Wipe(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.ChunkCount(ctx); n != 0 {
		t.Fatalf("count after wipe = %d", n)
	}
}

func TestExpiredContextRejectedUpFront(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.PutChunk(ctx, client.ChunkID{}, []byte{1}, []uint64{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got, _, _, _, _ := e.store.Get(client.ChunkID{}); got != nil {
		t.Fatal("cancelled put reached the store")
	}
	if e.Metrics().CtxAborts.Load() == 0 {
		t.Fatal("ctx abort not counted")
	}
}

// TestConcurrentConditionalOpsSerialise drives many concurrent
// conditional adds at the same chunk: exactly one writer may win each
// version slot transition.
func TestConcurrentConditionalOpsSerialise(t *testing.T) {
	e := newTestEngine(t)
	id := client.ChunkID{Stripe: 1, Shard: 3}
	if err := e.PutChunk(context.Background(), id, []byte{0}, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var successes atomic.Int64
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.CompareAndAdd(context.Background(), id, 0, 0, 1, []byte{1}); err == nil {
				successes.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := successes.Load(); got != 1 {
		t.Fatalf("%d writers won the 0→1 transition, want exactly 1", got)
	}
	chunk, _ := e.ReadChunk(context.Background(), id)
	if chunk.Versions[0] != 1 || chunk.Data[0] != 1 {
		t.Fatalf("final chunk %+v", chunk)
	}
}

// failStore wraps memstore and fails Put after a programmable number
// of successes, modelling a store whose durability layer errors out.
type failStore struct {
	*memstore.Store
	allow int
}

func (f *failStore) Put(id client.ChunkID, data []byte, versions []uint64, meta Meta) error {
	if f.allow <= 0 {
		return fmt.Errorf("failstore: out of quota")
	}
	f.allow--
	return f.Store.Put(id, data, versions, meta)
}

// TestStoreErrorLeavesStateIntact: when the store rejects the commit,
// the engine must not have mutated the visible chunk (the staged-sum
// rule for CompareAndAdd).
func TestStoreErrorLeavesStateIntact(t *testing.T) {
	fs := &failStore{Store: memstore.New(), allow: 1}
	e := New(fs)
	defer e.Close()
	id := client.ChunkID{Stripe: 1}
	if err := e.PutChunk(context.Background(), id, []byte{0xf0}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompareAndAdd(context.Background(), id, 0, 1, 2, []byte{0x0f}); err == nil {
		t.Fatal("store failure not surfaced")
	}
	got, err := e.ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 0xf0 || got.Versions[0] != 1 {
		t.Fatalf("failed commit mutated chunk: %+v", got)
	}
}

func TestMetricsCounting(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	id := client.ChunkID{Stripe: 1}
	_ = e.PutChunk(ctx, id, []byte{1}, []uint64{1})
	_, _ = e.ReadChunk(ctx, id)
	_, _, _ = e.ReadVersions(ctx, id)
	_ = e.CompareAndAdd(ctx, id, 0, 99, 100, []byte{1}) // version reject
	m := e.Metrics()
	if m.Writes.Load() != 1 || m.Reads.Load() != 1 || m.VersionQueries.Load() != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Adds.Load() != 1 || m.VersionRejects.Load() != 1 {
		t.Fatalf("add metrics = %+v", m)
	}
	if m.ServedOperations.Load() != 4 {
		t.Fatalf("served = %d", m.ServedOperations.Load())
	}
}
