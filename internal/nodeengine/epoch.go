package nodeengine

import (
	"context"
	"fmt"

	"trapquorum/client"
)

// Online reconfiguration: nodes persist the cluster's placement-epoch
// state — the (installed, retired) watermark pair plus the
// coordinator's opaque placement blob — and enforce the stale-epoch
// guard on tagged operations (see client.EpochSetter for the
// contract). The state rides the ordinary chunk store under a reserved
// id so it shares the store's durability (group commit, crash
// recovery) with no second persistence path.

// epochStateID is the reserved chunk holding the epoch state. The
// maximal stripe number can never collide with a placed stripe: the
// object service allocates stripe ids counting up from 1, and the
// low-level single-stripe store pins its callers' payloads at the
// stripe id they chose — practically small — never the top of the id
// space.
var epochStateID = client.ChunkID{Stripe: ^uint64(0), Shard: 0}

// loadEpochLocked primes the cached retired watermark from the store.
// Caller holds mu. Errors leave the cache unloaded so the next guard
// retries; a missing chunk is the zero state (nothing retired).
func (e *Engine) loadEpochLocked() (installed, retired uint64, blob []byte, err error) {
	data, versions, _, ok, err := e.store.Get(epochStateID)
	if err != nil {
		return 0, 0, nil, err
	}
	if !ok {
		data = nil
	} else if len(versions) >= 2 {
		installed, retired = versions[0], versions[1]
	}
	e.epochRetired.Store(retired)
	e.epochLoaded.Store(true)
	return installed, retired, data, nil
}

// EpochGuard rejects an operation tagged with a retired placement
// epoch. Tag 0 (untagged traffic) always passes. The retired watermark
// is cached in an atomic after the first load, so the per-operation
// cost on the hot path is one atomic read.
func (e *Engine) EpochGuard(tag uint64) error {
	if tag == 0 {
		return nil
	}
	if !e.epochLoaded.Load() {
		e.mu.Lock()
		_, _, _, err := e.loadEpochLocked()
		e.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if r := e.epochRetired.Load(); tag <= r {
		return fmt.Errorf("%w: epoch %d retired on %s (retired watermark %d)", client.ErrEpochStale, tag, e.name, r)
	}
	return nil
}

// SetEpoch durably records the epoch watermarks and placement blob.
// Both watermarks are monotone maxima — a replayed or reordered
// SetEpoch can repeat an advance but never regress one — which is what
// makes the operation replay-safe on an ambiguous connection. The blob
// is replaced only when the call carries the newest installed epoch.
func (e *Engine) SetEpoch(ctx context.Context, installed, retired uint64, blob []byte) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	return e.mutate(func() (func() error, error) {
		curInstalled, curRetired, curBlob, err := e.loadEpochLocked()
		if err != nil {
			return nil, err
		}
		newInstalled, newRetired, newBlob := curInstalled, curRetired, curBlob
		if installed > curInstalled {
			newInstalled = installed
			newBlob = blob
		} else if installed == curInstalled && len(blob) > 0 {
			newBlob = blob
		}
		if retired > curRetired {
			newRetired = retired
		}
		if newRetired >= newInstalled && newRetired > 0 {
			return nil, fmt.Errorf("%w: retiring epoch %d at installed epoch %d", client.ErrBadRequest, newRetired, newInstalled)
		}
		if newInstalled == curInstalled && newRetired == curRetired && bytesEqual(newBlob, curBlob) {
			e.epochRetired.Store(newRetired)
			return nil, nil // idempotent replay: nothing to persist
		}
		wait, err := e.stagePut(epochStateID, newBlob, []uint64{newInstalled, newRetired}, e.stageMeta(newBlob, nil))
		if err == nil {
			e.epochRetired.Store(newRetired)
		}
		return wait, err
	})
}

// EpochState reads back the persisted epoch watermarks and blob. A
// node that has never seen SetEpoch reports (0, 0, nil, nil).
func (e *Engine) EpochState(ctx context.Context) (installed, retired uint64, blob []byte, err error) {
	if err := e.begin(ctx); err != nil {
		return 0, 0, nil, err
	}
	defer e.mu.Unlock()
	installed, retired, data, err := e.loadEpochLocked()
	if err != nil {
		return 0, 0, nil, err
	}
	return installed, retired, append([]byte(nil), data...), nil
}

// bytesEqual avoids importing bytes for one comparison on a cold path.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
