package nodeengine

// This file is the engine half of the corruption fault-injection
// harness: deliberate, precisely-shaped damage to a stored chunk, used
// by the simulator's CorruptShard and by the e2e chaos tests. The modes
// mirror the failure taxonomy of DESIGN.md §6 — honest bit-rot
// (BitFlip, Truncate), which the self-checksum catches at the source,
// and a lying node (WrongData), which forges its own metadata so only
// the cross-checksum records held by its peers can convict it. The
// hooks write through the normal ChunkStore Put path, so on a durable
// store the damage survives restarts exactly like real media rot.

import (
	"context"
	"errors"
	"fmt"

	"trapquorum/client"
	"trapquorum/internal/erasure"
)

// CorruptionMode selects how CorruptChunk damages a chunk.
type CorruptionMode int

const (
	// CorruptBitFlip flips one bit of the stored data and leaves the
	// metadata untouched: classic silent bit-rot. The node's own
	// self-checksum detects it on the next content read.
	CorruptBitFlip CorruptionMode = iota + 1
	// CorruptTruncate drops the second half of the stored data and
	// leaves the metadata untouched: a torn or shortened file.
	CorruptTruncate
	// CorruptWrongData replaces the content with different bytes of the
	// same length and forges the node's own metadata (self-sum and the
	// node's own record entry) to match — a Byzantine node that lies
	// consistently. Its self-checks pass; only the cross-checksum
	// records held by other nodes expose it.
	CorruptWrongData
)

// String names the mode for test output.
func (m CorruptionMode) String() string {
	switch m {
	case CorruptBitFlip:
		return "bit-flip"
	case CorruptTruncate:
		return "truncate"
	case CorruptWrongData:
		return "wrong-data"
	default:
		return fmt.Sprintf("CorruptionMode(%d)", int(m))
	}
}

// CorruptChunk damages the stored chunk according to mode. It returns
// client.ErrNotFound when the chunk is absent and client.ErrBadRequest
// for an unknown mode or a chunk too small to damage. Fault-injection
// surface: not part of client.NodeClient, reachable only by harnesses
// holding the engine itself.
func (e *Engine) CorruptChunk(ctx context.Context, id client.ChunkID, mode CorruptionMode) error {
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	data, versions, meta, ok, err := e.store.Get(id)
	if err != nil && !isCorrupt(err) {
		return err
	}
	if !ok {
		return e.notFound(id)
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: cannot corrupt empty chunk %s", client.ErrBadRequest, id)
	}
	switch mode {
	case CorruptBitFlip:
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x01
		return e.store.Put(id, bad, versions, meta)
	case CorruptTruncate:
		bad := append([]byte(nil), data[:(len(data)+1)/2]...)
		return e.store.Put(id, bad, versions, meta)
	case CorruptWrongData:
		bad := append([]byte(nil), data...)
		for i := range bad {
			bad[i] ^= 0x5a
		}
		forged := Meta{Self: erasure.Sum64(bad), HasSelf: true}
		if rec := e.liveRec(meta); len(rec) > 0 {
			frec := append(e.recScratch[:0], rec...)
			e.recScratch = frec[:0]
			if len(versions) == 1 && len(frec) == 1 {
				// A data chunk's record entry is its own block: the liar
				// re-hashes so its metadata agrees with its content.
				frec[0] = client.BlockSum{Version: versions[0], Sum: forged.Self}
			}
			forged.Rec = frec
			forged.RecSum = e.sumRecord(frec)
		}
		return e.store.Put(id, bad, versions, forged)
	default:
		return fmt.Errorf("%w: unknown corruption mode %d", client.ErrBadRequest, int(mode))
	}
}

// ChunkSnapshot is a frozen copy of one chunk's full stored state,
// taken by SnapshotChunk and replayed by RestoreChunk — the
// stale-replay corruption mode (a node serving a valid-but-old state,
// e.g. a restored backup).
type ChunkSnapshot struct {
	id       client.ChunkID
	data     []byte
	versions []uint64
	meta     Meta
}

// ID returns the snapshotted chunk's id.
func (s ChunkSnapshot) ID() client.ChunkID { return s.id }

// SnapshotChunk copies the chunk's current stored state (data,
// versions and metadata verbatim) for a later RestoreChunk.
func (e *Engine) SnapshotChunk(ctx context.Context, id client.ChunkID) (ChunkSnapshot, error) {
	if err := e.begin(ctx); err != nil {
		return ChunkSnapshot{}, err
	}
	defer e.mu.Unlock()
	data, versions, meta, ok, err := e.store.Get(id)
	if err != nil {
		return ChunkSnapshot{}, err
	}
	if !ok {
		return ChunkSnapshot{}, e.notFound(id)
	}
	snap := ChunkSnapshot{
		id:       id,
		data:     append([]byte(nil), data...),
		versions: append([]uint64(nil), versions...),
		meta:     meta,
	}
	snap.meta.Rec = append([]client.BlockSum(nil), meta.Rec...)
	return snap, nil
}

// RestoreChunk writes a snapshot back verbatim, regressing the chunk
// to the snapshotted state — versions, checksums and all. The replayed
// state is internally consistent (it once was the truth), so only the
// protocol's version quorum and the newer records on other nodes
// expose it.
func (e *Engine) RestoreChunk(ctx context.Context, snap ChunkSnapshot) error {
	if len(snap.versions) == 0 {
		return fmt.Errorf("%w: empty snapshot", client.ErrBadRequest)
	}
	if err := e.begin(ctx); err != nil {
		return err
	}
	defer e.mu.Unlock()
	return e.store.Put(snap.id, snap.data, snap.versions, snap.meta)
}

func isCorrupt(err error) bool { return errors.Is(err, client.ErrCorrupt) }
