// Package chunkmeta defines the integrity metadata stored beside every
// chunk — kept in a leaf package so the chunk stores (memstore,
// diskstore) and the node engine can share the type without an import
// cycle. See DESIGN.md §6 for the verified-read design this serves.
package chunkmeta

import "trapquorum/client"

// Meta is a chunk's integrity metadata: the storing node's own content
// hash plus the writer-distributed cross-checksum record.
type Meta struct {
	// Self is the node's hash of the chunk's data bytes, recomputed on
	// every mutation; HasSelf distinguishes "no self-sum recorded"
	// (legacy state) from a zero hash value.
	Self    uint64
	HasSelf bool
	// RecSum is the hash of the encoded Rec entries — the "hash of the
	// checksum vector itself" — so a record that rots is detected and
	// discarded instead of convicting healthy peers.
	RecSum uint64
	// Rec is the cross-checksum record, parallel to the chunk's version
	// vector (one entry per slot); nil when the node holds none. Owned
	// like the chunk buffers: stores copy on Put, and callers must not
	// retain what Get returns.
	Rec []client.BlockSum
}
