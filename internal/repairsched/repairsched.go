// Package repairsched is the background repair orchestrator of the
// self-healing subsystem: it turns the health monitor's liveness
// transitions (internal/health) into bounded-concurrency repair work
// against the store's version-guarded repair path, and runs periodic
// anti-entropy scrubs so degradation the detector cannot see (wiped
// disks behind a live process, stale shards left by partitioned
// writes) is still found and healed.
//
// The orchestrator is deliberately throttled: repairs run on a small
// fixed worker pool and scrub passes pace themselves between stripes,
// so background reconvergence never starves foreground quorum
// traffic. Work is prioritised by redundancy lost — a chunk whose
// stripe has two failed placements is rebuilt before a chunk whose
// stripe lost only one — which minimises the window in which a
// further failure would make data unreadable.
//
// The package is store-agnostic: it plans and executes through the
// Target interface, implemented by the multi-stripe service layer
// (placement-aware) and by the single-placement core adapter.
package repairsched

import (
	"container/heap"
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"trapquorum/internal/health"
)

// Task names one chunk rebuild: stripe shard `Shard` of stripe
// `Stripe`, stored on cluster node `Node`, with a scheduling
// priority.
type Task struct {
	// Stripe is the stripe owning the chunk.
	Stripe uint64
	// Shard is the position within the stripe.
	Shard int
	// Node is the cluster node the chunk is placed on.
	Node int
	// Priority orders the repair queue: the number of placements the
	// stripe has currently lost (higher repairs first).
	Priority int
}

// Target is the store surface the orchestrator plans and repairs
// through. All methods must be safe for concurrent use.
type Target interface {
	// PlanNodeRepairs lists the repair tasks for every chunk placed
	// on the given cluster node, Priority filled with the redundancy
	// each chunk's stripe has lost under the down predicate.
	PlanNodeRepairs(node int, down func(int) bool) []Task
	// Repair rebuilds one chunk through the version-guarded repair
	// path. Repairing a chunk that is already fresh is an idempotent
	// no-op at the node.
	Repair(ctx context.Context, t Task) error
	// Stripes lists the live stripe ids for anti-entropy scrubbing.
	Stripes() []uint64
	// ScrubStripe audits one stripe read-only and returns the repair
	// tasks for its repairable degradation (stale shards, and missing
	// shards on nodes the down predicate reports up). Auditing a
	// stripe deleted since Stripes was called returns (nil, nil).
	ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]Task, error)
}

// MigrationSource is the optional Target extension for online
// reconfiguration: a target that also exposes a placement migration
// gets a background pump goroutine driving it, paced like the scrub
// path so the drain never starves foreground traffic. The service
// layer's fleet implements it; the single-placement core adapter does
// not (it has no placement to migrate).
type MigrationSource interface {
	// MigrationPending reports whether a migration has work left.
	MigrationPending() bool
	// MigrationStep performs one unit of migration work — moving one
	// object to the target placement, or completing the migration.
	// done=true means no migration is active (or it just completed);
	// an error means the step failed and should be retried later.
	MigrationStep(ctx context.Context) (done bool, err error)
}

// LostCount counts how many of a stripe's n placements the down
// predicate reports lost; nodeOf maps a shard index to the cluster
// node holding it. Targets use it to fill Task.Priority so both
// store flavours prioritise identically.
func LostCount(n int, nodeOf func(shard int) int, down func(int) bool) int {
	lost := 0
	for shard := 0; shard < n; shard++ {
		if down(nodeOf(shard)) {
			lost++
		}
	}
	return lost
}

// DegradationTasks converts one stripe's scrub classification into
// repair tasks under the standard repairable-degradation policy,
// shared by every Target implementation: stale shards are always
// repairable; corrupt shards (wrong bytes behind a live process —
// bit-rot, quarantined chunk files, disavowed content) likewise, with
// a priority bump because they actively poison reads; unreachable
// shards only when their node is not down (a missing chunk behind a
// live process); ahead shards (failed-write residue) are never queued
// — clearing residue is an operator decision.
func DegradationTasks(stripe uint64, n int, stale, unreachable, corrupt []int, nodeOf func(shard int) int, down func(int) bool) []Task {
	lost := LostCount(n, nodeOf, down)
	var tasks []Task
	add := func(shard, prio int) {
		tasks = append(tasks, Task{Stripe: stripe, Shard: shard, Node: nodeOf(shard), Priority: prio})
	}
	for _, shard := range stale {
		add(shard, lost)
	}
	for _, shard := range corrupt {
		if !down(nodeOf(shard)) {
			add(shard, lost+1)
		}
	}
	for _, shard := range unreachable {
		if !down(nodeOf(shard)) {
			add(shard, lost)
		}
	}
	return tasks
}

// Config parameterises an Orchestrator. Zero fields take the
// defaults documented per field.
type Config struct {
	// RepairConcurrency is the worker-pool size bounding in-flight
	// chunk repairs (default 2).
	RepairConcurrency int
	// RetryInterval is the pause before re-planning a node whose
	// repair plan had failures (default 2s).
	RetryInterval time.Duration
	// ScrubInterval is the pause between anti-entropy passes
	// (default 1m). Negative disables scrubbing.
	ScrubInterval time.Duration
	// ScrubJitter randomises each pause by ±Jitter·Interval so many
	// stores sharing a fleet do not scrub in lockstep (default 0.2).
	ScrubJitter float64
	// ScrubPace is the minimum gap between consecutive stripe audits
	// within a pass — the rate limit keeping scrub I/O off the
	// foreground path (default 2ms).
	ScrubPace time.Duration
	// Seed seeds the jitter source; 0 uses a time-derived seed.
	Seed int64
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.RepairConcurrency < 1 {
		c.RepairConcurrency = 2
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = time.Minute
	}
	if c.ScrubJitter <= 0 {
		c.ScrubJitter = 0.2
	}
	if c.ScrubPace <= 0 {
		c.ScrubPace = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// Counters are the orchestrator's cumulative event counts. All
// fields are monotone and safe to read while the orchestrator runs.
type Counters struct {
	// Repairs counts chunk repairs that succeeded.
	Repairs atomic.Int64
	// RepairFailures counts chunk repairs that returned an error.
	RepairFailures atomic.Int64
	// PlansExecuted counts node repair plans run to completion
	// (successfully or not).
	PlansExecuted atomic.Int64
	// ScrubPasses counts completed anti-entropy passes.
	ScrubPasses atomic.Int64
	// ScrubStripes counts stripes audited across all passes.
	ScrubStripes atomic.Int64
	// ScrubDegraded counts repair tasks the scrubber found.
	ScrubDegraded atomic.Int64
	// ScrubErrors counts stripe audits that failed outright.
	ScrubErrors atomic.Int64
	// MigrationSteps counts successful migration pump steps;
	// MigrationFailures counts steps that errored and were retried.
	MigrationSteps    atomic.Int64
	MigrationFailures atomic.Int64
}

// CountersSnapshot is a plain-value copy of Counters.
type CountersSnapshot struct {
	// Repairs counts chunk repairs that succeeded.
	Repairs int64
	// RepairFailures counts chunk repairs that returned an error.
	RepairFailures int64
	// PlansExecuted counts node repair plans run to completion.
	PlansExecuted int64
	// ScrubPasses counts completed anti-entropy passes.
	ScrubPasses int64
	// ScrubStripes counts stripes audited across all passes.
	ScrubStripes int64
	// ScrubDegraded counts repair tasks the scrubber found.
	ScrubDegraded int64
	// ScrubErrors counts stripe audits that failed outright.
	ScrubErrors int64
	// MigrationSteps counts successful migration pump steps;
	// MigrationFailures counts steps that errored and were retried.
	MigrationSteps    int64
	MigrationFailures int64
}

// Status is a point-in-time view of the orchestrator's workload, for
// the public Health snapshot.
type Status struct {
	// Backlog is the number of repair tasks queued but not started.
	Backlog int
	// InFlight is the number of repairs currently executing.
	InFlight int
	// ScrubPasses counts completed anti-entropy passes.
	ScrubPasses int64
	// ScrubAudited is the number of stripes audited so far in the
	// in-progress pass (0 when no pass is running).
	ScrubAudited int
	// ScrubTotal is the stripe count of the in-progress pass (0 when
	// no pass is running).
	ScrubTotal int
	// ScrubDegraded counts repair tasks found by scrubbing, across
	// all passes.
	ScrubDegraded int64
}

// item is one queued task plus its origin: forNode >= 0 ties the
// task to a node repair plan (its completion is accounted against
// the plan), forNode == -1 marks scrub-found work. gen identifies
// which plan of the node issued the task, so a stale in-flight task
// surviving a Down-drop can never be accounted against a successor
// plan for the same node.
type item struct {
	Task
	forNode int
	gen     uint64
}

type itemKey struct {
	stripe  uint64
	shard   int
	forNode int
}

// taskHeap orders items by Priority descending, then stripe/shard
// ascending for determinism.
type taskHeap []item

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	if h[i].Stripe != h[j].Stripe {
		return h[i].Stripe < h[j].Stripe
	}
	return h[i].Shard < h[j].Shard
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
func (h *taskHeap) PushItem(it item) { heap.Push(h, it) }
func (h *taskHeap) PopItem() item    { return heap.Pop(h).(item) }

// nodeRepair tracks one node plan's outstanding tasks.
type nodeRepair struct {
	gen         uint64
	outstanding int
	failed      bool
}

// Orchestrator consumes the monitor's transitions and keeps the
// cluster converging back to full redundancy. Construct with New,
// then Start; Close stops all background goroutines.
type Orchestrator struct {
	target Target
	mon    *health.Monitor
	cfg    Config

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    taskHeap
	queued   map[itemKey]bool
	inflight int
	plans    map[int]*nodeRepair
	planGen  uint64
	retries  map[int]*time.Timer
	scrub    struct {
		audited int
		total   int
	}
	jitter *rand.Rand
	closed bool

	counters Counters
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New builds an orchestrator over the target, fed by the monitor's
// transition stream.
func New(target Target, mon *health.Monitor, cfg Config) *Orchestrator {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	o := &Orchestrator{
		target:  target,
		mon:     mon,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		queued:  make(map[itemKey]bool),
		plans:   make(map[int]*nodeRepair),
		retries: make(map[int]*time.Timer),
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
	}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Start launches the transition consumer, the repair workers and the
// scrub loop. It must be called at most once.
func (o *Orchestrator) Start() {
	if o.started.Swap(true) {
		panic("repairsched: Orchestrator started twice")
	}
	o.wg.Add(1)
	go o.consumeTransitions()
	for i := 0; i < o.cfg.RepairConcurrency; i++ {
		o.wg.Add(1)
		go o.worker()
	}
	if o.cfg.ScrubInterval > 0 {
		o.wg.Add(1)
		go o.scrubLoop()
	}
	if ms, ok := o.target.(MigrationSource); ok {
		o.wg.Add(1)
		go o.migrationLoop(ms)
	}
}

// migrationLoop is the background pump for online reconfiguration:
// while the target has a migration pending, it drives one step at a
// time, pacing between objects (ScrubPace) so the drain stays off the
// foreground path; idle or after a failed step it backs off for
// RetryInterval. The pump makes an interrupted reconfiguration
// self-resuming: whatever re-queues work (StartReconfigure after a
// coordinator crash, a Put racing the cutover) is drained without any
// further coordinator involvement.
func (o *Orchestrator) migrationLoop(ms MigrationSource) {
	defer o.wg.Done()
	for {
		if !ms.MigrationPending() {
			if !o.sleep(o.cfg.RetryInterval) {
				return
			}
			continue
		}
		done, err := ms.MigrationStep(o.ctx)
		if o.ctx.Err() != nil {
			return
		}
		if err != nil {
			o.counters.MigrationFailures.Add(1)
			if !o.sleep(o.cfg.RetryInterval) {
				return
			}
			continue
		}
		if done {
			continue // re-check MigrationPending; idles on RetryInterval
		}
		o.counters.MigrationSteps.Add(1)
		if !o.sleep(o.cfg.ScrubPace) {
			return
		}
	}
}

// Close stops every background goroutine and waits for in-flight
// repairs to settle. Safe to call more than once.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	for _, t := range o.retries {
		t.Stop()
	}
	o.cond.Broadcast()
	o.mu.Unlock()
	o.cancel()
	if o.started.Load() {
		o.wg.Wait()
	}
}

// Counters returns a snapshot of the cumulative event counts.
func (o *Orchestrator) Counters() CountersSnapshot {
	return CountersSnapshot{
		Repairs:           o.counters.Repairs.Load(),
		RepairFailures:    o.counters.RepairFailures.Load(),
		PlansExecuted:     o.counters.PlansExecuted.Load(),
		ScrubPasses:       o.counters.ScrubPasses.Load(),
		ScrubStripes:      o.counters.ScrubStripes.Load(),
		ScrubDegraded:     o.counters.ScrubDegraded.Load(),
		ScrubErrors:       o.counters.ScrubErrors.Load(),
		MigrationSteps:    o.counters.MigrationSteps.Load(),
		MigrationFailures: o.counters.MigrationFailures.Load(),
	}
}

// Status returns a point-in-time view of the workload.
func (o *Orchestrator) Status() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Status{
		Backlog:       len(o.queue),
		InFlight:      o.inflight,
		ScrubPasses:   o.counters.ScrubPasses.Load(),
		ScrubAudited:  o.scrub.audited,
		ScrubTotal:    o.scrub.total,
		ScrubDegraded: o.counters.ScrubDegraded.Load(),
	}
}

// down is the predicate planners use: a node counts as lost while it
// is Down or still Repairing (its chunks cannot serve as rebuild
// sources a plan should rely on).
func (o *Orchestrator) down(node int) bool {
	s := o.mon.NodeState(node)
	return s == health.Down || s == health.Repairing
}

// consumeTransitions reacts to the monitor's state machine.
func (o *Orchestrator) consumeTransitions() {
	defer o.wg.Done()
	for {
		select {
		case tr, ok := <-o.mon.Transitions():
			if !ok {
				return
			}
			switch tr.To {
			case health.Repairing:
				o.plan(tr.Node)
			case health.Corrupt:
				// Corruption pinned: rebuild everything placed on the
				// node. The monitor clears the pin only if no further
				// corruption is reported while the plan runs (and
				// stages a fresh Corrupt edge — landing back here —
				// when one is).
				o.plan(tr.Node)
			case health.Down:
				o.dropNode(tr.Node)
			}
		case <-o.ctx.Done():
			return
		}
	}
}

// plan builds and enqueues the repair plan for a node that came back.
func (o *Orchestrator) plan(node int) {
	tasks := o.target.PlanNodeRepairs(node, o.down)
	o.mu.Lock()
	if o.closed || o.plans[node] != nil {
		// Already closed, or another plan for this node is active (a
		// retry timer racing a Down→Repairing re-plan): the active
		// plan's own completion drives RepairDone/retry, and two
		// plans accounting the same queued tasks would double-count.
		o.mu.Unlock()
		return
	}
	if len(tasks) == 0 {
		// Nothing placed on the node: it is healed by definition.
		o.mu.Unlock()
		o.counters.PlansExecuted.Add(1)
		o.mon.RepairDone(node, true)
		return
	}
	o.planGen++
	nr := &nodeRepair{gen: o.planGen}
	o.plans[node] = nr
	for _, t := range tasks {
		t.Node = node
		if o.pushLocked(item{Task: t, forNode: node, gen: nr.gen}) {
			nr.outstanding++
		}
	}
	if nr.outstanding == 0 {
		// Every task was already queued for this node (a re-plan
		// racing the previous one); let the queued copies finish.
		delete(o.plans, node)
		o.mu.Unlock()
		o.counters.PlansExecuted.Add(1)
		o.mon.RepairDone(node, true)
		return
	}
	o.cond.Broadcast()
	o.mu.Unlock()
}

// dropNode discards queued work targeting a node that went Down —
// its plan's tasks and any scrub-found tasks aimed at it; repairs
// against it would only fail. A fresh plan is built when the node
// answers again, and the next scrub pass re-finds whatever stale
// shards still matter. In-flight repairs are left to fail on their
// own.
func (o *Orchestrator) dropNode(node int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t := o.retries[node]; t != nil {
		t.Stop()
		delete(o.retries, node)
	}
	kept := o.queue[:0]
	for _, it := range o.queue {
		if it.forNode == node || it.Node == node {
			delete(o.queued, itemKey{it.Stripe, it.Shard, it.forNode})
			continue
		}
		kept = append(kept, it)
	}
	o.queue = kept
	heap.Init(&o.queue)
	delete(o.plans, node)
}

// pushLocked enqueues an item unless an identical one is already
// queued. Caller holds o.mu.
func (o *Orchestrator) pushLocked(it item) bool {
	key := itemKey{it.Stripe, it.Shard, it.forNode}
	if o.queued[key] {
		return false
	}
	o.queued[key] = true
	o.queue.PushItem(it)
	return true
}

// worker executes repairs from the priority queue.
func (o *Orchestrator) worker() {
	defer o.wg.Done()
	for {
		o.mu.Lock()
		for len(o.queue) == 0 && !o.closed {
			o.cond.Wait()
		}
		if o.closed {
			o.mu.Unlock()
			return
		}
		it := o.queue.PopItem()
		delete(o.queued, itemKey{it.Stripe, it.Shard, it.forNode})
		o.inflight++
		o.mu.Unlock()

		err := o.target.Repair(o.ctx, it.Task)
		switch {
		case err == nil:
			o.counters.Repairs.Add(1)
		case o.ctx.Err() != nil:
			// Shutdown cancellation, not a repair verdict: the chunk
			// was not found unrepairable, so don't alarm the failure
			// counter operators watch.
		default:
			o.counters.RepairFailures.Add(1)
		}

		var finished int = -1
		var failed bool
		o.mu.Lock()
		o.inflight--
		if it.forNode >= 0 {
			// Account only against the plan generation that issued
			// the task: a stale task surviving a Down-drop must not
			// complete (or fail) a successor plan for the same node.
			if nr := o.plans[it.forNode]; nr != nil && nr.gen == it.gen {
				nr.outstanding--
				if err != nil {
					nr.failed = true
				}
				if nr.outstanding == 0 {
					delete(o.plans, it.forNode)
					finished = it.forNode
					failed = nr.failed
				}
			}
		}
		o.mu.Unlock()
		if finished >= 0 {
			o.finishPlan(finished, failed)
		}
	}
}

// finishPlan reports a completed node plan to the monitor, and — when
// some of its repairs failed — schedules a re-plan so the node is not
// stranded in Repairing (other nodes may have been down; they may be
// back by the retry).
func (o *Orchestrator) finishPlan(node int, failed bool) {
	o.counters.PlansExecuted.Add(1)
	o.mon.RepairDone(node, !failed)
	if !failed {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed || o.retries[node] != nil {
		return
	}
	o.retries[node] = time.AfterFunc(o.cfg.RetryInterval, func() {
		o.mu.Lock()
		delete(o.retries, node)
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return
		}
		if st := o.mon.NodeState(node); st != health.Repairing && st != health.Corrupt {
			return
		}
		o.plan(node)
	})
}

// scrubLoop runs anti-entropy passes forever, jittering each pause.
func (o *Orchestrator) scrubLoop() {
	defer o.wg.Done()
	for {
		if !o.sleep(o.jittered(o.cfg.ScrubInterval)) {
			return
		}
		o.scrubPass()
	}
}

// jittered returns d ± Jitter·d.
func (o *Orchestrator) jittered(d time.Duration) time.Duration {
	o.mu.Lock()
	f := 1 + o.cfg.ScrubJitter*(2*o.jitter.Float64()-1)
	o.mu.Unlock()
	j := time.Duration(float64(d) * f)
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// sleep waits for d, returning false when the orchestrator closed.
func (o *Orchestrator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-o.ctx.Done():
		return false
	}
}

// scrubPass audits every live stripe once, paced, enqueueing repair
// work for the degradation it finds.
func (o *Orchestrator) scrubPass() {
	stripes := o.target.Stripes()
	o.mu.Lock()
	o.scrub.audited, o.scrub.total = 0, len(stripes)
	o.mu.Unlock()
	for i, stripe := range stripes {
		if i > 0 && !o.sleep(o.cfg.ScrubPace) {
			return
		}
		tasks, err := o.target.ScrubStripe(o.ctx, stripe, o.down)
		o.counters.ScrubStripes.Add(1)
		if err != nil {
			if o.ctx.Err() != nil {
				return
			}
			o.counters.ScrubErrors.Add(1)
		}
		o.mu.Lock()
		o.scrub.audited = i + 1
		if !o.closed {
			pushed := 0
			for _, t := range tasks {
				if o.pushLocked(item{Task: t, forNode: -1}) {
					pushed++
				}
			}
			if pushed > 0 {
				o.counters.ScrubDegraded.Add(int64(pushed))
				o.cond.Broadcast()
			}
		}
		o.mu.Unlock()
	}
	o.counters.ScrubPasses.Add(1)
	o.mu.Lock()
	o.scrub.audited, o.scrub.total = 0, 0
	o.mu.Unlock()
}
