package repairsched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"trapquorum/internal/health"
)

var errRepair = errors.New("repair failed")

// fakeTarget is a scriptable store: a set of chunks per node, a
// switch to fail repairs, and a log of executed repairs.
type fakeTarget struct {
	mu        sync.Mutex
	plans     map[int][]Task
	stripes   []uint64
	scrubbed  map[uint64]int
	scrubOut  map[uint64][]Task
	failNext  int // fail this many repairs before succeeding
	repairs   []Task
	repairGap time.Duration
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		plans:    make(map[int][]Task),
		scrubbed: make(map[uint64]int),
		scrubOut: make(map[uint64][]Task),
	}
}

func (f *fakeTarget) PlanNodeRepairs(node int, down func(int) bool) []Task {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Task(nil), f.plans[node]...)
}

func (f *fakeTarget) Repair(ctx context.Context, t Task) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	gap := f.repairGap
	fail := f.failNext > 0
	if fail {
		f.failNext--
	}
	f.mu.Unlock()
	if gap > 0 {
		time.Sleep(gap)
	}
	if fail {
		return errRepair
	}
	f.mu.Lock()
	f.repairs = append(f.repairs, t)
	f.mu.Unlock()
	return nil
}

func (f *fakeTarget) Stripes() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.stripes...)
}

func (f *fakeTarget) ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]Task, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scrubbed[stripe]++
	return append([]Task(nil), f.scrubOut[stripe]...), nil
}

func (f *fakeTarget) executed() []Task {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Task(nil), f.repairs...)
}

// fleet mirrors the health test's probe switchboard.
type fleet struct {
	mu   sync.Mutex
	down map[int]bool
}

func (f *fleet) set(node int, d bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[node] = d
}

func (f *fleet) probe(_ context.Context, node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[node] {
		return errors.New("down")
	}
	return nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rig assembles a monitor + orchestrator over a fake fleet/target.
func rig(t *testing.T, n int, target *fakeTarget, cfg Config) (*fleet, *health.Monitor, *Orchestrator) {
	t.Helper()
	fl := &fleet{down: make(map[int]bool)}
	mon, err := health.New(n, fl.probe, health.Config{Interval: 2 * time.Millisecond, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	orc := New(target, mon, cfg)
	orc.Start()
	mon.Start()
	t.Cleanup(func() {
		orc.Close()
		mon.Close()
	})
	return fl, mon, orc
}

func TestNodePlanRunsOnRepairingAndMarksUp(t *testing.T) {
	target := newFakeTarget()
	target.plans[1] = []Task{
		{Stripe: 7, Shard: 1, Priority: 1},
		{Stripe: 9, Shard: 1, Priority: 2},
	}
	fl, mon, orc := rig(t, 3, target, Config{ScrubInterval: -1})

	fl.set(1, true)
	waitFor(t, "node 1 down", func() bool { return mon.NodeState(1) == health.Down })
	fl.set(1, false)
	waitFor(t, "node 1 healed", func() bool { return mon.NodeState(1) == health.Up })

	got := target.executed()
	if len(got) != 2 {
		t.Fatalf("executed %d repairs, want 2", len(got))
	}
	// Priority 2 (more redundancy lost) must run before priority 1.
	if got[0].Stripe != 9 || got[1].Stripe != 7 {
		t.Fatalf("execution order %v, want stripe 9 before 7", got)
	}
	for _, task := range got {
		if task.Node != 1 {
			t.Fatalf("task %v not retargeted at node 1", task)
		}
	}
	if c := orc.Counters(); c.Repairs != 2 || c.PlansExecuted != 1 {
		t.Fatalf("counters %+v, want 2 repairs / 1 plan", c)
	}
}

func TestEmptyPlanHealsImmediately(t *testing.T) {
	target := newFakeTarget()
	fl, mon, _ := rig(t, 2, target, Config{ScrubInterval: -1})
	fl.set(0, true)
	waitFor(t, "down", func() bool { return mon.NodeState(0) == health.Down })
	fl.set(0, false)
	waitFor(t, "up", func() bool { return mon.NodeState(0) == health.Up })
	if got := target.executed(); len(got) != 0 {
		t.Fatalf("executed %v on an empty plan", got)
	}
}

func TestFailedPlanRetriesUntilHealed(t *testing.T) {
	target := newFakeTarget()
	target.plans[0] = []Task{{Stripe: 1, Shard: 0, Priority: 1}}
	target.failNext = 1 // first repair attempt fails, retry succeeds
	fl, mon, orc := rig(t, 2, target, Config{ScrubInterval: -1, RetryInterval: 5 * time.Millisecond})

	fl.set(0, true)
	waitFor(t, "down", func() bool { return mon.NodeState(0) == health.Down })
	fl.set(0, false)
	waitFor(t, "healed after retry", func() bool { return mon.NodeState(0) == health.Up })
	c := orc.Counters()
	if c.RepairFailures != 1 || c.Repairs != 1 {
		t.Fatalf("counters %+v, want exactly 1 failure then 1 success", c)
	}
	if c.PlansExecuted != 2 {
		t.Fatalf("PlansExecuted = %d, want 2 (original + retry)", c.PlansExecuted)
	}
}

func TestDownDropsQueuedWork(t *testing.T) {
	target := newFakeTarget()
	var tasks []Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, Task{Stripe: uint64(i + 1), Shard: 0, Priority: 1})
	}
	target.plans[0] = tasks
	target.repairGap = 2 * time.Millisecond // slow workers: the queue stays deep
	fl, mon, orc := rig(t, 2, target, Config{ScrubInterval: -1, RepairConcurrency: 1})

	fl.set(0, true)
	waitFor(t, "down", func() bool { return mon.NodeState(0) == health.Down })
	fl.set(0, false)
	waitFor(t, "repairing with backlog", func() bool {
		return mon.NodeState(0) == health.Repairing && orc.Status().Backlog > 10
	})
	fl.set(0, true)
	waitFor(t, "down again", func() bool { return mon.NodeState(0) == health.Down })
	waitFor(t, "queue drained by drop", func() bool {
		s := orc.Status()
		return s.Backlog == 0 && s.InFlight == 0
	})
	if got := len(target.executed()); got >= 50 {
		t.Fatalf("executed %d repairs, want the drop to cancel most of 50", got)
	}
}

// gateTarget blocks the first repair of stripe 1 until released, and
// makes it fail — the in-flight straggler of a dropped plan.
type gateTarget struct {
	*fakeTarget
	gateOnce sync.Once
	entered  chan struct{}
	release  chan struct{}
}

func (g *gateTarget) Repair(ctx context.Context, t Task) error {
	gated := false
	if t.Stripe == 1 {
		g.gateOnce.Do(func() { gated = true })
	}
	if gated {
		close(g.entered)
		<-g.release
		return errRepair
	}
	return g.fakeTarget.Repair(ctx, t)
}

// TestStaleInFlightTaskDoesNotCorruptSuccessorPlan: a repair still in
// flight when its node goes Down (dropping the plan) settles only
// after the node returned and a new plan was issued. Its failure must
// not be charged to the new plan — the node heals on the new plan's
// own all-success completion, with no retry round.
func TestStaleInFlightTaskDoesNotCorruptSuccessorPlan(t *testing.T) {
	inner := newFakeTarget()
	inner.plans[0] = []Task{
		{Stripe: 1, Shard: 0, Priority: 9}, // gated: highest priority, picked first
		{Stripe: 2, Shard: 0, Priority: 1},
		{Stripe: 3, Shard: 0, Priority: 1},
	}
	target := &gateTarget{fakeTarget: inner, entered: make(chan struct{}), release: make(chan struct{})}
	fl, mon, orc := rig2(t, target, Config{ScrubInterval: -1, RepairConcurrency: 1, RetryInterval: time.Hour})

	// Plan A starts; its first task (stripe 1) blocks in flight.
	fl.set(0, true)
	waitFor(t, "down", func() bool { return mon.NodeState(0) == health.Down })
	fl.set(0, false)
	<-target.entered

	// The node dies again (plan A dropped, stripe-1 task still in
	// flight), then returns: plan B is issued.
	fl.set(0, true)
	waitFor(t, "down again", func() bool { return mon.NodeState(0) == health.Down })
	fl.set(0, false)
	waitFor(t, "plan B queued behind the straggler", func() bool {
		return mon.NodeState(0) == health.Repairing && orc.Status().Backlog == 3
	})

	// The stale task settles — with an error. Plan B's three repairs
	// then run and succeed; the node must go Up on B's completion
	// (RetryInterval is an hour: any retry round would hang the test).
	close(target.release)
	waitFor(t, "healed by plan B alone", func() bool { return mon.NodeState(0) == health.Up })
	if c := orc.Counters(); c.PlansExecuted != 1 || c.RepairFailures != 1 || c.Repairs != 3 {
		t.Fatalf("counters %+v, want exactly plan B executed (1), 1 stale failure, 3 repairs", c)
	}
}

// rig2 is rig for a Target that is not a *fakeTarget.
func rig2(t *testing.T, target Target, cfg Config) (*fleet, *health.Monitor, *Orchestrator) {
	t.Helper()
	fl := &fleet{down: make(map[int]bool)}
	mon, err := health.New(2, fl.probe, health.Config{Interval: 2 * time.Millisecond, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	orc := New(target, mon, cfg)
	orc.Start()
	mon.Start()
	t.Cleanup(func() {
		orc.Close()
		mon.Close()
	})
	return fl, mon, orc
}

func TestScrubFindsAndRepairsDegradation(t *testing.T) {
	target := newFakeTarget()
	target.stripes = []uint64{1, 2, 3}
	target.scrubOut[2] = []Task{{Stripe: 2, Shard: 4, Node: 4, Priority: 1}}
	_, _, orc := rig(t, 5, target, Config{
		ScrubInterval: 5 * time.Millisecond,
		ScrubPace:     time.Millisecond,
	})

	waitFor(t, "scrub pass + repair", func() bool {
		c := orc.Counters()
		return c.ScrubPasses >= 1 && c.Repairs >= 1
	})
	target.mu.Lock()
	audited := target.scrubbed[1] > 0 && target.scrubbed[2] > 0 && target.scrubbed[3] > 0
	target.mu.Unlock()
	if !audited {
		t.Fatal("scrub pass skipped stripes")
	}
	got := target.executed()
	if len(got) == 0 || got[0].Stripe != 2 || got[0].Shard != 4 {
		t.Fatalf("scrub repairs %v, want stripe 2 shard 4", got)
	}
	if c := orc.Counters(); c.ScrubDegraded < 1 {
		t.Fatalf("ScrubDegraded = %d, want >= 1", c.ScrubDegraded)
	}
}

// TestDropNodeDiscardsAllTasksTargetingNode: a Down drop removes the
// node's plan tasks AND scrub-found tasks aimed at it, while leaving
// work for other nodes queued.
func TestDropNodeDiscardsAllTasksTargetingNode(t *testing.T) {
	mon, err := health.New(3, func(context.Context, int) error { return nil }, health.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newFakeTarget(), mon, Config{}) // never started: direct queue surgery
	o.mu.Lock()
	o.pushLocked(item{Task: Task{Stripe: 1, Shard: 0, Node: 1}, forNode: -1})        // scrub task on node 1
	o.pushLocked(item{Task: Task{Stripe: 2, Shard: 0, Node: 2}, forNode: -1})        // scrub task on node 2
	o.pushLocked(item{Task: Task{Stripe: 3, Shard: 1, Node: 1}, forNode: 1, gen: 1}) // plan task on node 1
	o.plans[1] = &nodeRepair{gen: 1, outstanding: 1}
	o.mu.Unlock()

	o.dropNode(1)

	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.queue) != 1 || o.queue[0].Node != 2 {
		t.Fatalf("queue after drop: %+v, want only the node-2 scrub task", o.queue)
	}
	if len(o.queued) != 1 || !o.queued[itemKey{2, 0, -1}] {
		t.Fatalf("dedupe map after drop: %+v, want only the node-2 key", o.queued)
	}
	if o.plans[1] != nil {
		t.Fatal("plan for the dropped node survived")
	}
}

func TestScrubDisabled(t *testing.T) {
	target := newFakeTarget()
	target.stripes = []uint64{1}
	_, _, orc := rig(t, 2, target, Config{ScrubInterval: -1})
	time.Sleep(20 * time.Millisecond)
	if c := orc.Counters(); c.ScrubStripes != 0 {
		t.Fatalf("scrubbed %d stripes with scrubbing disabled", c.ScrubStripes)
	}
}

func TestCloseIsIdempotentAndStopsWork(t *testing.T) {
	target := newFakeTarget()
	target.stripes = []uint64{1, 2}
	_, _, orc := rig(t, 2, target, Config{ScrubInterval: 2 * time.Millisecond})
	time.Sleep(10 * time.Millisecond)
	orc.Close()
	orc.Close()
	before := orc.Counters().ScrubStripes
	time.Sleep(15 * time.Millisecond)
	if after := orc.Counters().ScrubStripes; after != before {
		t.Fatalf("scrubbing continued after Close: %d -> %d", before, after)
	}
}

// TestDegradationTasksPolicy pins the shared repairable-degradation
// policy, corrupt shards included: stale at the lost count, corrupt at
// lost+1 (they actively poison reads), unreachable only behind a live
// node, nothing for down nodes.
func TestDegradationTasksPolicy(t *testing.T) {
	identity := func(shard int) int { return shard }
	isDown := func(node int) bool { return node == 4 }

	tasks := DegradationTasks(7, 6,
		[]int{1},    // stale
		[]int{2, 4}, // unreachable: shard 4's node is down
		[]int{3, 4}, // corrupt: shard 4's node is down
		identity, isDown)

	want := map[int]Task{
		1: {Stripe: 7, Shard: 1, Node: 1, Priority: 1},
		3: {Stripe: 7, Shard: 3, Node: 3, Priority: 2},
		2: {Stripe: 7, Shard: 2, Node: 2, Priority: 1},
	}
	if len(tasks) != len(want) {
		t.Fatalf("tasks %+v, want exactly %d (nothing for the down node)", tasks, len(want))
	}
	for _, task := range tasks {
		w, ok := want[task.Shard]
		if !ok {
			t.Fatalf("unexpected task %+v", task)
		}
		if task != w {
			t.Fatalf("task %+v, want %+v", task, w)
		}
	}

	// With nobody down there is no lost redundancy: stale and
	// unreachable at 0, corrupt still one above.
	tasks = DegradationTasks(7, 6, []int{0}, nil, []int{5}, identity, func(int) bool { return false })
	for _, task := range tasks {
		wantPrio := 0
		if task.Shard == 5 {
			wantPrio = 1
		}
		if task.Priority != wantPrio {
			t.Fatalf("task %+v, want priority %d", task, wantPrio)
		}
	}
}

// TestCorruptNodeGetsPlannedAndHeals: a corruption observation (not a
// probe failure — the node answers pings throughout) triggers a full
// node plan, and the plan's success releases the pin.
func TestCorruptNodeGetsPlannedAndHeals(t *testing.T) {
	target := newFakeTarget()
	target.plans[1] = []Task{{Stripe: 3, Shard: 1, Priority: 2}}
	_, mon, orc := rig(t, 3, target, Config{ScrubInterval: -1})
	waitFor(t, "probes running", func() bool { return mon.Counters().Probes >= 3 })

	mon.ReportCorrupt(1)
	waitFor(t, "corrupt node healed by its plan", func() bool { return mon.NodeState(1) == health.Up })
	got := target.executed()
	if len(got) != 1 || got[0].Stripe != 3 || got[0].Node != 1 {
		t.Fatalf("executed %v, want the node-1 plan", got)
	}
	if c := orc.Counters(); c.PlansExecuted != 1 || c.Repairs != 1 {
		t.Fatalf("counters %+v, want 1 plan / 1 repair", c)
	}
}

// TestPersistentlyLyingNodeStaysPinned: when every repair completes
// into fresh corruption reports (the liar keeps lying), the node must
// stay Corrupt across plans — it is never paraded as healthy.
func TestPersistentlyLyingNodeStaysPinned(t *testing.T) {
	inner := newFakeTarget()
	inner.plans[0] = []Task{{Stripe: 1, Shard: 0, Priority: 1}}
	fl, mon, orc := rig2(t, &lyingTarget{fakeTarget: inner, mon: func() *health.Monitor { return nil }}, Config{ScrubInterval: -1})
	_ = fl

	// Wire the target's re-report hook to the monitor now that it exists.
	lt := orc.target.(*lyingTarget)
	lt.mon = func() *health.Monitor { return mon }

	waitFor(t, "probes running", func() bool { return mon.Counters().Probes >= 1 })
	mon.ReportCorrupt(0)
	// Every completed plan re-arms; after several the node is still pinned.
	waitFor(t, "three plans executed", func() bool { return orc.Counters().PlansExecuted >= 3 })
	if got := mon.NodeState(0); got != health.Corrupt {
		t.Fatalf("liar state %v, want corrupt (pinned across plans)", got)
	}

	// The liar reforms: the next quiet plan releases it.
	lt.setLying(false)
	waitFor(t, "reformed node healed", func() bool { return mon.NodeState(0) == health.Up })
}

// lyingTarget re-reports corruption on every repair while lying is
// set, simulating a node that immediately re-serves wrong bytes.
type lyingTarget struct {
	*fakeTarget
	mu     sync.Mutex
	honest bool
	mon    func() *health.Monitor
}

func (l *lyingTarget) setLying(lying bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.honest = !lying
}

func (l *lyingTarget) Repair(ctx context.Context, t Task) error {
	err := l.fakeTarget.Repair(ctx, t)
	l.mu.Lock()
	honest := l.honest
	l.mu.Unlock()
	if err == nil && !honest {
		if mon := l.mon(); mon != nil {
			mon.ReportCorrupt(t.Node)
		}
	}
	return err
}
