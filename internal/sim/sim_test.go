package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestCluster(t testing.TB, n int, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestPutReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, 3)
	id := ChunkID{Stripe: 7, Shard: 2}
	if err := c.Node(0).PutChunk(context.Background(), id, []byte{1, 2, 3}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(0).ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "\x01\x02\x03" || got.Versions[0] != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadMissing(t *testing.T) {
	c := newTestCluster(t, 1)
	if _, err := c.Node(0).ReadChunk(context.Background(), ChunkID{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Node(0).ReadVersions(context.Background(), ChunkID{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutChunkCopiesInputs(t *testing.T) {
	c := newTestCluster(t, 1)
	id := ChunkID{Stripe: 1}
	data := []byte{9, 9}
	vers := []uint64{1}
	if err := c.Node(0).PutChunk(context.Background(), id, data, vers); err != nil {
		t.Fatal(err)
	}
	data[0] = 0
	vers[0] = 0
	got, _ := c.Node(0).ReadChunk(context.Background(), id)
	if got.Data[0] != 9 || got.Versions[0] != 1 {
		t.Fatal("PutChunk aliased caller memory")
	}
}

func TestReadChunkReturnsCopy(t *testing.T) {
	c := newTestCluster(t, 1)
	id := ChunkID{Stripe: 1}
	if err := c.Node(0).PutChunk(context.Background(), id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Node(0).ReadChunk(context.Background(), id)
	got.Data[0] = 77
	got.Versions[0] = 99
	again, _ := c.Node(0).ReadChunk(context.Background(), id)
	if again.Data[0] != 1 || again.Versions[0] != 1 {
		t.Fatal("ReadChunk leaked internal state")
	}
}

func TestPutChunkRequiresVersions(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Node(0).PutChunk(context.Background(), ChunkID{}, []byte{1}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompareAndPut(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 3}
	if err := n.PutChunk(context.Background(), id, []byte{1}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := n.CompareAndPut(context.Background(), id, 0, 4, 5, []byte{2}); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadChunk(context.Background(), id)
	if got.Data[0] != 2 || got.Versions[0] != 5 {
		t.Fatalf("after CAP: %+v", got)
	}
	// Wrong expectation: rejected, state unchanged.
	if err := n.CompareAndPut(context.Background(), id, 0, 4, 6, []byte{3}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	got, _ = n.ReadChunk(context.Background(), id)
	if got.Data[0] != 2 || got.Versions[0] != 5 {
		t.Fatalf("mismatch mutated chunk: %+v", got)
	}
	// Missing chunk and bad slot.
	if err := n.CompareAndPut(context.Background(), ChunkID{Stripe: 99}, 0, 0, 1, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := n.CompareAndPut(context.Background(), id, 3, 5, 6, []byte{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompareAndAdd(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 3, Shard: 8}
	// Parity chunk for a k=3 stripe: three version slots.
	if err := n.PutChunk(context.Background(), id, []byte{0xf0, 0x0f}, []uint64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.CompareAndAdd(context.Background(), id, 1, 1, 2, []byte{0x0f, 0x0f}); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadChunk(context.Background(), id)
	if got.Data[0] != 0xff || got.Data[1] != 0x00 {
		t.Fatalf("XOR wrong: %v", got.Data)
	}
	if got.Versions[0] != 1 || got.Versions[1] != 2 || got.Versions[2] != 1 {
		t.Fatalf("versions wrong: %v", got.Versions)
	}
	// Stale expectation rejected without mutation.
	if err := n.CompareAndAdd(context.Background(), id, 1, 1, 3, []byte{1, 1}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	again, _ := n.ReadChunk(context.Background(), id)
	if again.Data[0] != 0xff || again.Versions[1] != 2 {
		t.Fatal("rejected add mutated chunk")
	}
	// Size mismatch.
	if err := n.CompareAndAdd(context.Background(), id, 1, 2, 3, []byte{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	// Missing chunk.
	if err := n.CompareAndAdd(context.Background(), ChunkID{Stripe: 42}, 0, 0, 1, []byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashRestartSemantics(t *testing.T) {
	c := newTestCluster(t, 2)
	n := c.Node(1)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunk(context.Background(), id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	n.Crash()
	if !n.Down() {
		t.Fatal("node not down after Crash")
	}
	if _, err := n.ReadChunk(context.Background(), id); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
	if err := n.PutChunk(context.Background(), id, []byte{2}, []uint64{2}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
	n.Restart()
	got, err := n.ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 1 || got.Versions[0] != 1 {
		t.Fatal("chunk lost across crash/restart")
	}
}

// TestCrashDuringDelayRejects: a node that fail-stops while a request
// is inside its latency window must reject it at accept time — the
// mutation must not land on a crashed node.
func TestCrashDuringDelayRejects(t *testing.T) {
	c := newTestCluster(t, 1, WithDelay(FixedDelay(100*time.Millisecond)))
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	errCh := make(chan error, 1)
	go func() {
		errCh <- n.PutChunk(context.Background(), id, []byte{1}, []uint64{1})
	}()
	time.Sleep(20 * time.Millisecond) // request is inside its delay window
	n.Crash()
	if err := <-errCh; !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	n.Restart()
	if ok, _ := n.HasChunk(context.Background(), id); ok {
		t.Fatal("mutation landed on a crashed node")
	}
}

func TestWipe(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunk(context.Background(), id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Wipe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := n.HasChunk(context.Background(), id); ok {
		t.Fatal("chunk survived Wipe")
	}
}

func TestHasChunk(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	if ok, err := n.HasChunk(context.Background(), ChunkID{}); err != nil || ok {
		t.Fatalf("HasChunk empty = %v, %v", ok, err)
	}
	if err := n.PutChunk(context.Background(), ChunkID{}, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.HasChunk(context.Background(), ChunkID{}); err != nil || !ok {
		t.Fatalf("HasChunk = %v, %v", ok, err)
	}
}

func TestApplyMask(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.ApplyMask([]bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	if c.AliveCount() != 2 {
		t.Fatalf("alive = %d", c.AliveCount())
	}
	if !c.Node(1).Down() || c.Node(0).Down() {
		t.Fatal("mask applied to wrong nodes")
	}
	if err := c.ApplyMask([]bool{true}); err == nil {
		t.Fatal("short mask accepted")
	}
	c.RestartAll()
	if c.AliveCount() != 4 {
		t.Fatal("RestartAll incomplete")
	}
}

func TestNodePanicsOutOfRange(t *testing.T) {
	c := newTestCluster(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Node(2)
}

func TestMetricsCount(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	_ = n.PutChunk(context.Background(), id, []byte{1}, []uint64{1})
	_, _ = n.ReadChunk(context.Background(), id)
	_, _, _ = n.ReadVersions(context.Background(), id)
	_ = n.CompareAndAdd(context.Background(), id, 0, 99, 100, []byte{1}) // version reject
	m := n.Metrics()
	if m.Writes.Load() != 1 || m.Reads.Load() != 1 || m.VersionQueries.Load() != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Adds.Load() != 1 || m.VersionRejects.Load() != 1 {
		t.Fatalf("add metrics = %+v", m)
	}
	reads, writes, adds, vq := c.TotalMetrics()
	if reads != 1 || writes != 1 || adds != 1 || vq != 1 {
		t.Fatalf("totals = %d %d %d %d", reads, writes, adds, vq)
	}
}

func TestDownRejectCounted(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	n.Crash()
	_, _ = n.ReadChunk(context.Background(), ChunkID{})
	if n.Metrics().DownRejects.Load() == 0 {
		t.Fatal("down rejection not counted")
	}
}

// TestConcurrentAddsSerialise drives many concurrent conditional adds
// at the same chunk: exactly one writer may win each version slot
// transition, so the final version equals the number of successful
// adds and the data reflects exactly those deltas.
func TestConcurrentAddsSerialise(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1, Shard: 3}
	if err := n.PutChunk(context.Background(), id, []byte{0}, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	const writers = 32
	var wg sync.WaitGroup
	var successes atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer tries to advance version 0→1 exactly once.
			if err := n.CompareAndAdd(context.Background(), id, 0, 0, 1, []byte{1}); err == nil {
				successes.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := successes.Load(); got != 1 {
		t.Fatalf("%d writers won the 0→1 transition, want exactly 1", got)
	}
	chunk, _ := n.ReadChunk(context.Background(), id)
	if chunk.Versions[0] != 1 || chunk.Data[0] != 1 {
		t.Fatalf("final chunk %+v", chunk)
	}
}

func TestConcurrentMixedOpsRace(t *testing.T) {
	// Exercised under -race: concurrent reads/writes/crashes must be
	// data-race free thanks to the actor serialisation.
	c := newTestCluster(t, 4)
	id := ChunkID{Stripe: 9}
	for i := 0; i < 4; i++ {
		if err := c.Node(i).PutChunk(context.Background(), id, []byte{0, 0, 0, 0}, []uint64{0}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := c.Node(g % 4)
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					_, _ = n.ReadChunk(context.Background(), id)
				case 1:
					_ = n.PutChunk(context.Background(), id, []byte{byte(i), 0, 0, 0}, []uint64{uint64(i)})
				case 2:
					_, _, _ = n.ReadVersions(context.Background(), id)
				case 3:
					if g == 0 {
						n.Crash()
						n.Restart()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFixedDelayApplied(t *testing.T) {
	c := newTestCluster(t, 1, WithDelay(FixedDelay(2*time.Millisecond)))
	n := c.Node(0)
	start := time.Now()
	_ = n.PutChunk(context.Background(), ChunkID{}, []byte{1}, []uint64{1})
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("operation returned in %v, delay not applied", elapsed)
	}
}

func TestUniformDelayBounds(t *testing.T) {
	d := UniformDelay(time.Millisecond, 3*time.Millisecond, 42)
	for i := 0; i < 100; i++ {
		v := d("read")
		if v < time.Millisecond || v >= 3*time.Millisecond {
			t.Fatalf("delay %v out of bounds", v)
		}
	}
	// Degenerate range.
	d2 := UniformDelay(time.Millisecond, time.Millisecond, 42)
	if d2("read") != time.Millisecond {
		t.Fatal("degenerate range mishandled")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic
	if _, err := c.Node(0).ReadChunk(context.Background(), ChunkID{}); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkNodePut4K(b *testing.B) {
	c, _ := NewCluster(1)
	defer c.Close()
	n := c.Node(0)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.PutChunk(context.Background(), ChunkID{Stripe: uint64(i % 16)}, data, []uint64{uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeCompareAndAdd4K(b *testing.B) {
	c, _ := NewCluster(1)
	defer c.Close()
	n := c.Node(0)
	data := make([]byte, 4096)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunk(context.Background(), id, data, []uint64{0}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.CompareAndAdd(context.Background(), id, 0, uint64(i), uint64(i+1), data); err != nil {
			b.Fatal(err)
		}
	}
}
