package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Option customises cluster construction.
type Option func(*options)

type options struct {
	delay DelayFunc
}

// WithDelay installs a latency model applied to every node operation.
func WithDelay(d DelayFunc) Option {
	return func(o *options) { o.delay = d }
}

// FixedDelay returns a DelayFunc imposing the same latency on every
// operation.
func FixedDelay(d time.Duration) DelayFunc {
	return func(string) time.Duration { return d }
}

// UniformDelay returns a DelayFunc drawing latencies uniformly from
// [min, max). It is safe for concurrent use.
func UniformDelay(min, max time.Duration, seed int64) DelayFunc {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed))
	return func(string) time.Duration {
		if max <= min {
			return min
		}
		mu.Lock()
		defer mu.Unlock()
		return min + time.Duration(r.Int63n(int64(max-min)))
	}
}

// Cluster is a set of simulated storage nodes. Node i of a stripe's
// placement maps to cluster node i by default; richer placements are
// the protocol layer's concern. The node set can grow while the
// cluster serves traffic (AddNodes — the simulator's half of online
// reconfiguration); a mutex guards the roster, and the nodes
// themselves are safe for concurrent use as before.
type Cluster struct {
	mu     sync.RWMutex
	nodes  []*Node
	delay  DelayFunc // cluster-wide model, applied to grown nodes too
	closed bool
	once   sync.Once
}

// NewCluster starts n node actors.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: cluster needs at least one node, got %d", n)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{nodes: make([]*Node, n), delay: o.delay}
	for i := range c.nodes {
		c.nodes[i] = newNode(NodeID(i), o.delay)
	}
	return c, nil
}

// AddNodes starts count fresh node actors with consecutive ids after
// the current roster and returns them, live immediately — the
// simulator's grow operation. New nodes inherit the cluster-wide
// latency model and start empty; the reconfiguration layer migrates
// data onto them.
func (c *Cluster) AddNodes(count int) ([]*Node, error) {
	if count < 1 {
		return nil, fmt.Errorf("sim: AddNodes(%d): need at least one", count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	added := make([]*Node, count)
	for i := range added {
		added[i] = newNode(NodeID(len(c.nodes)), c.delay)
		c.nodes = append(c.nodes, added[i])
	}
	return added, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Node returns node i. It panics on an out-of-range index.
func (c *Cluster) Node(i int) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("sim: node %d out of [0,%d)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Nodes returns the nodes in id order (a copy: the roster can grow
// concurrently).
func (c *Cluster) Nodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Node(nil), c.nodes...)
}

// SetNodeDelay replaces node i's latency model (nil restores zero
// latency), leaving every other node on the cluster-wide model. Used
// to inject per-node stragglers for tail-latency experiments.
func (c *Cluster) SetNodeDelay(i int, d DelayFunc) { c.Node(i).SetDelay(d) }

// SetLinkFault replaces the fault model of the network path to node
// i (the zero fault heals it). seed keeps the loss rolls
// deterministic; pass a per-node offset of one base seed for
// independent but reproducible links.
func (c *Cluster) SetLinkFault(i int, f LinkFault, seed int64) { c.Node(i).SetLinkFault(f, seed) }

// HealAllLinks removes every link fault.
func (c *Cluster) HealAllLinks() {
	for _, n := range c.Nodes() {
		n.SetLinkFault(LinkFault{}, 0)
	}
}

// Crash fail-stops node i.
func (c *Cluster) Crash(i int) { c.Node(i).Crash() }

// Restart revives node i with its storage intact.
func (c *Cluster) Restart(i int) { c.Node(i).Restart() }

// AliveCount returns how many nodes are currently up.
func (c *Cluster) AliveCount() int {
	alive := 0
	for _, n := range c.Nodes() {
		if !n.Down() {
			alive++
		}
	}
	return alive
}

// ApplyMask sets each node's up/down state from the mask (true = up).
// The mask length must equal the cluster size. Used by the Monte-Carlo
// harness to sample the paper's iid availability model.
func (c *Cluster) ApplyMask(up []bool) error {
	nodes := c.Nodes()
	if len(up) != len(nodes) {
		return fmt.Errorf("sim: mask length %d, cluster size %d", len(up), len(nodes))
	}
	for i, u := range up {
		if u {
			nodes[i].Restart()
		} else {
			nodes[i].Crash()
		}
	}
	return nil
}

// RestartAll revives every node.
func (c *Cluster) RestartAll() {
	for _, n := range c.Nodes() {
		n.Restart()
	}
}

// TotalMetrics aggregates the operation counters across all nodes.
func (c *Cluster) TotalMetrics() (reads, writes, adds, versionQueries int64) {
	for _, n := range c.Nodes() {
		m := n.Metrics()
		reads += m.Reads.Load()
		writes += m.Writes.Load()
		adds += m.Adds.Load()
		versionQueries += m.VersionQueries.Load()
	}
	return
}

// Close stops every node actor. The cluster is unusable afterwards.
func (c *Cluster) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		nodes := append([]*Node(nil), c.nodes...)
		c.mu.Unlock()
		for _, n := range nodes {
			n.stop()
		}
	})
}
