package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestDeleteChunk(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 4, Shard: 2}
	if err := n.PutChunk(context.Background(), id, []byte{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := n.DeleteChunk(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if ok, _ := n.HasChunk(context.Background(), id); ok {
		t.Fatal("chunk survived delete")
	}
	// Idempotent: deleting again succeeds.
	if err := n.DeleteChunk(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	// Down node rejects deletes.
	n.Crash()
	if err := n.DeleteChunk(context.Background(), id); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutChunkIfFresherInstallsOnMissing(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunkIfFresher(context.Background(), id, []byte{1}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadChunk(context.Background(), id)
	if got.Versions[0] != 3 || got.Data[0] != 1 {
		t.Fatalf("chunk = %+v", got)
	}
}

func TestPutChunkIfFresherRefusesRegression(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunk(context.Background(), id, []byte{1, 1}, []uint64{5, 2}); err != nil {
		t.Fatal(err)
	}
	// Slot 0 would regress 5 -> 4: reject, state unchanged.
	err := n.PutChunkIfFresher(context.Background(), id, []byte{9, 9}, []uint64{4, 3})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
	got, _ := n.ReadChunk(context.Background(), id)
	if got.Data[0] != 1 || got.Versions[0] != 5 {
		t.Fatal("rejected install mutated chunk")
	}
	// Componentwise >= accepted (equal in slot 0, ahead in slot 1).
	if err := n.PutChunkIfFresher(context.Background(), id, []byte{7, 7}, []uint64{5, 3}); err != nil {
		t.Fatal(err)
	}
	got, _ = n.ReadChunk(context.Background(), id)
	if got.Data[0] != 7 || got.Versions[1] != 3 {
		t.Fatalf("fresher install skipped: %+v", got)
	}
	// Identical vector: idempotent overwrite accepted.
	if err := n.PutChunkIfFresher(context.Background(), id, []byte{8, 8}, []uint64{5, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestPutChunkIfFresherShapeChecks(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunkIfFresher(context.Background(), id, []byte{1}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	if err := n.PutChunk(context.Background(), id, []byte{1}, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Vector length must match the stored chunk's.
	if err := n.PutChunkIfFresher(context.Background(), id, []byte{2}, []uint64{3}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

// TestPutChunkIfFresherRace drives concurrent guarded installs and
// unconditional writes; under -race this checks the actor fully
// serialises the version comparisons.
func TestPutChunkIfFresherRace(t *testing.T) {
	c := newTestCluster(t, 1)
	n := c.Node(0)
	id := ChunkID{Stripe: 1}
	if err := n.PutChunk(context.Background(), id, []byte{0}, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				v := uint64(i)
				if g%2 == 0 {
					_ = n.PutChunkIfFresher(context.Background(), id, []byte{byte(i)}, []uint64{v})
				} else {
					_ = n.PutChunk(context.Background(), id, []byte{byte(i)}, []uint64{v})
				}
			}
		}(g)
	}
	wg.Wait()
	got, err := n.ReadChunk(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Versions[0] > 100 {
		t.Fatalf("impossible version %d", got.Versions[0])
	}
}
