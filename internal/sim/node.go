package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"trapquorum/client"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
)

// NodeID identifies a storage node within a cluster.
type NodeID int

// DelayFunc models per-operation network+disk latency. A nil DelayFunc
// means zero latency (the default in tests).
type DelayFunc func(op string) time.Duration

// Metrics counts the operations a node served; it is the shared
// nodeengine counter block. The protocol counters are maintained by
// the node's engine, DownRejects and CtxAborts by the simulator's
// admission gate. All fields are safe for concurrent reads while the
// cluster runs.
type Metrics = nodeengine.Metrics

// Node is one simulated storage server: the transport-neutral
// nodeengine.Engine over an in-memory store, wrapped with what a
// simulated network adds — injected per-operation latency, fail-stop
// crash/restart switches, and cluster shutdown. All methods are safe
// for concurrent use — any number of callers may have requests in
// flight against one node at once; their injected latency windows
// overlap like network transit, and the operations themselves
// serialise at the engine, which is the per-node atomicity the
// protocol's conditional parity updates rely on.
//
// Node implements the public client.NodeClient transport contract,
// including context cancellation: an operation whose context expires
// before it reaches the engine (in particular, during injected
// latency) fails with the context's error and leaves the store
// untouched; once the engine accepts it, the operation runs to
// completion, like an RPC already on the wire.
type Node struct {
	id     NodeID
	engine *nodeengine.Engine
	delay  atomic.Pointer[DelayFunc]
	down   atomic.Bool
	// lying, when set, turns the node Byzantine on the read path: every
	// served chunk has its content silently altered after the engine's
	// own integrity checks passed, modelling a node that consistently
	// serves wrong bytes while its metadata stays plausible.
	lying atomic.Bool
	quit  chan struct{}
}

// Compile-time transport conformance.
var _ client.NodeClient = (*Node)(nil)

// newNode builds a node around a fresh engine+memstore.
func newNode(id NodeID, delay DelayFunc) *Node {
	n := &Node{
		id:     id,
		engine: nodeengine.New(memstore.New(), nodeengine.WithName(nodeName(id))),
		quit:   make(chan struct{}),
	}
	n.SetDelay(delay)
	return n
}

func nodeName(id NodeID) string { return fmt.Sprintf("node %d", id) }

// SetDelay installs (or, with nil, removes) this node's latency model,
// replacing any cluster-wide model for this node. Safe to call while
// operations are in flight; calls already inside their delay window
// keep the old model. Used to turn one node into a straggler for
// tail-latency and hedging experiments.
func (n *Node) SetDelay(d DelayFunc) {
	if d == nil {
		n.delay.Store(nil)
		return
	}
	n.delay.Store(&d)
}

// gate is the simulated network in front of the engine: it rejects
// operations on a closed cluster or a crashed node, then serves the
// injected latency window, during which cancellation and shutdown are
// still honoured. A nil error means the engine may run the operation.
func (n *Node) gate(ctx context.Context, op string) error {
	select {
	case <-n.quit:
		return ErrClusterClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		n.engine.Metrics().CtxAborts.Add(1)
		return err
	}
	if n.down.Load() {
		// Fail-stop: a crashed node answers nothing; the caller's
		// transport surfaces ErrNodeDown.
		n.engine.Metrics().DownRejects.Add(1)
		return ErrNodeDown
	}
	if dp := n.delay.Load(); dp != nil {
		if d := (*dp)(op); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				n.engine.Metrics().CtxAborts.Add(1)
				return ctx.Err()
			case <-n.quit:
				timer.Stop()
				return ErrClusterClosed
			}
			// Fail-stop can land while the request is in flight:
			// re-check at "accept time", after the latency window,
			// like the actor loop used to — a node crashed mid-delay
			// must answer nothing.
			if n.down.Load() {
				n.engine.Metrics().DownRejects.Add(1)
				return ErrNodeDown
			}
		}
	}
	return nil
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Metrics exposes the node's operation counters.
func (n *Node) Metrics() *Metrics { return n.engine.Metrics() }

// Engine exposes the node's protocol engine (diagnostics and tests).
func (n *Node) Engine() *nodeengine.Engine { return n.engine }

// Down reports whether the node is currently failed.
func (n *Node) Down() bool { return n.down.Load() }

// SetReadCorrupt turns the node into a persistent liar (true) or back
// into an honest node (false): while set, every ReadChunk response has
// its first data byte flipped after the engine's integrity checks, so
// the node's own metadata never betrays it — only the cross-checksum
// records its peers hold can. Fault-injection surface for Byzantine
// chaos tests.
func (n *Node) SetReadCorrupt(lying bool) { n.lying.Store(lying) }

// Crash fail-stops the node: every subsequent operation fails with
// ErrNodeDown until Restart. Stored chunks survive (disks outlive
// crashes); use Wipe for media loss.
func (n *Node) Crash() { n.down.Store(true) }

// Restart brings a crashed node back with its stored chunks intact.
func (n *Node) Restart() { n.down.Store(false) }

// Wipe erases the node's store, simulating media loss. The node must
// be up; typically used right after Restart to model a replaced disk
// before the repair protocol refills it.
func (n *Node) Wipe(ctx context.Context) error {
	if err := n.gate(ctx, "wipe"); err != nil {
		return err
	}
	return n.engine.Wipe(ctx)
}

// ReadChunk returns a deep copy of the chunk, or ErrNotFound.
func (n *Node) ReadChunk(ctx context.Context, id ChunkID) (Chunk, error) {
	if err := n.gate(ctx, "read"); err != nil {
		n.engine.Metrics().Reads.Add(1)
		return Chunk{}, err
	}
	chunk, err := n.engine.ReadChunk(ctx, id)
	if err == nil && n.lying.Load() && len(chunk.Data) > 0 {
		// The lie happens on the served copy, after the engine's own
		// checks: versions and record look perfectly healthy, only the
		// bytes are wrong — the case self-sums cannot catch.
		chunk.Data[0] ^= 0xa5
	}
	return chunk, err
}

// ReadVersions returns a copy of the chunk's version vector and
// cross-checksum record, or ErrNotFound. This is the "u.version(id)"
// probe of Algorithms 1–2.
func (n *Node) ReadVersions(ctx context.Context, id ChunkID) ([]uint64, []client.BlockSum, error) {
	if err := n.gate(ctx, "version"); err != nil {
		n.engine.Metrics().VersionQueries.Add(1)
		return nil, nil, err
	}
	return n.engine.ReadVersions(ctx, id)
}

// PutChunk stores a full chunk (data plus version vector), replacing
// any previous value. Used for data-block writes, bootstrap and
// repair. The inputs are copied.
func (n *Node) PutChunk(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	return n.engine.PutChunk(ctx, id, data, versions, sums...)
}

// CompareAndPut overwrites the chunk's data only when version slot
// `slot` currently holds expect, then sets it to next. It returns
// ErrVersionMismatch otherwise. Used by data nodes so that a delayed
// stale writer cannot clobber a newer block.
func (n *Node) CompareAndPut(ctx context.Context, id ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	return n.engine.CompareAndPut(ctx, id, slot, expect, next, data, sum...)
}

// CompareAndAdd XORs delta into the chunk's data when version slot
// `slot` currently holds expect, then advances the slot to next —
// the conditional "u.add(α_{i,j}·(x−chunk))" of Algorithm 1 lines
// 26–28. A mismatch (stale or too-new parity) yields
// ErrVersionMismatch and leaves the chunk untouched.
func (n *Node) CompareAndAdd(ctx context.Context, id ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	if err := n.gate(ctx, "add"); err != nil {
		n.engine.Metrics().Adds.Add(1)
		return err
	}
	return n.engine.CompareAndAdd(ctx, id, slot, expect, next, delta, sum...)
}

// PutChunkIfFresher installs a chunk only when it does not regress any
// version slot of an existing chunk: the proposed version vector must
// be componentwise ≥ the stored one (a missing chunk always accepts;
// an identical vector is an idempotent no-op). Repair uses this so
// that a rebuild gathered before a concurrent write cannot overwrite
// the write's newer state; the mismatch surfaces as
// ErrVersionMismatch and the repair is retried.
func (n *Node) PutChunkIfFresher(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	return n.engine.PutChunkIfFresher(ctx, id, data, versions, sums...)
}

// DeleteChunk removes a chunk. Deleting a missing chunk is a no-op,
// mirroring idempotent deletion (used by garbage collection and by
// failure-injection tests).
func (n *Node) DeleteChunk(ctx context.Context, id ChunkID) error {
	if err := n.gate(ctx, "delete"); err != nil {
		return err
	}
	return n.engine.DeleteChunk(ctx, id)
}

// HasChunk reports whether the node stores the chunk.
func (n *Node) HasChunk(ctx context.Context, id ChunkID) (bool, error) {
	if err := n.gate(ctx, "stat"); err != nil {
		return false, err
	}
	return n.engine.HasChunk(ctx, id)
}

// stop marks the cluster closed for this node. Called by
// Cluster.Close.
func (n *Node) stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
}
