package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/gf256"
)

// NodeID identifies a storage node within a cluster.
type NodeID int

// DelayFunc models per-operation network+disk latency. A nil DelayFunc
// means zero latency (the default in tests).
type DelayFunc func(op string) time.Duration

// Metrics counts the operations a node served. All fields are safe for
// concurrent reads while the cluster runs.
type Metrics struct {
	Reads            atomic.Int64
	Writes           atomic.Int64
	Adds             atomic.Int64
	VersionQueries   atomic.Int64
	VersionRejects   atomic.Int64
	DownRejects      atomic.Int64
	CtxAborts        atomic.Int64
	ServedOperations atomic.Int64
}

// Node is one simulated storage server: a goroutine actor owning a
// chunk store. All public methods are synchronous RPCs into the actor
// and are safe for concurrent use — any number of callers may have
// requests in flight against one node at once; their injected latency
// windows overlap like network transit, and the operations themselves
// serialise at the actor, which is the per-node atomicity the
// protocol's conditional parity updates rely on. Node implements the
// public client.NodeClient transport contract, including context
// cancellation: an operation whose context expires before the request
// reaches the actor (in particular, during injected latency) fails
// with the context's error and leaves the store untouched; once the
// request is accepted, the operation runs to completion, like an RPC
// already on the wire.
type Node struct {
	id      NodeID
	delay   atomic.Pointer[DelayFunc]
	reqCh   chan request
	quit    chan struct{}
	down    atomic.Bool
	metrics Metrics
}

// Compile-time transport conformance.
var _ client.NodeClient = (*Node)(nil)

type request struct {
	op    func(store map[ChunkID]*Chunk) (any, error)
	reply chan response
}

type response struct {
	value any
	err   error
}

// newNode spins up the actor goroutine.
func newNode(id NodeID, delay DelayFunc) *Node {
	n := &Node{
		id:    id,
		reqCh: make(chan request),
		quit:  make(chan struct{}),
	}
	n.SetDelay(delay)
	go n.serve()
	return n
}

// SetDelay installs (or, with nil, removes) this node's latency model,
// replacing any cluster-wide model for this node. Safe to call while
// operations are in flight; calls already inside their delay window
// keep the old model. Used to turn one node into a straggler for
// tail-latency and hedging experiments.
func (n *Node) SetDelay(d DelayFunc) {
	if d == nil {
		n.delay.Store(nil)
		return
	}
	n.delay.Store(&d)
}

func (n *Node) serve() {
	store := make(map[ChunkID]*Chunk)
	for {
		select {
		case <-n.quit:
			return
		case req := <-n.reqCh:
			if n.down.Load() {
				// Fail-stop: a crashed node answers nothing; the
				// caller's transport surfaces ErrNodeDown.
				n.metrics.DownRejects.Add(1)
				req.reply <- response{err: ErrNodeDown}
				continue
			}
			v, err := req.op(store)
			n.metrics.ServedOperations.Add(1)
			req.reply <- response{value: v, err: err}
		}
	}
}

// call performs a synchronous request against the actor. op is the
// operation label used by the latency model. Cancellation is honoured
// up to the moment the actor accepts the request — covering the
// injected latency window — after which the operation completes and
// its result is returned, so a call either fails with no node effect
// or reports the node's actual answer.
func (n *Node) call(ctx context.Context, op string, f func(store map[ChunkID]*Chunk) (any, error)) (any, error) {
	if err := ctx.Err(); err != nil {
		n.metrics.CtxAborts.Add(1)
		return nil, err
	}
	if n.down.Load() {
		n.metrics.DownRejects.Add(1)
		return nil, ErrNodeDown
	}
	if dp := n.delay.Load(); dp != nil {
		if d := (*dp)(op); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				n.metrics.CtxAborts.Add(1)
				return nil, ctx.Err()
			case <-n.quit:
				timer.Stop()
				return nil, ErrClusterClosed
			}
		}
	}
	req := request{op: f, reply: make(chan response, 1)}
	select {
	case n.reqCh <- req:
	case <-ctx.Done():
		n.metrics.CtxAborts.Add(1)
		return nil, ctx.Err()
	case <-n.quit:
		return nil, ErrClusterClosed
	}
	select {
	case resp := <-req.reply:
		return resp.value, resp.err
	case <-n.quit:
		return nil, ErrClusterClosed
	}
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Metrics exposes the node's operation counters.
func (n *Node) Metrics() *Metrics { return &n.metrics }

// Down reports whether the node is currently failed.
func (n *Node) Down() bool { return n.down.Load() }

// Crash fail-stops the node: every subsequent operation fails with
// ErrNodeDown until Restart. Stored chunks survive (disks outlive
// crashes); use Wipe for media loss.
func (n *Node) Crash() { n.down.Store(true) }

// Restart brings a crashed node back with its stored chunks intact.
func (n *Node) Restart() { n.down.Store(false) }

// Wipe erases the node's store, simulating media loss. The node must
// be up; typically used right after Restart to model a replaced disk
// before the repair protocol refills it.
func (n *Node) Wipe(ctx context.Context) error {
	_, err := n.call(ctx, "wipe", func(store map[ChunkID]*Chunk) (any, error) {
		for k := range store {
			delete(store, k)
		}
		return nil, nil
	})
	return err
}

// ReadChunk returns a deep copy of the chunk, or ErrNotFound.
func (n *Node) ReadChunk(ctx context.Context, id ChunkID) (Chunk, error) {
	n.metrics.Reads.Add(1)
	v, err := n.call(ctx, "read", func(store map[ChunkID]*Chunk) (any, error) {
		c, ok := store[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s on node %d", ErrNotFound, id, n.id)
		}
		return c.Clone(), nil
	})
	if err != nil {
		return Chunk{}, err
	}
	return v.(Chunk), nil
}

// ReadVersions returns a copy of the chunk's version vector, or
// ErrNotFound. This is the "u.version(id)" probe of Algorithms 1–2.
func (n *Node) ReadVersions(ctx context.Context, id ChunkID) ([]uint64, error) {
	n.metrics.VersionQueries.Add(1)
	v, err := n.call(ctx, "version", func(store map[ChunkID]*Chunk) (any, error) {
		c, ok := store[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s on node %d", ErrNotFound, id, n.id)
		}
		return append([]uint64(nil), c.Versions...), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]uint64), nil
}

// snapshot takes a pooled copy of an outgoing buffer. The caller's
// buffer may be pooled itself and released right after the RPC
// settles, so the node must never hold it past the call; the snapshot
// is what crosses into the actor. releaseSnapshot returns it unless
// the cluster shut down mid-operation — in that race the actor may
// still be reading the snapshot, so it is left to the GC.
func snapshot(data []byte) *blockpool.Block {
	blk := blockpool.GetBlock(len(data))
	copy(blk.B, data)
	return blk
}

func releaseSnapshot(blk *blockpool.Block, err error) {
	if errors.Is(err, ErrClusterClosed) {
		return
	}
	blk.Release()
}

// storeChunkData installs snapshot bytes as chunk content: in place
// when a chunk of the same size exists (its buffer is owned by the
// store and no reader aliases it — reads return clones), freshly
// allocated otherwise (the store retains it, so it cannot come from
// the pool).
func storeChunkData(store map[ChunkID]*Chunk, id ChunkID, data []byte, versions []uint64) {
	if c, ok := store[id]; ok && len(c.Data) == len(data) {
		copy(c.Data, data)
		c.Versions = append(c.Versions[:0], versions...)
		return
	}
	store[id] = &Chunk{Data: append([]byte(nil), data...), Versions: append([]uint64(nil), versions...)}
}

// PutChunk stores a full chunk (data plus version vector), replacing
// any previous value. Used for data-block writes, bootstrap and
// repair. The inputs are copied.
func (n *Node) PutChunk(ctx context.Context, id ChunkID, data []byte, versions []uint64) error {
	n.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunk needs at least one version", ErrBadRequest)
	}
	snap := snapshot(data)
	verCopy := append([]uint64(nil), versions...)
	_, err := n.call(ctx, "write", func(store map[ChunkID]*Chunk) (any, error) {
		storeChunkData(store, id, snap.B, verCopy)
		return nil, nil
	})
	releaseSnapshot(snap, err)
	return err
}

// CompareAndPut overwrites the chunk's data only when version slot
// `slot` currently holds expect, then sets it to next. It returns
// ErrVersionMismatch otherwise. Used by data nodes so that a delayed
// stale writer cannot clobber a newer block.
func (n *Node) CompareAndPut(ctx context.Context, id ChunkID, slot int, expect, next uint64, data []byte) error {
	n.metrics.Writes.Add(1)
	snap := snapshot(data)
	_, err := n.call(ctx, "write", func(store map[ChunkID]*Chunk) (any, error) {
		c, ok := store[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s on node %d", ErrNotFound, id, n.id)
		}
		if slot < 0 || slot >= len(c.Versions) {
			return nil, fmt.Errorf("%w: version slot %d of %d", ErrBadRequest, slot, len(c.Versions))
		}
		if c.Versions[slot] != expect {
			n.metrics.VersionRejects.Add(1)
			return nil, fmt.Errorf("%w: slot %d holds %d, expected %d", ErrVersionMismatch, slot, c.Versions[slot], expect)
		}
		if len(c.Data) == len(snap.B) {
			copy(c.Data, snap.B)
		} else {
			c.Data = append([]byte(nil), snap.B...)
		}
		c.Versions[slot] = next
		return nil, nil
	})
	releaseSnapshot(snap, err)
	return err
}

// CompareAndAdd XORs delta into the chunk's data when version slot
// `slot` currently holds expect, then advances the slot to next —
// the conditional "u.add(α_{i,j}·(x−chunk))" of Algorithm 1 lines
// 26–28. A mismatch (stale or too-new parity) yields
// ErrVersionMismatch and leaves the chunk untouched.
func (n *Node) CompareAndAdd(ctx context.Context, id ChunkID, slot int, expect, next uint64, delta []byte) error {
	n.metrics.Adds.Add(1)
	snap := snapshot(delta)
	_, err := n.call(ctx, "add", func(store map[ChunkID]*Chunk) (any, error) {
		c, ok := store[id]
		if !ok {
			return nil, fmt.Errorf("%w: %s on node %d", ErrNotFound, id, n.id)
		}
		if slot < 0 || slot >= len(c.Versions) {
			return nil, fmt.Errorf("%w: version slot %d of %d", ErrBadRequest, slot, len(c.Versions))
		}
		if len(snap.B) != len(c.Data) {
			return nil, fmt.Errorf("%w: delta size %d, chunk size %d", ErrBadRequest, len(snap.B), len(c.Data))
		}
		if c.Versions[slot] != expect {
			n.metrics.VersionRejects.Add(1)
			return nil, fmt.Errorf("%w: slot %d holds %d, expected %d", ErrVersionMismatch, slot, c.Versions[slot], expect)
		}
		gf256.XorSlice(c.Data, snap.B)
		c.Versions[slot] = next
		return nil, nil
	})
	releaseSnapshot(snap, err)
	return err
}

// PutChunkIfFresher installs a chunk only when it does not regress any
// version slot of an existing chunk: the proposed version vector must
// be componentwise ≥ the stored one (a missing chunk always accepts;
// an identical vector is an idempotent no-op). Repair uses this so
// that a rebuild gathered before a concurrent write cannot overwrite
// the write's newer state; the mismatch surfaces as
// ErrVersionMismatch and the repair is retried.
func (n *Node) PutChunkIfFresher(ctx context.Context, id ChunkID, data []byte, versions []uint64) error {
	n.metrics.Writes.Add(1)
	if len(versions) == 0 {
		return fmt.Errorf("%w: PutChunkIfFresher needs at least one version", ErrBadRequest)
	}
	snap := snapshot(data)
	verCopy := append([]uint64(nil), versions...)
	_, err := n.call(ctx, "write", func(store map[ChunkID]*Chunk) (any, error) {
		c, ok := store[id]
		if ok {
			if len(c.Versions) != len(verCopy) {
				return nil, fmt.Errorf("%w: version vector length %d vs stored %d", ErrBadRequest, len(verCopy), len(c.Versions))
			}
			for slot, v := range c.Versions {
				if verCopy[slot] < v {
					n.metrics.VersionRejects.Add(1)
					return nil, fmt.Errorf("%w: slot %d would regress %d -> %d", ErrVersionMismatch, slot, v, verCopy[slot])
				}
			}
		}
		storeChunkData(store, id, snap.B, verCopy)
		return nil, nil
	})
	releaseSnapshot(snap, err)
	return err
}

// DeleteChunk removes a chunk. Deleting a missing chunk is a no-op,
// mirroring idempotent deletion (used by garbage collection and by
// failure-injection tests).
func (n *Node) DeleteChunk(ctx context.Context, id ChunkID) error {
	_, err := n.call(ctx, "delete", func(store map[ChunkID]*Chunk) (any, error) {
		delete(store, id)
		return nil, nil
	})
	return err
}

// HasChunk reports whether the node stores the chunk.
func (n *Node) HasChunk(ctx context.Context, id ChunkID) (bool, error) {
	v, err := n.call(ctx, "stat", func(store map[ChunkID]*Chunk) (any, error) {
		_, ok := store[id]
		return ok, nil
	})
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// stop terminates the actor goroutine. Called by Cluster.Close.
func (n *Node) stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
}
