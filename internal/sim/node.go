package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"trapquorum/client"
	"trapquorum/internal/memstore"
	"trapquorum/internal/nodeengine"
)

// NodeID identifies a storage node within a cluster.
type NodeID int

// DelayFunc models per-operation network+disk latency. A nil DelayFunc
// means zero latency (the default in tests).
type DelayFunc func(op string) time.Duration

// Metrics counts the operations a node served; it is the shared
// nodeengine counter block. The protocol counters are maintained by
// the node's engine, DownRejects and CtxAborts by the simulator's
// admission gate. All fields are safe for concurrent reads while the
// cluster runs.
type Metrics = nodeengine.Metrics

// Node is one simulated storage server: the transport-neutral
// nodeengine.Engine over an in-memory store, wrapped with what a
// simulated network adds — injected per-operation latency, fail-stop
// crash/restart switches, and cluster shutdown. All methods are safe
// for concurrent use — any number of callers may have requests in
// flight against one node at once; their injected latency windows
// overlap like network transit, and the operations themselves
// serialise at the engine, which is the per-node atomicity the
// protocol's conditional parity updates rely on.
//
// Node implements the public client.NodeClient transport contract,
// including context cancellation: an operation whose context expires
// before it reaches the engine (in particular, during injected
// latency) fails with the context's error and leaves the store
// untouched; once the engine accepts it, the operation runs to
// completion, like an RPC already on the wire.
type Node struct {
	id     NodeID
	engine *nodeengine.Engine
	delay  atomic.Pointer[DelayFunc]
	down   atomic.Bool
	// lying, when set, turns the node Byzantine on the read path: every
	// served chunk has its content silently altered after the engine's
	// own integrity checks passed, modelling a node that consistently
	// serves wrong bytes while its metadata stays plausible.
	lying atomic.Bool
	// link models the network path to this node (nil = perfect).
	link atomic.Pointer[linkState]
	quit chan struct{}
}

// LinkFault is the simulator's link-fault vocabulary, mirroring what
// internal/chaosnet does to real sockets so in-memory and TCP chaos
// suites script the same scenarios. The zero value is a perfect link.
type LinkFault struct {
	// ReqLoss is the probability a request vanishes on the way in: the
	// operation is never applied and the caller hangs until its
	// context ends — a stalled stream, not an error.
	ReqLoss float64
	// RespLoss is the probability the *response* vanishes after the
	// node applied the operation: the caller sees its context error
	// while the mutation took effect — the write-hole ambiguity real
	// networks force on clients.
	RespLoss float64
	// Refuse fails every operation instantly with ErrNodeDown, the
	// connection-refused half of a partition (the loud kind; use
	// ReqLoss=1 for the silent kind).
	Refuse bool
}

// zero reports whether the fault injects nothing.
func (f LinkFault) zero() bool { return f == LinkFault{} }

// linkState carries one node's fault set plus its deterministic dice.
type linkState struct {
	f   LinkFault
	mu  sync.Mutex
	rng *rand.Rand
}

// roll draws one deterministic probability decision.
func (ls *linkState) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	ls.mu.Lock()
	hit := ls.rng.Float64() < p
	ls.mu.Unlock()
	return hit
}

// SetLinkFault installs (or, with the zero fault, removes) the fault
// model of the network path to this node. seed makes the loss rolls
// deterministic. Safe while operations are in flight; operations
// already past the gate keep the old model.
func (n *Node) SetLinkFault(f LinkFault, seed int64) {
	if f.zero() {
		n.link.Store(nil)
		return
	}
	n.link.Store(&linkState{f: f, rng: rand.New(rand.NewSource(seed))})
}

// Compile-time transport conformance.
var _ client.NodeClient = (*Node)(nil)

// newNode builds a node around a fresh engine+memstore.
func newNode(id NodeID, delay DelayFunc) *Node {
	n := &Node{
		id:     id,
		engine: nodeengine.New(memstore.New(), nodeengine.WithName(nodeName(id))),
		quit:   make(chan struct{}),
	}
	n.SetDelay(delay)
	return n
}

func nodeName(id NodeID) string { return fmt.Sprintf("node %d", id) }

// SetDelay installs (or, with nil, removes) this node's latency model,
// replacing any cluster-wide model for this node. Safe to call while
// operations are in flight; calls already inside their delay window
// keep the old model. Used to turn one node into a straggler for
// tail-latency and hedging experiments.
func (n *Node) SetDelay(d DelayFunc) {
	if d == nil {
		n.delay.Store(nil)
		return
	}
	n.delay.Store(&d)
}

// gate is the simulated network in front of the engine: it rejects
// operations on a closed cluster or a crashed node, then serves the
// injected latency window, during which cancellation and shutdown are
// still honoured. A nil error means the engine may run the operation.
func (n *Node) gate(ctx context.Context, op string) error {
	select {
	case <-n.quit:
		return ErrClusterClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		n.engine.Metrics().CtxAborts.Add(1)
		return err
	}
	if n.down.Load() {
		// Fail-stop: a crashed node answers nothing; the caller's
		// transport surfaces ErrNodeDown.
		n.engine.Metrics().DownRejects.Add(1)
		return ErrNodeDown
	}
	if ls := n.link.Load(); ls != nil {
		if ls.f.Refuse {
			// Connection refused: the loud partition — instant
			// transport failure, indistinguishable from fail-stop.
			n.engine.Metrics().DownRejects.Add(1)
			return ErrNodeDown
		}
		if ls.roll(ls.f.ReqLoss) {
			// The request died in transit: the node never sees it and
			// the caller hangs until its own deadline, exactly like a
			// stalled TCP stream.
			select {
			case <-ctx.Done():
				n.engine.Metrics().CtxAborts.Add(1)
				return ctx.Err()
			case <-n.quit:
				return ErrClusterClosed
			}
		}
	}
	if dp := n.delay.Load(); dp != nil {
		if d := (*dp)(op); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				n.engine.Metrics().CtxAborts.Add(1)
				return ctx.Err()
			case <-n.quit:
				timer.Stop()
				return ErrClusterClosed
			}
			// Fail-stop can land while the request is in flight:
			// re-check at "accept time", after the latency window,
			// like the actor loop used to — a node crashed mid-delay
			// must answer nothing.
			if n.down.Load() {
				n.engine.Metrics().DownRejects.Add(1)
				return ErrNodeDown
			}
		}
	}
	// The stale-epoch guard runs at accept time, after the latency
	// window — where the TCP server checks it when the request frame is
	// handled. The retired watermark only grows, so a request delayed
	// past a cutover is fenced exactly as it would be on a real node.
	if tag := client.EpochFromContext(ctx); tag != 0 {
		if err := n.engine.EpochGuard(tag); err != nil {
			return err
		}
	}
	return nil
}

// respGate models the response's trip back: with probability RespLoss
// the answer vanishes after the engine applied the operation, so the
// caller blocks until its context ends while the mutation stands —
// the ambiguity window the protocol's rollback/repair layers absorb.
func (n *Node) respGate(ctx context.Context) error {
	ls := n.link.Load()
	if ls == nil || !ls.roll(ls.f.RespLoss) {
		return nil
	}
	select {
	case <-ctx.Done():
		n.engine.Metrics().CtxAborts.Add(1)
		return ctx.Err()
	case <-n.quit:
		return ErrClusterClosed
	}
}

// Probe is the health monitor's transport probe: it crosses the same
// admission gate and link faults as real operations (so a partitioned
// or stalled link drives health transitions) and serves the injected
// latency window (so a straggler's probes are slow, feeding brownout
// detection), but touches no store state.
func (n *Node) Probe(ctx context.Context) error {
	if err := n.gate(ctx, "probe"); err != nil {
		return err
	}
	return n.respGate(ctx)
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Metrics exposes the node's operation counters.
func (n *Node) Metrics() *Metrics { return n.engine.Metrics() }

// Engine exposes the node's protocol engine (diagnostics and tests).
func (n *Node) Engine() *nodeengine.Engine { return n.engine }

// Down reports whether the node is currently failed.
func (n *Node) Down() bool { return n.down.Load() }

// SetReadCorrupt turns the node into a persistent liar (true) or back
// into an honest node (false): while set, every ReadChunk response has
// its first data byte flipped after the engine's integrity checks, so
// the node's own metadata never betrays it — only the cross-checksum
// records its peers hold can. Fault-injection surface for Byzantine
// chaos tests.
func (n *Node) SetReadCorrupt(lying bool) { n.lying.Store(lying) }

// Crash fail-stops the node: every subsequent operation fails with
// ErrNodeDown until Restart. Stored chunks survive (disks outlive
// crashes); use Wipe for media loss.
func (n *Node) Crash() { n.down.Store(true) }

// Restart brings a crashed node back with its stored chunks intact.
func (n *Node) Restart() { n.down.Store(false) }

// Wipe erases the node's store, simulating media loss. The node must
// be up; typically used right after Restart to model a replaced disk
// before the repair protocol refills it.
func (n *Node) Wipe(ctx context.Context) error {
	if err := n.gate(ctx, "wipe"); err != nil {
		return err
	}
	return n.engine.Wipe(ctx)
}

// ReadChunk returns a deep copy of the chunk, or ErrNotFound.
func (n *Node) ReadChunk(ctx context.Context, id ChunkID) (Chunk, error) {
	if err := n.gate(ctx, "read"); err != nil {
		n.engine.Metrics().Reads.Add(1)
		return Chunk{}, err
	}
	chunk, err := n.engine.ReadChunk(ctx, id)
	if err == nil && n.lying.Load() && len(chunk.Data) > 0 {
		// The lie happens on the served copy, after the engine's own
		// checks: versions and record look perfectly healthy, only the
		// bytes are wrong — the case self-sums cannot catch.
		chunk.Data[0] ^= 0xa5
	}
	if gerr := n.respGate(ctx); gerr != nil {
		return Chunk{}, gerr
	}
	return chunk, err
}

// ReadVersions returns a copy of the chunk's version vector and
// cross-checksum record, or ErrNotFound. This is the "u.version(id)"
// probe of Algorithms 1–2.
func (n *Node) ReadVersions(ctx context.Context, id ChunkID) ([]uint64, []client.BlockSum, error) {
	if err := n.gate(ctx, "version"); err != nil {
		n.engine.Metrics().VersionQueries.Add(1)
		return nil, nil, err
	}
	versions, sums, err := n.engine.ReadVersions(ctx, id)
	if gerr := n.respGate(ctx); gerr != nil {
		return nil, nil, gerr
	}
	return versions, sums, err
}

// PutChunk stores a full chunk (data plus version vector), replacing
// any previous value. Used for data-block writes, bootstrap and
// repair. The inputs are copied.
func (n *Node) PutChunk(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	err := n.engine.PutChunk(ctx, id, data, versions, sums...)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// CompareAndPut overwrites the chunk's data only when version slot
// `slot` currently holds expect, then sets it to next. It returns
// ErrVersionMismatch otherwise. Used by data nodes so that a delayed
// stale writer cannot clobber a newer block.
func (n *Node) CompareAndPut(ctx context.Context, id ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	err := n.engine.CompareAndPut(ctx, id, slot, expect, next, data, sum...)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// CompareAndAdd XORs delta into the chunk's data when version slot
// `slot` currently holds expect, then advances the slot to next —
// the conditional "u.add(α_{i,j}·(x−chunk))" of Algorithm 1 lines
// 26–28. A mismatch (stale or too-new parity) yields
// ErrVersionMismatch and leaves the chunk untouched.
func (n *Node) CompareAndAdd(ctx context.Context, id ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	if err := n.gate(ctx, "add"); err != nil {
		n.engine.Metrics().Adds.Add(1)
		return err
	}
	err := n.engine.CompareAndAdd(ctx, id, slot, expect, next, delta, sum...)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// PutChunkIfFresher installs a chunk only when it does not regress any
// version slot of an existing chunk: the proposed version vector must
// be componentwise ≥ the stored one (a missing chunk always accepts;
// an identical vector is an idempotent no-op). Repair uses this so
// that a rebuild gathered before a concurrent write cannot overwrite
// the write's newer state; the mismatch surfaces as
// ErrVersionMismatch and the repair is retried.
func (n *Node) PutChunkIfFresher(ctx context.Context, id ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := n.gate(ctx, "write"); err != nil {
		n.engine.Metrics().Writes.Add(1)
		return err
	}
	err := n.engine.PutChunkIfFresher(ctx, id, data, versions, sums...)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// DeleteChunk removes a chunk. Deleting a missing chunk is a no-op,
// mirroring idempotent deletion (used by garbage collection and by
// failure-injection tests).
func (n *Node) DeleteChunk(ctx context.Context, id ChunkID) error {
	if err := n.gate(ctx, "delete"); err != nil {
		return err
	}
	err := n.engine.DeleteChunk(ctx, id)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// SetEpoch durably records the cluster's epoch watermarks and
// placement blob on this node (see client.EpochSetter). It crosses the
// same admission gate and link faults as real operations, so a crashed
// or partitioned node misses the broadcast exactly as a real fleet
// member would.
func (n *Node) SetEpoch(ctx context.Context, installed, retired uint64, blob []byte) error {
	if err := n.gate(ctx, "epoch"); err != nil {
		return err
	}
	err := n.engine.SetEpoch(ctx, installed, retired, blob)
	if gerr := n.respGate(ctx); gerr != nil {
		return gerr
	}
	return err
}

// EpochState reads back the node's persisted epoch watermarks and
// placement blob (see client.EpochSetter).
func (n *Node) EpochState(ctx context.Context) (installed, retired uint64, blob []byte, err error) {
	if err := n.gate(ctx, "epoch"); err != nil {
		return 0, 0, nil, err
	}
	installed, retired, blob, err = n.engine.EpochState(ctx)
	if gerr := n.respGate(ctx); gerr != nil {
		return 0, 0, nil, gerr
	}
	return installed, retired, blob, err
}

// Compile-time conformance with the optional reconfiguration surface.
var _ client.EpochSetter = (*Node)(nil)

// HasChunk reports whether the node stores the chunk.
func (n *Node) HasChunk(ctx context.Context, id ChunkID) (bool, error) {
	if err := n.gate(ctx, "stat"); err != nil {
		return false, err
	}
	ok, err := n.engine.HasChunk(ctx, id)
	if gerr := n.respGate(ctx); gerr != nil {
		return false, gerr
	}
	return ok, err
}

// stop marks the cluster closed for this node. Called by
// Cluster.Close.
func (n *Node) stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
}
