// Package sim implements the simulated distributed storage cluster the
// TRAP-ERC protocol runs on: one goroutine actor per storage node, a
// versioned chunk store per node, fail-stop failure injection and an
// optional latency model.
//
// The simulator substitutes for the paper's physical testbed. The
// protocol only ever observes per-request success/failure, returned
// chunk contents and version numbers — all of which the simulator
// reproduces exactly under the paper's §IV assumptions (independent
// fail-stop nodes, reliable links).
package sim

import "errors"

// Errors returned by node operations. The protocol layer treats
// ErrNodeDown as the fail-stop signal of the paper's model;
// ErrVersionMismatch is the failed conditional of Algorithm 1 line 26
// (a stale parity node must not receive a delta).
var (
	ErrNodeDown        = errors.New("sim: node is down")
	ErrNotFound        = errors.New("sim: chunk not found")
	ErrVersionMismatch = errors.New("sim: version mismatch")
	ErrBadRequest      = errors.New("sim: malformed request")
	ErrClusterClosed   = errors.New("sim: cluster closed")
)
