// Package sim implements the simulated distributed storage cluster the
// TRAP-ERC protocol runs on: each node is the shared
// nodeengine.Engine over an in-memory chunk store, wrapped with what a
// simulated network adds — fail-stop failure injection and an optional
// per-operation latency model. The protocol semantics themselves
// (version vectors, atomic conditional updates) live in
// internal/nodeengine and are shared with the real network node
// (transport/tcp, cmd/trapnode).
//
// The simulator substitutes for the paper's physical testbed. The
// protocol only ever observes per-request success/failure, returned
// chunk contents and version numbers — all of which the simulator
// reproduces exactly under the paper's §IV assumptions (independent
// fail-stop nodes, reliable links). It is the reference implementation
// of the public client.NodeClient transport contract.
package sim

import (
	"errors"

	"trapquorum/client"
)

// Errors returned by node operations, shared with every other backend
// through the client package. The protocol layer treats ErrNodeDown as
// the fail-stop signal of the paper's model; ErrVersionMismatch is the
// failed conditional of Algorithm 1 line 26 (a stale parity node must
// not receive a delta).
var (
	ErrNodeDown        = client.ErrNodeDown
	ErrNotFound        = client.ErrNotFound
	ErrVersionMismatch = client.ErrVersionMismatch
	ErrBadRequest      = client.ErrBadRequest
	// ErrClusterClosed is simulator-specific: the cluster's actors
	// were stopped underneath the operation.
	ErrClusterClosed = errors.New("sim: cluster closed")
)
