package sim

import "trapquorum/client"

// ChunkID, Chunk and NoVersion are the transport-level types of the
// public client package; the simulator stores exactly what the wire
// contract describes.
type (
	ChunkID = client.ChunkID
	Chunk   = client.Chunk
)

// NoVersion marks an absent or invalid version, mirroring the
// "version ← −1" sentinel of Algorithm 2.
const NoVersion = client.NoVersion
