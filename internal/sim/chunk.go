package sim

import "fmt"

// ChunkID names one shard of one stripe: Shard is the position within
// the stripe (0..n-1; positions < k hold original data blocks,
// positions ≥ k hold parity).
type ChunkID struct {
	Stripe uint64
	Shard  int
}

// String renders the id as "stripe/shard".
func (id ChunkID) String() string { return fmt.Sprintf("%d/%d", id.Stripe, id.Shard) }

// NoVersion marks an absent or invalid version, mirroring the
// "version ← −1" sentinel of Algorithm 2.
const NoVersion = ^uint64(0)

// Chunk is one stored shard plus its version bookkeeping.
//
// A data chunk (shard < k) carries one version: that of the block it
// stores. A parity chunk (shard ≥ k) carries k versions — the paper's
// matrix column V(:, j−k): entry i says which version of data block i
// is folded into this parity block.
type Chunk struct {
	Data     []byte
	Versions []uint64
}

// clone deep-copies a chunk so actor-owned state never escapes.
func (c *Chunk) clone() Chunk {
	out := Chunk{
		Data:     append([]byte(nil), c.Data...),
		Versions: append([]uint64(nil), c.Versions...),
	}
	return out
}
