package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"trapquorum/internal/core"
	"trapquorum/internal/failsched"
	"trapquorum/internal/trapezoid"
)

// EnduranceConfig parameterises a long-horizon run where nodes follow
// an MTBF/MTTR alternating renewal process instead of the paper's
// instantaneous iid model, and a repair daemon (optionally) brings
// stale shards back after each outage.
type EnduranceConfig struct {
	N, K      int
	Trapezoid trapezoid.Config
	BlockSize int
	// Model gives each node exp(MTBF) up and exp(MTTR) down periods;
	// steady-state availability is MTBF/(MTBF+MTTR).
	Model failsched.Model
	// Horizon is the virtual duration of the run; one write and one
	// read are attempted at every unit step.
	Horizon float64
	// RepairEvery is the repair daemon's period in virtual time;
	// 0 disables repair (the decay ablation).
	RepairEvery float64
	// Windows is how many equal time windows the rates are reported
	// over (≥ 1).
	Windows int
	Seed    int64
}

// EnduranceWindow is the success rates measured in one time window.
type EnduranceWindow struct {
	Start, End       float64
	WriteOK, WriteN  int
	ReadOK, ReadN    int
	RepairsPerformed int
}

// WriteRate returns the window's write success fraction.
func (w EnduranceWindow) WriteRate() float64 {
	if w.WriteN == 0 {
		return 0
	}
	return float64(w.WriteOK) / float64(w.WriteN)
}

// ReadRate returns the window's read success fraction.
func (w EnduranceWindow) ReadRate() float64 {
	if w.ReadN == 0 {
		return 0
	}
	return float64(w.ReadOK) / float64(w.ReadN)
}

// EnduranceReport is the outcome of one endurance run.
type EnduranceReport struct {
	Config  EnduranceConfig
	Windows []EnduranceWindow
	// MeanNodeAvailability is the schedule's empirical up fraction,
	// for comparison with Model.Availability().
	MeanNodeAvailability float64
}

// OverallWriteRate aggregates all windows.
func (r *EnduranceReport) OverallWriteRate() float64 {
	ok, n := 0, 0
	for _, w := range r.Windows {
		ok += w.WriteOK
		n += w.WriteN
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// OverallReadRate aggregates all windows.
func (r *EnduranceReport) OverallReadRate() float64 {
	ok, n := 0, 0
	for _, w := range r.Windows {
		ok += w.ReadOK
		n += w.ReadN
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// RunEndurance executes the run: a live protocol instance under a
// generated failure schedule, one write and one read attempt per unit
// of virtual time, with the repair daemon running at its period.
func RunEndurance(ctx context.Context, cfg EnduranceConfig) (*EnduranceReport, error) {
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("montecarlo: need at least one window, got %d", cfg.Windows)
	}
	if !(cfg.Horizon > 0) {
		return nil, fmt.Errorf("montecarlo: horizon must be positive, got %v", cfg.Horizon)
	}
	sched, err := failsched.Generate(cfg.N, cfg.Horizon, cfg.Model, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pe, err := NewProtocolEstimator(ctx, cfg.N, cfg.K, cfg.Trapezoid, cfg.BlockSize, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	defer pe.Close()

	cur := failsched.NewCursor(sched)
	blockPick := rand.New(rand.NewSource(cfg.Seed + 2))
	payload := rand.New(rand.NewSource(cfg.Seed + 3))
	buf := make([]byte, cfg.BlockSize)

	report := &EnduranceReport{Config: cfg, Windows: make([]EnduranceWindow, cfg.Windows)}
	winLen := cfg.Horizon / float64(cfg.Windows)
	for i := range report.Windows {
		report.Windows[i].Start = float64(i) * winLen
		report.Windows[i].End = float64(i+1) * winLen
	}
	nextRepair := cfg.RepairEvery
	upIntegral := 0.0
	steps := 0
	for t := 0.0; t < cfg.Horizon; t++ {
		up, err := cur.AdvanceTo(t)
		if err != nil {
			return nil, err
		}
		mask := append([]bool(nil), up...)
		if err := pe.cluster.ApplyMask(mask); err != nil {
			return nil, err
		}
		upIntegral += float64(cur.UpCount()) / float64(cfg.N)
		steps++
		win := int(t / winLen)
		if win >= cfg.Windows {
			win = cfg.Windows - 1
		}
		w := &report.Windows[win]

		// One read attempt.
		block := blockPick.Intn(cfg.K)
		_, _, rerr := pe.sys.ReadBlock(ctx, pe.stripe, block)
		w.ReadN++
		switch {
		case rerr == nil:
			w.ReadOK++
		case errors.Is(rerr, core.ErrNotReadable):
		default:
			return nil, fmt.Errorf("montecarlo: endurance read: %w", rerr)
		}
		// One write attempt.
		block = blockPick.Intn(cfg.K)
		payload.Read(buf)
		werr := pe.sys.WriteBlock(ctx, pe.stripe, block, buf)
		w.WriteN++
		switch {
		case werr == nil:
			w.WriteOK++
		case errors.Is(werr, core.ErrWriteFailed):
		default:
			return nil, fmt.Errorf("montecarlo: endurance write: %w", werr)
		}
		// Repair daemon: rebuild stale shards on currently-up nodes.
		if cfg.RepairEvery > 0 && t >= nextRepair {
			for shard := 0; shard < cfg.N; shard++ {
				if mask[shard] {
					if err := pe.sys.RepairShard(ctx, pe.stripe, shard); err == nil {
						w.RepairsPerformed++
					}
				}
			}
			nextRepair += cfg.RepairEvery
		}
	}
	if steps > 0 {
		report.MeanNodeAvailability = upIntegral / float64(steps)
	}
	return report, nil
}
