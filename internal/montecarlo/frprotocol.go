package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"trapquorum/internal/core"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// FREstimator measures the live TRAP-FR protocol's availability the
// same way ProtocolEstimator measures TRAP-ERC. A notable asymmetry:
// full-replication writes install whole blocks unconditionally, so a
// stale replica is simply overwritten by the next write — TRAP-FR has
// no staleness decay and needs no inter-trial repair for writes.
type FREstimator struct {
	cluster *sim.Cluster
	sys     *core.FRSystem
	nb      int
	size    int
	block   uint64
}

// NewFREstimator builds the harness: a cluster of Nbnode replicas and
// one seeded block of blockSize bytes.
func NewFREstimator(ctx context.Context, cfg trapezoid.Config, blockSize int, seed int64) (*FREstimator, error) {
	nb := cfg.Shape.NbNodes()
	cluster, err := sim.NewCluster(nb)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeClient, nb)
	for i := 0; i < nb; i++ {
		nodes[i] = cluster.Node(i)
	}
	sys, err := core.NewFRSystem(cfg, nodes)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	buf := make([]byte, blockSize)
	rand.New(rand.NewSource(seed)).Read(buf)
	if err := sys.SeedBlock(ctx, 1, buf); err != nil {
		cluster.Close()
		return nil, err
	}
	return &FREstimator{cluster: cluster, sys: sys, nb: nb, size: blockSize, block: 1}, nil
}

// Close releases the backing cluster.
func (fe *FREstimator) Close() { fe.cluster.Close() }

// System exposes the underlying protocol instance.
func (fe *FREstimator) System() *core.FRSystem { return fe.sys }

// EstimateRead measures TRAP-FR read availability at node availability
// p (the quantity equation 10 describes).
func (fe *FREstimator) EstimateRead(ctx context.Context, p float64, trials int, seed int64) (Result, error) {
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(fe.nb, mask)
		if err := fe.cluster.ApplyMask(mask); err != nil {
			return Result{}, err
		}
		_, _, rerr := fe.sys.ReadBlock(ctx, fe.block)
		switch {
		case rerr == nil:
			res.Successes++
		case errors.Is(rerr, core.ErrNotReadable):
		default:
			return Result{}, fmt.Errorf("montecarlo: unexpected FR read error: %w", rerr)
		}
		res.Trials++
	}
	fe.cluster.RestartAll()
	return res, nil
}

// EstimateWrite measures TRAP-FR write availability at p. Stale
// replicas left by degraded writes are healed by subsequent writes
// themselves (full blocks, unconditional), so trials stay identically
// distributed without repair — but the read-before-write of the
// protocol still prices in read availability, as with TRAP-ERC.
func (fe *FREstimator) EstimateWrite(ctx context.Context, p float64, trials int, seed int64) (Result, error) {
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	payload := rand.New(rand.NewSource(seed + 1))
	buf := make([]byte, fe.size)
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(fe.nb, mask)
		if err := fe.cluster.ApplyMask(mask); err != nil {
			return Result{}, err
		}
		payload.Read(buf)
		werr := fe.sys.WriteBlock(ctx, fe.block, buf)
		switch {
		case werr == nil:
			res.Successes++
		case errors.Is(werr, core.ErrWriteFailed):
		default:
			return Result{}, fmt.Errorf("montecarlo: unexpected FR write error: %w", werr)
		}
		res.Trials++
	}
	fe.cluster.RestartAll()
	return res, nil
}
