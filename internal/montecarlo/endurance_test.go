package montecarlo

import (
	"context"
	"math"
	"testing"

	"trapquorum/internal/failsched"
)

func enduranceBase(t testing.TB) EnduranceConfig {
	t.Helper()
	return EnduranceConfig{
		N: 15, K: 8,
		Trapezoid: fig3Config(t.(*testing.T)),
		BlockSize: 64,
		Model:     failsched.Model{MTBF: 85, MTTR: 15}, // p = 0.85
		Horizon:   2000,
		Windows:   10,
		Seed:      5,
	}
}

func TestEnduranceValidation(t *testing.T) {
	cfg := enduranceBase(t)
	cfg.Windows = 0
	if _, err := RunEndurance(context.Background(), cfg); err == nil {
		t.Error("windows=0 accepted")
	}
	cfg = enduranceBase(t)
	cfg.Horizon = 0
	if _, err := RunEndurance(context.Background(), cfg); err == nil {
		t.Error("horizon=0 accepted")
	}
	cfg = enduranceBase(t)
	cfg.Model = failsched.Model{}
	if _, err := RunEndurance(context.Background(), cfg); err == nil {
		t.Error("invalid model accepted")
	}
	cfg = enduranceBase(t)
	cfg.K = 16
	if _, err := RunEndurance(context.Background(), cfg); err == nil {
		t.Error("invalid code accepted")
	}
}

// TestEnduranceDecayWithoutRepair reproduces the A4 finding end to
// end: without a repair daemon the *whole system* decays, not just
// writes. A node that misses one delta while down stays version-stale
// forever: stale parities reject future deltas (write decay), stale
// data nodes force decode reads, and per-node staleness patterns
// diverge until no k shards agree on a version vector (read decay).
func TestEnduranceDecayWithoutRepair(t *testing.T) {
	cfg := enduranceBase(t)
	cfg.RepairEvery = 0
	rep, err := RunEndurance(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanNodeAvailability-0.85) > 0.06 {
		t.Fatalf("schedule availability %v far from model 0.85", rep.MeanNodeAvailability)
	}
	earlyW := rep.Windows[0].WriteRate()
	lateW := rep.Windows[len(rep.Windows)-1].WriteRate()
	if lateW >= earlyW-0.1 {
		t.Fatalf("no write decay: early %v late %v", earlyW, lateW)
	}
	earlyR := rep.Windows[0].ReadRate()
	lateR := rep.Windows[len(rep.Windows)-1].ReadRate()
	if lateR >= earlyR-0.1 {
		t.Fatalf("no read decay: early %v late %v", earlyR, lateR)
	}
	// Reads remain easier than writes throughout.
	if rep.OverallReadRate() < rep.OverallWriteRate() {
		t.Fatalf("reads (%v) below writes (%v)", rep.OverallReadRate(), rep.OverallWriteRate())
	}
}

// TestEnduranceRepairHoldsAvailability shows the repair daemon keeps
// write availability near the closed form throughout the run.
func TestEnduranceRepairHoldsAvailability(t *testing.T) {
	cfg := enduranceBase(t)
	cfg.RepairEvery = 5
	rep, err := RunEndurance(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// eq8 at p=0.85 is 0.914; allow schedule/burst noise.
	if rate := rep.OverallWriteRate(); rate < 0.8 {
		t.Fatalf("write rate with repair daemon = %v, expected near eq8", rate)
	}
	late := rep.Windows[len(rep.Windows)-1].WriteRate()
	if late < 0.75 {
		t.Fatalf("late-window write rate decayed to %v despite repair", late)
	}
	repairs := 0
	for _, w := range rep.Windows {
		repairs += w.RepairsPerformed
	}
	if repairs == 0 {
		t.Fatal("repair daemon never ran")
	}
}

func TestEnduranceWindowBookkeeping(t *testing.T) {
	cfg := enduranceBase(t)
	cfg.Horizon = 100
	cfg.Windows = 4
	rep, err := RunEndurance(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 4 {
		t.Fatalf("windows = %d", len(rep.Windows))
	}
	totalOps := 0
	for i, w := range rep.Windows {
		if w.End <= w.Start {
			t.Fatalf("window %d degenerate", i)
		}
		if w.WriteN != w.ReadN {
			t.Fatalf("window %d unbalanced ops", i)
		}
		totalOps += w.WriteN
	}
	if totalOps != 100 {
		t.Fatalf("total write attempts %d, want 100", totalOps)
	}
	if (EnduranceWindow{}).WriteRate() != 0 || (EnduranceWindow{}).ReadRate() != 0 {
		t.Fatal("empty window rates should be 0")
	}
}
