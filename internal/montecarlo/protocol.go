package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// ProtocolEstimator measures availability end to end: it seeds a
// stripe on a live simulated cluster and, per trial, applies a random
// availability mask, attempts the operation through the real protocol
// and counts successes. Rollback keeps the stripe consistent across
// failed trials, so the trials are identically distributed.
type ProtocolEstimator struct {
	cluster *sim.Cluster
	sys     *core.System
	n, k    int
	size    int
	stripe  uint64
	written uint64 // write counter for distinct payloads
}

// NewProtocolEstimator builds the harness for an (n,k) code and
// trapezoid configuration, seeding one stripe of blockSize-byte
// blocks. Close must be called when done.
func NewProtocolEstimator(ctx context.Context, n, k int, cfg trapezoid.Config, blockSize int, seed int64) (*ProtocolEstimator, error) {
	code, err := erasure.New(n, k)
	if err != nil {
		return nil, err
	}
	cluster, err := sim.NewCluster(n)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeClient, n)
	for j := 0; j < n; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := core.NewSystem(code, cfg, nodes, core.Options{})
	if err != nil {
		cluster.Close()
		return nil, err
	}
	pe := &ProtocolEstimator{cluster: cluster, sys: sys, n: n, k: k, size: blockSize, stripe: 1}
	r := rand.New(rand.NewSource(seed))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, blockSize)
		r.Read(data[i])
	}
	if err := sys.SeedStripe(ctx, pe.stripe, data); err != nil {
		cluster.Close()
		return nil, err
	}
	return pe, nil
}

// Close releases the backing cluster.
func (pe *ProtocolEstimator) Close() { pe.cluster.Close() }

// System exposes the underlying protocol instance (for metrics).
func (pe *ProtocolEstimator) System() *core.System { return pe.sys }

// EstimateRead measures protocol-level read availability at node
// availability p.
func (pe *ProtocolEstimator) EstimateRead(ctx context.Context, p float64, trials int, seed int64) (Result, error) {
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	blockPick := rand.New(rand.NewSource(seed + 1))
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(pe.n, mask)
		if err := pe.cluster.ApplyMask(mask); err != nil {
			return Result{}, err
		}
		block := blockPick.Intn(pe.k)
		_, _, err := pe.sys.ReadBlock(ctx, pe.stripe, block)
		switch {
		case err == nil:
			res.Successes++
		case errors.Is(err, core.ErrNotReadable):
			// counted as failure
		default:
			return Result{}, fmt.Errorf("montecarlo: unexpected read error: %w", err)
		}
		res.Trials++
	}
	pe.cluster.RestartAll()
	return res, nil
}

// EstimateWrite measures protocol-level write availability at node
// availability p, repairing stale shards between trials so every trial
// starts from the fully consistent state the paper's iid model assumes
// (a node that misses a delta while down stays version-stale and
// rejects all later deltas until repaired). It still includes
// Algorithm 1's initial read, which equation (8) does not model;
// EXPERIMENTS.md quantifies the resulting gap at low p.
func (pe *ProtocolEstimator) EstimateWrite(ctx context.Context, p float64, trials int, seed int64) (Result, error) {
	return pe.estimateWrite(ctx, p, trials, seed, true)
}

// EstimateWriteSteadyState is the no-repair ablation: stale shards
// accumulate across trials exactly as they would in a deployment
// without a repair daemon, so measured availability decays below the
// closed form. The cluster is healed and repaired before returning.
func (pe *ProtocolEstimator) EstimateWriteSteadyState(ctx context.Context, p float64, trials int, seed int64) (Result, error) {
	return pe.estimateWrite(ctx, p, trials, seed, false)
}

func (pe *ProtocolEstimator) estimateWrite(ctx context.Context, p float64, trials int, seed int64, repairBetween bool) (Result, error) {
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	blockPick := rand.New(rand.NewSource(seed + 1))
	payload := rand.New(rand.NewSource(seed + 2))
	buf := make([]byte, pe.size)
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(pe.n, mask)
		if err := pe.cluster.ApplyMask(mask); err != nil {
			return Result{}, err
		}
		block := blockPick.Intn(pe.k)
		payload.Read(buf)
		err := pe.sys.WriteBlock(ctx, pe.stripe, block, buf)
		succeeded := false
		switch {
		case err == nil:
			res.Successes++
			succeeded = true
		case errors.Is(err, core.ErrWriteFailed):
			// counted as failure
		default:
			return Result{}, fmt.Errorf("montecarlo: unexpected write error: %w", err)
		}
		res.Trials++
		pe.written++
		if repairBetween && succeeded {
			// Only shards that were down during a *successful* write
			// went stale; failed writes rolled back cleanly.
			pe.cluster.RestartAll()
			for shard := 0; shard < pe.n; shard++ {
				if !mask[shard] {
					if err := pe.sys.RepairShard(ctx, pe.stripe, shard); err != nil {
						return Result{}, fmt.Errorf("montecarlo: inter-trial repair: %w", err)
					}
				}
			}
		}
	}
	// Heal the cluster and repair every shard so subsequent
	// estimations start from a consistent state.
	pe.cluster.RestartAll()
	for shard := 0; shard < pe.n; shard++ {
		_ = pe.sys.RepairShard(context.Background(), pe.stripe, shard)
	}
	return res, nil
}
