// Package montecarlo estimates read/write availability empirically,
// cross-validating the paper's closed forms (equations 8–13).
//
// Two estimators are provided. The structural estimator samples
// up/down masks under the §IV model (iid node availability p) and
// evaluates the protocol's quorum and decode conditions directly — it
// is what the closed forms describe. The protocol estimator drives the
// real core.System on a simulated cluster, measuring what the
// implementation actually achieves, including effects the formulas
// idealise away (the initial read inside Algorithm 1, the version
// check before decoding).
package montecarlo

import (
	"fmt"
	"math/rand"

	"trapquorum/internal/availability"
	"trapquorum/internal/stats"
	"trapquorum/internal/trapezoid"
)

// Result is a Bernoulli estimate plus the sampling parameters.
type Result struct {
	stats.Proportion
	P    float64 // node availability the masks were drawn with
	Seed int64
}

// maskSampler draws iid availability masks.
type maskSampler struct {
	r *rand.Rand
	p float64
}

func newMaskSampler(p float64, seed int64) (*maskSampler, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("montecarlo: availability %v outside [0,1]", p)
	}
	return &maskSampler{r: rand.New(rand.NewSource(seed)), p: p}, nil
}

func (m *maskSampler) draw(n int, mask []bool) []bool {
	if cap(mask) < n {
		mask = make([]bool, n)
	}
	mask = mask[:n]
	for i := range mask {
		mask[i] = m.r.Float64() < m.p
	}
	return mask
}

// EstimateWrite estimates the trapezoid write availability (either
// variant — equations 8 and 9 coincide) by sampling masks over the
// trapezoid's nodes and checking that every level reaches w_l.
func EstimateWrite(cfg trapezoid.Config, p float64, trials int, seed int64) (Result, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return Result{}, err
	}
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(lay.NbNodes(), mask)
		if _, ok := lay.WriteQuorum(func(pos int) bool { return mask[pos] }); ok {
			res.Successes++
		}
		res.Trials++
	}
	return res, nil
}

// EstimateReadFR estimates full-replication read availability
// (equation 10): some level reaches its version-check threshold.
func EstimateReadFR(cfg trapezoid.Config, p float64, trials int, seed int64) (Result, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return Result{}, err
	}
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(lay.NbNodes(), mask)
		if _, _, ok := lay.ReadQuorum(func(pos int) bool { return mask[pos] }); ok {
			res.Successes++
		}
		res.Trials++
	}
	return res, nil
}

// ERCReadModel selects which read-success condition the structural
// ERC estimator applies.
type ERCReadModel int

const (
	// ModelEq13 reproduces equation (13) exactly: when the data node
	// is down, k available stripe nodes suffice (the version check is
	// waived, as the paper's P2 term assumes).
	ModelEq13 ERCReadModel = iota
	// ModelProtocol applies Algorithm 2 as specified: a version-check
	// quorum must exist at some level in every case.
	ModelProtocol
)

// EstimateReadERC estimates TRAP-ERC read availability under the
// chosen model. The stripe's k−1 data nodes outside the trapezoid are
// sampled too, since the decode condition depends on them.
func EstimateReadERC(e availability.ERCParams, model ERCReadModel, p float64, trials int, seed int64) (Result, error) {
	if err := e.Validate(); err != nil {
		return Result{}, err
	}
	lay, err := trapezoid.NewLayout(e.Config)
	if err != nil {
		return Result{}, err
	}
	ms, err := newMaskSampler(p, seed)
	if err != nil {
		return Result{}, err
	}
	nb := lay.NbNodes() // n-k+1: position 0 = N_i, 1.. = parity
	outside := e.K - 1  // other data nodes
	var mask []bool
	res := Result{P: p, Seed: seed}
	for t := 0; t < trials; t++ {
		mask = ms.draw(nb+outside, mask)
		if ercReadSucceeds(lay, e, model, mask) {
			res.Successes++
		}
		res.Trials++
	}
	return res, nil
}

// ercReadSucceeds evaluates one sampled state. mask[0..nb-1] are the
// trapezoid positions; mask[nb..] are the other data nodes.
func ercReadSucceeds(lay *trapezoid.Layout, e availability.ERCParams, model ERCReadModel, mask []bool) bool {
	nb := lay.NbNodes()
	cfg := e.Config
	checkOK := false
	for l := 0; l <= cfg.Shape.H; l++ {
		cnt := 0
		for _, pos := range lay.Level(l) {
			if mask[pos] {
				cnt++
			}
		}
		if cnt >= cfg.ReadThreshold(l) {
			checkOK = true
			break
		}
	}
	if mask[0] {
		// Data node up: Case 1 needs only the check.
		return checkOK
	}
	// Data node down: count available stripe nodes other than N_i —
	// parity (positions 1..nb-1) plus outside data nodes.
	avail := 0
	for pos := 1; pos < nb; pos++ {
		if mask[pos] {
			avail++
		}
	}
	for i := nb; i < len(mask); i++ {
		if mask[i] {
			avail++
		}
	}
	decodable := avail >= e.K
	if model == ModelEq13 {
		return decodable
	}
	return checkOK && decodable
}
