package montecarlo

import (
	"context"
	"testing"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

// TestFREstimatorMatchesEq10 validates the live full-replication
// protocol against equation (10) for reads and against equation (8)
// as an upper bound for writes.
func TestFREstimatorMatchesEq10(t *testing.T) {
	cfg := fig3Config(t)
	fe, err := NewFREstimator(context.Background(), cfg, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	const trials = 4000
	for _, p := range []float64{0.4, 0.6, 0.8, 0.95} {
		res, err := fe.EstimateRead(context.Background(), p, trials, 21)
		if err != nil {
			t.Fatal(err)
		}
		want := availability.ReadFR(cfg, p)
		if !res.WithinScore(want, 4) {
			t.Fatalf("p=%v: FR read %v vs eq10 %v", p, res.Estimate(), want)
		}
		wres, err := fe.EstimateWrite(context.Background(), p, trials, 23)
		if err != nil {
			t.Fatal(err)
		}
		eq8 := availability.Write(cfg, p)
		if est := wres.Estimate(); est > eq8+4*wres.StdErr()+1e-9 {
			t.Fatalf("p=%v: FR write %v exceeds eq8 %v", p, est, eq8)
		}
	}
}

// TestFRNoStalenessDecay runs many write trials without any repair:
// unlike TRAP-ERC (whose conditional parity deltas strand stale
// nodes — the A4 decay), full replication self-heals because writes
// overwrite replicas outright. Success rates in the first and second
// halves of the run must be statistically indistinguishable.
func TestFRNoStalenessDecay(t *testing.T) {
	cfg := fig3Config(t)
	fe, err := NewFREstimator(context.Background(), cfg, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	const trials = 4000
	first, err := fe.EstimateWrite(context.Background(), 0.85, trials, 31)
	if err != nil {
		t.Fatal(err)
	}
	second, err := fe.EstimateWrite(context.Background(), 0.85, trials, 37)
	if err != nil {
		t.Fatal(err)
	}
	if diff := first.Estimate() - second.Estimate(); diff > 0.05 || diff < -0.05 {
		t.Fatalf("FR write availability drifted: %v then %v", first.Estimate(), second.Estimate())
	}
	// Both halves stay near eq8.
	eq8 := availability.Write(cfg, 0.85)
	if !second.WithinScore(eq8, 5) {
		t.Fatalf("late FR writes %v far from eq8 %v", second.Estimate(), eq8)
	}
}

func TestFREstimatorValidation(t *testing.T) {
	badCfg := trapezoid.Config{Shape: trapezoid.Shape{A: -1, B: 1, H: 0}, W: []int{1}}
	if _, err := NewFREstimator(context.Background(), badCfg, 64, 1); err == nil {
		t.Fatal("invalid trapezoid accepted")
	}
	fe, err := NewFREstimator(context.Background(), fig3Config(t), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if _, err := fe.EstimateRead(context.Background(), -1, 10, 1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if _, err := fe.EstimateWrite(context.Background(), 1.5, 10, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
}
