package montecarlo

import (
	"context"
	"math"
	"testing"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

func fig3Config(t testing.TB) trapezoid.Config {
	t.Helper()
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

const mcTrials = 60000

// TestEstimateWriteMatchesEq8 validates the structural write estimate
// against the closed form within 3 sigma.
func TestEstimateWriteMatchesEq8(t *testing.T) {
	cfg := fig3Config(t)
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		res, err := EstimateWrite(cfg, p, mcTrials, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := availability.Write(cfg, p)
		if !res.Within(want, 3) {
			t.Fatalf("p=%v: estimate %v (±%v) vs closed form %v", p, res.Estimate(), res.StdErr(), want)
		}
	}
}

// TestEstimateReadFRMatchesEq10 validates the structural FR read
// estimate against equation (10).
func TestEstimateReadFRMatchesEq10(t *testing.T) {
	cfg := fig3Config(t)
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		res, err := EstimateReadFR(cfg, p, mcTrials, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := availability.ReadFR(cfg, p)
		if !res.Within(want, 3) {
			t.Fatalf("p=%v: estimate %v vs closed form %v", p, res.Estimate(), want)
		}
	}
}

// TestEstimateReadERCMatchesEq13 validates the eq-13-model estimator
// against the paper's formula, and the protocol-model estimator
// against the exact enumeration.
func TestEstimateReadERCMatchesEq13(t *testing.T) {
	e := availability.ERCParams{Config: fig3Config(t), N: 15, K: 8}
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		res, err := EstimateReadERC(e, ModelEq13, p, mcTrials, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := availability.ReadERC(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Within(want, 3) {
			t.Fatalf("p=%v: eq13 estimate %v vs formula %v", p, res.Estimate(), want)
		}
		resP, err := EstimateReadERC(e, ModelProtocol, p, mcTrials, 4)
		if err != nil {
			t.Fatal(err)
		}
		wantExact, err := availability.ReadERCExact(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if !resP.Within(wantExact, 3) {
			t.Fatalf("p=%v: protocol estimate %v vs exact %v", p, resP.Estimate(), wantExact)
		}
	}
}

func TestEstimatorValidation(t *testing.T) {
	cfg := fig3Config(t)
	if _, err := EstimateWrite(cfg, -0.1, 10, 1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if _, err := EstimateWrite(cfg, 1.1, 10, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
	bad := availability.ERCParams{Config: cfg, N: 15, K: 9}
	if _, err := EstimateReadERC(bad, ModelEq13, 0.5, 10, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestEstimateDeterministicUnderSeed(t *testing.T) {
	cfg := fig3Config(t)
	a, _ := EstimateWrite(cfg, 0.6, 5000, 42)
	b, _ := EstimateWrite(cfg, 0.6, 5000, 42)
	if a.Successes != b.Successes {
		t.Fatal("same seed, different outcome")
	}
}

func TestEdgeProbabilities(t *testing.T) {
	cfg := fig3Config(t)
	if res, _ := EstimateWrite(cfg, 1, 100, 1); res.Estimate() != 1 {
		t.Fatal("p=1 should always succeed")
	}
	if res, _ := EstimateWrite(cfg, 0, 100, 1); res.Estimate() != 0 {
		t.Fatal("p=0 should always fail")
	}
}

// TestProtocolEstimatorAgainstFormulas drives the real implementation
// and compares: reads against the exact protocol-structural value, and
// writes against equation (8) — which must upper-bound the protocol
// (Algorithm 1's initial read is not in the formula).
func TestProtocolEstimatorAgainstFormulas(t *testing.T) {
	cfg := fig3Config(t)
	pe, err := NewProtocolEstimator(context.Background(), 15, 8, cfg, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	e := availability.ERCParams{Config: cfg, N: 15, K: 8}
	const trials = 3000
	for _, p := range []float64{0.5, 0.8, 0.95} {
		res, err := pe.EstimateRead(context.Background(), p, trials, 11)
		if err != nil {
			t.Fatal(err)
		}
		wantExact, err := availability.ReadERCExact(e, p)
		if err != nil {
			t.Fatal(err)
		}
		// Score test: at high p the estimate is often exactly 1, which
		// collapses the Wald interval.
		if !res.WithinScore(wantExact, 4) {
			t.Fatalf("p=%v: protocol read %v vs exact %v (se %v)", p, res.Estimate(), wantExact, res.StdErr())
		}
		wres, err := pe.EstimateWrite(context.Background(), p, trials, 13)
		if err != nil {
			t.Fatal(err)
		}
		eq8 := availability.Write(cfg, p)
		if est := wres.Estimate(); est > eq8+4*wres.StdErr()+1e-9 {
			t.Fatalf("p=%v: protocol write %v exceeds eq8 %v", p, est, eq8)
		}
		// At high p the gap must be negligible.
		if p >= 0.95 {
			if diff := math.Abs(wres.Estimate() - eq8); diff > 0.02 {
				t.Fatalf("p=%v: protocol/formula write gap %v too large", p, diff)
			}
		}
	}
}

func TestProtocolEstimatorValidation(t *testing.T) {
	cfg := fig3Config(t)
	if _, err := NewProtocolEstimator(context.Background(), 15, 9, cfg, 32, 1); err == nil {
		t.Fatal("mismatched n/k accepted")
	}
	pe, err := NewProtocolEstimator(context.Background(), 15, 8, cfg, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	if _, err := pe.EstimateRead(context.Background(), -1, 10, 1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if _, err := pe.EstimateWrite(context.Background(), 2, 10, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func BenchmarkStructuralReadERC(b *testing.B) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	e := availability.ERCParams{Config: cfg, N: 15, K: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateReadERC(e, ModelProtocol, 0.8, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
