package blockpool

import "testing"

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, minClassBits}, {1, minClassBits}, {256, minClassBits},
		{257, 9}, {4096, 12}, {4097, 13},
		{1 << 26, 26}, {1<<26 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	blk := GetBlock(1000)
	if len(blk.B) != 1000 || cap(blk.B) != 1024 {
		t.Fatalf("len=%d cap=%d", len(blk.B), cap(blk.B))
	}
	for i := range blk.B {
		blk.B[i] = 0xee
	}
	blk.Release()
	// A released block must come back resliced to the new length.
	again := GetBlock(5)
	if len(again.B) != 5 {
		t.Fatalf("reuse len = %d", len(again.B))
	}
	again.Release()
}

func TestWordsRoundTrip(t *testing.T) {
	w := GetWords(300)
	if len(w.W) != 300 || cap(w.W) != 512 {
		t.Fatalf("len=%d cap=%d", len(w.W), cap(w.W))
	}
	w.Release()
}

func TestOversizedUnpooled(t *testing.T) {
	blk := GetBlock(1<<26 + 1)
	if blk.class != -1 || len(blk.B) != 1<<26+1 {
		t.Fatalf("oversized block class=%d len=%d", blk.class, len(blk.B))
	}
	blk.Release() // must not panic
	w := GetWords(1<<26 + 1)
	if w.class != -1 {
		t.Fatalf("oversized words class=%d", w.class)
	}
	w.Release()
}

func TestNilRelease(t *testing.T) {
	var blk *Block
	blk.Release()
	var w *Words
	w.Release()
}

func TestZeroLength(t *testing.T) {
	blk := GetBlock(0)
	if len(blk.B) != 0 {
		t.Fatalf("len = %d", len(blk.B))
	}
	blk.Release()
}

// The whole point: steady-state Get/Release cycles must not allocate.
func TestSteadyStateAllocFree(t *testing.T) {
	// Warm the pools.
	GetBlock(4096).Release()
	GetWords(4096).Release()
	avg := testing.AllocsPerRun(100, func() {
		blk := GetBlock(4096)
		blk.B[0] = 1
		blk.Release()
		w := GetWords(4096)
		w.W[0] = 1
		w.Release()
	})
	if avg > 0.1 {
		t.Fatalf("steady-state Get/Release allocates %.1f objects per run", avg)
	}
}
