// Package blockpool provides size-classed, sync.Pool-backed arenas for
// the data plane's block and accumulator buffers, so steady-state
// encode/decode/delta traffic performs no per-block heap allocation.
//
// Buffers are handed out as handles (Block, Words) rather than raw
// slices: the handle owns the backing array's pooling identity, which
// keeps Get/Release allocation-free (a raw []byte round-tripped
// through sync.Pool would box a fresh slice header on every Put).
//
// Ownership rules (see DESIGN.md "Buffer ownership"):
//
//   - Release returns the buffer to the pool; the caller must not touch
//     the slice afterwards. Releasing is optional — an unreleased
//     buffer is simply garbage collected — and Release(nil) is a no-op,
//     so error paths can release unconditionally.
//   - A buffer that escapes to user code (a read result, a stored
//     chunk) must NOT be released; allocate-and-copy or skip pooling
//     for anything whose lifetime you do not control.
//   - Buffers come back with undefined contents. Kernels that overwrite
//     their destination (Mul, ExtractLane, copy) need no clearing;
//     accumulating kernels must clear first or use an overwriting first
//     pass.
package blockpool

import (
	"math/bits"
	"sync"
)

// minClassBits is the smallest pooled size class (256 B); requests
// below it are rounded up — the waste is bounded and tiny.
const minClassBits = 8

// maxClassBits is the largest pooled size class (64 MiB); larger
// requests fall through to plain allocation and Release discards them.
const maxClassBits = 26

var (
	bytePools  [maxClassBits + 1]sync.Pool
	wordPools  [maxClassBits + 1]sync.Pool
	shardPools [maxClassBits + 1]sync.Pool
)

// Block is a pooled byte buffer. B has exactly the requested length;
// the backing array is the size class.
type Block struct {
	B     []byte
	class int8
}

// Words is a pooled uint64 buffer — the packed-lane accumulator shape.
type Words struct {
	W     []uint64
	class int8
}

// classFor returns the size-class exponent for a request of n elements,
// or -1 when the request is out of the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return minClassBits
	}
	c := bits.Len(uint(n - 1))
	if c < minClassBits {
		c = minClassBits
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// GetBlock returns a pooled byte buffer of length n with undefined
// contents. n may be zero; the buffer is still pooled.
func GetBlock(n int) *Block {
	c := classFor(n)
	if c < 0 {
		return &Block{B: make([]byte, n), class: -1}
	}
	if v := bytePools[c].Get(); v != nil {
		blk := v.(*Block)
		blk.B = blk.B[:n]
		return blk
	}
	return &Block{B: make([]byte, n, 1<<c), class: int8(c)}
}

// Release returns the buffer to its pool. The caller must not use
// blk.B afterwards. Safe on nil and on oversized (unpooled) blocks.
func (blk *Block) Release() {
	if blk == nil || blk.class < 0 {
		return
	}
	blk.B = blk.B[:cap(blk.B)]
	bytePools[blk.class].Put(blk)
}

// ShardList is a pooled [][]byte — the shard-header scratch shape of
// the erasure decode paths. Entries are nil on Get and cleared on
// Release so a pooled list never retains block references.
type ShardList struct {
	S     [][]byte
	class int8
}

// GetShardList returns a pooled [][]byte of length n with all entries
// nil.
func GetShardList(n int) *ShardList {
	c := classFor(n)
	if c < 0 {
		return &ShardList{S: make([][]byte, n), class: -1}
	}
	if v := shardPools[c].Get(); v != nil {
		l := v.(*ShardList)
		l.S = l.S[:n]
		return l
	}
	return &ShardList{S: make([][]byte, n, 1<<c), class: int8(c)}
}

// Release clears the entries (dropping block references for the GC)
// and returns the list to its pool. Safe on nil.
func (l *ShardList) Release() {
	if l == nil {
		return
	}
	l.S = l.S[:cap(l.S)]
	for i := range l.S {
		l.S[i] = nil
	}
	if l.class < 0 {
		return
	}
	shardPools[l.class].Put(l)
}

// GetWords returns a pooled uint64 buffer of length n with undefined
// contents.
func GetWords(n int) *Words {
	c := classFor(n)
	if c < 0 {
		return &Words{W: make([]uint64, n), class: -1}
	}
	if v := wordPools[c].Get(); v != nil {
		w := v.(*Words)
		w.W = w.W[:n]
		return w
	}
	return &Words{W: make([]uint64, n, 1<<c), class: int8(c)}
}

// Release returns the buffer to its pool. The caller must not use
// w.W afterwards. Safe on nil and on oversized (unpooled) buffers.
func (w *Words) Release() {
	if w == nil || w.class < 0 {
		return
	}
	w.W = w.W[:cap(w.W)]
	wordPools[w.class].Put(w)
}
