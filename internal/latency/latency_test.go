package latency

import (
	"context"
	"strings"
	"testing"
	"time"

	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

func testConfig(t testing.TB, delay sim.DelayFunc, ops int) Config {
	t.Helper()
	tcfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		N: 15, K: 8,
		Trapezoid: tcfg,
		BlockSize: 512,
		Delay:     delay,
		Ops:       ops,
		Seed:      3,
	}
}

func TestMeasureValidation(t *testing.T) {
	cfg := testConfig(t, nil, 0)
	if _, err := Measure(context.Background(), cfg); err == nil {
		t.Fatal("ops=0 accepted")
	}
	cfg = testConfig(t, nil, 5)
	cfg.K = 20
	if _, err := Measure(context.Background(), cfg); err == nil {
		t.Fatal("invalid code accepted")
	}
}

// TestLatencyOrdering checks the structural ordering a fixed per-op
// delay must produce: degraded reads touch more nodes than healthy
// reads, and quorum writes touch the most.
func TestLatencyOrdering(t *testing.T) {
	cfg := testConfig(t, sim.FixedDelay(200*time.Microsecond), 25)
	rep, err := Measure(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy := rep.Samples[HealthyRead].Percentile(0.5)
	degraded := rep.Samples[DegradedRead].Percentile(0.5)
	write := rep.Samples[QuorumWrite].Percentile(0.5)
	if healthy <= 0 || degraded <= 0 || write <= 0 {
		t.Fatalf("non-positive latencies: %v %v %v", healthy, degraded, write)
	}
	if degraded <= healthy {
		t.Fatalf("degraded read p50 %v <= healthy %v", degraded, healthy)
	}
	if write <= healthy {
		t.Fatalf("write p50 %v <= healthy read %v", write, healthy)
	}
	// Sanity: healthy read needs at least 3 node ops (2 version
	// checks + 1 data fetch) at 200µs each.
	if healthy < 500e-6 {
		t.Fatalf("healthy read p50 %v implausibly low", healthy)
	}
}

func TestZeroDelayStillMeasures(t *testing.T) {
	cfg := testConfig(t, nil, 10)
	rep, err := Measure(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{HealthyRead, DegradedRead, QuorumWrite} {
		s := rep.Samples[sc]
		if len(s.Seconds) != 10 {
			t.Fatalf("%s: %d samples", sc, len(s.Seconds))
		}
		if s.Summary().Mean < 0 {
			t.Fatalf("%s: negative mean", sc)
		}
	}
}

func TestReportTable(t *testing.T) {
	cfg := testConfig(t, nil, 5)
	rep, err := Measure(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, want := range []string{"healthy-read", "degraded-read", "quorum-write", "p99(ms)"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func BenchmarkMeasureNoDelay(b *testing.B) {
	cfg := testConfig(b, nil, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
