// Package latency measures end-to-end operation latency distributions
// of the protocol under a per-node delay model: healthy quorum reads
// (Case 1), degraded reads that decode (Case 2), and quorum writes.
// The paper evaluates availability only; this harness adds the
// latency dimension a storage operator would ask about, driven by the
// same simulated cluster with an injected per-operation delay.
package latency

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/stats"
	"trapquorum/internal/trapezoid"
)

// Config parameterises a measurement run.
type Config struct {
	N, K      int
	Trapezoid trapezoid.Config
	BlockSize int
	// Delay is the per-node-operation latency model (e.g.
	// sim.FixedDelay(200*time.Microsecond) to emulate a LAN RPC).
	Delay sim.DelayFunc
	// Ops is the number of operations measured per scenario.
	Ops  int
	Seed int64
	// Concurrency bounds the in-flight per-node RPCs of one quorum
	// operation (0 = all at once, 1 = the sequential engine; see
	// core.Options). Comparing 1 against 0 under a fixed per-node
	// delay is the sum-of-nodes vs max-of-level experiment.
	Concurrency int
	// Hedge enables tail-latency hedging of read-path RPCs (see
	// core.HedgeConfig).
	Hedge core.HedgeConfig
}

// Scenario names one measured operation type.
type Scenario string

// Measured scenarios.
const (
	HealthyRead  Scenario = "healthy-read"
	DegradedRead Scenario = "degraded-read"
	QuorumWrite  Scenario = "quorum-write"
)

// Sample is the latency distribution of one scenario.
type Sample struct {
	Scenario Scenario
	Seconds  []float64
}

// Summary returns moment statistics of the sample.
func (s Sample) Summary() stats.Summary { return stats.Summarize(s.Seconds) }

// Percentile returns the q-quantile in seconds.
func (s Sample) Percentile(q float64) float64 { return stats.Percentile(s.Seconds, q) }

// Report holds all scenarios of one run.
type Report struct {
	Config  Config
	Samples map[Scenario]Sample
}

// Measure runs the three scenarios on a fresh simulated cluster.
func Measure(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("latency: need ops >= 1, got %d", cfg.Ops)
	}
	code, err := erasure.New(cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	cluster, err := sim.NewCluster(cfg.N, sim.WithDelay(cfg.Delay))
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	nodes := make([]core.NodeClient, cfg.N)
	for j := 0; j < cfg.N; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := core.NewSystem(code, cfg.Trapezoid, nodes, core.Options{
		Concurrency: cfg.Concurrency,
		Hedge:       cfg.Hedge,
	})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	data := make([][]byte, cfg.K)
	for i := range data {
		data[i] = make([]byte, cfg.BlockSize)
		r.Read(data[i])
	}
	if err := sys.SeedStripe(ctx, 1, data); err != nil {
		return nil, err
	}
	report := &Report{Config: cfg, Samples: make(map[Scenario]Sample)}

	// Healthy reads: Case 1 (data node serves directly).
	healthy := make([]float64, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		block := r.Intn(cfg.K)
		start := time.Now()
		if _, _, err := sys.ReadBlock(ctx, 1, block); err != nil {
			return nil, fmt.Errorf("latency: healthy read: %w", err)
		}
		healthy = append(healthy, time.Since(start).Seconds())
	}
	report.Samples[HealthyRead] = Sample{Scenario: HealthyRead, Seconds: healthy}

	// Quorum writes.
	writes := make([]float64, 0, cfg.Ops)
	buf := make([]byte, cfg.BlockSize)
	for i := 0; i < cfg.Ops; i++ {
		block := r.Intn(cfg.K)
		r.Read(buf)
		start := time.Now()
		if err := sys.WriteBlock(ctx, 1, block, buf); err != nil {
			return nil, fmt.Errorf("latency: write: %w", err)
		}
		writes = append(writes, time.Since(start).Seconds())
	}
	report.Samples[QuorumWrite] = Sample{Scenario: QuorumWrite, Seconds: writes}

	// Degraded reads: crash one data node, read its block (Case 2).
	victim := 0
	cluster.Crash(victim)
	degraded := make([]float64, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		start := time.Now()
		if _, _, err := sys.ReadBlock(ctx, 1, victim); err != nil {
			return nil, fmt.Errorf("latency: degraded read: %w", err)
		}
		degraded = append(degraded, time.Since(start).Seconds())
	}
	report.Samples[DegradedRead] = Sample{Scenario: DegradedRead, Seconds: degraded}
	return report, nil
}

// Table renders the report as an aligned percentile table (values in
// milliseconds).
func (r *Report) Table() string {
	out := fmt.Sprintf("%-14s %10s %10s %10s %10s\n", "scenario", "p50(ms)", "p90(ms)", "p99(ms)", "mean(ms)")
	for _, sc := range []Scenario{HealthyRead, DegradedRead, QuorumWrite} {
		s, ok := r.Samples[sc]
		if !ok {
			continue
		}
		out += fmt.Sprintf("%-14s %10.3f %10.3f %10.3f %10.3f\n",
			string(sc),
			1e3*s.Percentile(0.50), 1e3*s.Percentile(0.90), 1e3*s.Percentile(0.99),
			1e3*s.Summary().Mean)
	}
	return out
}
