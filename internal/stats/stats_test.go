package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Variance-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Variance != 0 || s.StdErr != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Variance >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 30, Trials: 100}
	if p.Estimate() != 0.3 {
		t.Fatalf("estimate = %v", p.Estimate())
	}
	want := math.Sqrt(0.3 * 0.7 / 100)
	if math.Abs(p.StdErr()-want) > 1e-12 {
		t.Fatalf("stderr = %v", p.StdErr())
	}
	lo, hi := p.ConfidenceInterval(1.96)
	if lo >= 0.3 || hi <= 0.3 {
		t.Fatalf("CI [%v,%v] excludes estimate", lo, hi)
	}
	if !p.Within(0.31, 1.96) {
		t.Fatal("0.31 should lie within the 95% CI of 0.3 at n=100")
	}
	if p.Within(0.5, 1.96) {
		t.Fatal("0.5 should lie outside")
	}
}

func TestProportionWithinScore(t *testing.T) {
	// Degenerate estimate: 3000/3000 successes against a true value
	// of 0.99999 must pass the score test even though the Wald CI is
	// a point.
	p := Proportion{Successes: 3000, Trials: 3000}
	if !p.WithinScore(0.99999, 4) {
		t.Fatal("score test rejected a near-one reference")
	}
	if p.WithinScore(0.9, 4) {
		t.Fatal("score test accepted a far reference")
	}
	if (Proportion{}).WithinScore(0.5, 4) {
		t.Fatal("empty sample passed the score test")
	}
}

func TestProportionEdges(t *testing.T) {
	empty := Proportion{}
	if empty.Estimate() != 0 || empty.StdErr() != 0 {
		t.Fatal("empty proportion misbehaves")
	}
	all := Proportion{Successes: 50, Trials: 50}
	lo, hi := all.ConfidenceInterval(3)
	if lo != 1 || hi != 1 {
		t.Fatalf("degenerate CI = [%v,%v]", lo, hi)
	}
	none := Proportion{Successes: 0, Trials: 50}
	lo, hi = none.ConfidenceInterval(3)
	if lo != 0 || hi != 0 {
		t.Fatalf("zero CI = [%v,%v]", lo, hi)
	}
}

func TestProportionCICoverage(t *testing.T) {
	// Statistical sanity: across many simulated experiments with true
	// p = 0.4, the 3-sigma interval should almost always contain p.
	r := rand.New(rand.NewSource(5))
	misses := 0
	const experiments = 500
	for e := 0; e < experiments; e++ {
		succ := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			if r.Float64() < 0.4 {
				succ++
			}
		}
		if !(Proportion{Successes: succ, Trials: trials}).Within(0.4, 3) {
			misses++
		}
	}
	if misses > 5 { // 3 sigma ⇒ ~0.3% expected
		t.Fatalf("%d of %d experiments missed the 3σ interval", misses, experiments)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(5, 1, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
	if q := h.Quantile(1); q < 99 {
		t.Fatalf("q1 = %v", q)
	}
	empty := NewHistogram(0, 1, 2)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should return Lo")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	s := h.String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 0.5) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 0.5))
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 0.5)
}
