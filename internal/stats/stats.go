// Package stats provides the small statistical toolkit the simulation
// harness needs: summary statistics, Bernoulli proportion estimates
// with normal-approximation confidence intervals, and fixed-bucket
// histograms for latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	StdDev   float64
	StdErr   float64
	Min, Max float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
		s.StdErr = s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Proportion is a Bernoulli success count.
type Proportion struct {
	Successes, Trials int
}

// Estimate returns the sample proportion, or 0 for an empty sample.
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// StdErr returns the standard error of the proportion estimate.
func (p Proportion) StdErr() float64 {
	if p.Trials == 0 {
		return 0
	}
	est := p.Estimate()
	return math.Sqrt(est * (1 - est) / float64(p.Trials))
}

// ConfidenceInterval returns the normal-approximation interval
// estimate ± z·stderr, clamped to [0,1]. z = 1.96 gives ~95%,
// z = 3 gives ~99.7%.
func (p Proportion) ConfidenceInterval(z float64) (lo, hi float64) {
	est := p.Estimate()
	half := z * p.StdErr()
	lo, hi = est-half, est+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Within reports whether a reference value lies inside the z-sigma
// confidence interval — the Monte-Carlo validation predicate.
func (p Proportion) Within(reference, z float64) bool {
	lo, hi := p.ConfidenceInterval(z)
	return reference >= lo && reference <= hi
}

// WithinScore is the score-test variant of Within: the standard error
// is computed from the reference value rather than the estimate, which
// stays meaningful when the estimate is degenerate (0 or 1 successes
// out of many trials collapse the Wald interval to a point).
func (p Proportion) WithinScore(reference, z float64) bool {
	if p.Trials == 0 {
		return false
	}
	se := math.Sqrt(reference * (1 - reference) / float64(p.Trials))
	return math.Abs(p.Estimate()-reference) <= z*se
}

// Histogram is a fixed-bucket histogram over [Lo, Hi) with uniform
// bucket widths, plus overflow/underflow counts.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int
	Underflow int
	Overflow  int
	count     int
}

// NewHistogram builds a histogram with n uniform buckets covering
// [lo, hi). It panics on a degenerate range or non-positive n.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if idx == len(h.Buckets) { // float edge
			idx--
		}
		h.Buckets[idx]++
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int { return h.count }

// Quantile returns an approximate q-quantile (0 ≤ q ≤ 1) assuming
// uniform mass within buckets. Underflow mass is attributed to Lo and
// overflow mass to Hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return h.Lo
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := float64(h.Underflow)
	if target <= cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		if target <= cum+float64(c) {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.Lo + (float64(i)+frac)*width
		}
		cum += float64(c)
	}
	return h.Hi
}

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%10.4g [%6d] %s\n", h.Lo+float64(i)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Percentile returns the exact q-th percentile of a sample by sorting
// a copy (nearest-rank method). It panics on an empty sample.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
