// Package memstore is the in-memory ChunkStore: the chunk map the
// simulator's nodes always had, refactored behind the
// nodeengine.ChunkStore interface so the same protocol engine can run
// on it or on a durable store. "Durable" here means surviving until
// the process exits; a Wipe or a dropped store loses everything, which
// is exactly the media-loss model the simulator's fault injection
// wants.
package memstore

import (
	"trapquorum/client"
	"trapquorum/internal/chunkmeta"
)

// chunk is one stored shard. Buffers are owned by the store and
// recycled in place across overwrites of the same size, so steady-state
// protocol traffic (CompareAndPut/CompareAndAdd at fixed block size)
// does not allocate.
type chunk struct {
	data     []byte
	versions []uint64
	meta     chunkmeta.Meta
}

// Store maps chunk ids to chunks in process memory. It is not safe for
// concurrent use on its own; the node engine serialises all access.
type Store struct {
	chunks map[client.ChunkID]*chunk
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{chunks: make(map[client.ChunkID]*chunk)}
}

// Get implements nodeengine.ChunkStore. The returned slices are the
// store's own buffers.
func (s *Store) Get(id client.ChunkID) (data []byte, versions []uint64, meta chunkmeta.Meta, ok bool, err error) {
	c, ok := s.chunks[id]
	if !ok {
		return nil, nil, chunkmeta.Meta{}, false, nil
	}
	return c.data, c.versions, c.meta, true, nil
}

// Put implements nodeengine.ChunkStore: it copies every slice,
// overwriting an existing same-sized buffer in place.
func (s *Store) Put(id client.ChunkID, data []byte, versions []uint64, meta chunkmeta.Meta) error {
	if c, ok := s.chunks[id]; ok {
		if len(c.data) == len(data) {
			copy(c.data, data)
		} else {
			c.data = append([]byte(nil), data...)
		}
		c.versions = append(c.versions[:0], versions...)
		rec := c.meta.Rec
		c.meta = meta
		c.meta.Rec = append(rec[:0], meta.Rec...)
		return nil
	}
	c := &chunk{
		data:     append([]byte(nil), data...),
		versions: append([]uint64(nil), versions...),
		meta:     meta,
	}
	c.meta.Rec = append([]client.BlockSum(nil), meta.Rec...)
	s.chunks[id] = c
	return nil
}

// Delete implements nodeengine.ChunkStore; deleting a missing chunk is
// a no-op.
func (s *Store) Delete(id client.ChunkID) error {
	delete(s.chunks, id)
	return nil
}

// Wipe implements nodeengine.ChunkStore: it drops every chunk.
func (s *Store) Wipe() error {
	for id := range s.chunks {
		delete(s.chunks, id)
	}
	return nil
}

// Len implements nodeengine.ChunkStore.
func (s *Store) Len() (int, error) { return len(s.chunks), nil }

// Close implements nodeengine.ChunkStore; an in-memory store holds no
// external resources.
func (s *Store) Close() error { return nil }
