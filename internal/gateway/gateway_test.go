package gateway

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"trapquorum/client"
	gwclient "trapquorum/client/gateway"
	"trapquorum/internal/core"
	"trapquorum/internal/gwire"
	"trapquorum/internal/service"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// newTestFleet builds a small sim-backed fleet: (5,3) code over 10
// nodes keeps quorum I/O cheap enough for gateway-focused tests.
func newTestFleet(t testing.TB) *service.Fleet {
	t.Helper()
	cluster, err := sim.NewCluster(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	nodes := make([]core.NodeClient, cluster.Size())
	for j := range nodes {
		nodes[j] = cluster.Node(j)
	}
	strat, err := placement.NewRing(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := service.NewFleet(nodes, service.Config{
		N: 5, K: 3,
		Shape: trapezoid.Shape{A: 0, B: 3, H: 0}, W: 2,
		BlockSize: 64,
		Placement: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// startServer runs a gateway over an in-memory listener and returns a
// dialer for it.
func startServer(t testing.TB, tenants TenantProvider, cfg Config) (*Server, *pipeListener) {
	t.Helper()
	srv := NewServer(tenants, cfg)
	l := newPipeListener()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-served; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, l
}

func dialTenant(t testing.TB, l *pipeListener, tenant string) *gwclient.Conn {
	t.Helper()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := gwclient.NewConn(context.Background(), nc, tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestEndToEnd drives every op through the full stack: client →
// gateway → multi-tenant service → sim cluster.
func TestEndToEnd(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	conn := dialTenant(t, l, "acme")
	ctx := context.Background()

	payload := bytes.Repeat([]byte{0xab, 0xcd}, 300)
	if err := conn.Put(ctx, "vm.img", payload); err != nil {
		t.Fatal(err)
	}
	if err := conn.Put(ctx, "vm.img", payload); !errors.Is(err, service.ErrExists) {
		t.Fatalf("double put err = %v", err)
	}
	got, err := conn.Get(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("get mismatch")
	}
	part, err := conn.ReadAt(ctx, "vm.img", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, payload[100:150]) {
		t.Fatal("read-at mismatch")
	}
	patch := bytes.Repeat([]byte{0x11}, 40)
	if err := conn.WriteAt(ctx, "vm.img", 64, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[64:], patch)
	got, err = conn.Get(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("get after write-at mismatch")
	}
	if _, err := conn.ReadAt(ctx, "vm.img", len(payload)-10, 20); !errors.Is(err, service.ErrBadRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	summary, err := conn.Scrub(ctx, "vm.img")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "stale=0") {
		t.Fatalf("scrub summary = %q", summary)
	}
	serving, health, err := conn.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !serving || !strings.Contains(health, "conns=") {
		t.Fatalf("health = %v %q", serving, health)
	}
	if err := conn.Delete(ctx, "vm.img"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Get(ctx, "vm.img"); !errors.Is(err, service.ErrUnknownKey) {
		t.Fatalf("get after delete err = %v", err)
	}
}

// TestTenantIsolationOverWire: two connections bound to different
// tenants cannot see each other's objects.
func TestTenantIsolationOverWire(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	a := dialTenant(t, l, "alpha")
	b := dialTenant(t, l, "beta")
	ctx := context.Background()
	if err := a.Put(ctx, "secret", []byte("alpha data")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(ctx, "secret"); !errors.Is(err, service.ErrUnknownKey) {
		t.Fatalf("cross-tenant get err = %v", err)
	}
	if err := b.Put(ctx, "secret", []byte("beta data")); err != nil {
		t.Fatalf("same key, different namespace: %v", err)
	}
	got, err := a.Get(ctx, "secret")
	if err != nil || !bytes.Equal(got, []byte("alpha data")) {
		t.Fatalf("alpha read %q, %v", got, err)
	}
}

// TestQuotaOverWire: a tenant quota surfaces to the dialing client as
// trapquorum.ErrQuotaExceeded through the wire status.
func TestQuotaOverWire(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet, Quota: service.Quota{MaxObjects: 1}}, Config{Workers: 2})
	conn := dialTenant(t, l, "capped")
	ctx := context.Background()
	if err := conn.Put(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Put(ctx, "b", []byte("y")); !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

// blockingStore blocks every Get until released — the tool for
// wedging the worker pool.
type blockingStore struct {
	nullStore
	release chan struct{}
	entered chan struct{} // optional: non-blocking signal per Get entry
}

func (b *blockingStore) GetAppend(ctx context.Context, key string, dst []byte) ([]byte, error) {
	if b.entered != nil {
		select {
		case b.entered <- struct{}{}:
		default:
		}
	}
	select {
	case <-b.release:
	case <-ctx.Done():
	}
	return append(dst, 'x'), nil
}

type staticTenants struct{ store TenantStore }

func (s staticTenants) Tenant(string) (TenantStore, error) { return s.store, nil }

// TestOverloadPushback wedges a 1-worker, depth-1 pool and asserts
// the excess requests are refused with ErrOverloaded instead of
// queueing, and that service resumes once the pool unblocks.
func TestOverloadPushback(t *testing.T) {
	bs := &blockingStore{release: make(chan struct{})}
	srv, l := startServer(t, staticTenants{bs}, Config{
		Workers: 1, QueueDepth: 1, MaxInflight: 64,
	})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()

	results := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := conn.Get(ctx, "k")
			results <- err
		}()
	}
	// Wait until the pushback shows up in the counters, then release
	// the wedged worker.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Overloads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no overload pushback observed")
		}
		time.Sleep(time.Millisecond)
	}
	close(bs.release)
	wg.Wait()
	close(results)
	overloaded, ok := 0, 0
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, client.ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if overloaded == 0 {
		t.Fatal("no request surfaced ErrOverloaded")
	}
	if ok == 0 {
		t.Fatal("no request survived the overload")
	}
	// The pool recovered: a fresh request succeeds.
	if _, err := conn.Get(ctx, "k"); err != nil {
		t.Fatalf("post-overload get: %v", err)
	}
}

// TestInflightWindowPushback: a connection exceeding its own
// in-flight window is refused even when the pool has capacity.
func TestInflightWindowPushback(t *testing.T) {
	bs := &blockingStore{release: make(chan struct{})}
	srv, l := startServer(t, staticTenants{bs}, Config{
		Workers: 8, QueueDepth: 64, MaxInflight: 1,
	})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := conn.Get(ctx, "k")
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Overloads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no in-flight pushback observed")
		}
		time.Sleep(time.Millisecond)
	}
	close(bs.release)
	wg.Wait()
	close(results)
	overloaded := 0
	for err := range results {
		if errors.Is(err, client.ErrOverloaded) {
			overloaded++
		}
	}
	if overloaded == 0 {
		t.Fatal("no request surfaced ErrOverloaded")
	}
}

// TestHelloRequired: any op before Hello is refused. Uses a raw
// connection — the client package always handshakes.
func TestHelloRequired(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 2})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	req := gwire.AppendRequest(nil, &gwire.Request{Seq: 1, Op: gwire.OpGet, Key: []byte("k")})
	if err := gwire.WriteFrame(nc, req); err != nil {
		t.Fatal(err)
	}
	payload, err := gwire.ReadFrame(nc, nil, gwire.DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := gwire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != gwire.StatusBadRequest {
		t.Fatalf("status = %d, want bad-request", resp.Status)
	}
}

// TestWatchBroadcast: a watcher sees the tenant's mutations (from
// another connection), does not see other tenants', and the mutating
// connection itself is not echoed its own events.
func TestWatchBroadcast(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	watcher := dialTenant(t, l, "acme")
	writer := dialTenant(t, l, "acme")
	stranger := dialTenant(t, l, "other")
	ctx := context.Background()

	events, err := watcher.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Put(ctx, "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := stranger.Put(ctx, "noise", []byte("zz")); err != nil {
		t.Fatal(err)
	}
	if err := writer.WriteAt(ctx, "obj", 0, []byte("V")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Delete(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	want := []gwclient.Event{
		{Kind: gwclient.EventPut, Key: "obj"},
		{Kind: gwclient.EventWrite, Key: "obj"},
		{Kind: gwclient.EventDelete, Key: "obj"},
	}
	for i, w := range want {
		select {
		case ev := <-events:
			if ev != w {
				t.Fatalf("event %d = %+v, want %+v", i, ev, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDrain: in-flight requests complete, new requests are refused
// with ErrDraining, new dials are refused, and watchers get the drain
// notice.
func TestDrain(t *testing.T) {
	bs := &blockingStore{release: make(chan struct{}), entered: make(chan struct{}, 1)}
	srv, l := startServer(t, staticTenants{bs}, Config{Workers: 4})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()

	events, err := conn.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One request in flight, wedged on the blocking store. Wait until
	// the handler has actually entered the store before draining.
	inflight := make(chan error, 1)
	go func() {
		_, err := conn.Get(ctx, "k")
		inflight <- err
	}()
	select {
	case <-bs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached a worker")
	}

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(dctx)
	}()

	// The watcher hears the drain notice while the request is still in
	// flight.
	select {
	case ev := <-events:
		if ev.Kind != gwclient.EventDrain {
			t.Fatalf("event = %+v, want drain", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no drain notice")
	}
	// New requests are refused while draining.
	reqDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := conn.Health(ctx); err != nil {
			t.Fatalf("health during drain: %v", err)
		}
		_, err := conn.Scrub(ctx, "k")
		if errors.Is(err, gwclient.ErrDraining) {
			break
		}
		if err != nil && !errors.Is(err, gwclient.ErrClosed) {
			t.Fatalf("scrub during drain err = %v", err)
		}
		if time.Now().After(reqDeadline) {
			t.Fatal("draining status never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	// Release the wedged request: it must complete successfully.
	close(bs.release)
	select {
	case err := <-inflight:
		if err != nil {
			t.Fatalf("in-flight request failed during drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never finished")
	}
	// New dials are refused after drain.
	if nc, err := l.Dial(); err == nil {
		if _, err := gwclient.NewConn(context.Background(), nc, "t"); err == nil {
			t.Fatal("dial accepted after drain")
		}
	}
}

// TestHealthDuringDrainReportsNotServing: Health stays answerable
// while draining and flips its serving flag. Checked through a raw
// wedge: drain in background, probe health on the existing conn.
func TestHealthFlag(t *testing.T) {
	fleet := newTestFleet(t)
	srv, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 2})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()
	serving, _, err := conn.Health(ctx)
	if err != nil || !serving {
		t.Fatalf("health = %v, %v", serving, err)
	}
	done := make(chan struct{})
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(dctx)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		serving, _, err = conn.Health(ctx)
		if err != nil {
			// Drain finished and closed the connection before we saw
			// the flag flip — acceptable shutdown race.
			break
		}
		if !serving {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	<-done
}

// TestMalformedFrameDropsConnection: a garbage payload closes the
// session rather than being parsed charitably.
func TestMalformedFrameDropsConnection(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 2})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := gwire.WriteFrame(nc, []byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := gwire.ReadFrame(nc, nil, gwire.DefaultMaxFrame); err == nil {
		t.Fatal("connection survived a malformed frame")
	}
}

// TestEnqueueEventTeardownRace hammers enqueueEvent against
// stopNotifier: a worker notifying a watcher whose session is being
// torn down concurrently must drop the event, never send on the
// closed channel (which panics the whole process, default case or
// not). Run under -race this also checks the locking.
func TestEnqueueEventTeardownRace(t *testing.T) {
	srv := NewServer(staticTenants{nullStore{}}, Config{Workers: 1, WatchBuffer: 1})
	defer srv.Close()
	for i := 0; i < 100; i++ {
		c1, c2 := net.Pipe()
		s := &session{srv: srv, conn: c1}
		// Drain the notifier's writes so flushing never blocks.
		go io.Copy(io.Discard, c2)
		s.startNotifier()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.enqueueEvent(gwire.EventPut, "k")
			}
		}()
		go func() {
			defer wg.Done()
			s.stopNotifier()
		}()
		wg.Wait()
		c1.Close()
		c2.Close()
	}
}

// TestStalledClientFreesWorker: a client that stops reading must not
// pin a pool worker past the write timeout — the write deadline fires,
// the session is torn down, and other connections get served.
func TestStalledClientFreesWorker(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 4096)
	srv, l := startServer(t, staticTenants{nullStore{payload: payload}}, Config{
		Workers: 1, WriteTimeout: 100 * time.Millisecond,
	})
	// Handshake, issue a Get, then never read: the single worker wedges
	// writing the 4 KiB response into the unbuffered pipe.
	rc := newRawConn(t, l, "stall")
	req := gwire.AppendRequest(nil, &gwire.Request{Seq: 2, Op: gwire.OpGet, Key: []byte("k")})
	if err := gwire.WriteFrame(rc.nc, req); err != nil {
		t.Fatal(err)
	}
	// A healthy connection is served once the deadline frees the worker.
	conn := dialTenant(t, l, "ok")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := conn.Get(ctx, "k"); err != nil {
		t.Fatalf("get behind a stalled client: %v", err)
	}
	// The stalled session was torn down, not left half-dead.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Active > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled session never torn down (active=%d)", srv.Stats().Active)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientRefusesOversizedRequests: requests the wire cannot carry
// faithfully fail locally with ErrBadRequest — and only that call
// fails, not the whole pipelined connection (an oversized frame
// reaching the gateway would drop the session; an over-long key would
// be silently truncated by the codec).
func TestClientRefusesOversizedRequests(t *testing.T) {
	_, l := startServer(t, staticTenants{nullStore{}}, Config{Workers: 2})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()
	bigKey := strings.Repeat("k", gwire.MaxKeyLen+1)
	if err := conn.Put(ctx, bigKey, []byte("v")); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversized key err = %v, want ErrBadRequest", err)
	}
	if err := conn.Put(ctx, "k", make([]byte, gwire.DefaultMaxFrame)); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversized frame err = %v, want ErrBadRequest", err)
	}
	// The refusals were local: the connection is still usable.
	if err := conn.Put(ctx, "ok", []byte("v")); err != nil {
		t.Fatalf("connection unusable after local refusal: %v", err)
	}
}

// TestConcurrentClientsSmallFleet hammers the gateway from several
// pipelined connections at once (race-detector food).
func TestConcurrentClients(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 4; c++ {
		conn := dialTenant(t, l, "t"+string(rune('0'+c%2)))
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(conn *gwclient.Conn, id int) {
				defer wg.Done()
				key := "obj-" + string(rune('a'+id))
				data := bytes.Repeat([]byte{byte(id)}, 200)
				if err := conn.Put(ctx, key, data); err != nil && !errors.Is(err, service.ErrExists) {
					errs <- err
					return
				}
				got, err := conn.Get(ctx, key)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- errors.New("read mismatch")
				}
			}(conn, c*4+g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
