//go:build race

package gateway

// raceEnabled reports that this binary was built with -race, whose
// instrumentation allocates on the serve path and would fail the
// zero-alloc pin for reasons unrelated to the gateway.
const raceEnabled = true
