package gateway

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/internal/gwire"
	"trapquorum/internal/service"
)

// The streaming plumbing: PutReader travels as a bracketed upload
// (start, ordered parts, finish), GetWriter as chunked ranged reads.
// An upload that dies — reader error, dropped connection, drain —
// must leave no partial object anywhere, exactly like the embedded
// store's streaming contract.

func wirePattern(n int) []byte {
	p := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(n) + 41))
	rng.Read(p)
	return p
}

// TestStreamOverWire drives the full stack: client PutReader →
// gateway upload bracket → service streaming pipeline → sim cluster,
// and back out through GetWriter and the buffered Get.
func TestStreamOverWire(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	conn := dialTenant(t, l, "acme")
	ctx := context.Background()

	// 1300 bytes = several stripes of the (5,3)×64 test fleet.
	want := wirePattern(1300)
	if err := conn.PutReader(ctx, "vm.img", bytes.NewReader(want), len(want)); err != nil {
		t.Fatal(err)
	}
	if sz, err := conn.Size(ctx, "vm.img"); err != nil || sz != len(want) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	var sink bytes.Buffer
	n, err := conn.GetWriter(ctx, "vm.img", &sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) || !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("GetWriter returned %d bytes, mismatch=%v", n, !bytes.Equal(sink.Bytes(), want))
	}
	// The buffered read path serves the streamed object too.
	got, err := conn.Get(ctx, "vm.img")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get of streamed object: %v", err)
	}
	// A second upload of the same key is refused like a buffered Put.
	if err := conn.PutReader(ctx, "vm.img", bytes.NewReader(want), len(want)); !errors.Is(err, service.ErrExists) {
		t.Fatalf("double stream err = %v", err)
	}
	// An empty object streams too.
	if err := conn.PutReader(ctx, "empty", bytes.NewReader(nil), 0); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if n, err := conn.GetWriter(ctx, "empty", &sink); err != nil || n != 0 {
		t.Fatalf("empty GetWriter = %d, %v", n, err)
	}
}

// errAfterReader yields n good bytes, then fails.
type errAfterReader struct {
	n   int
	err error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, r.err
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		p[i] = byte(i)
	}
	r.n -= len(p)
	return len(p), nil
}

// TestStreamMidStreamErrorUnwinds: a client-side reader failure aborts
// the upload; the gateway unwinds and the key is immediately free.
func TestStreamMidStreamErrorUnwinds(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	conn := dialTenant(t, l, "acme")
	ctx := context.Background()

	boom := errors.New("local disk on fire")
	err := conn.PutReader(ctx, "doomed", &errAfterReader{n: 700, err: boom}, 2000)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := conn.Size(ctx, "doomed"); !errors.Is(err, service.ErrUnknownKey) {
		t.Fatalf("partial object visible: %v", err)
	}
	// The abort is acknowledged only after the backend unwound, so the
	// key is free for an immediate retry on the same connection.
	want := wirePattern(2000)
	if err := conn.PutReader(ctx, "doomed", bytes.NewReader(want), len(want)); err != nil {
		t.Fatalf("retry after unwind: %v", err)
	}
	got, err := conn.Get(ctx, "doomed")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("retry content: %v", err)
	}
}

// TestStreamQuotaOverWire: the backend's quota rejection surfaces
// through the upload bracket as trapquorum.ErrQuotaExceeded.
func TestStreamQuotaOverWire(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet, Quota: service.Quota{MaxBytes: 1000}}, Config{Workers: 2})
	conn := dialTenant(t, l, "capped")
	ctx := context.Background()
	err := conn.PutReader(ctx, "big", bytes.NewReader(make([]byte, 2000)), 2000)
	if !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

// captureStore records what its PutReader consumed — the tool for
// watching the part stream arrive in order without quorum cost.
type captureStore struct {
	nullStore
	mu   sync.Mutex
	got  []byte
	errc error
}

func (c *captureStore) PutReader(_ context.Context, _ string, r io.Reader, size int) error {
	buf := make([]byte, size)
	_, err := io.ReadFull(r, buf)
	c.mu.Lock()
	c.got = buf
	c.errc = err
	c.mu.Unlock()
	return err
}

// TestStreamMultiPart: an object larger than the client's part size
// travels as several ordered parts and reassembles exactly.
func TestStreamMultiPart(t *testing.T) {
	cs := &captureStore{}
	_, l := startServer(t, staticTenants{cs}, Config{Workers: 4})
	conn := dialTenant(t, l, "t")
	ctx := context.Background()

	// 2.5 MiB = three parts at the client's 1 MiB part size.
	want := wirePattern(2<<20 + 512<<10)
	if err := conn.PutReader(ctx, "big", bytes.NewReader(want), len(want)); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.errc != nil {
		t.Fatalf("backend read: %v", cs.errc)
	}
	if !bytes.Equal(cs.got, want) {
		t.Fatal("multi-part reassembly mismatch")
	}
}

// TestStreamProtocolGuards drives the upload bracket raw: parts
// without a start, double starts, out-of-order parts and oversized
// parts are refused with precise statuses instead of corrupting the
// stream.
func TestStreamProtocolGuards(t *testing.T) {
	cs := &captureStore{}
	_, l := startServer(t, staticTenants{cs}, Config{Workers: 4})
	rc := newRawConn(t, l, "t")

	status := func(req *gwire.Request) gwire.Status {
		t.Helper()
		resp, err := rc.roundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Status
	}

	if s := status(&gwire.Request{Op: gwire.OpPutPart, Data: []byte("x")}); s != gwire.StatusBadRequest {
		t.Fatalf("part without start: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutFinish}); s != gwire.StatusBadRequest {
		t.Fatalf("finish without start: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutAbort}); s != gwire.StatusBadRequest {
		t.Fatalf("abort without start: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutStart, Key: []byte("k"), Length: -1}); s != gwire.StatusBadRange {
		t.Fatalf("negative size: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutStart, Key: []byte("k"), Length: 10}); s != gwire.StatusOK {
		t.Fatalf("start: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutStart, Key: []byte("k2"), Length: 10}); s != gwire.StatusBadRequest {
		t.Fatalf("second start: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutPart, Offset: 4, Data: []byte("late")}); s != gwire.StatusBadRequest {
		t.Fatalf("out-of-order part: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutPart, Offset: 0, Data: []byte("0123456789ab")}); s != gwire.StatusBadRange {
		t.Fatalf("oversized part: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutPart, Offset: 0, Data: []byte("0123456789")}); s != gwire.StatusOK {
		t.Fatalf("part: status %d", s)
	}
	if s := status(&gwire.Request{Op: gwire.OpPutFinish}); s != gwire.StatusOK {
		t.Fatalf("finish: status %d", s)
	}
	cs.mu.Lock()
	got := string(cs.got)
	cs.mu.Unlock()
	if got != "0123456789" {
		t.Fatalf("backend received %q", got)
	}
}

// TestStreamDroppedConnUnwinds: a connection dying mid-upload tears
// the upload down server-side; the key becomes free for another
// connection.
func TestStreamDroppedConnUnwinds(t *testing.T) {
	fleet := newTestFleet(t)
	_, l := startServer(t, FleetTenants{Fleet: fleet}, Config{Workers: 4})
	ctx := context.Background()

	rc := newRawConn(t, l, "acme")
	if resp, err := rc.roundTrip(&gwire.Request{Op: gwire.OpPutStart, Key: []byte("orphan"), Length: 2000}); err != nil || resp.Status != gwire.StatusOK {
		t.Fatalf("start: %v (status %d)", err, resp.Status)
	}
	if resp, err := rc.roundTrip(&gwire.Request{Op: gwire.OpPutPart, Offset: 0, Data: wirePattern(600)}); err != nil || resp.Status != gwire.StatusOK {
		t.Fatalf("part: %v (status %d)", err, resp.Status)
	}
	rc.nc.Close()

	// Teardown is asynchronous (the reader goroutine notices the dead
	// connection); poll until the reservation is released.
	conn := dialTenant(t, l, "acme")
	want := wirePattern(2000)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := conn.PutReader(ctx, "orphan", bytes.NewReader(want), len(want))
		if err == nil {
			break
		}
		if !errors.Is(err, service.ErrExists) || time.Now().After(deadline) {
			t.Fatalf("PutReader after dropped upload: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := conn.Get(ctx, "orphan")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("content after re-upload: %v", err)
	}
}

// stallStore never consumes the upload stream until the pipe dies —
// the tool for wedging a part in the pipe.
type stallStore struct {
	nullStore
	entered chan struct{}
}

func (s *stallStore) PutReader(_ context.Context, _ string, r io.Reader, size int) error {
	close(s.entered)
	// Never consume a byte: a zero-length read of an io.Pipe observes
	// its state (blocking until a write or a close arrives) without
	// draining the blocked part, so the part stays wedged until the
	// drain aborts the upload and the teardown error lands here.
	for {
		if _, err := r.Read(nil); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainAbortsUploads: Drain must not wait out a part blocked in a
// stalled upload pipe — it aborts the upload, the part is answered
// with the drain verdict, and Drain completes within its context.
func TestDrainAbortsUploads(t *testing.T) {
	ss := &stallStore{entered: make(chan struct{})}
	srv, l := startServer(t, staticTenants{ss}, Config{Workers: 2})
	rc := newRawConn(t, l, "t")

	if resp, err := rc.roundTrip(&gwire.Request{Op: gwire.OpPutStart, Key: []byte("k"), Length: 1 << 20}); err != nil || resp.Status != gwire.StatusOK {
		t.Fatalf("start: %v (status %d)", err, resp.Status)
	}
	// The part blocks in the pipe (the stalled backend consumed one
	// byte); send it and collect the response concurrently.
	partResp := make(chan gwire.Status, 1)
	go func() {
		resp, err := rc.roundTrip(&gwire.Request{Op: gwire.OpPutPart, Offset: 0, Data: make([]byte, 4096)})
		if err != nil {
			partResp <- gwire.StatusInternal
			return
		}
		partResp <- resp.Status
	}()
	<-ss.entered
	// Wait until the part is truly wedged: it reached a worker and has
	// not been answered.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain did not complete: %v", err)
	}
	select {
	case s := <-partResp:
		if s != gwire.StatusDraining {
			t.Fatalf("wedged part answered with status %d, want StatusDraining", s)
		}
	case <-time.After(time.Second):
		t.Fatal("wedged part never answered")
	}
}
