package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	gwclient "trapquorum/client/gateway"
)

// TestManyTCPConnections holds ~2000 real kernel TCP connections —
// the most that fits comfortably under the container's fd ceiling —
// open simultaneously against a sim-backed gateway, then runs a
// Put/Get on every one of them. The in-memory 10k benchmark covers
// scale; this covers the actual socket path end to end.
func TestManyTCPConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("2000 TCP connections is not a -short test")
	}
	const conns = 2000
	fleet := newTestFleet(t)
	srv := NewServer(FleetTenants{Fleet: fleet}, Config{
		Workers:     64,
		QueueDepth:  4 * conns,
		MaxInflight: 8,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-served; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	addr := l.Addr().String()
	ctx := context.Background()

	// Phase 1: open every connection and keep it open.
	clients := make([]*gwclient.Conn, conns)
	var dialWG sync.WaitGroup
	errs := make(chan error, 16)
	sem := make(chan struct{}, 256) // bound concurrent dial handshakes
	for i := 0; i < conns; i++ {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			conn, err := gwclient.Dial(ctx, addr, "load")
			if err != nil {
				select {
				case errs <- fmt.Errorf("dial %d: %w", i, err):
				default:
				}
				return
			}
			clients[i] = conn
		}(i)
	}
	dialWG.Wait()
	t.Cleanup(func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	})
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := srv.Stats().Active; got != conns {
		t.Fatalf("holding %d connections, want %d", got, conns)
	}

	// Phase 2: every held connection does a Put and reads it back.
	var opWG sync.WaitGroup
	for i, conn := range clients {
		opWG.Add(1)
		go func(i int, conn *gwclient.Conn) {
			defer opWG.Done()
			key := fmt.Sprintf("obj-%d", i)
			data := bytes.Repeat([]byte{byte(i)}, 64)
			if err := conn.Put(ctx, key, data); err != nil {
				select {
				case errs <- fmt.Errorf("put %d: %w", i, err):
				default:
				}
				return
			}
			got, err := conn.Get(ctx, key)
			if err != nil {
				select {
				case errs <- fmt.Errorf("get %d: %w", i, err):
				default:
				}
				return
			}
			if !bytes.Equal(got, data) {
				select {
				case errs <- fmt.Errorf("conn %d: read mismatch", i):
				default:
				}
			}
		}(i, conn)
	}
	opWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
