// Package gateway is the connection tier in front of a storage fleet:
// one process accepting thousands of persistent client connections
// and multiplexing their object operations onto a shared
// service.Fleet. It exists because the quorum protocol's natural
// clients are few and fat (hypervisors, virtualization middleware)
// while real deployments are many and thin — a fleet of n storage
// nodes should not see n×clients TCP connections, and clients should
// not each need the placement tables and protocol engine in process.
//
// # Design
//
// Each accepted connection gets one reader goroutine and no writer
// goroutine: responses are written directly by whichever worker
// finished the request, serialised by a per-session write mutex. All
// sessions share one bounded worker pool; a request that finds the
// pool's queue full — or its own connection over the per-connection
// in-flight window — is refused immediately with StatusOverloaded
// instead of queueing without bound. That makes overload explicit
// backpressure the client can act on (back off, spread load) rather
// than silent latency growth.
//
// Frame buffers are pooled and responses are encoded straight into
// the outgoing buffer (object bytes appended in place via the
// service layer's append-style reads), so the steady-state serve
// path allocates nothing per request.
//
// Objects too large for one request frame stream through an upload
// bracket (OpPutStart, ordered OpPutPart frames, OpPutFinish): parts
// are piped into the service layer's PutReader, which encodes and
// seeds stripes while later parts are still arriving. A part write
// blocks until the pipeline consumes it — backpressure that keeps
// gateway memory at O(part) per upload however large the object — and
// the object stays invisible until the finish; an abort, a dropped
// connection or a drain unwinds every stripe already placed.
// Downloads stream as chunked ranged reads (OpStat + OpReadAt), which
// need no server-side state at all.
//
// Connections bind to a tenant namespace with a Hello handshake;
// tenants are isolated namespaces with quotas on one shared fleet
// (see service.Fleet). Watch subscriptions receive object-change
// events for their tenant, delivered best-effort through a small
// per-watcher buffer — a slow watcher drops events rather than
// stalling the data path.
//
// Shutdown is graceful: Drain stops accepting, tells every watcher
// (EventDrain), refuses new requests with StatusDraining, and waits
// for in-flight requests to finish before closing connections.
package gateway

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trapquorum/internal/gwire"
	"trapquorum/internal/service"
)

// TenantStore is the per-tenant backend surface the gateway serves.
// *service.Store provides everything but the scrub summary; see
// FleetTenants for the adapter.
type TenantStore interface {
	Put(ctx context.Context, key string, data []byte) error
	// PutReader is the streaming form of Put: size bytes arrive through
	// r, and a failure (short read, reader error, node failure) must
	// leave no partial object behind.
	PutReader(ctx context.Context, key string, r io.Reader, size int) error
	GetAppend(ctx context.Context, key string, dst []byte) ([]byte, error)
	ReadAtAppend(ctx context.Context, key string, offset, length int, dst []byte) ([]byte, error)
	WriteAt(ctx context.Context, key string, offset int, data []byte) error
	Delete(ctx context.Context, key string) error
	// Size reports the object's byte size.
	Size(key string) (int, error)
	// ScrubSummary audits the object and returns a one-line report.
	ScrubSummary(ctx context.Context, key string) (string, error)
}

// TenantProvider resolves a tenant name (from the Hello handshake) to
// its backend store.
type TenantProvider interface {
	Tenant(name string) (TenantStore, error)
}

// FleetTenants adapts a service.Fleet to the TenantProvider surface:
// every tenant that says Hello gets a namespace on the fleet, created
// on first use with the configured quota.
type FleetTenants struct {
	Fleet *service.Fleet
	// Quota caps each newly created tenant namespace (zero fields are
	// unlimited). Tenants created earlier keep their creation-time
	// quota.
	Quota service.Quota
}

// Tenant implements TenantProvider.
func (f FleetTenants) Tenant(name string) (TenantStore, error) {
	s, err := f.Fleet.Tenant(name, f.Quota)
	if err != nil {
		return nil, err
	}
	return fleetStore{s}, nil
}

// fleetStore adds the scrub summary to a service.Store.
type fleetStore struct{ *service.Store }

func (s fleetStore) ScrubSummary(ctx context.Context, key string) (string, error) {
	reports, err := s.Store.Scrub(ctx, key)
	if err != nil {
		return "", err
	}
	stale, ahead, unreachable, corrupt, mismatched := 0, 0, 0, 0, 0
	for _, r := range reports {
		stale += len(r.StaleShards)
		ahead += len(r.AheadShards)
		unreachable += len(r.UnreachableShards)
		corrupt += len(r.CorruptShards)
		if r.ParityMismatch {
			mismatched++
		}
	}
	return fmt.Sprintf("stripes=%d stale=%d ahead=%d unreachable=%d corrupt=%d parity-mismatched=%d",
		len(reports), stale, ahead, unreachable, corrupt, mismatched), nil
}

// Config parameterises a gateway server. The zero value of each field
// selects the default.
type Config struct {
	// Workers is the size of the shared worker pool executing requests
	// (default 64).
	Workers int
	// QueueDepth bounds the worker pool's request queue; a submit that
	// finds it full is refused with StatusOverloaded (default
	// 4×Workers).
	QueueDepth int
	// MaxInflight bounds one connection's outstanding requests; the
	// excess is refused with StatusOverloaded (default 32).
	MaxInflight int
	// MaxFrame bounds a request frame's payload, enforced before
	// allocation (default gwire.DefaultMaxFrame).
	MaxFrame int
	// WatchBuffer bounds each watcher's event buffer; a full buffer
	// drops events rather than stalling writers (default 64).
	WatchBuffer int
	// WriteTimeout bounds each response write. Responses are written by
	// shared pool workers, so a client that stops reading (full TCP
	// send buffer) would otherwise pin a worker indefinitely; on
	// timeout the connection is closed and the session torn down
	// (default 10s).
	WriteTimeout time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = gwire.DefaultMaxFrame
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 64
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Accepted counts connections accepted over the server's lifetime;
	// Active is the number currently open.
	Accepted, Active int64
	// Requests counts requests that reached a worker; Overloads counts
	// requests refused by backpressure (queue or in-flight window).
	Requests, Overloads int64
	// EventsDropped counts watch events discarded because a watcher's
	// buffer was full.
	EventsDropped int64
}

// frameBuf boxes a pooled buffer behind a stable pointer so pool
// round-trips never re-box a slice header (a []byte stored directly
// in a sync.Pool allocates on every Put).
type frameBuf struct{ b []byte }

// task is one request handed to the worker pool. The frame buffer
// travels with it (req's Key and Data alias fb.b) and returns to the
// read pool when the worker is done.
type task struct {
	s   *session
	fb  *frameBuf
	req gwire.Request
}

// Server is one gateway process: an accept loop, a shared worker
// pool, and the session/watcher registries.
type Server struct {
	tenants TenantProvider
	cfg     Config

	ctx    context.Context
	cancel context.CancelFunc

	tasks    chan task
	draining atomic.Bool
	inflight atomic.Int64 // requests handed to the pool, not yet answered

	accepted      atomic.Int64
	requests      atomic.Int64
	overloads     atomic.Int64
	eventsDropped atomic.Int64

	workers sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	watchers  map[string]map[*session]struct{} // tenant -> watching sessions

	readPool sync.Pool
	outPool  sync.Pool
}

// NewServer builds a gateway over the given tenant backends.
func NewServer(tenants TenantProvider, cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		tenants:   tenants,
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		tasks:     make(chan task, cfg.QueueDepth),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
		watchers:  make(map[string]map[*session]struct{}),
	}
	srv.readPool.New = func() any { return &frameBuf{b: make([]byte, 0, 4096)} }
	srv.outPool.New = func() any { return &frameBuf{b: make([]byte, 0, 4096)} }
	srv.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go srv.worker()
	}
	return srv
}

// Stats snapshots the server's counters.
func (srv *Server) Stats() Stats {
	srv.mu.Lock()
	active := int64(len(srv.sessions))
	srv.mu.Unlock()
	return Stats{
		Accepted:      srv.accepted.Load(),
		Active:        active,
		Requests:      srv.requests.Load(),
		Overloads:     srv.overloads.Load(),
		EventsDropped: srv.eventsDropped.Load(),
	}
}

// Serve accepts connections on l until the listener is closed (by
// Drain or Close). It returns nil on a drain/close shutdown.
func (srv *Server) Serve(l net.Listener) error {
	if srv.draining.Load() {
		l.Close()
		return gwire.ErrDraining
	}
	srv.mu.Lock()
	srv.listeners[l] = struct{}{}
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.listeners, l)
		srv.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if srv.draining.Load() {
				return nil
			}
			return err
		}
		srv.accepted.Add(1)
		s := &session{srv: srv, conn: conn}
		srv.mu.Lock()
		if srv.draining.Load() {
			srv.mu.Unlock()
			conn.Close()
			continue
		}
		srv.sessions[s] = struct{}{}
		srv.mu.Unlock()
		go s.readLoop()
	}
}

// Drain shuts the gateway down gracefully: stop accepting, notify
// watchers (EventDrain), refuse new requests with StatusDraining,
// wait for in-flight requests to complete, then close connections.
// The context bounds the wait; on expiry remaining connections are
// closed anyway and the context's error is returned.
func (srv *Server) Drain(ctx context.Context) error {
	if !srv.draining.CompareAndSwap(false, true) {
		return nil
	}
	srv.mu.Lock()
	for l := range srv.listeners {
		l.Close()
	}
	// Tell every watcher goodbye before the data path stops.
	var targets []*session
	for _, subs := range srv.watchers {
		for s := range subs {
			targets = append(targets, s)
		}
	}
	sessions := make([]*session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range targets {
		s.enqueueEvent(gwire.EventDrain, "")
	}
	// Abort in-progress streaming uploads: a part blocked in the pipe
	// is pinning a pool worker and counted in-flight, and no further
	// parts will be admitted past the drain flag — without this the
	// in-flight poll below could only time out. The blocked part (and
	// the upload's client) observes StatusDraining.
	for _, s := range sessions {
		s.abortUpload(gwire.ErrDraining)
	}

	// Readers increment the in-flight count before they check the
	// drain flag (and decrement again on refusal), so once this poll
	// observes zero no request can still be headed for the queue: a
	// reader the poll missed has not incremented yet and will see the
	// flag, set above, and refuse. Polling avoids the Add-vs-Wait race
	// a WaitGroup would have against the admission fast path; drain is
	// not a hot path.
	var err error
	for srv.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	srv.shutdown()
	return err
}

// Close shuts the gateway down immediately: listeners and connections
// are closed with no grace for in-flight requests.
func (srv *Server) Close() {
	srv.draining.Store(true)
	srv.mu.Lock()
	for l := range srv.listeners {
		l.Close()
	}
	srv.mu.Unlock()
	srv.shutdown()
}

// shutdown closes every session and stops the worker pool. Watcher
// notifiers get a bounded grace to flush queued events (the drain
// notice in particular) before their connections are cut.
func (srv *Server) shutdown() {
	srv.cancel()
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			s.stopNotifier()
			s.waitNotifier(time.Second)
			s.conn.Close()
		}(s)
	}
	wg.Wait()
	srv.workers.Wait()
}

// worker executes pool tasks until shutdown.
func (srv *Server) worker() {
	defer srv.workers.Done()
	for {
		select {
		case t := <-srv.tasks:
			t.s.handle(&t.req)
			srv.putReadBuf(t.fb)
			t.s.inflight.Add(-1)
			srv.inflight.Add(-1)
		case <-srv.ctx.Done():
			return
		}
	}
}

// maxKeptScratch bounds pooled buffers: one giant frame must not pin
// its buffer forever.
const maxKeptScratch = 64 << 10

func (srv *Server) getReadBuf() *frameBuf { return srv.readPool.Get().(*frameBuf) }
func (srv *Server) getOutBuf() *frameBuf  { return srv.outPool.Get().(*frameBuf) }

func (srv *Server) putReadBuf(fb *frameBuf) { putBuf(&srv.readPool, fb) }
func (srv *Server) putOutBuf(fb *frameBuf)  { putBuf(&srv.outPool, fb) }

func putBuf(p *sync.Pool, fb *frameBuf) {
	if cap(fb.b) > maxKeptScratch {
		fb.b = make([]byte, 0, 4096)
	}
	fb.b = fb.b[:0]
	p.Put(fb)
}

// registerWatch subscribes a session to its tenant's object-change
// events. The latest Watch request's seq wins when a session
// subscribes twice.
func (srv *Server) registerWatch(s *session, seq uint64) {
	s.watchSeq.Store(seq)
	s.startNotifier()
	srv.mu.Lock()
	subs := srv.watchers[s.tenant]
	if subs == nil {
		subs = make(map[*session]struct{})
		srv.watchers[s.tenant] = subs
	}
	subs[s] = struct{}{}
	srv.mu.Unlock()
}

// unregister removes a closed session from the registries.
func (srv *Server) unregister(s *session) {
	srv.mu.Lock()
	delete(srv.sessions, s)
	if subs, ok := srv.watchers[s.tenant]; ok {
		delete(subs, s)
		if len(subs) == 0 {
			delete(srv.watchers, s.tenant)
		}
	}
	srv.mu.Unlock()
}

// notify fans an object-change event out to the tenant's watchers
// (excluding the mutating session itself: it knows what it did).
func (srv *Server) notify(origin *session, tenant string, kind gwire.EventKind, key string) {
	srv.mu.Lock()
	var targets []*session
	for s := range srv.watchers[tenant] {
		if s != origin {
			targets = append(targets, s)
		}
	}
	srv.mu.Unlock()
	for _, s := range targets {
		s.enqueueEvent(kind, key)
	}
}

// event is one queued watch notification.
type event struct {
	kind gwire.EventKind
	key  string
}

// session is one accepted connection: its reader goroutine, write
// mutex, tenant binding and watch state.
type session struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex
	// wdeadline is the write deadline currently armed on conn, guarded
	// by writeMu. It is refreshed lazily (see send) so the hot path
	// does not pay a deadline update — which allocates a timer on some
	// net.Conn implementations — per response.
	wdeadline time.Time

	inflight atomic.Int64

	// Bound by the Hello handshake in the reader goroutine; workers
	// only see these after admission, which happens after binding.
	tenant string
	store  TenantStore

	// names interns this session's object keys so the steady-state
	// path does not allocate a string per request. Guarded by writeMu
	// (workers of the same session run concurrently). Bounded by
	// wholesale reset: a session cycling through unbounded distinct
	// keys trades the zero-alloc lookup for churn.
	names map[string]string

	watchSeq     atomic.Uint64
	watchMu      sync.Mutex
	events       chan event
	notifierDone chan struct{}

	// upMu guards the session's active streaming upload (one at a
	// time); see handlePutStart.
	upMu sync.Mutex
	up   *upload
}

// upload is one in-progress streaming put: the pipe feeding the
// backend's PutReader, and the bookkeeping that keeps parts ordered.
// The object stays invisible until OpPutFinish; a dropped connection,
// an OpPutAbort or a drain unwinds it without a trace.
type upload struct {
	key  string
	size int64
	pw   *io.PipeWriter
	// done closes once the backend's PutReader returned; verdict is
	// its error, valid after done. Any number of waiters (a blocked
	// part, the finish, an abort, the session teardown) may consult it.
	done    chan struct{}
	verdict error

	// mu serialises part writes into the pipe and guards got, the
	// number of bytes accepted so far. Parts carry their running offset
	// and anything out of order is refused — pipelined parts racing
	// through different pool workers must not interleave in the pipe.
	mu  sync.Mutex
	got int64
}

// errUploadAborted is what the backend's PutReader sees when the
// client (or a session teardown) aborts the upload mid-stream.
var errUploadAborted = errors.New("gateway: upload aborted")

// maxInternedKeys bounds the per-session key intern table.
const maxInternedKeys = 4096

// internKey returns a stable string for the key bytes without
// allocating on the hit path (a map lookup indexed by string(b) does
// not materialise the string).
func (s *session) internKey(b []byte) string {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if v, ok := s.names[string(b)]; ok {
		return v
	}
	if s.names == nil || len(s.names) >= maxInternedKeys {
		s.names = make(map[string]string, 64)
	}
	k := string(b)
	s.names[k] = k
	return k
}

// readLoop is the session's reader goroutine: read frame, decode,
// admit, hand to the pool.
func (s *session) readLoop() {
	defer func() {
		s.conn.Close()
		s.srv.unregister(s)
		s.stopNotifier()
		// A connection that dies mid-upload unwinds it: the pipe close
		// fails the backend's read, and PutReader deletes every stripe
		// it had seeded before this returns.
		s.abortUpload(errUploadAborted)
	}()
	srv := s.srv
	fb := srv.getReadBuf()
	for {
		payload, err := gwire.ReadFrame(s.conn, fb.b[:0], srv.cfg.MaxFrame)
		if err != nil {
			// EOF, torn frame, oversized frame or a closed connection:
			// in every case the stream is unusable — drop the session.
			srv.putReadBuf(fb)
			return
		}
		fb.b = payload
		req, err := gwire.DecodeRequest(payload)
		if err != nil {
			// A peer speaking garbage gets disconnected, not parsed
			// charitably.
			srv.putReadBuf(fb)
			return
		}
		switch {
		case req.Op == gwire.OpHello:
			// Bind synchronously: the handshake must win any race with
			// pipelined requests arriving behind it.
			s.handleHello(&req)
			continue
		case req.Op == gwire.OpHealth:
			// Health stays answerable during drain and before Hello —
			// it is how operators and balancers probe the gateway.
			s.handleHealth(req.Seq)
			continue
		case s.store == nil:
			s.respondErr(req.Seq, gwire.StatusBadRequest, "hello required before any other op")
			continue
		}
		if s.inflight.Add(1) > int64(srv.cfg.MaxInflight) {
			s.inflight.Add(-1)
			srv.overloads.Add(1)
			s.respondErr(req.Seq, gwire.StatusOverloaded, "connection in-flight window full")
			continue
		}
		// Count the request in-flight before checking the drain flag:
		// Drain sets the flag and then polls the counter, so a request
		// it does not observe here is guaranteed to observe draining
		// and be refused before reaching the queue.
		srv.inflight.Add(1)
		if srv.draining.Load() {
			s.inflight.Add(-1)
			srv.inflight.Add(-1)
			s.respondErr(req.Seq, gwire.StatusDraining, "gateway is draining")
			continue
		}
		select {
		case srv.tasks <- task{s: s, fb: fb, req: req}:
			srv.requests.Add(1)
			// The frame buffer now belongs to the worker; read the next
			// frame into a fresh one.
			fb = srv.getReadBuf()
		default:
			s.inflight.Add(-1)
			srv.inflight.Add(-1)
			srv.overloads.Add(1)
			s.respondErr(req.Seq, gwire.StatusOverloaded, "worker queue full")
		}
	}
}

// handleHello binds the session to its tenant namespace.
func (s *session) handleHello(req *gwire.Request) {
	if s.store != nil {
		s.respondErr(req.Seq, gwire.StatusBadRequest, "connection already bound to a tenant")
		return
	}
	if len(req.Key) == 0 {
		s.respondErr(req.Seq, gwire.StatusBadRequest, "empty tenant name")
		return
	}
	store, err := s.srv.tenants.Tenant(string(req.Key))
	if err != nil {
		s.respondErr(req.Seq, gwire.StatusOf(err), err.Error())
		return
	}
	s.tenant = string(req.Key)
	s.store = store
	s.respondOK(req.Seq)
}

// handleHealth answers the health probe: Flag reports serving (true)
// vs draining, Data carries a one-line stats summary.
func (s *session) handleHealth(seq uint64) {
	srv := s.srv
	st := srv.Stats()
	summary := fmt.Sprintf("conns=%d requests=%d overloads=%d events-dropped=%d",
		st.Active, st.Requests, st.Overloads, st.EventsDropped)
	fb := srv.getOutBuf()
	body, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), seq, gwire.StatusOK, !srv.draining.Load(), "")
	body = append(body, summary...)
	gwire.FinishResponse(body, dlenOff)
	s.send(body, fb)
}

// handle executes one admitted request on a pool worker.
func (s *session) handle(req *gwire.Request) {
	srv := s.srv
	ctx := srv.ctx
	switch req.Op {
	case gwire.OpPut:
		key := s.internKey(req.Key)
		err := s.store.Put(ctx, key, req.Data)
		if err == nil {
			srv.notify(s, s.tenant, gwire.EventPut, key)
		}
		s.respondStatus(req.Seq, err)
	case gwire.OpGet:
		key := s.internKey(req.Key)
		fb := srv.getOutBuf()
		hdr, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), req.Seq, gwire.StatusOK, false, "")
		body, err := s.store.GetAppend(ctx, key, hdr)
		if err != nil {
			fb.b = hdr
			srv.putOutBuf(fb)
			s.respondStatus(req.Seq, err)
			return
		}
		gwire.FinishResponse(body, dlenOff)
		s.send(body, fb)
	case gwire.OpReadAt:
		key := s.internKey(req.Key)
		if req.Offset < 0 || req.Length < 0 || req.Length > int64(srv.cfg.MaxFrame) {
			s.respondErr(req.Seq, gwire.StatusBadRange, "offset/length out of range")
			return
		}
		fb := srv.getOutBuf()
		hdr, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), req.Seq, gwire.StatusOK, false, "")
		body, err := s.store.ReadAtAppend(ctx, key, int(req.Offset), int(req.Length), hdr)
		if err != nil {
			fb.b = hdr
			srv.putOutBuf(fb)
			s.respondStatus(req.Seq, err)
			return
		}
		gwire.FinishResponse(body, dlenOff)
		s.send(body, fb)
	case gwire.OpWriteAt:
		key := s.internKey(req.Key)
		if req.Offset < 0 {
			s.respondErr(req.Seq, gwire.StatusBadRange, "negative offset")
			return
		}
		err := s.store.WriteAt(ctx, key, int(req.Offset), req.Data)
		if err == nil {
			srv.notify(s, s.tenant, gwire.EventWrite, key)
		}
		s.respondStatus(req.Seq, err)
	case gwire.OpDelete:
		key := s.internKey(req.Key)
		err := s.store.Delete(ctx, key)
		if err == nil {
			srv.notify(s, s.tenant, gwire.EventDelete, key)
		}
		s.respondStatus(req.Seq, err)
	case gwire.OpScrub:
		key := s.internKey(req.Key)
		summary, err := s.store.ScrubSummary(ctx, key)
		if err != nil {
			s.respondStatus(req.Seq, err)
			return
		}
		s.respondData(req.Seq, []byte(summary))
	case gwire.OpStat:
		key := s.internKey(req.Key)
		size, err := s.store.Size(key)
		if err != nil {
			s.respondStatus(req.Seq, err)
			return
		}
		var sz [8]byte
		binary.BigEndian.PutUint64(sz[:], uint64(size))
		s.respondData(req.Seq, sz[:])
	case gwire.OpPutStart:
		s.handlePutStart(req)
	case gwire.OpPutPart:
		s.handlePutPart(req)
	case gwire.OpPutFinish:
		s.handlePutFinish(req)
	case gwire.OpPutAbort:
		if !s.abortUpload(errUploadAborted) {
			s.respondErr(req.Seq, gwire.StatusBadRequest, "no upload in progress")
			return
		}
		s.respondOK(req.Seq)
	case gwire.OpWatch:
		srv.registerWatch(s, req.Seq)
		s.respondOK(req.Seq)
	default:
		s.respondErr(req.Seq, gwire.StatusBadRequest, "unhandled op")
	}
}

// handlePutStart opens a streaming upload: the declared size travels
// in Length, and from here until OpPutFinish the session's parts are
// piped into the backend's PutReader, which runs in its own goroutine
// so part frames and stripe seeding overlap. Backend errors (quota,
// node failure) surface on the first part or the finish — whichever
// touches the pipe after the backend gave up.
func (s *session) handlePutStart(req *gwire.Request) {
	if req.Length < 0 || req.Length > math.MaxInt {
		s.respondErr(req.Seq, gwire.StatusBadRange, "upload size out of range")
		return
	}
	key := s.internKey(req.Key)
	pr, pw := io.Pipe()
	up := &upload{key: key, size: req.Length, pw: pw, done: make(chan struct{})}
	s.upMu.Lock()
	if s.up != nil {
		s.upMu.Unlock()
		pw.Close()
		s.respondErr(req.Seq, gwire.StatusBadRequest, "an upload is already in progress on this connection")
		return
	}
	s.up = up
	s.upMu.Unlock()
	go func() {
		err := s.store.PutReader(s.srv.ctx, key, pr, int(up.size))
		// Unblock any part still (or later) writing into the pipe: a
		// failed PutReader propagates its error to the waiting part, a
		// completed one turns stray extra parts into ErrClosedPipe.
		pr.CloseWithError(err)
		up.verdict = err
		close(up.done)
	}()
	s.respondOK(req.Seq)
}

// handlePutPart feeds one slice of the upload into the pipe. The part
// write blocks until the streaming pipeline consumes the bytes — that
// is the backpressure that keeps gateway memory at O(part) per upload
// however large the object.
func (s *session) handlePutPart(req *gwire.Request) {
	s.upMu.Lock()
	up := s.up
	s.upMu.Unlock()
	if up == nil {
		s.respondErr(req.Seq, gwire.StatusBadRequest, "no upload in progress")
		return
	}
	up.mu.Lock()
	if req.Offset != up.got {
		up.mu.Unlock()
		s.respondErr(req.Seq, gwire.StatusBadRequest,
			fmt.Sprintf("out-of-order part: offset %d, want %d", req.Offset, up.got))
		return
	}
	if up.got+int64(len(req.Data)) > up.size {
		up.mu.Unlock()
		s.respondErr(req.Seq, gwire.StatusBadRange, "upload exceeds its declared size")
		return
	}
	_, err := up.pw.Write(req.Data)
	if err == nil {
		up.got += int64(len(req.Data))
	}
	up.mu.Unlock()
	if errors.Is(err, io.ErrClosedPipe) {
		// The write half was closed under the blocked write (abort,
		// drain, session teardown): the backend's verdict — guaranteed
		// to arrive, the pipe it was reading is dead too — names the
		// real cause, which is what the client should see.
		<-up.done
		if up.verdict != nil {
			err = up.verdict
		}
	}
	s.respondStatus(req.Seq, err)
}

// handlePutFinish closes the pipe and publishes the backend's verdict:
// only now does the object become visible (and the Watch event fire).
// A finish before all declared bytes arrived surfaces the backend's
// short-read error — and the backend has already unwound every stripe.
func (s *session) handlePutFinish(req *gwire.Request) {
	s.upMu.Lock()
	up := s.up
	s.up = nil
	s.upMu.Unlock()
	if up == nil {
		s.respondErr(req.Seq, gwire.StatusBadRequest, "no upload in progress")
		return
	}
	up.pw.Close()
	<-up.done
	if up.verdict == nil {
		s.srv.notify(s, s.tenant, gwire.EventPut, up.key)
	}
	s.respondStatus(req.Seq, up.verdict)
}

// abortUpload tears the session's active upload down (if any) and
// waits for the backend to finish unwinding — once this returns, no
// chunk of the aborted object remains on any node. cause is what a
// part blocked in the pipe (and the backend's reader) observes.
func (s *session) abortUpload(cause error) bool {
	s.upMu.Lock()
	up := s.up
	s.up = nil
	s.upMu.Unlock()
	if up == nil {
		return false
	}
	up.pw.CloseWithError(cause)
	<-up.done
	return true
}

// respondStatus maps err through the wire taxonomy and answers.
func (s *session) respondStatus(seq uint64, err error) {
	if err == nil {
		s.respondOK(seq)
		return
	}
	status := gwire.StatusOf(err)
	detail := err.Error()
	if status == gwire.StatusInternal && errors.Is(err, context.Canceled) {
		// Shutdown raced the request: report drain, not an internal
		// fault.
		status = gwire.StatusDraining
		detail = "gateway is draining"
	}
	s.respondErr(seq, status, detail)
}

func (s *session) respondOK(seq uint64) {
	fb := s.srv.getOutBuf()
	body, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), seq, gwire.StatusOK, false, "")
	gwire.FinishResponse(body, dlenOff)
	s.send(body, fb)
}

func (s *session) respondData(seq uint64, data []byte) {
	fb := s.srv.getOutBuf()
	body, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), seq, gwire.StatusOK, false, "")
	body = append(body, data...)
	gwire.FinishResponse(body, dlenOff)
	s.send(body, fb)
}

func (s *session) respondErr(seq uint64, status gwire.Status, detail string) {
	fb := s.srv.getOutBuf()
	body, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), seq, status, false, detail)
	gwire.FinishResponse(body, dlenOff)
	s.send(body, fb)
}

// send writes one response frame and returns its buffer to the pool.
// The buffer's first four bytes are reserved for the frame header
// (the layout every respond* helper and the zero-copy read path
// build): patch the length in and write the whole thing with a single
// conn.Write under the session's write mutex.
func (s *session) send(body []byte, fb *frameBuf) {
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	s.writeMu.Lock()
	// Arm the write deadline, refreshing only once the remaining
	// margin falls below half the timeout: the deadline is a stall
	// backstop, not a per-write precision timer, so every write is
	// still granted at least WriteTimeout/2 and the steady-state path
	// skips the update (which allocates on timer-based conns like
	// net.Pipe).
	if now := time.Now(); s.wdeadline.Sub(now) < s.srv.cfg.WriteTimeout/2 {
		s.wdeadline = now.Add(s.srv.cfg.WriteTimeout)
		s.conn.SetWriteDeadline(s.wdeadline)
	}
	_, err := s.conn.Write(body)
	s.writeMu.Unlock()
	if err != nil {
		// A dead peer — or one that stopped reading until the write
		// deadline fired — must not keep pinning pool workers: close
		// the connection so the reader tears the session down.
		s.conn.Close()
	}
	fb.b = body
	s.srv.putOutBuf(fb)
}

// enqueueEvent queues a watch notification, dropping it if the
// watcher's buffer is full (best-effort delivery; see package doc).
// The send happens under watchMu — the same lock stopNotifier closes
// s.events under — so a teardown racing a notify can never close the
// channel between the nil check and the send (a send on a closed
// channel panics even with a default case).
func (s *session) enqueueEvent(kind gwire.EventKind, key string) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.events == nil {
		return
	}
	select {
	case s.events <- event{kind: kind, key: key}:
	default:
		s.srv.eventsDropped.Add(1)
	}
}

// startNotifier lazily starts the session's event-writer goroutine on
// the first Watch: events are written off the data path, so a slow
// watcher connection never stalls the worker that performed the
// mutation.
func (s *session) startNotifier() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.notifierDone != nil {
		return
	}
	s.notifierDone = make(chan struct{})
	s.events = make(chan event, s.srv.cfg.WatchBuffer)
	go func(ch chan event, done chan struct{}) {
		defer close(done)
		for ev := range ch {
			seq := s.watchSeq.Load()
			fb := s.srv.getOutBuf()
			body, dlenOff := gwire.BeginResponse(append(fb.b, 0, 0, 0, 0), seq, gwire.StatusEvent, false, "")
			body = gwire.AppendEvent(body, &gwire.Event{Kind: ev.kind, Key: []byte(ev.key)})
			gwire.FinishResponse(body, dlenOff)
			s.send(body, fb)
		}
	}(s.events, s.notifierDone)
}

// waitNotifier blocks until the notifier goroutine has flushed its
// queue and exited, or the grace period expires (a watcher that has
// stopped reading must not hold up shutdown).
func (s *session) waitNotifier(grace time.Duration) {
	s.watchMu.Lock()
	done := s.notifierDone
	s.watchMu.Unlock()
	if done == nil {
		return
	}
	select {
	case <-done:
	case <-time.After(grace):
	}
}

// stopNotifier closes the event channel so the notifier goroutine
// exits once it has drained.
func (s *session) stopNotifier() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.events != nil {
		close(s.events)
		s.events = nil
	}
}
