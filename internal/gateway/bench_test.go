package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"trapquorum/client"
	gwclient "trapquorum/client/gateway"
	"trapquorum/internal/gwire"
)

// nullStore is the no-op tenant backend: it isolates the gateway's
// connection plane (framing, dispatch, pooling, backpressure) from
// the quorum engine, which is what the zero-alloc benchmark pins.
type nullStore struct{ payload []byte }

func (n nullStore) Put(context.Context, string, []byte) error { return nil }
func (n nullStore) PutReader(_ context.Context, _ string, r io.Reader, size int) error {
	_, err := io.CopyN(io.Discard, r, int64(size))
	return err
}
func (n nullStore) Size(string) (int, error) { return len(n.payload), nil }
func (n nullStore) GetAppend(_ context.Context, _ string, dst []byte) ([]byte, error) {
	return append(dst, n.payload...), nil
}
func (n nullStore) ReadAtAppend(_ context.Context, _ string, _, length int, dst []byte) ([]byte, error) {
	take := length
	if take > len(n.payload) {
		take = len(n.payload)
	}
	return append(dst, n.payload[:take]...), nil
}
func (n nullStore) WriteAt(context.Context, string, int, []byte) error { return nil }
func (n nullStore) Delete(context.Context, string) error               { return nil }
func (n nullStore) ScrubSummary(context.Context, string) (string, error) {
	return "stripes=0", nil
}

// rawConn is a minimal allocation-free gateway client: reused request
// and response buffers, sequential request/response. The public
// client allocates per call (result copies, pending-map bookkeeping);
// this one exists so the benchmark measures the server, not the
// client.
type rawConn struct {
	nc      net.Conn
	reqBuf  []byte
	respBuf []byte
	seq     uint64
}

func newRawConn(t testing.TB, l *pipeListener, tenant string) *rawConn {
	t.Helper()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	rc := &rawConn{nc: nc, reqBuf: make([]byte, 0, 8192), respBuf: make([]byte, 0, 8192)}
	resp, err := rc.roundTrip(&gwire.Request{Op: gwire.OpHello, Key: []byte(tenant)})
	if err != nil || resp.Status != gwire.StatusOK {
		t.Fatalf("hello: %v (status %d)", err, resp.Status)
	}
	return rc
}

// roundTrip sends one request and reads one response, reusing both
// buffers. Zero allocations in steady state.
func (rc *rawConn) roundTrip(req *gwire.Request) (gwire.Response, error) {
	rc.seq++
	req.Seq = rc.seq
	buf := append(rc.reqBuf[:0], 0, 0, 0, 0)
	buf = gwire.AppendRequest(buf, req)
	n := len(buf) - 4
	buf[0], buf[1], buf[2], buf[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	rc.reqBuf = buf
	if _, err := rc.nc.Write(buf); err != nil {
		return gwire.Response{}, err
	}
	payload, err := gwire.ReadFrame(rc.nc, rc.respBuf[:0], gwire.DefaultMaxFrame)
	if err != nil {
		return gwire.Response{}, err
	}
	rc.respBuf = payload
	return gwire.DecodeResponse(payload)
}

// BenchmarkServePathAllocs drives Put and Get through the whole
// connection plane — frame read, decode, admission, worker dispatch,
// handler, response encode, frame write — over a null backend, and
// pins the steady-state serve path at 0 allocs/op (the allocs column
// of this benchmark is the regression gate).
func BenchmarkServePathAllocs(b *testing.B) {
	payload := bytes.Repeat([]byte{0xa5}, 4096)
	_, l := startServer(b, staticTenants{nullStore{payload: payload}}, Config{Workers: 2})
	rc := newRawConn(b, l, "bench")

	get := gwire.Request{Op: gwire.OpGet, Key: []byte("obj")}
	put := gwire.Request{Op: gwire.OpPut, Key: []byte("obj"), Data: payload}
	// Warm the pools, the intern table and the buffer growth.
	for i := 0; i < 64; i++ {
		if _, err := rc.roundTrip(&get); err != nil {
			b.Fatal(err)
		}
		if _, err := rc.roundTrip(&put); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req *gwire.Request
		if i%2 == 0 {
			req = &get
		} else {
			req = &put
		}
		resp, err := rc.roundTrip(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != gwire.StatusOK {
			b.Fatalf("status %d: %s", resp.Status, resp.Detail)
		}
	}
}

// TestServePathZeroAlloc is the test-suite twin of the benchmark: the
// whole process must average out to (almost) zero allocations per
// request once warm. The bound is loose only to tolerate scheduler
// noise from the server goroutines.
func TestServePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the serve path")
	}
	payload := bytes.Repeat([]byte{0xa5}, 4096)
	_, l := startServer(t, staticTenants{nullStore{payload: payload}}, Config{Workers: 2})
	rc := newRawConn(t, l, "bench")
	get := gwire.Request{Op: gwire.OpGet, Key: []byte("obj")}
	for i := 0; i < 64; i++ {
		if _, err := rc.roundTrip(&get); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := rc.roundTrip(&get); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("serve path allocates %.2f times per request, want ~0", allocs)
	}
}

// Benchmark10kConnections holds 10 000 concurrent client connections
// (in-memory pipes: the whole stack minus the kernel socket, chosen
// because the container's fd ceiling cannot hold 10k TCP pairs) over
// a shared null-backend gateway and, per iteration, runs one
// pipelined Get+Put pair on every connection. It reports the held
// connection count, aggregate request rate and p99 latency — the
// numbers BENCH_gateway.json carries.
func Benchmark10kConnections(b *testing.B) {
	const conns = 10_000
	payload := bytes.Repeat([]byte{0x3c}, 1024)
	_, l := startServer(b, staticTenants{nullStore{payload: payload}}, Config{
		Workers:     128,
		QueueDepth:  4 * conns,
		MaxInflight: 8,
	})

	ctx := context.Background()
	clients := make([]*gwclient.Conn, conns)
	var dialWG sync.WaitGroup
	dialErr := make(chan error, 16)
	for i := range clients {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			nc, err := l.Dial()
			if err != nil {
				select {
				case dialErr <- err:
				default:
				}
				return
			}
			c, err := gwclient.NewConn(ctx, nc, "load")
			if err != nil {
				select {
				case dialErr <- err:
				default:
				}
				return
			}
			clients[i] = c
		}(i)
	}
	dialWG.Wait()
	select {
	case err := <-dialErr:
		b.Fatal(err)
	default:
	}
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()

	lat := make([]time.Duration, conns)
	var latencies []time.Duration
	totalOps := 0
	start := time.Now()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		var wg sync.WaitGroup
		opErr := make(chan error, 16)
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *gwclient.Conn) {
				defer wg.Done()
				key := fmt.Sprintf("obj-%d", i)
				t0 := time.Now()
				// Pipelined pair: Put and Get in flight together on the
				// same connection.
				var inner sync.WaitGroup
				inner.Add(1)
				go func() {
					defer inner.Done()
					if err := c.Put(ctx, key, payload[:128]); err != nil && !errors.Is(err, client.ErrOverloaded) {
						select {
						case opErr <- err:
						default:
						}
					}
				}()
				if _, err := c.Get(ctx, key); err != nil && !errors.Is(err, client.ErrOverloaded) {
					select {
					case opErr <- err:
					default:
					}
				}
				inner.Wait()
				lat[i] = time.Since(t0)
			}(i, c)
		}
		wg.Wait()
		select {
		case err := <-opErr:
			b.Fatal(err)
		default:
		}
		latencies = append(latencies, lat...)
		totalOps += 2 * conns
	}
	b.StopTimer()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(conns), "conns")
	b.ReportMetric(float64(totalOps)/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
}
