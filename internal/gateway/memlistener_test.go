package gateway

import (
	"net"
	"sync"
)

// pipeListener is an in-memory net.Listener over net.Pipe pairs: the
// full gateway stack — framing, sessions, worker pool — runs over it
// without consuming file descriptors, which is what lets the
// 10k-connection benchmark run inside the container's fd limit.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "pipe", Net: "mem"}
}

// Dial hands the server side of a fresh pipe to the accept loop and
// returns the client side.
func (l *pipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}
