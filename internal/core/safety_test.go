package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// TestLinearizabilityUnderCrashSchedules is the protocol's safety
// property test: under an arbitrary fail-stop schedule (crashes and
// restarts between operations), every successful read returns the
// value of the most recent successful write. Failed writes are rolled
// back, so they must never become visible.
func TestLinearizabilityUnderCrashSchedules(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runCrashSchedule(t, seed, 250)
		})
	}
}

func runCrashSchedule(t *testing.T, seed int64, ops int) {
	t.Helper()
	ts := fig3System(t, Options{})
	const blockSize = 32
	data := ts.seed(t, 1, blockSize)
	r := rand.New(rand.NewSource(seed))
	// expected[i] is the value of the last successful write of block i.
	expected := make([][]byte, ts.code.K())
	for i := range expected {
		expected[i] = append([]byte(nil), data[i]...)
	}
	for op := 0; op < ops; op++ {
		switch r.Intn(10) {
		case 0, 1: // crash a random node (cap total down at n-1)
			if ts.cluster.AliveCount() > 1 {
				ts.cluster.Crash(r.Intn(15))
			}
		case 2: // restart a random node
			ts.cluster.Restart(r.Intn(15))
		case 3, 4, 5: // write a random block
			i := r.Intn(ts.code.K())
			x := make([]byte, blockSize)
			r.Read(x)
			if err := ts.sys.WriteBlock(context.Background(), 1, i, x); err == nil {
				expected[i] = x
			} else if !errors.Is(err, ErrWriteFailed) {
				t.Fatalf("op %d: unexpected write error %v", op, err)
			}
		default: // read a random block
			i := r.Intn(ts.code.K())
			got, _, err := ts.sys.ReadBlock(context.Background(), 1, i)
			if err != nil {
				if !errors.Is(err, ErrNotReadable) {
					t.Fatalf("op %d: unexpected read error %v", op, err)
				}
				continue
			}
			if !bytes.Equal(got, expected[i]) {
				t.Fatalf("seed %d op %d: block %d read stale/garbage value", seed, op, i)
			}
		}
	}
}

// TestFailedWriteResidueHazard reproduces, with rollback disabled, the
// anomaly latent in the paper's Algorithm 1: a write that fails at a
// higher level leaves level-0 updates behind, so (a) the failed
// write's value becomes visible to reads, and (b) parity nodes that
// missed the bump reject all future updates, making subsequent writes
// fail — a permanent availability loss until repair.
func TestFailedWriteResidueHazard(t *testing.T) {
	ts := fig3System(t, Options{DisableRollback: true})
	data := ts.seed(t, 1, 32)

	// Starve level 1 (parity shards 10..14, w_1 = 3): crash three.
	ts.cluster.Crash(12)
	ts.cluster.Crash(13)
	ts.cluster.Crash(14)
	x1 := bytes.Repeat([]byte{0x11}, 32)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x1); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v, want ErrWriteFailed", err)
	}

	// Anomaly (a): the failed write is visible — level 0 was updated
	// before the failure and now carries version 2.
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || !bytes.Equal(got, x1) {
		t.Fatalf("expected the residue anomaly: failed write visible at v2; got v%d", version)
	}

	// Anomaly (b): with the cluster fully healed, writes still fail —
	// level-1 parities are stuck at version 1 and reject deltas based
	// on version 2.
	ts.cluster.Restart(12)
	ts.cluster.Restart(13)
	ts.cluster.Restart(14)
	x2 := bytes.Repeat([]byte{0x22}, 32)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x2); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v, want persistent write failure from residue", err)
	}

	// Repairing the stale level-1 parity shards restores writability.
	for _, shard := range []int{10, 11, 12, 13, 14} {
		if err := ts.sys.RepairShard(context.Background(), 1, shard); err != nil {
			t.Fatalf("repair shard %d: %v", shard, err)
		}
	}
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x2); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	got, version, err = ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x2) {
		t.Fatal("post-repair write not visible")
	}
	// Version 4: the seed was v1, and *both* failed writes bumped
	// level 0 (v2, then v3) before dying at level 1 — residue again.
	// The successful post-repair write lands at v4.
	if version != 4 {
		t.Fatalf("version = %d, want 4", version)
	}
	// Unrelated blocks were never corrupted.
	for i := 0; i < ts.code.K(); i++ {
		if i == 2 {
			continue
		}
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[i]) {
			t.Fatalf("block %d collateral damage", i)
		}
	}
}

// TestRollbackPreventsResidue runs the same schedule as the hazard
// test with rollback enabled (the default) and verifies the anomalies
// do not occur.
func TestRollbackPreventsResidue(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 32)
	ts.cluster.Crash(12)
	ts.cluster.Crash(13)
	ts.cluster.Crash(14)
	x1 := bytes.Repeat([]byte{0x11}, 32)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x1); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(got, data[2]) {
		t.Fatalf("failed write leaked despite rollback (v%d)", version)
	}
	ts.cluster.Restart(12)
	ts.cluster.Restart(13)
	ts.cluster.Restart(14)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x1); err != nil {
		t.Fatalf("write after rollback: %v", err)
	}
	if m := ts.sys.Metrics(); m.Rollbacks != 1 {
		t.Fatalf("metrics = %+v, want one rollback", m)
	}
}

// TestConcurrentWritersDistinctBlocks exercises the Galois-field
// commutativity claim end to end: concurrent writers on different
// blocks of the same stripe interleave their parity deltas in
// arbitrary per-node order, yet the stripe must remain code-consistent
// and every block readable at its writer's last value.
func TestConcurrentWritersDistinctBlocks(t *testing.T) {
	ts := fig3System(t, Options{})
	const blockSize = 64
	ts.seed(t, 1, blockSize)
	var wg sync.WaitGroup
	finals := make([][]byte, ts.code.K())
	for i := 0; i < ts.code.K(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + i)))
			var last []byte
			for round := 0; round < 20; round++ {
				x := make([]byte, blockSize)
				r.Read(x)
				if err := ts.sys.WriteBlock(context.Background(), 1, i, x); err != nil {
					panic(err) // all nodes up: writes must succeed
				}
				last = x
			}
			finals[i] = last
		}(i)
	}
	wg.Wait()
	// Every block reads back its final value.
	for i := 0; i < ts.code.K(); i++ {
		got, version, err := ts.sys.ReadBlock(context.Background(), 1, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, finals[i]) {
			t.Fatalf("block %d: lost update under concurrency", i)
		}
		if version != 21 {
			t.Fatalf("block %d: version %d, want 21", i, version)
		}
	}
	// The physical stripe still satisfies the code.
	shards := make([][]byte, ts.code.N())
	for j := range shards {
		chunk, err := ts.shardNode(j).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: j})
		if err != nil {
			t.Fatal(err)
		}
		shards[j] = chunk.Data
	}
	ok, err := ts.code.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stripe violates the erasure code after concurrent writers")
	}
}

// TestConcurrentReadersDuringWrites checks reads stay well-formed
// (either the old or the new value, never garbage) while a writer is
// in flight.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	ts := fig3System(t, Options{})
	const blockSize = 64
	ts.seed(t, 1, blockSize)
	values := make(map[string]bool)
	var mu sync.Mutex
	record := func(b []byte) {
		mu.Lock()
		values[string(b)] = true
		mu.Unlock()
	}
	written := [][]byte{}
	r := rand.New(rand.NewSource(77))
	for round := 0; round < 10; round++ {
		x := make([]byte, blockSize)
		r.Read(x)
		written = append(written, x)
	}
	done := make(chan struct{})
	var readErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			got, _, err := ts.sys.ReadBlock(context.Background(), 1, 4)
			if err != nil {
				readErr = err
				return
			}
			record(got)
		}
	}()
	for _, x := range written {
		if err := ts.sys.WriteBlock(context.Background(), 1, 4, x); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if readErr != nil {
		t.Fatalf("reader failed: %v", readErr)
	}
	// Every observed value must be the seed value or one of the
	// written values — nothing else.
	valid := map[string]bool{}
	orig := ts.seedValue(t, 4, blockSize)
	valid[string(orig)] = true
	for _, x := range written {
		valid[string(x)] = true
	}
	for v := range values {
		if !valid[v] {
			t.Fatal("reader observed a value that was never written (torn read)")
		}
	}
}

// seedValue regenerates the deterministic seed content of a block
// (same generator as testSystem.seed with stripe 1).
func (ts *testSystem) seedValue(t *testing.T, block, size int) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(2))
	data := make([][]byte, ts.code.K())
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	return data[block]
}

// TestSmallCodeConfigurations drives the protocol on other shapes to
// guard against Figure-3-specific assumptions: a flat trapezoid
// (h=0), a three-level one, and the degenerate single-parity code.
func TestSmallCodeConfigurations(t *testing.T) {
	cases := []struct {
		n, k  int
		shape trapezoid.Shape
		w     int
	}{
		{9, 6, trapezoid.Shape{A: 0, B: 4, H: 0}, 1},  // flat: plain majority over 4
		{9, 6, trapezoid.Shape{A: 2, B: 1, H: 1}, 1},  // 1+3 = 4 = n-k+1
		{12, 4, trapezoid.Shape{A: 2, B: 1, H: 2}, 2}, // 1+3+5 = 9 = n-k+1
		{6, 5, trapezoid.Shape{A: 0, B: 2, H: 0}, 1},  // two positions
	}
	for _, c := range cases {
		if got, want := c.shape.NbNodes(), c.n-c.k+1; got != want {
			t.Fatalf("fixture bug: shape %v holds %d, need %d", c.shape, got, want)
		}
		ts := newTestSystem(t, c.n, c.k, c.shape, c.w, Options{})
		data := ts.seed(t, 1, 16)
		for i := 0; i < c.k; i++ {
			got, _, err := ts.sys.ReadBlock(context.Background(), 1, i)
			if err != nil {
				t.Fatalf("(%d,%d) %v: read %d: %v", c.n, c.k, c.shape, i, err)
			}
			if !bytes.Equal(got, data[i]) {
				t.Fatalf("(%d,%d) %v: block %d wrong", c.n, c.k, c.shape, i)
			}
		}
		x := bytes.Repeat([]byte{9}, 16)
		if err := ts.sys.WriteBlock(context.Background(), 1, 0, x); err != nil {
			t.Fatalf("(%d,%d) %v: write: %v", c.n, c.k, c.shape, err)
		}
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
		if err != nil || !bytes.Equal(got, x) {
			t.Fatalf("(%d,%d) %v: write not visible: %v", c.n, c.k, c.shape, err)
		}
	}
}
