package core

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// The tests in this file pin the dispatch engine's semantics: first-k
// reads never block on a straggler node, a write cancelled mid-fan-out
// leaves no partial footprint, hedging rescues reads from transient
// per-node slowness, and the bounded (concurrency=1) engine still
// implements the same protocol.

// stragglerDelay is the injected latency that must NOT appear in any
// measured operation below; budget is the generous upper bound the
// operations must finish within on a loaded CI machine.
const (
	stragglerDelay = 30 * time.Second
	budget         = 5 * time.Second
)

// timeOp fails the test when op takes longer than budget — i.e. when
// it waited for a straggler.
func timeOp(t *testing.T, what string, op func() error) {
	t.Helper()
	start := time.Now()
	if err := op(); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Fatalf("%s blocked on a straggler: took %v", what, elapsed)
	}
}

// TestReadDoesNotWaitForStragglerNode: one level-1 parity node is made
// pathologically slow; a healthy read reaches its level-0 version
// quorum, cancels the straggler's probe, and serves the block directly
// — in microseconds, not stragglerDelay.
func TestReadDoesNotWaitForStragglerNode(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	ts.cluster.SetNodeDelay(14, sim.FixedDelay(stragglerDelay)) // last level-1 parity
	timeOp(t, "read with straggler", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 3)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[3]) {
			t.Fatal("read returned wrong data")
		}
		return nil
	})
}

// TestReadDoesNotWaitForStragglerDataNode: the straggler is the
// block's *own* data node, so its freshness probe never settles before
// the version quorum is won. The grace-bounded direct read must give
// up on the node and serve the block through the racing decode path —
// this is the case where a naive "optimistic direct read" would block
// for the node's full latency.
func TestReadDoesNotWaitForStragglerDataNode(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	ts.cluster.SetNodeDelay(3, sim.FixedDelay(stragglerDelay))
	timeOp(t, "read with straggling data node", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 3)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[3]) {
			t.Fatal("read returned wrong data")
		}
		return nil
	})
	if m := ts.sys.Metrics(); m.DecodeReads != 1 {
		t.Fatalf("expected the decode race to serve the block, got %+v", m)
	}
}

// TestDecodeDoesNotWaitForStragglerNode: the data node is down (Case 2
// decode) and one surviving parity node is pathologically slow. The
// first-k decode assembles a consistent set from the 13 prompt shards
// and cancels the straggler's chunk read.
func TestDecodeDoesNotWaitForStragglerNode(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	ts.cluster.Crash(2)
	ts.cluster.SetNodeDelay(11, sim.FixedDelay(stragglerDelay))
	timeOp(t, "decode with straggler", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 2)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[2]) {
			t.Fatal("decode returned wrong data")
		}
		return nil
	})
	if m := ts.sys.Metrics(); m.DecodeReads != 1 {
		t.Fatalf("expected exactly one decode read, got %+v", m)
	}
}

// TestWriteCancelledMidFanoutLeavesNoFootprint drives a write into the
// parallel update fan-out and expires its context while the level-1
// updates are still in their delay window: level 0 (data node plus two
// parity nodes, all fast) applies, level 1 (five slow parity nodes)
// cannot reach w=3, the write aborts with the context error, and the
// rollback restores every applied node — no shard may be left at the
// new version or with the new bytes.
func TestWriteCancelledMidFanoutLeavesNoFootprint(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Level 0 serves block 3 through shards {3, 8, 9}; level 1 is
	// shards 10..14. Slow every level-1 node's mutating ops only, so
	// the write's initial read stays fast.
	for shard := 10; shard <= 14; shard++ {
		ts.cluster.SetNodeDelay(shard, func(op string) time.Duration {
			if op == "add" || op == "write" {
				return stragglerDelay
			}
			return 0
		})
	}
	before := readAllShards(t, ts, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	timeOp(t, "cancelled write", func() error {
		err := ts.sys.WriteBlock(ctx, 1, 3, bytes.Repeat([]byte{0xFF}, 64))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
		var op *OpError
		if !errors.As(err, &op) {
			t.Fatalf("context abort not wrapped in OpError: %v", err)
		}
		return nil
	})

	after := readAllShards(t, ts, 1)
	for shard := range before {
		if !bytes.Equal(before[shard].Data, after[shard].Data) {
			t.Fatalf("shard %d bytes changed after cancelled write", shard)
		}
		for slot, v := range before[shard].Versions {
			if after[shard].Versions[slot] != v {
				t.Fatalf("shard %d version slot %d moved %d -> %d after cancelled write",
					shard, slot, v, after[shard].Versions[slot])
			}
		}
	}
	m := ts.sys.Metrics()
	if m.Writes != 0 || m.FailedWrites != 1 || m.Rollbacks != 1 {
		t.Fatalf("metrics after cancelled write: %+v", m)
	}
}

// readAllShards snapshots every shard of a stripe directly from the
// nodes, bypassing the protocol (delays only apply to mutating ops in
// the test above, and reads here use fresh fast paths).
func readAllShards(t *testing.T, ts *testSystem, stripe uint64) []sim.Chunk {
	t.Helper()
	out := make([]sim.Chunk, ts.code.N())
	for shard := 0; shard < ts.code.N(); shard++ {
		chunk, err := ts.shardNode(shard).ReadChunk(context.Background(), chunkID(stripe, shard))
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		out[shard] = chunk
	}
	return out
}

// TestHedgingRescuesTransientlySlowProbes models a cluster whose nodes
// are slow exactly once (a GC pause, a cold cache): every node's first
// RPC takes stragglerDelay, later RPCs are instant. Without hedging a
// read must ride out the pause; with a small fixed hedge delay the
// re-issued probes land immediately.
func TestHedgingRescuesTransientlySlowProbes(t *testing.T) {
	ts := fig3System(t, Options{Hedge: HedgeConfig{Delay: 20 * time.Millisecond}})
	data := ts.seed(t, 1, 64)
	for j := 0; j < ts.code.N(); j++ {
		var calls atomic.Int64
		ts.cluster.SetNodeDelay(j, func(string) time.Duration {
			if calls.Add(1) == 1 {
				return stragglerDelay
			}
			return 0
		})
	}
	timeOp(t, "hedged read", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[0]) {
			t.Fatal("hedged read returned wrong data")
		}
		return nil
	})
	if m := ts.sys.Metrics(); m.HedgedRPCs == 0 {
		t.Fatal("no RPCs were hedged")
	}
}

// TestConcurrencyOneStillImplementsTheProtocol runs a write/read/
// degraded-read cycle on the bounded engine (one RPC in flight at a
// time) — the sequential baseline must remain a correct protocol
// implementation, since benchmarks compare against it.
func TestConcurrencyOneStillImplementsTheProtocol(t *testing.T) {
	ts := fig3System(t, Options{Concurrency: 1})
	ts.seed(t, 1, 64)
	x := bytes.Repeat([]byte{0x5A}, 64)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x); err != nil {
		t.Fatal(err)
	}
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || !bytes.Equal(got, x) {
		t.Fatalf("round trip on concurrency=1: version %d", version)
	}
	ts.cluster.Crash(2)
	got, _, err = ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x) {
		t.Fatal("degraded read on concurrency=1 returned wrong data")
	}
}

// TestNewSystemRejectsBadEngineOptions: the engine knobs validate.
func TestNewSystemRejectsBadEngineOptions(t *testing.T) {
	for _, opts := range []Options{
		{Concurrency: -1},
		{Hedge: HedgeConfig{Delay: -time.Second}},
		{Hedge: HedgeConfig{Quantile: 1.5}},
	} {
		ts := fig3System(t, Options{})
		_, err := NewSystem(ts.code, mustConfig(t), []NodeClient{}, opts)
		if err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}

func mustConfig(t *testing.T) trapezoid.Config {
	t.Helper()
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
