package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"trapquorum/internal/sim"
)

func TestScrubHealthyStripe(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("fresh stripe reported unhealthy: %v", rep)
	}
	if len(rep.FreshVector) != 8 {
		t.Fatalf("vector = %v", rep.FreshVector)
	}
	for _, v := range rep.FreshVector {
		if v != 1 {
			t.Fatalf("vector = %v, want all ones", rep.FreshVector)
		}
	}
	if !strings.Contains(rep.String(), "HEALTHY") {
		t.Fatalf("summary = %q", rep.String())
	}
}

func TestScrubUnknownStripe(t *testing.T) {
	ts := fig3System(t, Options{})
	if _, err := ts.sys.ScrubStripe(context.Background(), 9); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestScrubDetectsStaleShards(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Degraded write: parity shards 13 and 14 miss the delta.
	ts.cluster.Crash(13)
	ts.cluster.Crash(14)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	ts.cluster.Restart(13)
	ts.cluster.Restart(14)
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Fatal("stale stripe reported healthy")
	}
	if len(rep.StaleShards) != 2 || rep.StaleShards[0] != 13 || rep.StaleShards[1] != 14 {
		t.Fatalf("stale = %v, want [13 14]", rep.StaleShards)
	}
	if rep.FreshVector[2] != 2 {
		t.Fatalf("vector = %v, slot 2 should be 2", rep.FreshVector)
	}
	// RepairStripe clears the finding.
	if _, _, err := ts.sys.RepairStripe(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	rep, err = ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("post-repair scrub: %v", rep)
	}
}

func TestScrubDetectsUnreachable(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	ts.cluster.Crash(4)
	ts.cluster.Crash(11)
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Fatal("stripe with unreachable nodes reported healthy")
	}
	if len(rep.UnreachableShards) != 2 || rep.UnreachableShards[0] != 4 || rep.UnreachableShards[1] != 11 {
		t.Fatalf("unreachable = %v", rep.UnreachableShards)
	}
}

// TestScrubFailedWriteResidueIsFreshest documents a subtle residue
// property: a failed write's level-0 footprint (data node plus two
// parities) together with the 7 untouched data shards forms a
// 10-member consistent group — *larger and fresher* than the
// pre-write state. The scrubber therefore reports the bystander
// parities as stale rather than the residue as ahead, matching the
// read path (which serves the residue value, as the hazard test
// shows).
func TestScrubFailedWriteResidueIsFreshest(t *testing.T) {
	ts := fig3System(t, Options{DisableRollback: true})
	ts.seed(t, 1, 64)
	ts.cluster.Crash(12)
	ts.cluster.Crash(13)
	ts.cluster.Crash(14)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, bytes.Repeat([]byte{0x11}, 64)); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
	ts.cluster.Restart(12)
	ts.cluster.Restart(13)
	ts.cluster.Restart(14)
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Fatal("residue-poisoned stripe reported healthy")
	}
	if rep.FreshVector[2] != 2 {
		t.Fatalf("fresh vector %v should adopt the residue version", rep.FreshVector)
	}
	// The failed write updated the two reachable level-1 parities
	// (10, 11) before giving up, so only the crashed three lag.
	if len(rep.StaleShards) != 3 || rep.StaleShards[0] != 12 {
		t.Fatalf("stale = %v, want [12 13 14]", rep.StaleShards)
	}
}

// TestScrubDetectsAheadResidue injects a node whose version vector has
// run ahead of anything rebuildable (a crash between update and
// rollback): the scrubber must flag it as ahead and leave the fresh
// vector at the consistent state.
func TestScrubDetectsAheadResidue(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	chunk, err := ts.shardNode(10).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Orphaned future versions in *two* slots: with only one, the
	// orphan plus the 7 non-conflicting data shards would still form
	// a k-member group and win as "freshest" — version metadata alone
	// cannot distinguish that from a real committed write.
	chunk.Versions[3] = 99
	chunk.Versions[5] = 99
	if err := ts.shardNode(10).PutChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 10}, chunk.Data, chunk.Versions); err != nil {
		t.Fatal(err)
	}
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Fatal("ahead residue missed")
	}
	if len(rep.AheadShards) != 1 || rep.AheadShards[0] != 10 {
		t.Fatalf("ahead = %v, want [10]", rep.AheadShards)
	}
	if rep.FreshVector[3] != 1 || rep.FreshVector[5] != 1 {
		t.Fatalf("fresh vector %v polluted by the orphan", rep.FreshVector)
	}
	// RepairStripe leaves the ahead shard alone (it cannot know the
	// orphan version is garbage); force repair clears it.
	if _, ahead, err := ts.sys.RepairStripe(context.Background(), 1); err != nil {
		t.Fatal(err)
	} else if len(ahead) != 1 || ahead[0] != 10 {
		t.Fatalf("RepairStripe ahead = %v", ahead)
	}
	if err := ts.sys.RepairShardForce(context.Background(), 1, 10); err != nil {
		t.Fatal(err)
	}
	rep, err = ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("post-force-repair scrub: %v", rep)
	}
}

func TestScrubDetectsSilentCorruption(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Flip bytes on a parity node without touching versions: only the
	// byte-level parity re-derivation can catch this.
	chunk, err := ts.shardNode(10).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 10})
	if err != nil {
		t.Fatal(err)
	}
	chunk.Data[5] ^= 0xFF
	if err := ts.shardNode(10).PutChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 10}, chunk.Data, chunk.Versions); err != nil {
		t.Fatal(err)
	}
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || !rep.ParityMismatch {
		t.Fatalf("silent corruption missed: %v", rep)
	}
	// Force-repairing the corrupted shard clears it (the guarded
	// repair also works here: versions are unchanged, so the rebuilt
	// chunk installs over the corrupt bytes).
	if err := ts.sys.RepairShard(context.Background(), 1, 10); err != nil {
		t.Fatal(err)
	}
	rep, err = ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("post-repair scrub: %v", rep)
	}
}

func TestScrubNoConsistentSet(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Crash all but 5 nodes: fewer than k = 8 shards reachable.
	for j := 0; j < 10; j++ {
		ts.cluster.Crash(j)
	}
	rep, err := ts.sys.ScrubStripe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || rep.FreshVector != nil {
		t.Fatalf("report = %v", rep)
	}
	if len(rep.UnreachableShards) != 10 {
		t.Fatalf("unreachable = %v", rep.UnreachableShards)
	}
}
