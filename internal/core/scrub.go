package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"trapquorum/client"
	"trapquorum/internal/erasure"
)

// ScrubReport is the outcome of a stripe consistency scan.
type ScrubReport struct {
	Stripe uint64
	// Healthy is true when every reachable shard belongs to one
	// mutually consistent version vector and the parity bytes verify
	// against the data bytes.
	Healthy bool
	// FreshVector is the version vector of the freshest consistent
	// shard set found (nil when none reaches k members).
	FreshVector []uint64
	// StaleShards lists reachable shards whose versions lag the fresh
	// vector in at least one slot.
	StaleShards []int
	// AheadShards lists reachable shards with some slot beyond the
	// fresh vector — failed-write residue or in-flight updates.
	AheadShards []int
	// UnreachableShards lists shards whose nodes did not answer.
	UnreachableShards []int
	// CorruptShards lists shards observed serving wrong bytes: nodes
	// answering client.ErrCorrupt (quarantined or self-detected rot),
	// data shards whose content disagrees with the cross-checksum
	// record majority, and parity shards pinpointed by re-encoding.
	CorruptShards []int
	// ParityMismatch is true when a shard matching the fresh vector
	// holds bytes inconsistent with the erasure code — silent
	// corruption that versions alone cannot explain.
	ParityMismatch bool
}

// String renders a one-line operator summary.
func (r ScrubReport) String() string {
	status := "HEALTHY"
	if !r.Healthy {
		status = "DEGRADED"
	}
	return fmt.Sprintf("stripe %d: %s stale=%v ahead=%v unreachable=%v corrupt=%v parityMismatch=%v",
		r.Stripe, status, r.StaleShards, r.AheadShards, r.UnreachableShards, r.CorruptShards, r.ParityMismatch)
}

// ScrubStripe audits one stripe without modifying anything: it reads
// every reachable shard, finds the freshest consistent set, classifies
// the rest as stale/ahead/unreachable, and — when a full stripe at the
// fresh vector is reachable — re-derives the parity bytes to catch
// corruption that version bookkeeping cannot see. The scrubber is the
// read-only companion of RepairStripe: run it periodically, repair
// when it reports degradation.
func (s *System) ScrubStripe(ctx context.Context, stripe uint64) (ScrubReport, error) {
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return ScrubReport{}, err
	}
	report := ScrubReport{Stripe: stripe}
	n, k := s.code.N(), s.code.K()

	vector, _, _, err := s.freshestConsistentSet(ctx, stripe, -1)
	if err != nil {
		// No k consistent shards: classify reachability and give up.
		Fanout(ctx, s.opLimit(), n, func(cctx context.Context, shard int) (struct{}, error) {
			_, _, rerr := s.nodes[shard].ReadVersions(cctx, chunkID(stripe, shard))
			return struct{}{}, rerr
		}, func(shard int, _ struct{}, rerr error) bool {
			switch {
			case rerr == nil:
			case isCorruptErr(rerr):
				report.CorruptShards = append(report.CorruptShards, shard)
				s.reportCorrupt(shard)
			default:
				report.UnreachableShards = append(report.UnreachableShards, shard)
			}
			return true
		})
		sort.Ints(report.CorruptShards)
		sort.Ints(report.UnreachableShards)
		report.Healthy = false
		return report, nil
	}
	report.FreshVector = vector

	// Fetch every shard in parallel (no early stop: the audit wants
	// the full picture), then classify against the fresh vector in
	// shard order and collect the byte content of matching shards for
	// the parity re-derivation.
	chunks := make([]client.Chunk, n)
	fetchErrs := make([]error, n)
	Fanout(ctx, s.opLimit(), n, func(cctx context.Context, shard int) (client.Chunk, error) {
		return s.nodes[shard].ReadChunk(cctx, chunkID(stripe, shard))
	}, func(shard int, chunk client.Chunk, rerr error) bool {
		chunks[shard], fetchErrs[shard] = chunk, rerr
		return true
	})
	matching := make([][]byte, n)
	for shard := 0; shard < n; shard++ {
		chunk, rerr := chunks[shard], fetchErrs[shard]
		if rerr != nil {
			if isCorruptErr(rerr) {
				report.CorruptShards = append(report.CorruptShards, shard)
				s.reportCorrupt(shard)
			} else {
				report.UnreachableShards = append(report.UnreachableShards, shard)
			}
			continue
		}
		stale, ahead := false, false
		if shard < k {
			if len(chunk.Versions) != 1 {
				stale = true
			} else if chunk.Versions[0] < vector[shard] {
				stale = true
			} else if chunk.Versions[0] > vector[shard] {
				ahead = true
			}
		} else {
			if len(chunk.Versions) != k {
				stale = true
			} else {
				for slot := 0; slot < k; slot++ {
					if chunk.Versions[slot] < vector[slot] {
						stale = true
					} else if chunk.Versions[slot] > vector[slot] {
						ahead = true
					}
				}
			}
		}
		switch {
		case ahead:
			report.AheadShards = append(report.AheadShards, shard)
		case stale:
			report.StaleShards = append(report.StaleShards, shard)
		default:
			matching[shard] = chunk.Data
		}
	}
	sort.Ints(report.StaleShards)
	sort.Ints(report.AheadShards)
	sort.Ints(report.UnreachableShards)

	// Content verification against the cross-checksum records: each
	// data shard at the fresh vector must match the majority opinion of
	// the reachable parity records. A shard failing it serves bytes its
	// peers disavow — corrupt regardless of what the code says below.
	dataClean := 0
	for shard := 0; shard < k; shard++ {
		if matching[shard] == nil {
			continue
		}
		tally := make(map[uint64]int)
		for j := k; j < n; j++ {
			if fetchErrs[j] == nil {
				tallyOpinion(tally, chunks[j].Sums, shard, vector[shard])
			}
		}
		want := pluralitySum(tally)
		if !want.known {
			continue
		}
		if erasure.Sum64(matching[shard]) != want.sum {
			report.CorruptShards = append(report.CorruptShards, shard)
			s.reportCorrupt(shard)
			continue
		}
		dataClean++
	}

	// Byte-level verification when the full fresh stripe is in hand.
	full := true
	for shard := 0; shard < n; shard++ {
		if matching[shard] == nil {
			full = false
			break
		}
	}
	if full {
		ok, verr := s.code.Verify(matching)
		if verr != nil {
			return report, verr
		}
		report.ParityMismatch = !ok
		if !ok && dataClean == k {
			// Every data shard passed its record majority, so the data
			// side is trusted: re-encode the parity rows and pinpoint
			// which parity shards hold wrong bytes.
			// Encode returns the full n-shard layout (data rows first);
			// index it by shard, not by parity row.
			encoded, perr := s.code.Encode(matching[:k])
			if perr == nil {
				for j := k; j < n; j++ {
					if !bytes.Equal(encoded[j], matching[j]) {
						report.CorruptShards = append(report.CorruptShards, j)
						s.reportCorrupt(j)
					}
				}
			}
		}
	}
	sort.Ints(report.CorruptShards)
	report.Healthy = len(report.StaleShards) == 0 &&
		len(report.AheadShards) == 0 &&
		len(report.UnreachableShards) == 0 &&
		len(report.CorruptShards) == 0 &&
		!report.ParityMismatch
	return report, nil
}
