package core

import (
	"context"

	"trapquorum/client"
)

// epochNode wraps one node client behind Options.Epoch: every RPC's
// context is stamped with the system's placement epoch
// (client.WithEpoch), so the transport tags its frames and
// epoch-guarding nodes can fence the coordinator once the epoch is
// retired. The wrapper sits innermost — under the NodeGate wrapper —
// because the tag must ride whatever RPC ultimately reaches the
// transport, gated or hedged alike.
type epochNode struct {
	NodeClient
	epoch uint64
}

func (e *epochNode) tag(ctx context.Context) context.Context {
	return client.WithEpoch(ctx, e.epoch)
}

func (e *epochNode) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	return e.NodeClient.ReadChunk(e.tag(ctx), id)
}

func (e *epochNode) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, []client.BlockSum, error) {
	return e.NodeClient.ReadVersions(e.tag(ctx), id)
}

func (e *epochNode) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	return e.NodeClient.PutChunk(e.tag(ctx), id, data, versions, sums...)
}

func (e *epochNode) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	return e.NodeClient.PutChunkIfFresher(e.tag(ctx), id, data, versions, sums...)
}

func (e *epochNode) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	return e.NodeClient.CompareAndPut(e.tag(ctx), id, slot, expect, next, data, sum...)
}

func (e *epochNode) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	return e.NodeClient.CompareAndAdd(e.tag(ctx), id, slot, expect, next, delta, sum...)
}

func (e *epochNode) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	return e.NodeClient.DeleteChunk(e.tag(ctx), id)
}
