package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// TestProtocolRandomConfigurations is the protocol's configuration
// property test: across randomly drawn valid (n, k, shape, w)
// combinations, the full lifecycle — seed, quorum writes, healthy and
// degraded reads, repair — must hold its invariants.
func TestProtocolRandomConfigurations(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	configs := 0
	for attempt := 0; attempt < 400 && configs < 25; attempt++ {
		// Draw a code with a few parity blocks, then a matching shape.
		k := 1 + r.Intn(10)
		parity := 2 + r.Intn(9) // n-k in [2, 10]
		n := k + parity
		shapes := trapezoid.EnumerateShapes(parity+1, 3)
		if len(shapes) == 0 {
			continue
		}
		shape := shapes[r.Intn(len(shapes))]
		// Random valid w for levels >= 1 (bounded by the narrowest
		// level above 0, which is level 1 since sizes increase).
		w := 1
		if shape.H >= 1 {
			w = 1 + r.Intn(shape.LevelSize(1))
		}
		cfg, err := trapezoid.NewConfig(shape, w)
		if err != nil {
			continue
		}
		configs++
		runLifecycle(t, r, n, k, cfg)
	}
	if configs < 25 {
		t.Fatalf("only exercised %d configurations", configs)
	}
}

func runLifecycle(t *testing.T, r *rand.Rand, n, k int, cfg trapezoid.Config) {
	t.Helper()
	code, err := erasure.New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sim.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	nodes := make([]NodeClient, n)
	for j := 0; j < n; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := NewSystem(code, cfg, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	size := 8 + r.Intn(48)
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	if err := sys.SeedStripe(context.Background(), 1, data); err != nil {
		t.Fatalf("(%d,%d) %v: seed: %v", n, k, cfg, err)
	}
	expected := make([][]byte, k)
	copy(expected, data)

	// Healthy writes and reads.
	for round := 0; round < 3; round++ {
		i := r.Intn(k)
		x := make([]byte, size)
		r.Read(x)
		if err := sys.WriteBlock(context.Background(), 1, i, x); err != nil {
			t.Fatalf("(%d,%d) %v: healthy write: %v", n, k, cfg, err)
		}
		expected[i] = x
	}
	for i := 0; i < k; i++ {
		got, _, err := sys.ReadBlock(context.Background(), 1, i)
		if err != nil {
			t.Fatalf("(%d,%d) %v: healthy read %d: %v", n, k, cfg, i, err)
		}
		if !bytes.Equal(got, expected[i]) {
			t.Fatalf("(%d,%d) %v: healthy read %d wrong", n, k, cfg, i)
		}
	}

	// Random crash schedule; reads must stay linearizable, writes may
	// fail (rolled back) but never corrupt.
	for op := 0; op < 30; op++ {
		switch r.Intn(6) {
		case 0:
			cluster.Crash(r.Intn(n))
		case 1:
			cluster.Restart(r.Intn(n))
		case 2:
			i := r.Intn(k)
			x := make([]byte, size)
			r.Read(x)
			err := sys.WriteBlock(context.Background(), 1, i, x)
			if err == nil {
				expected[i] = x
			} else if !errors.Is(err, ErrWriteFailed) {
				t.Fatalf("(%d,%d) %v: unexpected write error %v", n, k, cfg, err)
			}
		default:
			i := r.Intn(k)
			got, _, err := sys.ReadBlock(context.Background(), 1, i)
			if err != nil {
				if !errors.Is(err, ErrNotReadable) {
					t.Fatalf("(%d,%d) %v: unexpected read error %v", n, k, cfg, err)
				}
				continue
			}
			if !bytes.Equal(got, expected[i]) {
				t.Fatalf("(%d,%d) %v: stale read of block %d", n, k, cfg, i)
			}
		}
	}

	// Heal and repair the whole stripe to a fixpoint. Repairs have
	// dependencies in both directions (stale parity needs fresh data,
	// a data shard that missed a committed write needs fresh parity),
	// which RepairStripe resolves by iterating.
	cluster.RestartAll()
	if _, _, err := sys.RepairStripe(context.Background(), 1); err != nil {
		t.Fatalf("(%d,%d) %v: RepairStripe: %v", n, k, cfg, err)
	}
	shards := make([][]byte, n)
	for j := 0; j < n; j++ {
		chunk, err := cluster.Node(j).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: j})
		if err != nil {
			t.Fatalf("(%d,%d) %v: chunk %d: %v", n, k, cfg, j, err)
		}
		shards[j] = chunk.Data
	}
	ok, err := code.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("(%d,%d) %v: stripe violates code after lifecycle", n, k, cfg)
	}
	for i := 0; i < k; i++ {
		got, _, err := sys.ReadBlock(context.Background(), 1, i)
		if err != nil || !bytes.Equal(got, expected[i]) {
			t.Fatalf("(%d,%d) %v: final read %d wrong (%v)", n, k, cfg, i, err)
		}
	}
}
